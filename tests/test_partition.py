"""Unit tests for page packing strategies and clustering quality."""

from __future__ import annotations

import pytest

from repro.exceptions import StorageError
from repro.network.generator import MetroConfig, make_grid_network, make_metro_network
from repro.storage.partition import (
    clustering_quality,
    pack_connectivity,
    pack_hilbert,
)


@pytest.fixture(scope="module")
def metro():
    return make_metro_network(MetroConfig(width=12, height=12, seed=4))


def _uniform_size(_nid: int) -> int:
    return 40


class TestPackHilbert:
    def test_every_node_exactly_once(self, metro):
        pages = pack_hilbert(metro, _uniform_size, 400)
        flat = [n for page in pages for n in page]
        assert sorted(flat) == sorted(metro.node_ids())

    def test_capacity_respected(self, metro):
        pages = pack_hilbert(metro, _uniform_size, 400)
        assert all(len(page) * 40 <= 400 for page in pages)

    def test_oversized_record_raises(self, metro):
        with pytest.raises(StorageError):
            pack_hilbert(metro, lambda _n: 500, 400)

    def test_spatial_coherence(self, metro):
        # Consecutive page members should be near each other on average.
        pages = pack_hilbert(metro, _uniform_size, 400)
        page = max(pages, key=len)
        xs = [metro.location(n)[0] for n in page]
        ys = [metro.location(n)[1] for n in page]
        min_x, min_y, max_x, max_y = metro.bounding_box()
        assert (max(xs) - min(xs)) < (max_x - min_x) / 2
        assert (max(ys) - min(ys)) < (max_y - min_y) / 2


class TestPackConnectivity:
    def test_every_node_exactly_once(self, metro):
        pages = pack_connectivity(metro, _uniform_size, 400)
        flat = [n for page in pages for n in page]
        assert sorted(flat) == sorted(metro.node_ids())

    def test_capacity_respected(self, metro):
        pages = pack_connectivity(metro, _uniform_size, 400)
        assert all(len(page) * 40 <= 400 for page in pages)

    def test_oversized_record_raises(self, metro):
        with pytest.raises(StorageError):
            pack_connectivity(metro, lambda _n: 500, 400)

    def test_beats_or_matches_hilbert_on_grid(self):
        grid = make_grid_network(10, 10)
        size = _uniform_size
        hil = clustering_quality(grid, pack_hilbert(grid, size, 400))
        bfs = clustering_quality(grid, pack_connectivity(grid, size, 400))
        assert bfs >= hil - 0.05  # BFS targets the objective directly


class TestClusteringQuality:
    def test_single_page_is_one(self, metro):
        all_nodes = list(metro.node_ids())
        assert clustering_quality(metro, [all_nodes]) == 1.0

    def test_singleton_pages_is_zero(self, metro):
        pages = [[n] for n in metro.node_ids()]
        assert clustering_quality(metro, pages) == 0.0

    def test_empty_network(self):
        from repro.network.model import CapeCodNetwork
        from repro.patterns.categories import Calendar

        net = CapeCodNetwork(Calendar.single_category())
        assert clustering_quality(net, []) == 0.0

    def test_reasonable_quality_at_2048(self, metro):
        from repro.storage.pages import record_size

        sizes = {
            nid: record_size(len(metro.outgoing(nid))) for nid in metro.node_ids()
        }
        pages = pack_connectivity(metro, lambda n: sizes[n], 2046)
        assert clustering_quality(metro, pages) > 0.5
