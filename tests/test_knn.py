"""Tests for time-interval kNN (the paper's §7 future-work extension)."""

from __future__ import annotations

import pytest

from repro.core.engine import IntAllFastestPaths
from repro.core.knn import interval_knn, nearest_partition
from repro.exceptions import QueryError
from repro.network.generator import (
    EXAMPLE_E,
    EXAMPLE_N,
    EXAMPLE_S,
)
from repro.timeutil import TimeInterval, parse_clock

WINDOW = TimeInterval(parse_clock("6:30"), parse_clock("8:30"))


class TestIntervalKnn:
    def test_ranks_match_singlefp_optima(self, metro_tiny):
        """Each neighbour's min travel time equals the singleFP optimum."""
        engine = IntAllFastestPaths(metro_tiny)
        candidates = [11, 37, 55, 83, 99]
        result = interval_knn(metro_tiny, 0, candidates, 3, WINDOW)
        assert len(result.neighbors) == 3
        for neighbor in result:
            exact = engine.single_fastest_path(0, neighbor.node, WINDOW)
            assert neighbor.min_travel_time == pytest.approx(
                exact.optimal_travel_time, abs=1e-6
            )

    def test_ranking_is_by_min_travel_time(self, metro_tiny):
        result = interval_knn(metro_tiny, 0, [11, 37, 55, 83, 99], 5, WINDOW)
        times = [n.min_travel_time for n in result]
        assert times == sorted(times)
        assert [n.rank for n in result] == [1, 2, 3, 4, 5]

    def test_k_truncates(self, metro_tiny):
        full = interval_knn(metro_tiny, 0, [11, 37, 55], 3, WINDOW)
        top1 = interval_knn(metro_tiny, 0, [11, 37, 55], 1, WINDOW)
        assert top1.node_ids() == full.node_ids()[:1]

    def test_travel_function_matches_engine(self, metro_tiny):
        engine = IntAllFastestPaths(metro_tiny)
        result = interval_knn(metro_tiny, 0, [55], 1, WINDOW)
        (neighbor,) = result.neighbors
        exact = engine.all_fastest_paths(0, 55, WINDOW)
        for instant in WINDOW.sample(9):
            assert neighbor.travel_time_function(instant) == pytest.approx(
                exact.travel_time_at(instant), abs=1e-6
            )

    def test_reachable_count(self, metro_tiny):
        result = interval_knn(metro_tiny, 0, [11, 37], 2, WINDOW)
        assert result.reachable_candidates == 2

    def test_rejects_bad_k(self, metro_tiny):
        with pytest.raises(QueryError):
            interval_knn(metro_tiny, 0, [11], 0, WINDOW)

    def test_rejects_empty_candidates(self, metro_tiny):
        with pytest.raises(QueryError):
            interval_knn(metro_tiny, 0, [], 1, WINDOW)

    def test_rejects_source_candidate(self, metro_tiny):
        with pytest.raises(QueryError):
            interval_knn(metro_tiny, 0, [0, 11], 1, WINDOW)


class TestNearestPartition:
    def test_paper_example_partition(self, example_network):
        """From s, is n or e 'nearer' in travel time?  e is 6 min away at
        all times; n costs 6 min before 6:54, then drops to 2 min by 7:00 —
        but it is already the co-nearest from the window start."""
        window = TimeInterval(parse_clock("6:50"), parse_clock("7:05"))
        entries, border = nearest_partition(
            example_network, EXAMPLE_S, [EXAMPLE_N, EXAMPLE_E], window
        )
        assert entries[0].node == EXAMPLE_N  # ties break to first added
        assert entries[-1].node == EXAMPLE_N
        assert border(parse_clock("7:00")) == pytest.approx(2.0)
        assert border(parse_clock("6:50")) == pytest.approx(6.0)

    def test_partition_covers_interval(self, metro_tiny):
        entries, border = nearest_partition(
            metro_tiny, 0, [11, 37, 55, 99], WINDOW
        )
        assert entries[0].interval.start == WINDOW.start
        assert entries[-1].interval.end == WINDOW.end
        for a, b in zip(entries, entries[1:]):
            assert a.interval.end == pytest.approx(b.interval.start)

    def test_border_is_min_over_candidates(self, metro_tiny):
        engine = IntAllFastestPaths(metro_tiny)
        candidates = [11, 55, 99]
        entries, border = nearest_partition(metro_tiny, 0, candidates, WINDOW)
        for instant in WINDOW.sample(9):
            expected = min(
                engine.all_fastest_paths(0, c, WINDOW).travel_time_at(instant)
                for c in candidates
            )
            assert border(instant) == pytest.approx(expected, abs=1e-6)

    def test_nearest_candidate_achieves_border(self, metro_tiny):
        engine = IntAllFastestPaths(metro_tiny)
        entries, border = nearest_partition(
            metro_tiny, 0, [11, 55, 99], WINDOW
        )
        for entry in entries:
            mid = 0.5 * (entry.interval.start + entry.interval.end)
            exact = engine.all_fastest_paths(0, entry.node, WINDOW)
            assert exact.travel_time_at(mid) == pytest.approx(
                border(mid), abs=1e-6
            )

    def test_rejects_empty(self, metro_tiny):
        with pytest.raises(QueryError):
            nearest_partition(metro_tiny, 0, [], WINDOW)
