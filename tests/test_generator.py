"""Unit tests for the synthetic network generators."""

from __future__ import annotations

import pytest

from repro.exceptions import NetworkError
from repro.network.generator import (
    EXAMPLE_E,
    EXAMPLE_N,
    EXAMPLE_S,
    MetroConfig,
    make_grid_network,
    make_metro_network,
    paper_example_network,
)
from repro.patterns.schema import RoadClass
from repro.timeutil import parse_clock


class TestMetroNetwork:
    @pytest.fixture(scope="class")
    def net(self):
        return make_metro_network(MetroConfig(width=16, height=16, seed=1))

    def test_size(self, net):
        assert net.node_count == 256
        assert net.edge_count > 256

    def test_strongly_connected(self, net):
        assert net.is_strongly_connected()

    def test_deterministic(self):
        cfg = MetroConfig(width=10, height=10, seed=9)
        a = make_metro_network(cfg)
        b = make_metro_network(cfg)
        assert [n.location for n in a.nodes()] == [n.location for n in b.nodes()]
        assert [(e.source, e.target, e.distance) for e in a.edges()] == [
            (e.source, e.target, e.distance) for e in b.edges()
        ]

    def test_seed_changes_layout(self):
        a = make_metro_network(MetroConfig(width=10, height=10, seed=1))
        b = make_metro_network(MetroConfig(width=10, height=10, seed=2))
        assert [n.location for n in a.nodes()] != [n.location for n in b.nodes()]

    def test_has_all_road_classes(self, net):
        classes = {e.road_class for e in net.edges()}
        assert classes == set(RoadClass)

    def test_highway_corridors_are_bidirectional(self, net):
        inbound = [e for e in net.edges() if e.road_class is RoadClass.INBOUND_HIGHWAY]
        assert inbound
        for e in inbound[:20]:
            assert net.has_edge(e.target, e.source)

    def test_inbound_edges_head_toward_center(self, net):
        min_x, min_y, max_x, max_y = net.bounding_box()
        cx, cy = (min_x + max_x) / 2, (min_y + max_y) / 2
        for e in net.edges():
            if e.road_class is not RoadClass.INBOUND_HIGHWAY:
                continue
            sx, sy = net.location(e.source)
            tx, ty = net.location(e.target)
            d_s = ((sx - cx) ** 2 + (sy - cy) ** 2) ** 0.5
            d_t = ((tx - cx) ** 2 + (ty - cy) ** 2) ** 0.5
            assert d_t < d_s + 1e-9

    def test_edge_lengths_at_least_euclidean(self, net):
        for e in net.edges():
            assert e.distance >= net.euclidean(e.source, e.target) - 1e-9

    def test_rush_hour_slows_inbound(self, net):
        inbound = next(
            e for e in net.edges() if e.road_class is RoadClass.INBOUND_HIGHWAY
        )
        cal = net.calendar
        rush = inbound.pattern.speed_at(parse_clock("8:00"), cal)  # Monday 8am
        offpeak = inbound.pattern.speed_at(parse_clock("12:00"), cal)
        assert rush < offpeak

    def test_rejects_degenerate_grid(self):
        with pytest.raises(NetworkError):
            make_metro_network(MetroConfig(width=1, height=5))

    def test_paper_scale_counts(self):
        cfg = MetroConfig.paper_scale()
        assert cfg.width * cfg.height == 14520  # paper: 14,456 nodes

    def test_custom_corridors(self):
        net = make_metro_network(
            MetroConfig(width=8, height=8, highway_rows=(2,), highway_cols=())
        )
        rows_with_highways = {
            net.location(e.source)[1]
            for e in net.edges()
            if e.road_class and e.road_class.is_highway
        }
        assert rows_with_highways  # corridor exists
        assert net.is_strongly_connected()


class TestGridNetwork:
    def test_size_and_connectivity(self):
        net = make_grid_network(4, 3)
        assert net.node_count == 12
        # Directed edges: 2*(3*3 + 4*2) = 34.
        assert net.edge_count == 34
        assert net.is_strongly_connected()

    def test_spacing(self):
        net = make_grid_network(3, 3, spacing=2.0)
        assert net.location(1) == (2.0, 0.0)
        assert net.find_edge(0, 1).distance == 2.0

    def test_rejects_degenerate(self):
        with pytest.raises(NetworkError):
            make_grid_network(1, 5)


class TestPaperExample:
    def test_structure(self):
        net = paper_example_network()
        assert net.node_count == 3
        assert net.edge_count == 3
        assert net.has_edge(EXAMPLE_S, EXAMPLE_E)
        assert net.has_edge(EXAMPLE_S, EXAMPLE_N)
        assert net.has_edge(EXAMPLE_N, EXAMPLE_E)

    def test_max_speed_is_one(self):
        # Needed for the paper's T_est(n => e) = 1 minute.
        assert paper_example_network().max_speed() == 1.0

    def test_naive_estimate_from_n(self):
        net = paper_example_network()
        assert net.euclidean(EXAMPLE_N, EXAMPLE_E) == pytest.approx(1.0)
