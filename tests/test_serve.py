"""Tests for the repro.serve query service (coalescing, admission, HTTP)."""

from __future__ import annotations

import json
import threading
import time
import urllib.request

import pytest

from repro.core.engine import IntAllFastestPaths, QueryTimeout
from repro.func import kernel
from repro.exceptions import (
    ServiceClosed,
    ServiceOverloaded,
)
from repro.serve import (
    AdmissionController,
    AllFPService,
    HTTPClient,
    MetricsRegistry,
    QueryRequest,
    ResultCache,
    ServiceConfig,
    SingleFlight,
    make_server,
    parse_metrics,
    percentile,
    run_closed_loop,
    start_in_thread,
)
from repro.timeutil import TimeInterval
from repro.workloads.queries import morning_rush_interval, random_queries


def wait_until(predicate, timeout=5.0, interval=0.002):
    """Poll until ``predicate()`` is truthy; fail the test on timeout."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    pytest.fail("condition not reached within timeout")


class GatedNetwork:
    """Delegating wrapper whose ``outgoing`` blocks while the gate is closed.

    Lets tests hold an engine run mid-search so concurrent duplicates are
    deterministically in flight together.
    """

    def __init__(self, inner):
        self._inner = inner
        self.gate = threading.Event()
        self.gate.set()

    def outgoing(self, node_id):
        assert self.gate.wait(timeout=30.0), "gate never opened"
        return self._inner.outgoing(node_id)

    def __getattr__(self, name):
        return getattr(self._inner, name)


@pytest.fixture
def interval():
    return TimeInterval.from_clock("7:00", "8:00")


@pytest.fixture
def service(metro_tiny):
    svc = AllFPService(metro_tiny, config=ServiceConfig(workers=2))
    yield svc
    svc.close()


# ----------------------------------------------------------------------
# Unit layers
# ----------------------------------------------------------------------

class TestResultCache:
    def test_put_get(self):
        cache = ResultCache(max_entries=4, ttl=60.0)
        cache.put("k", 42)
        assert cache.get("k") == 42
        assert cache.snapshot()["hits"] == 1

    def test_ttl_expiry_with_fake_clock(self):
        now = [0.0]
        cache = ResultCache(max_entries=4, ttl=10.0, clock=lambda: now[0])
        cache.put("k", 1)
        now[0] = 9.9
        assert cache.get("k") == 1
        now[0] = 10.0
        assert cache.get("k") is None
        assert cache.snapshot()["expirations"] == 1
        assert len(cache) == 0

    def test_lru_eviction(self):
        cache = ResultCache(max_entries=2, ttl=60.0)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a; b becomes LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.snapshot()["evictions"] == 1

    def test_clear(self):
        cache = ResultCache()
        cache.put("a", 1)
        assert cache.clear() == 1
        assert cache.get("a") is None

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)
        with pytest.raises(ValueError):
            ResultCache(ttl=0)


class TestSingleFlight:
    def test_sequential_calls_both_lead(self):
        sf = SingleFlight()
        assert sf.do("k", lambda: 1) == (1, True)
        assert sf.do("k", lambda: 2) == (2, True)
        assert sf.coalesced == 0

    def test_concurrent_duplicates_share_one_run(self):
        sf = SingleFlight()
        gate = threading.Event()
        runs = []

        def compute():
            gate.wait(timeout=10.0)
            runs.append(1)
            return "answer"

        results = []
        threads = [
            threading.Thread(target=lambda: results.append(sf.do("k", compute)))
            for _ in range(5)
        ]
        for t in threads:
            t.start()
        wait_until(lambda: sf.coalesced == 4)
        gate.set()
        for t in threads:
            t.join()
        assert len(runs) == 1
        assert sorted(leader for _, leader in results) == [False] * 4 + [True]
        assert all(value == "answer" for value, _ in results)
        assert sf.inflight() == 0

    def test_leader_exception_propagates_to_followers(self):
        sf = SingleFlight()
        gate = threading.Event()
        errors = []

        def boom():
            gate.wait(timeout=10.0)
            raise RuntimeError("leader failed")

        def call():
            try:
                sf.do("k", boom)
            except RuntimeError as exc:
                errors.append(str(exc))

        threads = [threading.Thread(target=call) for _ in range(3)]
        for t in threads:
            t.start()
        wait_until(lambda: sf.coalesced == 2)
        gate.set()
        for t in threads:
            t.join()
        assert errors == ["leader failed"] * 3


class TestAdmissionController:
    def test_rejects_beyond_capacity(self):
        gate = AdmissionController(max_pending=2)
        gate.try_acquire()
        gate.try_acquire()
        with pytest.raises(ServiceOverloaded) as exc_info:
            gate.try_acquire()
        assert exc_info.value.max_pending == 2
        assert gate.snapshot()["rejected"] == 1
        gate.release()
        gate.try_acquire()  # capacity freed

    def test_release_underflow(self):
        gate = AdmissionController()
        with pytest.raises(RuntimeError):
            gate.release()


class TestMetricsRegistry:
    def test_counter_labels_and_render(self):
        m = MetricsRegistry()
        m.inc("requests_total", labels={"mode": "allfp"})
        m.inc("requests_total", labels={"mode": "allfp"})
        m.inc("requests_total", labels={"mode": "singlefp"})
        text = m.render()
        samples = parse_metrics(text)
        assert samples['repro_requests_total{mode="allfp"}'] == 2
        assert samples['repro_requests_total{mode="singlefp"}'] == 1
        assert "# TYPE repro_requests_total counter" in text
        assert m.counter_total("requests_total") == 3

    def test_histogram_buckets_cumulative(self):
        m = MetricsRegistry()
        for v in (0.0005, 0.002, 0.002, 5.0):
            m.observe("latency_seconds", v, buckets=(0.001, 0.01, 1.0))
        samples = parse_metrics(m.render())
        assert samples['repro_latency_seconds_bucket{le="0.001"}'] == 1
        assert samples['repro_latency_seconds_bucket{le="0.01"}'] == 3
        assert samples['repro_latency_seconds_bucket{le="1"}'] == 3
        assert samples['repro_latency_seconds_bucket{le="+Inf"}'] == 4
        assert samples["repro_latency_seconds_count"] == 4

    def test_gauge_callable_sampled_at_render(self):
        m = MetricsRegistry()
        depth = [3]
        m.set_gauge("queue_depth", lambda: depth[0])
        assert parse_metrics(m.render())["repro_queue_depth"] == 3
        depth[0] = 7
        assert parse_metrics(m.render())["repro_queue_depth"] == 7


class TestPercentile:
    def test_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == pytest.approx(2.5)


# ----------------------------------------------------------------------
# Service behaviour
# ----------------------------------------------------------------------

class TestServiceBasics:
    def test_allfp_matches_direct_engine(self, metro_tiny, service, interval):
        direct = IntAllFastestPaths(metro_tiny).all_fastest_paths(0, 99, interval)
        served = service.all_fastest_paths(0, 99, interval)
        assert [e.path for e in served.result.entries] == [
            e.path for e in direct.entries
        ]
        assert not served.cached and not served.coalesced

    def test_repeat_is_cached(self, service, interval):
        first = service.all_fastest_paths(0, 99, interval)
        second = service.all_fastest_paths(0, 99, interval)
        assert not first.cached
        assert second.cached
        assert second.result is first.result
        assert service.stats()["engine_runs"] == 1

    def test_invalidate_bumps_version_and_recomputes(self, service, interval):
        service.all_fastest_paths(0, 99, interval)
        assert service.invalidate() == 1
        assert service.version == 1
        again = service.all_fastest_paths(0, 99, interval)
        assert not again.cached
        assert service.stats()["engine_runs"] == 2

    def test_singlefp_mode(self, service, interval):
        response = service.single_fastest_path(0, 99, interval)
        assert response.result.optimal_travel_time > 0

    def test_bad_mode_rejected(self, interval):
        with pytest.raises(Exception):
            QueryRequest(0, 99, interval, mode="frobnicate")

    def test_closed_service_raises(self, metro_tiny, interval):
        svc = AllFPService(metro_tiny, config=ServiceConfig(workers=1))
        svc.close()
        with pytest.raises(ServiceClosed):
            svc.all_fastest_paths(0, 99, interval)


class TestCoalescing:
    def test_n_identical_concurrent_requests_one_engine_run(
        self, metro_tiny, interval
    ):
        gated = GatedNetwork(metro_tiny)
        svc = AllFPService(
            gated,
            config=ServiceConfig(workers=2, cache_results=False),
        )
        try:
            gated.gate.clear()
            n = 5
            responses = []
            errors = []

            def call():
                try:
                    responses.append(svc.all_fastest_paths(0, 99, interval))
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [threading.Thread(target=call) for _ in range(n)]
            for t in threads:
                t.start()
            # Followers register in the single-flight map before blocking.
            wait_until(
                lambda: svc.stats()["single_flight"]["coalesced"] == n - 1
            )
            gated.gate.set()
            for t in threads:
                t.join()
            assert not errors
            assert svc.stats()["engine_runs"] == 1
            assert svc.metrics.counter_total("coalesced_total") == n - 1
            leaders = [r for r in responses if not r.coalesced]
            assert len(leaders) == 1
            entries = {tuple(e.path for e in r.result.entries) for r in responses}
            assert len(entries) == 1  # everyone got the same answer
        finally:
            gated.gate.set()
            svc.close()

    def test_coalescing_off_runs_engine_per_request(self, metro_tiny, interval):
        svc = AllFPService(
            metro_tiny,
            config=ServiceConfig(
                workers=2, coalesce=False, cache_results=False
            ),
        )
        try:
            svc.all_fastest_paths(0, 99, interval)
            svc.all_fastest_paths(0, 99, interval)
            assert svc.stats()["engine_runs"] == 2
        finally:
            svc.close()


class TestDeadlines:
    def test_deadline_exceeded_raises_and_worker_survives(
        self, service, interval
    ):
        with pytest.raises(QueryTimeout) as exc_info:
            service.all_fastest_paths(0, 99, interval, deadline=1e-9)
        assert exc_info.value.stats.timed_out
        # The pool is healthy: the same query now succeeds.
        ok = service.all_fastest_paths(0, 99, interval)
        assert ok.result.entries
        assert (
            service.metrics.counter_value(
                "responses_total", {"mode": "allfp", "status": "timeout"}
            )
            == 1
        )

    def test_engine_deadline_directly(self, metro_tiny, interval):
        engine = IntAllFastestPaths(metro_tiny, deadline=0.0)
        with pytest.raises(QueryTimeout):
            engine.all_fastest_paths(0, 99, interval)
        # Per-call override beats the constructor default.
        result = engine.all_fastest_paths(0, 99, interval, deadline=60.0)
        assert result.stats.elapsed_seconds > 0
        assert not result.stats.timed_out

    def test_timeout_error_not_cached(self, service, interval):
        with pytest.raises(QueryTimeout):
            service.all_fastest_paths(0, 99, interval, deadline=1e-9)
        response = service.all_fastest_paths(0, 99, interval)
        assert not response.cached


class TestAdmissionIntegration:
    def test_over_capacity_requests_fast_fail(self, metro_tiny, interval):
        gated = GatedNetwork(metro_tiny)
        svc = AllFPService(
            gated,
            config=ServiceConfig(
                workers=1,
                max_pending=2,
                coalesce=False,
                cache_results=False,
            ),
        )
        try:
            gated.gate.clear()
            outcomes = []

            def call(target):
                try:
                    outcomes.append(svc.all_fastest_paths(0, target, interval))
                except Exception as exc:  # noqa: BLE001
                    outcomes.append(exc)

            t1 = threading.Thread(target=call, args=(99,))
            t2 = threading.Thread(target=call, args=(55,))
            t1.start()
            t2.start()
            wait_until(lambda: svc.stats()["admission"]["pending"] == 2)
            started = time.monotonic()
            with pytest.raises(ServiceOverloaded):
                svc.all_fastest_paths(0, 33, interval)
            rejection_seconds = time.monotonic() - started
            assert rejection_seconds < 0.5  # fast-fail, not queued
            gated.gate.set()
            t1.join()
            t2.join()
            assert svc.stats()["admission"]["rejected"] == 1
            assert all(not isinstance(o, Exception) for o in outcomes)
        finally:
            gated.gate.set()
            svc.close()


class TestEngineHooks:
    def test_edge_cache_snapshot(self, metro_tiny, interval):
        engine = IntAllFastestPaths(metro_tiny)
        engine.all_fastest_paths(0, 99, interval)
        snap = engine.edge_cache.snapshot()
        assert snap["misses"] > 0
        assert snap["entries"] > 0
        assert set(snap) == {"entries", "max_entries", "hits", "misses"}

    def test_shared_edge_cache_across_engines(self, metro_tiny, interval):
        first = IntAllFastestPaths(metro_tiny)
        first.all_fastest_paths(0, 99, interval)
        second = IntAllFastestPaths(metro_tiny, edge_cache=first.edge_cache)
        result = second.all_fastest_paths(0, 99, interval)
        assert result.stats.edge_cache_hits > 0
        assert result.stats.edge_cache_misses == 0


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------

@pytest.fixture
def http_service(metro_tiny):
    svc = AllFPService(metro_tiny, config=ServiceConfig(workers=2))
    server = make_server(svc, port=0)
    start_in_thread(server)
    host, port = server.server_address[:2]
    client = HTTPClient(f"http://{host}:{port}")
    yield svc, client
    server.shutdown()
    svc.close()


class TestHTTP:
    def test_healthz(self, http_service):
        _, client = http_service
        body = client.healthz()
        assert body["status"] == "ok"
        assert body["nodes"] == 100

    def test_allfp_roundtrip(self, http_service, interval):
        _, client = http_service
        status, body = client.query(0, 99, interval)
        assert status == 200
        assert body["result"]["entries"]
        assert body["cached"] is False
        status, body = client.query(0, 99, interval)
        assert body["cached"] is True

    def test_clock_string_interval(self, http_service):
        _, client = http_service
        status, body = client.post(
            "/v1/singlefp",
            {"source": 0, "target": 99, "from": "7:00", "to": "8:00"},
        )
        assert status == 200
        assert body["result"]["optimal_travel_time"] > 0

    @pytest.mark.parametrize(
        "body, fragment",
        [
            ({"target": 99, "from": "7:00", "to": "8:00"}, "source"),
            ({"source": 0, "target": 99}, "interval missing"),
            ({"source": 0, "target": 99, "from": "7:00"}, "together"),
            (
                {"source": 0, "target": 99, "from": "nope", "to": "8:00"},
                "clock string",
            ),
            (
                {"source": "zero", "target": 99, "from": "7:00", "to": "8:00"},
                "integer",
            ),
            (
                {"source": 0, "target": 99, "start": 420.0, "end": 480.0,
                 "deadline": -1},
                "positive",
            ),
        ],
    )
    def test_bad_requests_are_400(self, http_service, body, fragment):
        _, client = http_service
        status, payload = client.post("/v1/allfp", body)
        assert status == 400
        assert fragment in payload["message"]

    def test_invalid_json_is_400(self, http_service):
        _, client = http_service
        req = urllib.request.Request(
            client.base_url + "/v1/allfp", data=b"{not json", method="POST"
        )
        try:
            urllib.request.urlopen(req, timeout=10)
            pytest.fail("expected HTTPError")
        except urllib.error.HTTPError as exc:
            assert exc.code == 400

    def test_unknown_node_is_404(self, http_service, interval):
        _, client = http_service
        status, payload = client.query(0, 123456, interval)
        assert status == 404
        assert payload["error"] == "NodeNotFoundError"

    def test_unknown_route_is_404(self, http_service):
        _, client = http_service
        status, _ = client.post("/v1/frobnicate", {})
        assert status == 404

    def test_deadline_maps_to_504(self, http_service, interval):
        _, client = http_service
        status, payload = client.query(0, 99, interval, deadline=1e-9)
        assert status == 504
        assert payload["error"] == "QueryTimeout"

    def test_metrics_reconcile_with_client_counts(self, http_service, interval):
        svc, client = http_service
        ok = 0
        for target in (99, 55, 99, 42, 99):
            status, _ = client.query(0, target, interval)
            assert status == 200
            ok += 1
        samples = parse_metrics(client.metrics_text())
        kb = f'kernel_backend="{kernel.active_backend()}"'
        assert samples[f'repro_requests_total{{{kb},mode="allfp"}}'] == ok
        assert (
            samples[f'repro_responses_total{{{kb},mode="allfp",status="ok"}}']
            == ok
        )
        # Two of the five were repeats served from the result cache.
        assert samples[f"repro_result_cache_hits_total{{{kb}}}"] == 2
        assert samples[f"repro_engine_runs_total{{{kb}}}"] == 3
        assert samples[f"repro_pending_requests{{{kb}}}"] == 0
        count_key = f'repro_request_latency_seconds_count{{{kb},mode="allfp"}}'
        assert samples[count_key] == ok


# ----------------------------------------------------------------------
# One-to-many endpoints: /v1/profile and /v1/knn
# ----------------------------------------------------------------------

class TestOneToManyModes:
    def test_profile_matches_direct_search(self, metro_tiny, service, interval):
        from repro.core.profile import profile_search

        direct = profile_search(metro_tiny, 0, interval, targets=[5, 27, 99])
        served = service.profile(0, interval, targets=[5, 27, 99])
        assert set(served.result.profiles) == set(direct.profiles)
        for node, fn in served.result.profiles.items():
            assert fn(interval.start) == pytest.approx(
                direct.profiles[node](interval.start), abs=1e-9
            )
        assert served.result.stats.expanded_paths > 0

    def test_knn_matches_direct_query(self, metro_tiny, service, interval):
        from repro.core.knn import interval_knn

        direct = interval_knn(metro_tiny, 0, [12, 34, 56, 78], 2, interval)
        served = service.knn(0, [12, 34, 56, 78], 2, interval)
        assert served.result.node_ids() == direct.node_ids()

    def test_profile_repeat_is_cached(self, service, interval):
        first = service.profile(0, interval, targets=[5, 99])
        second = service.profile(0, interval, targets=[99, 5, 5])
        assert not first.cached
        # Target normalisation makes the permuted repeat the same cache key.
        assert second.cached

    def test_http_profile_roundtrip(self, http_service, interval):
        _, client = http_service
        status, body = client.profile(0, [5, 27, 99], interval)
        assert status == 200
        assert set(body["result"]["profiles"]) == {"5", "27", "99"}
        assert body["result"]["stats"]["expanded_paths"] > 0

    def test_http_knn_roundtrip(self, http_service, interval):
        _, client = http_service
        status, body = client.knn(0, [12, 34, 56, 78], 2, interval)
        assert status == 200
        neighbors = body["result"]["neighbors"]
        assert len(neighbors) == 2
        assert (
            neighbors[0]["min_travel_time"] <= neighbors[1]["min_travel_time"]
        )

    @pytest.mark.parametrize(
        "path, body, fragment",
        [
            ("/v1/profile", {"source": 0, "from": "7:00", "to": "8:00"},
             "targets"),
            ("/v1/profile",
             {"source": 0, "targets": [], "from": "7:00", "to": "8:00"},
             "targets"),
            ("/v1/profile",
             {"source": 0, "targets": list(range(300)), "from": "7:00",
              "to": "8:00"},
             "at most"),
            ("/v1/knn",
             {"source": 0, "candidates": [5, 9], "from": "7:00", "to": "8:00"},
             "k"),
            ("/v1/knn",
             {"source": 0, "candidates": [5, 9], "k": 0, "from": "7:00",
              "to": "8:00"},
             "k"),
        ],
    )
    def test_bad_one_to_many_requests_are_400(
        self, http_service, path, body, fragment
    ):
        _, client = http_service
        status, payload = client.post(path, body)
        assert status == 400
        assert fragment in payload["message"]

    def test_profile_deadline_maps_to_504(self, http_service, interval):
        _, client = http_service
        status, payload = client.profile(0, [99], interval, deadline=1e-9)
        assert status == 504
        assert payload["error"] == "QueryTimeout"


# ----------------------------------------------------------------------
# Load generation
# ----------------------------------------------------------------------

class TestLoadGeneration:
    def test_closed_loop_reports(self, metro_tiny, service):
        queries = random_queries(
            metro_tiny, 8, morning_rush_interval(1.0), seed=11
        )
        from repro.serve import InProcessClient

        client = InProcessClient(service)
        report = run_closed_loop(
            lambda spec: client.query(spec), queries, clients=4
        )
        assert report.requests == 8
        assert report.successes == 8
        assert report.throughput_qps > 0
        summary = report.as_dict()
        assert summary["p50_ms"] <= summary["p99_ms"]

    def test_closed_loop_records_errors(self, service):
        bad = random_queries(
            service.network, 2, morning_rush_interval(1.0), seed=11
        )

        def explode(spec):
            raise RuntimeError("boom")

        report = run_closed_loop(explode, bad, clients=2)
        assert report.successes == 0
        assert report.errors == {"RuntimeError": 2}
