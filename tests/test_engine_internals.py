"""Unit tests for engine internals: the edge-function cache and budget."""

from __future__ import annotations

import pytest

from repro.core.engine import _EdgeFunctionCache
from repro.func.monotone import MonotonePiecewiseLinear
from repro.network.model import Edge
from repro.patterns.categories import Calendar
from repro.patterns.speed import CapeCodPattern, DailySpeedPattern
from repro.patterns.travel_time import traverse


@pytest.fixture
def cal():
    return Calendar.single_category("d")


@pytest.fixture
def edge(cal):
    pattern = CapeCodPattern(
        {"d": DailySpeedPattern([(0.0, 1.0), (420.0, 0.5), (540.0, 1.0)])}
    )
    return Edge(1, 2, 3.0, pattern)


class TestEdgeFunctionCache:
    def test_first_request_builds(self, cal, edge):
        cache = _EdgeFunctionCache(cal)
        fn = cache.arrival(edge, 400.0, 500.0)
        assert fn.x_min <= 400.0 and fn.x_max >= 500.0
        assert len(cache) == 1

    def test_covered_request_reuses_object(self, cal, edge):
        cache = _EdgeFunctionCache(cal)
        first = cache.arrival(edge, 400.0, 500.0)
        second = cache.arrival(edge, 420.0, 480.0)
        assert second is first

    def test_wider_request_rebuilds_superset(self, cal, edge):
        cache = _EdgeFunctionCache(cal)
        first = cache.arrival(edge, 400.0, 500.0)
        wider = cache.arrival(edge, 300.0, 900.0)
        assert wider is not first
        assert wider.x_min <= 300.0 and wider.x_max >= 900.0
        assert len(cache) == 1  # replaced, not duplicated

    def test_cached_function_is_exact(self, cal, edge):
        cache = _EdgeFunctionCache(cal)
        fn = cache.arrival(edge, 380.0, 560.0)
        for t in (380.0, 415.0, 470.0, 560.0):
            assert fn(t) == pytest.approx(
                traverse(edge.distance, edge.pattern, cal, t), abs=1e-9
            )

    def test_growth_is_bounded(self, cal, edge):
        """Repeated slightly-wider requests must not blow the horizon up."""
        cache = _EdgeFunctionCache(cal)
        hi = 500.0
        for _ in range(40):
            hi += 10.0
            fn = cache.arrival(edge, 400.0, hi)
        assert fn.x_max < 400.0 + 40 * 10.0 + 4000.0  # far below a year

    def test_provider_edges_bypass_cache(self, cal, edge):
        class FakeShortcut:
            source, target = 5, 6
            profile = MonotonePiecewiseLinear([(0.0, 7.0), (1000.0, 1007.0)])

            def arrival_function(self, lo, hi):
                return self.profile

        cache = _EdgeFunctionCache(cal)
        shortcut = FakeShortcut()
        fn = cache.arrival(shortcut, 100.0, 200.0)
        assert fn is shortcut.profile
        assert len(cache) == 0

    def test_hit_miss_counters(self, cal, edge):
        cache = _EdgeFunctionCache(cal)
        cache.arrival(edge, 400.0, 500.0)
        assert (cache.hits, cache.misses) == (0, 1)
        cache.arrival(edge, 420.0, 480.0)
        assert (cache.hits, cache.misses) == (1, 1)
        cache.arrival(edge, 300.0, 900.0)  # wider: a rebuild, counted as miss
        assert (cache.hits, cache.misses) == (1, 2)

    def test_lru_eviction_bounds_size(self, cal, edge):
        cache = _EdgeFunctionCache(cal, max_entries=2)
        for target in (10, 11, 12, 13):
            e = Edge(1, target, edge.distance, edge.pattern)
            cache.arrival(e, 400.0, 500.0)
        assert len(cache) == 2

    def test_lru_keeps_recently_used(self, cal, edge):
        cache = _EdgeFunctionCache(cal, max_entries=2)
        a = Edge(1, 10, edge.distance, edge.pattern)
        b = Edge(1, 11, edge.distance, edge.pattern)
        c = Edge(1, 12, edge.distance, edge.pattern)
        first = cache.arrival(a, 400.0, 500.0)
        cache.arrival(b, 400.0, 500.0)
        cache.arrival(a, 410.0, 490.0)  # touch a: b becomes the LRU entry
        cache.arrival(c, 400.0, 500.0)  # evicts b
        assert cache.arrival(a, 410.0, 490.0) is first  # still resident
        misses_before = cache.misses
        cache.arrival(b, 400.0, 500.0)  # must rebuild
        assert cache.misses == misses_before + 1

    def test_rejects_nonpositive_capacity(self, cal):
        with pytest.raises(ValueError):
            _EdgeFunctionCache(cal, max_entries=0)
