"""Tests for the parallel, persistent, array-backed estimator precompute.

Covers the PR 3 subsystem end to end: bitwise parity between the array and
legacy dict backends (property-based over random networks), admissibility
of the array-backed bounds, snapshot round-trip and corruption handling,
precompute idempotency, the multiprocessing path, CLI cache flows (hit,
miss, fingerprint mismatch → exit 2), and serve-layer warm-start metrics.

The ``REPRO_PRECOMPUTE_WORKERS`` environment variable (used by a CI matrix
leg) forces the worker count used by the default-worker tests, so the
multiprocessing path runs under pytest on CI runners.
"""

from __future__ import annotations

import os
import random
import struct

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.astar import fixed_departure_query
from repro.core.engine import IntAllFastestPaths
from repro.estimators.boundary import BoundaryNodeEstimator
from repro.estimators.precompute import (
    EstimatorTables,
    compute_tables,
    multi_source_dijkstra_indexed,
)
from repro.estimators.snapshot import (
    MAGIC,
    network_fingerprint,
    save_tables,
)
from repro.exceptions import EstimatorError, NoPathError
from repro.network.generator import MetroConfig, make_metro_network
from repro.network.model import CapeCodNetwork
from repro.patterns.speed import CapeCodPattern, DailySpeedPattern
from repro.timeutil import TimeInterval, parse_clock

#: Worker count for the "default" parallel tests; the CI matrix leg sets
#: REPRO_PRECOMPUTE_WORKERS=2 so the multiprocessing pool runs under pytest.
ENV_WORKERS = int(os.environ.get("REPRO_PRECOMPUTE_WORKERS", "1"))


def _networks_equal_bounds(network, nx, ny, metric, targets, workers=1):
    """Assert array and dict backends agree bitwise on every node."""
    arr = BoundaryNodeEstimator(
        network, nx, ny, metric=metric, workers=workers
    )
    legacy = BoundaryNodeEstimator(network, nx, ny, metric=metric, backend="dict")
    for target in targets:
        arr.prepare(target)
        legacy.prepare(target)
        for node in network.node_ids():
            a = arr.bound(node)
            d = legacy.bound(node)
            assert a == d, (node, target, a, d)
            assert arr.boundary_bound(node) == legacy.boundary_bound(node)


class TestBackendParity:
    def test_metro_tiny_bitwise(self, metro_tiny):
        _networks_equal_bounds(
            metro_tiny, 3, 3, "time", [0, 17, 42], workers=ENV_WORKERS
        )

    def test_distance_metric_bitwise(self, metro_tiny):
        _networks_equal_bounds(metro_tiny, 2, 4, "distance", [0, 99])

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        width=st.integers(min_value=4, max_value=8),
        height=st.integers(min_value=4, max_value=8),
        nx=st.integers(min_value=1, max_value=4),
        ny=st.integers(min_value=1, max_value=4),
        metric=st.sampled_from(["time", "distance"]),
    )
    def test_property_random_networks(self, seed, width, height, nx, ny, metric):
        network = make_metro_network(
            MetroConfig(width=width, height=height, seed=seed)
        )
        rng = random.Random(seed)
        targets = rng.sample(list(network.node_ids()), k=2)
        _networks_equal_bounds(network, nx, ny, metric, targets)

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        depart=st.floats(min_value=0.0, max_value=1439.0),
    )
    def test_property_admissible(self, seed, depart):
        """Array-backed bounds never exceed the true fastest travel time."""
        network = make_metro_network(MetroConfig(width=6, height=6, seed=seed))
        est = BoundaryNodeEstimator(network, 3, 3)
        rng = random.Random(seed)
        target = rng.choice(list(network.node_ids()))
        est.prepare(target)
        for node in list(network.node_ids())[::3]:
            if node == target:
                continue
            try:
                actual = fixed_departure_query(
                    network, node, target, depart
                ).travel_time
            except NoPathError:
                continue
            assert est.bound(node) <= actual + 1e-9

    def test_non_dense_node_ids(self, single_calendar):
        """Sparse ids exercise the id→index map instead of direct indexing."""
        pattern = CapeCodPattern(
            {
                single_calendar.categories.names[0]: DailySpeedPattern(
                    [(0.0, 0.5)]
                )
            }
        )
        net = CapeCodNetwork.from_elements(
            single_calendar,
            [(10, 0.0, 0.0), (20, 1.0, 0.0), (35, 1.0, 1.0), (47, 0.0, 1.0)],
            [
                (10, 20, 1.0, pattern),
                (20, 35, 1.0, pattern),
                (35, 47, 1.0, pattern),
                (47, 10, 1.0, pattern),
            ],
        )
        arr = BoundaryNodeEstimator(net, 2, 2)
        assert not arr.tables.dense
        legacy = BoundaryNodeEstimator(net, 2, 2, backend="dict")
        for target in (10, 35):
            arr.prepare(target)
            legacy.prepare(target)
            for node in net.node_ids():
                assert arr.bound(node) == legacy.bound(node)
        with pytest.raises(EstimatorError):
            arr.boundary_bound(11)

    def test_unknown_node_raises(self, metro_tiny):
        est = BoundaryNodeEstimator(metro_tiny, 2, 2)
        est.prepare(0)
        with pytest.raises(EstimatorError):
            est.boundary_bound(10**9)

    def test_engine_results_identical(self, metro_tiny):
        """End-to-end: both backends drive the engine to the same answer."""
        interval = TimeInterval(parse_clock("7:00"), parse_clock("8:00"))
        results = []
        for backend in ("array", "dict"):
            est = BoundaryNodeEstimator(metro_tiny, 3, 3, backend=backend)
            engine = IntAllFastestPaths(metro_tiny, est)
            result = engine.all_fastest_paths(0, 77, interval)
            results.append(result)
        assert results[0].entries == results[1].entries
        assert results[0].stats.expanded_paths == results[1].stats.expanded_paths


class TestIdempotency:
    def test_precompute_twice_is_noop(self, metro_tiny, monkeypatch):
        est = BoundaryNodeEstimator(metro_tiny, 3, 3, defer=True)
        assert not est.is_precomputed
        est.precompute()
        tables = est.tables
        assert est.is_precomputed

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("precompute ran twice")

        monkeypatch.setattr(
            "repro.estimators.boundary.compute_tables", boom
        )
        est.precompute()
        est.prepare(0)  # prepare() must not re-run the Dijkstras either
        assert est.tables is tables

    def test_defer_then_prepare_precomputes(self, metro_tiny):
        est = BoundaryNodeEstimator(metro_tiny, 3, 3, defer=True)
        est.prepare(5)
        assert est.is_precomputed
        assert est.bound(50) > 0.0

    def test_refresh_recomputes(self, metro_tiny):
        est = BoundaryNodeEstimator(metro_tiny, 3, 3)
        first = est.tables
        est.refresh()
        assert est.tables is not first
        est.prepare(0)
        legacy = BoundaryNodeEstimator(metro_tiny, 3, 3, backend="dict")
        legacy.prepare(0)
        assert est.bound(42) == legacy.bound(42)

    def test_rejects_bad_workers(self, metro_tiny):
        with pytest.raises(EstimatorError):
            BoundaryNodeEstimator(metro_tiny, 2, 2, workers=0)

    def test_rejects_bad_backend(self, metro_tiny):
        with pytest.raises(EstimatorError):
            BoundaryNodeEstimator(metro_tiny, 2, 2, backend="banana")


class TestIndexedDijkstra:
    def test_skips_stale_entries_without_redundant_relaxations(self):
        # Diamond where the longer edge to node 1 enqueues a stale entry;
        # counting relaxations via a wrapped adjacency proves the stale pop
        # never rescans node 1's neighbors.
        scans: list[int] = []

        class CountingRow(list):
            def __iter__(inner):
                scans.append(1)
                return super().__iter__()

        adjacency = [
            CountingRow([(1, 10.0), (2, 1.0)]),
            CountingRow([(3, 1.0)]),
            CountingRow([(1, 1.0)]),
            CountingRow([]),
        ]
        dist = multi_source_dijkstra_indexed(adjacency, [0], 4)
        assert dist == [0.0, 2.0, 1.0, 3.0]
        # Each of the four nodes is expanded exactly once; the stale (10.0, 1)
        # heap entry is dropped before touching adjacency[1].
        assert len(scans) == 4

    def test_multiple_sources(self):
        adjacency = [[(1, 5.0)], [(2, 5.0)], [], []]
        dist = multi_source_dijkstra_indexed(adjacency, [0, 3], 4)
        assert dist[0] == 0.0 and dist[3] == 0.0
        assert dist[1] == 5.0 and dist[2] == 10.0


class TestParallelPrecompute:
    def test_workers2_bitwise_equal_serial(self, metro_tiny):
        grid = BoundaryNodeEstimator(metro_tiny, 3, 3).grid
        serial = compute_tables(metro_tiny, grid, "time", workers=1)
        parallel = compute_tables(metro_tiny, grid, "time", workers=2)
        assert serial.to_boundary == parallel.to_boundary
        assert serial.from_boundary == parallel.from_boundary
        assert serial.cell_pair == parallel.cell_pair
        assert serial.node_cell == parallel.node_cell
        assert parallel.workers_used == 2

    def test_pool_failure_falls_back_to_serial(self, metro_tiny, monkeypatch):
        monkeypatch.setattr(
            "repro.estimators.precompute._make_pool", lambda *a: None
        )
        est = BoundaryNodeEstimator(metro_tiny, 3, 3, workers=4)
        assert est.tables.workers_used == 1  # degraded gracefully
        legacy = BoundaryNodeEstimator(metro_tiny, 3, 3, backend="dict")
        est.prepare(0)
        legacy.prepare(0)
        assert est.bound(42) == legacy.bound(42)


class TestSnapshot:
    def test_roundtrip_identical_bounds(self, metro_tiny, tmp_path):
        path = tmp_path / "est.snap"
        cold = BoundaryNodeEstimator(metro_tiny, 3, 3)
        cold.save_snapshot(path)
        warm = BoundaryNodeEstimator.from_snapshot(metro_tiny, path)
        assert warm.loaded_from_snapshot
        assert warm.precompute_seconds == 0.0
        assert warm.grid.shape == (3, 3)
        for target in (0, 42):
            cold.prepare(target)
            warm.prepare(target)
            for node in metro_tiny.node_ids():
                assert cold.bound(node) == warm.bound(node)

    def test_snapshot_has_no_pickle(self, metro_tiny, tmp_path):
        path = tmp_path / "est.snap"
        BoundaryNodeEstimator(metro_tiny, 2, 2).save_snapshot(path)
        blob = path.read_bytes()
        assert blob.startswith(MAGIC)
        assert b"pickle" not in blob
        # PROTO opcode of every modern pickle stream
        assert not blob.startswith(b"\x80")

    def test_missing_file(self, metro_tiny, tmp_path):
        with pytest.raises(EstimatorError, match="cannot open"):
            BoundaryNodeEstimator.from_snapshot(metro_tiny, tmp_path / "no.snap")

    def test_truncated_file(self, metro_tiny, tmp_path):
        path = tmp_path / "est.snap"
        BoundaryNodeEstimator(metro_tiny, 2, 2).save_snapshot(path)
        blob = path.read_bytes()
        for cut in (0, 10, len(blob) // 2, len(blob) - 3):
            path.write_bytes(blob[:cut])
            with pytest.raises(EstimatorError, match="truncated|not an"):
                BoundaryNodeEstimator.from_snapshot(metro_tiny, path)

    def test_wrong_magic(self, metro_tiny, tmp_path):
        path = tmp_path / "est.snap"
        BoundaryNodeEstimator(metro_tiny, 2, 2).save_snapshot(path)
        blob = path.read_bytes()
        path.write_bytes(b"NOTASNAP" + blob[8:])
        with pytest.raises(EstimatorError, match="not an estimator snapshot"):
            BoundaryNodeEstimator.from_snapshot(metro_tiny, path)

    def test_wrong_version(self, metro_tiny, tmp_path):
        path = tmp_path / "est.snap"
        BoundaryNodeEstimator(metro_tiny, 2, 2).save_snapshot(path)
        blob = bytearray(path.read_bytes())
        blob[8:10] = struct.pack("<H", 99)
        path.write_bytes(bytes(blob))
        with pytest.raises(EstimatorError, match="version 99"):
            BoundaryNodeEstimator.from_snapshot(metro_tiny, path)

    def test_network_mismatch(self, metro_tiny, tmp_path):
        path = tmp_path / "est.snap"
        BoundaryNodeEstimator(metro_tiny, 2, 2).save_snapshot(path)
        other = make_metro_network(MetroConfig(width=10, height=10, seed=6))
        with pytest.raises(EstimatorError, match="different network"):
            BoundaryNodeEstimator.from_snapshot(other, path)

    def test_fingerprint_sensitive_to_patterns(self, metro_tiny):
        base = network_fingerprint(metro_tiny)
        assert base == network_fingerprint(metro_tiny)  # deterministic
        other = make_metro_network(MetroConfig(width=10, height=10, seed=6))
        assert base != network_fingerprint(other)

    def test_save_requires_array_backend(self, metro_tiny, tmp_path):
        est = BoundaryNodeEstimator(metro_tiny, 2, 2, backend="dict")
        with pytest.raises(EstimatorError, match="array"):
            est.save_snapshot(tmp_path / "est.snap")

    def test_bad_fingerprint_length_rejected(self, metro_tiny, tmp_path):
        est = BoundaryNodeEstimator(metro_tiny, 2, 2)
        with pytest.raises(EstimatorError, match="32-byte"):
            save_tables(est.tables, tmp_path / "x.snap", b"short")

    def test_tables_grid_mismatch_rejected(self, metro_tiny):
        tables = BoundaryNodeEstimator(metro_tiny, 2, 2).tables
        with pytest.raises(EstimatorError, match="grid"):
            BoundaryNodeEstimator(metro_tiny, 3, 3, tables=tables)


class TestServeWarmStart:
    def _service(self, network, estimator):
        from repro.serve import AllFPService, ServiceConfig

        return AllFPService(
            network, estimator, ServiceConfig(workers=2, max_pending=8)
        )

    def test_snapshot_boot_counts_hit(self, metro_tiny, tmp_path):
        path = tmp_path / "est.snap"
        BoundaryNodeEstimator(metro_tiny, 3, 3).save_snapshot(path)
        est = BoundaryNodeEstimator.from_snapshot(metro_tiny, path)
        with self._service(metro_tiny, est) as service:
            assert (
                service.metrics.counter_value("estimator_snapshot_hits_total")
                == 1.0
            )
            assert (
                service.metrics.counter_value(
                    "estimator_snapshot_misses_total"
                )
                == 0.0
            )
            assert (
                service.metrics.gauge_value("estimator_precompute_seconds")
                == 0.0
            )

    def test_cold_boot_counts_miss_and_seconds(self, metro_tiny):
        est = BoundaryNodeEstimator(metro_tiny, 3, 3)
        with self._service(metro_tiny, est) as service:
            assert (
                service.metrics.counter_value(
                    "estimator_snapshot_misses_total"
                )
                == 1.0
            )
            assert (
                service.metrics.gauge_value("estimator_precompute_seconds")
                > 0.0
            )

    def test_bound_evaluations_metered(self, metro_tiny):
        est = BoundaryNodeEstimator(metro_tiny, 3, 3)
        interval = TimeInterval(parse_clock("7:00"), parse_clock("7:30"))
        with self._service(metro_tiny, est) as service:
            response = service.all_fastest_paths(0, 55, interval)
            assert response.result.stats.bound_evaluations > 0
            assert service.metrics.counter_total(
                "engine_bound_evaluations_total"
            ) == float(response.result.stats.bound_evaluations)

    def test_invalidate_refreshes_estimator(self, metro_tiny):
        est = BoundaryNodeEstimator(metro_tiny, 3, 3)
        tables = est.tables
        interval = TimeInterval(parse_clock("7:00"), parse_clock("7:30"))
        with self._service(metro_tiny, est) as service:
            first = service.all_fastest_paths(0, 55, interval)
            service.invalidate(refresh_estimator=True)
            assert est.tables is not tables  # precompute re-ran
            assert (
                service.metrics.counter_value("estimator_refreshes_total")
                == 1.0
            )
            second = service.all_fastest_paths(0, 55, interval)
            assert second.result.entries == first.result.entries
            assert not second.cached  # version bump invalidated the cache


class TestCLI:
    def _generate(self, tmp_path, seed=5):
        from repro.cli import main

        net_path = tmp_path / "net.json"
        assert (
            main(
                [
                    "generate",
                    "--out",
                    str(net_path),
                    "--width",
                    "8",
                    "--height",
                    "8",
                    "--seed",
                    str(seed),
                ]
            )
            == 0
        )
        return net_path

    def test_precompute_verb_writes_snapshot(self, tmp_path, capsys):
        from repro.cli import main

        net_path = self._generate(tmp_path)
        snap = tmp_path / "net.est"
        code = main(
            [
                "precompute",
                "--network",
                str(net_path),
                "--out",
                str(snap),
                "--grid",
                "3",
                "--workers",
                str(max(ENV_WORKERS, 1)),
            ]
        )
        assert code == 0
        assert snap.exists()
        out = capsys.readouterr().out
        assert "3x3 grid" in out and "precompute" in out

    def test_query_cache_miss_then_hit(self, tmp_path, capsys):
        from repro.cli import main

        net_path = self._generate(tmp_path)
        snap = tmp_path / "net.est"
        base = [
            "query",
            "--network",
            str(net_path),
            "--source",
            "0",
            "--target",
            "60",
            "--estimator",
            "boundary",
            "--grid",
            "3",
            "--estimator-cache",
            str(snap),
        ]
        assert main(base) == 0
        captured = capsys.readouterr()
        assert "estimator cache miss" in captured.err
        assert snap.exists()
        assert main(base) == 0
        captured = capsys.readouterr()
        assert "estimator cache hit" in captured.err

    def test_query_cache_mismatch_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        net_a = self._generate(tmp_path, seed=5)
        snap = tmp_path / "net.est"
        assert (
            main(
                [
                    "precompute",
                    "--network",
                    str(net_a),
                    "--out",
                    str(snap),
                    "--grid",
                    "3",
                ]
            )
            == 0
        )
        capsys.readouterr()
        net_b = tmp_path / "other.json"
        from repro.cli import main as cli_main

        assert (
            cli_main(
                [
                    "generate",
                    "--out",
                    str(net_b),
                    "--width",
                    "8",
                    "--height",
                    "8",
                    "--seed",
                    "6",
                ]
            )
            == 0
        )
        capsys.readouterr()
        code = cli_main(
            [
                "query",
                "--network",
                str(net_b),
                "--source",
                "0",
                "--target",
                "60",
                "--estimator",
                "boundary",
                "--estimator-cache",
                str(snap),
            ]
        )
        captured = capsys.readouterr()
        assert code == 2
        error_lines = [
            line for line in captured.err.splitlines() if line.strip()
        ]
        assert len(error_lines) == 1  # one clean line, no traceback
        assert error_lines[0].startswith("error: ")
        assert "different network" in error_lines[0]

    def test_precompute_rejects_ccam(self, tmp_path, capsys):
        from repro.cli import main

        net_path = self._generate(tmp_path)
        ccam = tmp_path / "net.ccam"
        assert (
            main(
                ["build-ccam", "--network", str(net_path), "--out", str(ccam)]
            )
            == 0
        )
        capsys.readouterr()
        code = main(
            [
                "precompute",
                "--network",
                str(ccam),
                "--out",
                str(tmp_path / "x.est"),
            ]
        )
        assert code == 2
        assert "full graph" in capsys.readouterr().err
