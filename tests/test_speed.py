"""Unit tests for daily speed patterns and CapeCod patterns (Defs 2-3)."""

from __future__ import annotations

import pytest

from repro.exceptions import PatternError
from repro.patterns.categories import Calendar, DayCategorySet
from repro.patterns.speed import CapeCodPattern, DailySpeedPattern
from repro.timeutil import MINUTES_PER_DAY, parse_clock


class TestDailySpeedPattern:
    def test_constant(self):
        p = DailySpeedPattern.constant(1.0)
        assert p.speed_at(0.0) == 1.0
        assert p.speed_at(1000.0) == 1.0
        assert p.piece_count == 1

    def test_paper_example_pattern(self):
        # Workday: 1 mpm except 0.5 mpm during [7:00, 9:00).
        p = DailySpeedPattern(
            [(0.0, 1.0), (parse_clock("7:00"), 0.5), (parse_clock("9:00"), 1.0)]
        )
        assert p.speed_at(parse_clock("6:59")) == 1.0
        assert p.speed_at(parse_clock("7:00")) == 0.5
        assert p.speed_at(parse_clock("8:59")) == 0.5
        assert p.speed_at(parse_clock("9:00")) == 1.0

    def test_from_mph(self):
        p = DailySpeedPattern.from_mph([(0.0, 60.0)])
        assert p.speed_at(0.0) == pytest.approx(1.0)

    def test_rejects_empty(self):
        with pytest.raises(PatternError):
            DailySpeedPattern([])

    def test_rejects_nonzero_first_start(self):
        with pytest.raises(PatternError):
            DailySpeedPattern([(60.0, 1.0)])

    def test_rejects_non_increasing_starts(self):
        with pytest.raises(PatternError):
            DailySpeedPattern([(0.0, 1.0), (60.0, 2.0), (60.0, 3.0)])

    def test_rejects_start_beyond_day(self):
        with pytest.raises(PatternError):
            DailySpeedPattern([(0.0, 1.0), (MINUTES_PER_DAY, 2.0)])

    def test_rejects_zero_speed(self):
        with pytest.raises(PatternError):
            DailySpeedPattern([(0.0, 0.0)])

    def test_rejects_negative_speed(self):
        with pytest.raises(PatternError):
            DailySpeedPattern([(0.0, 1.0), (10.0, -0.5)])

    def test_min_max(self):
        p = DailySpeedPattern([(0.0, 1.0), (420.0, 0.5), (540.0, 1.25)])
        assert p.min_speed() == 0.5
        assert p.max_speed() == 1.25

    def test_breakpoints(self):
        p = DailySpeedPattern([(0.0, 1.0), (420.0, 0.5)])
        assert p.breakpoints == (420.0,)

    def test_segments_cover_day(self):
        p = DailySpeedPattern([(0.0, 1.0), (420.0, 0.5), (540.0, 1.0)])
        segs = list(p.segments())
        assert segs[0] == (0.0, 420.0, 1.0)
        assert segs[-1] == (540.0, MINUTES_PER_DAY, 1.0)
        # Contiguity.
        for (_, end, _), (start, _, _) in zip(segs, segs[1:]):
            assert end == start

    def test_speed_at_out_of_day_raises(self):
        with pytest.raises(PatternError):
            DailySpeedPattern.constant(1.0).speed_at(2000.0)

    def test_equality_hash(self):
        a = DailySpeedPattern([(0.0, 1.0), (60.0, 2.0)])
        b = DailySpeedPattern([(0.0, 1.0), (60.0, 2.0)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != DailySpeedPattern.constant(1.0)


class TestCapeCodPattern:
    def test_constant(self):
        p = CapeCodPattern.constant(1.0, ("a", "b"))
        assert p.daily("a").speed_at(0.0) == 1.0
        assert set(p.categories) == {"a", "b"}

    def test_rejects_empty(self):
        with pytest.raises(PatternError):
            CapeCodPattern({})

    def test_missing_category_raises(self):
        p = CapeCodPattern.constant(1.0, ("a",))
        with pytest.raises(PatternError):
            p.daily("z")

    def test_covers(self):
        p = CapeCodPattern.constant(1.0, ("a", "b"))
        assert p.covers(DayCategorySet(["a"]))
        assert p.covers(DayCategorySet(["a", "b"]))
        assert not p.covers(DayCategorySet(["a", "c"]))

    def test_speed_at_uses_calendar(self):
        cats = DayCategorySet(["slow", "fast"])
        cal = Calendar.periodic(cats, ["slow", "fast"])
        p = CapeCodPattern(
            {
                "slow": DailySpeedPattern.constant(0.5),
                "fast": DailySpeedPattern.constant(2.0),
            }
        )
        assert p.speed_at(100.0, cal) == 0.5  # day 0
        assert p.speed_at(MINUTES_PER_DAY + 100.0, cal) == 2.0  # day 1

    def test_min_max_across_categories(self):
        p = CapeCodPattern(
            {
                "a": DailySpeedPattern([(0.0, 1.0), (60.0, 0.25)]),
                "b": DailySpeedPattern.constant(3.0),
            }
        )
        assert p.min_speed() == 0.25
        assert p.max_speed() == 3.0

    def test_is_constant_true(self):
        assert CapeCodPattern.constant(1.0, ("a", "b")).is_constant()

    def test_is_constant_false_multi_piece(self):
        p = CapeCodPattern(
            {"a": DailySpeedPattern([(0.0, 1.0), (60.0, 0.5)])}
        )
        assert not p.is_constant()

    def test_is_constant_false_differing_categories(self):
        p = CapeCodPattern(
            {
                "a": DailySpeedPattern.constant(1.0),
                "b": DailySpeedPattern.constant(2.0),
            }
        )
        assert not p.is_constant()

    def test_equality_hash(self):
        a = CapeCodPattern.constant(1.0, ("x",))
        b = CapeCodPattern.constant(1.0, ("x",))
        assert a == b
        assert hash(a) == hash(b)
