"""Unit tests for the fixed-departure time-dependent A* (system S9)."""

from __future__ import annotations

import pytest

from repro.core.astar import (
    fixed_departure_query,
    path_arrival_time,
    path_travel_time,
)
from repro.estimators.naive import NaiveEstimator
from repro.exceptions import NoPathError, QueryError
from repro.network.generator import (
    EXAMPLE_E,
    EXAMPLE_N,
    EXAMPLE_S,
    make_grid_network,
    paper_example_network,
)
from repro.network.model import CapeCodNetwork
from repro.patterns.categories import Calendar
from repro.patterns.speed import CapeCodPattern
from repro.timeutil import parse_clock


class TestOnPaperExample:
    def test_early_departure_takes_direct(self, example_network):
        result = fixed_departure_query(
            example_network, EXAMPLE_S, EXAMPLE_E, parse_clock("6:50")
        )
        assert result.path == (EXAMPLE_S, EXAMPLE_E)
        assert result.travel_time == pytest.approx(6.0)

    def test_seven_oclock_goes_via_n(self, example_network):
        result = fixed_departure_query(
            example_network, EXAMPLE_S, EXAMPLE_E, parse_clock("7:00")
        )
        assert result.path == (EXAMPLE_S, EXAMPLE_N, EXAMPLE_E)
        assert result.travel_time == pytest.approx(5.0)

    def test_boundary_crossover(self, example_network):
        # At exactly 6:58:30 both routes take 6 minutes.
        result = fixed_departure_query(
            example_network, EXAMPLE_S, EXAMPLE_E, parse_clock("6:58:30")
        )
        assert result.travel_time == pytest.approx(6.0)


class TestOnGrid:
    def test_shortest_hop_count_constant_speed(self, grid5):
        result = fixed_departure_query(grid5, 0, 24, 0.0)
        assert len(result.path) == 9  # 4+4 moves on a 5x5 grid
        assert result.travel_time == pytest.approx(8.0)

    def test_heuristic_reduces_expansions(self, grid5):
        blind = fixed_departure_query(grid5, 0, 24, 0.0)
        est = NaiveEstimator(grid5)
        est.prepare(24)
        guided = fixed_departure_query(grid5, 0, 24, 0.0, est.bound)
        assert guided.travel_time == pytest.approx(blind.travel_time)
        assert guided.stats.expanded_paths <= blind.stats.expanded_paths

    def test_arrival_equals_depart_plus_travel(self, grid5):
        result = fixed_departure_query(grid5, 0, 24, 100.0)
        assert result.arrival == pytest.approx(100.0 + result.travel_time)

    def test_path_endpoints(self, grid5):
        result = fixed_departure_query(grid5, 3, 21, 0.0)
        assert result.path[0] == 3
        assert result.path[-1] == 21

    def test_stats_populated(self, grid5):
        result = fixed_departure_query(grid5, 0, 24, 0.0)
        assert result.stats.expanded_paths > 0
        assert result.stats.labels_generated > 0
        assert result.stats.distinct_nodes > 0


class TestErrors:
    def test_same_source_target(self, grid5):
        with pytest.raises(QueryError):
            fixed_departure_query(grid5, 0, 0, 0.0)

    def test_unknown_node(self, grid5):
        with pytest.raises(KeyError):
            fixed_departure_query(grid5, 0, 10**9, 0.0)

    def test_no_path(self):
        cal = Calendar.single_category()
        pat = CapeCodPattern.constant(1.0, cal.categories.names)
        net = CapeCodNetwork(cal)
        net.add_node(0, 0.0, 0.0)
        net.add_node(1, 1.0, 0.0)
        net.add_node(2, 2.0, 0.0)
        net.add_edge(0, 1, 1.0, pat)  # 2 unreachable
        with pytest.raises(NoPathError):
            fixed_departure_query(net, 0, 2, 0.0)


class TestTimeDependence:
    def test_rush_hour_changes_route(self, metro_small):
        """There exists a pair whose fastest route differs 6am vs 8am."""
        ids = list(metro_small.node_ids())
        changed = 0
        for s, e in zip(ids[::13], reversed(ids[::13])):
            if s == e:
                continue
            early = fixed_departure_query(metro_small, s, e, parse_clock("5:00"))
            rush = fixed_departure_query(metro_small, s, e, parse_clock("8:00"))
            assert rush.travel_time >= early.travel_time - 1e-6
            if early.path != rush.path:
                changed += 1
        assert changed > 0

    def test_weekend_is_free_flowing(self, metro_small):
        # Day 5 is a Saturday: rush-hour departure equals off-peak times.
        s, e = 0, metro_small.node_count - 1
        saturday_rush = fixed_departure_query(
            metro_small, s, e, parse_clock("8:00", day=5)
        )
        saturday_noon = fixed_departure_query(
            metro_small, s, e, parse_clock("12:00", day=5)
        )
        assert saturday_rush.travel_time == pytest.approx(
            saturday_noon.travel_time, abs=1e-6
        )


class TestPathEvaluators:
    def test_path_arrival_time_consistency(self, grid5):
        result = fixed_departure_query(grid5, 0, 24, 50.0)
        assert path_arrival_time(grid5, result.path, 50.0) == pytest.approx(
            result.arrival
        )

    def test_path_travel_time(self, grid5):
        result = fixed_departure_query(grid5, 0, 24, 50.0)
        assert path_travel_time(grid5, result.path, 50.0) == pytest.approx(
            result.travel_time
        )

    def test_alternative_path_never_faster(self, example_network):
        depart = parse_clock("6:50")
        best = fixed_departure_query(
            example_network, EXAMPLE_S, EXAMPLE_E, depart
        )
        detour = path_travel_time(
            example_network, (EXAMPLE_S, EXAMPLE_N, EXAMPLE_E), depart
        )
        assert best.travel_time <= detour + 1e-9
