"""Unit tests for the lower-bound estimators — above all, admissibility."""

from __future__ import annotations

import math

import pytest

from repro.core.astar import fixed_departure_query
from repro.estimators.base import LowerBoundEstimator
from repro.estimators.boundary import BoundaryNodeEstimator
from repro.estimators.grid import GridPartition
from repro.estimators.naive import NaiveEstimator, ZeroEstimator
from repro.exceptions import EstimatorError, NoPathError
from repro.timeutil import parse_clock


class TestBase:
    def test_unprepared_raises(self, metro_tiny):
        est = NaiveEstimator(metro_tiny)
        with pytest.raises(EstimatorError):
            est.bound(0)

    def test_target_property(self, metro_tiny):
        est = NaiveEstimator(metro_tiny)
        est.prepare(5)
        assert est.target == 5


class TestNaive:
    def test_formula(self, metro_tiny):
        est = NaiveEstimator(metro_tiny)
        est.prepare(0)
        expected = metro_tiny.euclidean(99, 0) / metro_tiny.max_speed()
        assert est.bound(99) == pytest.approx(expected)

    def test_zero_at_target(self, metro_tiny):
        est = NaiveEstimator(metro_tiny)
        est.prepare(7)
        assert est.bound(7) == 0.0

    def test_name(self, metro_tiny):
        assert NaiveEstimator(metro_tiny).name == "naiveLB"

    def test_admissible_everywhere(self, metro_tiny):
        est = NaiveEstimator(metro_tiny)
        target = 55
        est.prepare(target)
        for depart_clock in ("6:00", "8:00", "17:00"):
            depart = parse_clock(depart_clock)
            for node in list(metro_tiny.node_ids())[::7]:
                if node == target:
                    continue
                actual = fixed_departure_query(
                    metro_tiny, node, target, depart
                ).travel_time
                assert est.bound(node) <= actual + 1e-9


class TestZero:
    def test_always_zero(self, metro_tiny):
        est = ZeroEstimator()
        est.prepare(3)
        assert est.bound(0) == 0.0
        assert est.name == "zeroLB"


class TestGridPartition:
    def test_every_node_in_exactly_one_cell(self, metro_tiny):
        grid = GridPartition(metro_tiny, 3, 3)
        counted = sum(len(c.members) for c in grid.cells())
        assert counted == metro_tiny.node_count

    def test_cell_of_node_consistent(self, metro_tiny):
        grid = GridPartition(metro_tiny, 3, 3)
        for node in metro_tiny.nodes():
            assert grid.cell_of_node(node.id) == grid.cell_index(node.x, node.y)

    def test_boundary_definition(self, metro_tiny):
        grid = GridPartition(metro_tiny, 3, 3)
        for cell in grid.cells():
            for b in cell.boundary:
                assert b in cell.members
                touches_other = any(
                    grid.cell_of_node(e.target) != cell.index
                    for e in metro_tiny.outgoing(b)
                ) or any(
                    grid.cell_of_node(e.source) != cell.index
                    for e in metro_tiny.incoming(b)
                )
                assert touches_other

    def test_non_boundary_nodes_internal(self, metro_tiny):
        grid = GridPartition(metro_tiny, 3, 3)
        for cell in grid.cells():
            for n in cell.members - cell.boundary:
                for e in metro_tiny.outgoing(n):
                    assert grid.cell_of_node(e.target) == cell.index
                for e in metro_tiny.incoming(n):
                    assert grid.cell_of_node(e.source) == cell.index

    def test_single_cell_has_no_boundary(self, metro_tiny):
        grid = GridPartition(metro_tiny, 1, 1)
        assert grid.cell_count == 1
        assert grid.boundary_nodes(0) == frozenset()

    def test_rejects_bad_shape(self, metro_tiny):
        with pytest.raises(EstimatorError):
            GridPartition(metro_tiny, 0, 3)

    def test_unknown_node(self, metro_tiny):
        grid = GridPartition(metro_tiny, 2, 2)
        with pytest.raises(EstimatorError):
            grid.cell_of_node(10**9)

    def test_shape_and_count(self, metro_tiny):
        grid = GridPartition(metro_tiny, 4, 2)
        assert grid.shape == (4, 2)
        assert grid.cell_count == 8

    def test_non_empty_cells(self, metro_tiny):
        grid = GridPartition(metro_tiny, 3, 3)
        assert all(c.members for c in grid.non_empty_cells())


class TestBoundaryNode:
    @pytest.fixture(scope="class", params=["time", "distance"])
    def estimator(self, request, metro_tiny):
        return BoundaryNodeEstimator(metro_tiny, 3, 3, metric=request.param)

    def test_admissible_everywhere(self, metro_tiny, estimator):
        target = 0
        estimator.prepare(target)
        for depart_clock in ("6:30", "8:00", "17:30"):
            depart = parse_clock(depart_clock)
            for node in list(metro_tiny.node_ids())[::5]:
                if node == target:
                    continue
                try:
                    actual = fixed_departure_query(
                        metro_tiny, node, target, depart
                    ).travel_time
                except NoPathError:
                    continue
                assert estimator.bound(node) <= actual + 1e-9, (
                    node, depart_clock,
                )

    def test_at_least_as_tight_as_naive(self, metro_tiny, estimator):
        naive = NaiveEstimator(metro_tiny)
        target = 0
        estimator.prepare(target)
        naive.prepare(target)
        for node in metro_tiny.node_ids():
            if node != target:
                assert estimator.bound(node) >= naive.bound(node) - 1e-12

    def test_strictly_tighter_somewhere(self, metro_tiny):
        # The whole point of §5: with the time metric the bound must beat
        # naive for at least some far-apart pairs.
        est = BoundaryNodeEstimator(metro_tiny, 3, 3, metric="time")
        naive = NaiveEstimator(metro_tiny)
        target = 0
        est.prepare(target)
        naive.prepare(target)
        improvements = sum(
            1
            for node in metro_tiny.node_ids()
            if node != target and est.bound(node) > naive.bound(node) + 1e-9
        )
        assert improvements > 0

    def test_zero_at_target(self, metro_tiny, estimator):
        estimator.prepare(42)
        assert estimator.bound(42) == 0.0

    def test_same_cell_falls_back_to_naive(self, metro_tiny):
        est = BoundaryNodeEstimator(metro_tiny, 2, 2)
        naive = NaiveEstimator(metro_tiny)
        grid = est.grid
        target = 0
        est.prepare(target)
        naive.prepare(target)
        same_cell = [
            n
            for n in metro_tiny.node_ids()
            if n != target and grid.cell_of_node(n) == grid.cell_of_node(target)
        ]
        assert same_cell
        for node in same_cell[:10]:
            assert est.boundary_bound(node) == math.inf
            assert est.bound(node) == pytest.approx(naive.bound(node))

    def test_rejects_unknown_metric(self, metro_tiny):
        with pytest.raises(EstimatorError):
            BoundaryNodeEstimator(metro_tiny, 2, 2, metric="banana")  # type: ignore[arg-type]

    def test_name(self, metro_tiny):
        assert BoundaryNodeEstimator(metro_tiny, 2, 2).name == "bdLB"

    def test_time_metric_tighter_than_distance(self, metro_tiny):
        # Optimistic per-edge times dominate distance/v_max bounds.
        time_est = BoundaryNodeEstimator(metro_tiny, 3, 3, metric="time")
        dist_est = BoundaryNodeEstimator(metro_tiny, 3, 3, metric="distance")
        target = 0
        time_est.prepare(target)
        dist_est.prepare(target)
        for node in list(metro_tiny.node_ids())[::3]:
            if node != target:
                assert time_est.bound(node) >= dist_est.bound(node) - 1e-9


class TestCustomEstimator:
    def test_subclass_contract(self, metro_tiny):
        class Half(LowerBoundEstimator):
            def __init__(self, inner):
                super().__init__()
                self._inner = inner

            def prepare(self, target):
                super().prepare(target)
                self._inner.prepare(target)

            def bound(self, node):
                return 0.5 * self._inner.bound(node)

        est = Half(NaiveEstimator(metro_tiny))
        est.prepare(0)
        reference = NaiveEstimator(metro_tiny)
        reference.prepare(0)
        assert est.bound(50) == pytest.approx(0.5 * reference.bound(50))
        assert est.name == "Half"
