"""Unit tests for query workload generation."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import QueryError
from repro.timeutil import parse_clock
from repro.workloads.queries import (
    distance_band_queries,
    evening_rush_interval,
    morning_rush_interval,
    poisson_arrivals,
    random_queries,
    random_query,
)


class TestRushIntervals:
    def test_morning_default(self):
        interval = morning_rush_interval()
        assert interval.start == parse_clock("7:00")
        assert interval.end == parse_clock("10:00")

    def test_morning_custom_length(self):
        interval = morning_rush_interval(2.0)
        assert interval.length == 120.0

    def test_morning_day_offset(self):
        interval = morning_rush_interval(1.0, day=2)
        assert interval.start == parse_clock("7:00", day=2)

    def test_evening(self):
        interval = evening_rush_interval(1.0)
        assert interval.start == parse_clock("16:00")


class TestRandomQuery:
    def test_distance_band_respected(self, metro_small):
        rng = random.Random(0)
        interval = morning_rush_interval()
        for _ in range(20):
            q = random_query(metro_small, interval, rng, 1.0, 2.0)
            assert 1.0 <= q.euclidean_distance <= 2.0
            assert q.source != q.target

    def test_impossible_band_raises(self, metro_small):
        rng = random.Random(0)
        with pytest.raises(QueryError):
            random_query(
                metro_small, morning_rush_interval(), rng, 500.0, 600.0,
                max_attempts=50,
            )

    def test_tiny_network_raises(self):
        from repro.network.model import CapeCodNetwork
        from repro.patterns.categories import Calendar

        net = CapeCodNetwork(Calendar.single_category())
        net.add_node(0, 0.0, 0.0)
        with pytest.raises(QueryError):
            random_query(net, morning_rush_interval(), random.Random(0))


class TestBatchGenerators:
    def test_random_queries_count_and_determinism(self, metro_small):
        interval = morning_rush_interval()
        a = random_queries(metro_small, 10, interval, seed=5)
        b = random_queries(metro_small, 10, interval, seed=5)
        c = random_queries(metro_small, 10, interval, seed=6)
        assert len(a) == 10
        assert a == b
        assert a != c

    def test_distance_band_queries(self, metro_small):
        interval = morning_rush_interval()
        bands = [(0.5, 1.5), (1.5, 2.5)]
        workload = distance_band_queries(metro_small, bands, 5, interval, seed=1)
        assert set(workload) == set(bands)
        for (lo, hi), queries in workload.items():
            assert len(queries) == 5
            for q in queries:
                assert lo <= q.euclidean_distance <= hi
                assert q.interval == interval

    def test_query_str(self, metro_small):
        q = random_queries(metro_small, 1, morning_rush_interval(), seed=0)[0]
        text = str(q)
        assert str(q.source) in text and "mi" in text


class TestPoissonArrivals:
    def test_deterministic_for_seed(self):
        a = poisson_arrivals(50.0, 2.0, seed=7)
        b = poisson_arrivals(50.0, 2.0, seed=7)
        c = poisson_arrivals(50.0, 2.0, seed=8)
        assert a == b
        assert a != c

    def test_offsets_sorted_within_duration(self):
        offsets = poisson_arrivals(100.0, 1.5, seed=1)
        assert offsets == sorted(offsets)
        assert all(0.0 <= t < 1.5 for t in offsets)

    def test_mean_rate_roughly_matches(self):
        # 2000 expected arrivals: the count concentrates near the mean.
        offsets = poisson_arrivals(rate_qps=1000.0, duration=2.0, seed=3)
        assert 1800 < len(offsets) < 2200

    def test_zero_duration_is_empty(self):
        assert poisson_arrivals(10.0, 0.0, seed=0) == []

    def test_rejects_bad_rate(self):
        with pytest.raises(QueryError):
            poisson_arrivals(0.0, 1.0)
        with pytest.raises(QueryError):
            poisson_arrivals(5.0, -1.0)
