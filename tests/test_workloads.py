"""Unit tests for query workload generation."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import QueryError
from repro.timeutil import parse_clock
from repro.workloads.queries import (
    distance_band_queries,
    evening_rush_interval,
    morning_rush_interval,
    random_queries,
    random_query,
)


class TestRushIntervals:
    def test_morning_default(self):
        interval = morning_rush_interval()
        assert interval.start == parse_clock("7:00")
        assert interval.end == parse_clock("10:00")

    def test_morning_custom_length(self):
        interval = morning_rush_interval(2.0)
        assert interval.length == 120.0

    def test_morning_day_offset(self):
        interval = morning_rush_interval(1.0, day=2)
        assert interval.start == parse_clock("7:00", day=2)

    def test_evening(self):
        interval = evening_rush_interval(1.0)
        assert interval.start == parse_clock("16:00")


class TestRandomQuery:
    def test_distance_band_respected(self, metro_small):
        rng = random.Random(0)
        interval = morning_rush_interval()
        for _ in range(20):
            q = random_query(metro_small, interval, rng, 1.0, 2.0)
            assert 1.0 <= q.euclidean_distance <= 2.0
            assert q.source != q.target

    def test_impossible_band_raises(self, metro_small):
        rng = random.Random(0)
        with pytest.raises(QueryError):
            random_query(
                metro_small, morning_rush_interval(), rng, 500.0, 600.0,
                max_attempts=50,
            )

    def test_tiny_network_raises(self):
        from repro.network.model import CapeCodNetwork
        from repro.patterns.categories import Calendar

        net = CapeCodNetwork(Calendar.single_category())
        net.add_node(0, 0.0, 0.0)
        with pytest.raises(QueryError):
            random_query(net, morning_rush_interval(), random.Random(0))


class TestBatchGenerators:
    def test_random_queries_count_and_determinism(self, metro_small):
        interval = morning_rush_interval()
        a = random_queries(metro_small, 10, interval, seed=5)
        b = random_queries(metro_small, 10, interval, seed=5)
        c = random_queries(metro_small, 10, interval, seed=6)
        assert len(a) == 10
        assert a == b
        assert a != c

    def test_distance_band_queries(self, metro_small):
        interval = morning_rush_interval()
        bands = [(0.5, 1.5), (1.5, 2.5)]
        workload = distance_band_queries(metro_small, bands, 5, interval, seed=1)
        assert set(workload) == set(bands)
        for (lo, hi), queries in workload.items():
            assert len(queries) == 5
            for q in queries:
                assert lo <= q.euclidean_distance <= hi
                assert q.interval == interval

    def test_query_str(self, metro_small):
        q = random_queries(metro_small, 1, morning_rush_interval(), seed=0)[0]
        text = str(q)
        assert str(q.source) in text and "mi" in text
