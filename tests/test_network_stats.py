"""Unit tests for the network statistics module."""

from __future__ import annotations

import pytest

from repro.network.generator import MetroConfig, make_grid_network, make_metro_network
from repro.network.stats import network_stats
from repro.patterns.schema import RoadClass


@pytest.fixture(scope="module")
def metro():
    return make_metro_network(MetroConfig(width=12, height=12, seed=14))


@pytest.fixture(scope="module")
def stats(metro):
    return network_stats(metro)


class TestBasicCounts:
    def test_node_edge_counts(self, metro, stats):
        assert stats.node_count == metro.node_count
        assert stats.edge_count == metro.edge_count

    def test_total_miles_positive_and_consistent(self, metro, stats):
        assert stats.total_miles == pytest.approx(
            sum(e.distance for e in metro.edges())
        )

    def test_mean_out_degree(self, stats):
        assert stats.mean_out_degree == pytest.approx(
            stats.edge_count / stats.node_count
        )

    def test_degree_histogram_sums_to_nodes(self, stats):
        assert sum(stats.degree_histogram.values()) == stats.node_count

    def test_strongly_connected(self, stats):
        assert stats.strongly_connected


class TestClassBreakdown:
    def test_all_metro_classes_present(self, stats):
        assert set(stats.by_class) == set(RoadClass)

    def test_class_counts_sum_to_total(self, stats):
        assert (
            sum(s.edge_count for s in stats.by_class.values())
            == stats.edge_count
        )

    def test_speed_ranges_sane(self, stats):
        inbound = stats.by_class[RoadClass.INBOUND_HIGHWAY]
        # 20 MPH rush floor, 65 MPH limit (in mpm).
        assert inbound.min_speed == pytest.approx(20 / 60)
        assert inbound.max_speed == pytest.approx(65 / 60)

    def test_unclassified_edges(self):
        grid = make_grid_network(3, 3)
        stats = network_stats(grid)
        assert set(stats.by_class) == {None}


class TestPatternCensus:
    def test_distinct_patterns_small(self, stats):
        # Table 1 schema: four classes, some sharing patterns.
        assert 1 <= stats.distinct_patterns <= 4

    def test_time_dependent_fraction(self, stats):
        assert 0.0 < stats.time_dependent_fraction < 1.0

    def test_constant_grid_has_no_time_dependence(self):
        grid = make_grid_network(3, 3)
        stats = network_stats(grid)
        assert stats.time_dependent_fraction == 0.0
        assert stats.distinct_patterns == 1


class TestSummaryLines:
    def test_lines_mention_key_figures(self, stats):
        text = "\n".join(stats.summary_lines())
        assert f"nodes: {stats.node_count}" in text
        assert "inbound_highway" in text
        assert "MPH" in text
