"""Cross-module integration scenarios.

These exercise whole pipelines: generate → persist → open from disk →
query → cross-validate, plus behavioural end-to-end facts the paper's
motivation relies on (rush hour reroutes around inbound highways, weekend
answers differ from weekday answers, arrival-interval queries via the
reversed network).
"""

from __future__ import annotations

import pytest

from repro.core.astar import fixed_departure_query
from repro.core.discrete import DiscreteTimeModel
from repro.core.engine import IntAllFastestPaths
from repro.estimators.boundary import BoundaryNodeEstimator
from repro.estimators.naive import NaiveEstimator
from repro.network.generator import MetroConfig, make_metro_network
from repro.network.io import load_network, save_network
from repro.patterns.schema import RoadClass, constant_speed_schema
from repro.storage.ccam import CCAMStore
from repro.timeutil import TimeInterval, parse_clock
from repro.workloads.queries import morning_rush_interval, random_queries


@pytest.fixture(scope="module")
def metro():
    return make_metro_network(MetroConfig(width=14, height=14, seed=21))


class TestFullPipeline:
    def test_generate_save_load_build_query(self, metro, tmp_path):
        json_path = tmp_path / "net.json"
        save_network(metro, json_path)
        loaded = load_network(json_path)
        db_path = tmp_path / "net.ccam"
        with CCAMStore.build(loaded, db_path) as store:
            interval = TimeInterval(parse_clock("7:00"), parse_clock("9:00"))
            disk = IntAllFastestPaths(store, NaiveEstimator(store))
            mem = IntAllFastestPaths(metro, NaiveEstimator(metro))
            a = disk.all_fastest_paths(0, metro.node_count - 1, interval)
            b = mem.all_fastest_paths(0, metro.node_count - 1, interval)
            for instant in interval.sample(9):
                assert a.travel_time_at(instant) == pytest.approx(
                    b.travel_time_at(instant), abs=1e-6
                )

    def test_three_engines_agree(self, metro):
        """Continuous (both estimators) and fine discrete agree on optima."""
        interval = TimeInterval(parse_clock("7:30"), parse_clock("8:30"))
        source, target = 5, metro.node_count - 3
        exact_naive = IntAllFastestPaths(
            metro, NaiveEstimator(metro)
        ).single_fastest_path(source, target, interval)
        exact_bd = IntAllFastestPaths(
            metro, BoundaryNodeEstimator(metro, 4, 4)
        ).single_fastest_path(source, target, interval)
        fine = DiscreteTimeModel(metro).single_fastest_path(
            source, target, interval, step=0.25
        )
        assert exact_naive.optimal_travel_time == pytest.approx(
            exact_bd.optimal_travel_time, abs=1e-9
        )
        assert fine.travel_time == pytest.approx(
            exact_naive.optimal_travel_time, abs=0.05
        )


class TestRushHourBehaviour:
    def test_allfp_detects_rush_onset(self, metro):
        """Somewhere in the metro, the 6:00–8:00 window needs >= 2 paths."""
        interval = TimeInterval(parse_clock("6:00"), parse_clock("8:00"))
        engine = IntAllFastestPaths(metro)
        queries = random_queries(
            metro, 15, interval, seed=3, min_distance=1.5
        )
        multi = 0
        for q in queries:
            result = engine.all_fastest_paths(q.source, q.target, q.interval)
            if len(result.distinct_paths) >= 2:
                multi += 1
        assert multi > 0

    def test_reroute_avoids_inbound_highway(self, metro):
        """When the route changes at rush onset, highway usage drops."""
        interval = TimeInterval(parse_clock("6:00"), parse_clock("8:00"))
        engine = IntAllFastestPaths(metro)
        queries = random_queries(metro, 25, interval, seed=4, min_distance=1.5)

        def inbound_miles(path):
            return sum(
                metro.find_edge(u, v).distance
                for u, v in zip(path, path[1:])
                if metro.find_edge(u, v).road_class is RoadClass.INBOUND_HIGHWAY
            )

        drops = 0
        for q in queries:
            result = engine.all_fastest_paths(q.source, q.target, q.interval)
            paths = result.distinct_paths
            if len(paths) < 2:
                continue
            early = inbound_miles(result.path_at(parse_clock("6:05")))
            rush = inbound_miles(result.path_at(parse_clock("7:55")))
            if rush < early - 1e-9:
                drops += 1
        assert drops > 0

    def test_weekend_query_single_path(self, metro):
        """On a Saturday (day 5) speeds are constant, so one path suffices."""
        interval = TimeInterval(
            parse_clock("7:00", day=5), parse_clock("9:00", day=5)
        )
        engine = IntAllFastestPaths(metro)
        result = engine.all_fastest_paths(0, metro.node_count - 1, interval)
        assert len(result.distinct_paths) == 1
        assert result.border.max_value() == pytest.approx(
            result.border.min_value(), abs=1e-6
        )


class TestArrivalIntervalQuery:
    """The paper's §1 mentions arrival-interval queries; they reduce to
    leaving-interval queries on the reversed network with reversed time.
    Here we verify the reversal machinery supports the reduction."""

    def test_reversed_network_swaps_reachability(self, metro):
        rev = metro.reversed_copy()
        forward = fixed_departure_query(metro, 0, 50, parse_clock("12:00"))
        # Following the same path backwards on the reversed network exists.
        backwards = list(reversed(forward.path))
        for u, v in zip(backwards, backwards[1:]):
            assert rev.has_edge(u, v)

    def test_constant_speed_arrival_query(self, metro):
        """With constant speeds, latest-departure(arrival T) = T - travel."""
        const = make_metro_network(
            MetroConfig(width=14, height=14, seed=21),
            schema=constant_speed_schema(),
        )
        rev = const.reversed_copy()
        depart = parse_clock("12:00")
        fwd = fixed_departure_query(const, 3, 77, depart)
        bwd = fixed_departure_query(rev, 77, 3, depart)
        assert fwd.travel_time == pytest.approx(bwd.travel_time, abs=1e-9)


class TestConstantSpeedComparison:
    def test_rush_hour_savings_exist(self, metro):
        """CapeCod-aware routing beats speed-limit routing in the rush."""
        const = make_metro_network(
            MetroConfig(width=14, height=14, seed=21),
            schema=constant_speed_schema(),
        )
        from repro.core.astar import path_travel_time

        depart = parse_clock("8:00")
        queries = random_queries(
            metro, 20, morning_rush_interval(), seed=9, min_distance=1.5
        )
        saved = 0
        for q in queries:
            planned = fixed_departure_query(const, q.source, q.target, depart)
            actual_const = path_travel_time(metro, planned.path, depart)
            actual_cape = fixed_departure_query(
                metro, q.source, q.target, depart
            ).travel_time
            assert actual_cape <= actual_const + 1e-9
            if actual_cape < actual_const - 1e-6:
                saved += 1
        assert saved > 0
