"""Tests for the multi-level overlay hierarchy (importer-era S15 growth).

The contract under test: at every level count the overlay answers exactly
match the flat engine (the hierarchy is an accelerator, never an
approximator), budgets flow through ``SearchContext`` during build *and*
query, the shortcut arrays persist byte-exactly through RPRESNAP v2, and
the serve tier boots warm from a mapped snapshot.
"""

from __future__ import annotations

import array

import pytest

from repro.core.engine import IntAllFastestPaths
from repro.core.runtime import (
    QueryTimeout,
    SearchBudgetExceeded,
    SearchContext,
)
from repro.estimators import snapshot as snap
from repro.estimators.boundary import BoundaryNodeEstimator
from repro.exceptions import EstimatorError, QueryError
from repro.func import kernel
from repro.hierarchy import MultiLevelOverlay, OverlayEngine
from repro.network.generator import MetroConfig, make_metro_network
from repro.timeutil import TimeInterval, parse_clock

WINDOW = TimeInterval(parse_clock("6:30"), parse_clock("9:30"))

# Node ids chosen on the 10x10 metro_tiny / 16x16 metro_small grids so the
# pairs cover: opposite corners (many cells apart), mid-range, neighbours
# inside one base cell, and a same-node degenerate.
TINY_PAIRS = [(0, 99), (0, 55), (22, 77), (3, 96)]
SMALL_PAIRS = [(0, 255), (17, 238), (5, 250)]


def _build(network, levels, **kwargs):
    kwargs.setdefault("nx", 6)
    return MultiLevelOverlay.build(network, levels=levels, **kwargs)


def _assert_parity(network, overlay, pairs, interval=WINDOW):
    flat = IntAllFastestPaths(network)
    fast = OverlayEngine(overlay)
    for source, target in pairs:
        expect = flat.all_fastest_paths(source, target, interval)
        got = fast.all_fastest_paths(source, target, interval)
        for instant in interval.sample(5):
            assert got.travel_time_at(instant) == pytest.approx(
                expect.travel_time_at(instant), abs=1e-6
            ), (source, target, instant)
        single = fast.single_fastest_path(source, target, interval)
        assert single.optimal_travel_time == pytest.approx(
            flat.single_fastest_path(
                source, target, interval
            ).optimal_travel_time,
            abs=1e-6,
        )


@pytest.fixture(scope="module")
def overlay_tiny(metro_tiny):
    return _build(metro_tiny, levels=2)


@pytest.fixture(scope="module")
def overlay_small(metro_small):
    return _build(metro_small, levels=3, nx=8)


class TestBuild:
    def test_levels_validated(self, metro_tiny):
        with pytest.raises(QueryError):
            MultiLevelOverlay.build(metro_tiny, levels=0)
        with pytest.raises(QueryError):
            MultiLevelOverlay.build(metro_tiny, levels=2, fanout=1)

    def test_level_dims_coarsen_by_fanout(self, overlay_tiny):
        nx0, ny0 = overlay_tiny.level_dims(0)
        nx1, ny1 = overlay_tiny.level_dims(1)
        assert (nx1, ny1) == (-(-nx0 // 2), -(-ny0 // 2))

    def test_levels_are_nested(self, metro_tiny, overlay_tiny):
        # Two nodes sharing a level-0 cell must share every coarser cell.
        nodes = list(metro_tiny.node_ids())
        for a in nodes[::7]:
            for b in nodes[::11]:
                if overlay_tiny.cell_at(a, 0) == overlay_tiny.cell_at(b, 0):
                    assert overlay_tiny.cell_at(a, 1) == overlay_tiny.cell_at(
                        b, 1
                    )

    def test_rows_contiguous_by_source(self, overlay_tiny):
        # Rows are appended cell by cell, so each source's rows form one
        # contiguous run (the OverlayLevel constructor enforces this; here
        # we check the build actually produces such data).
        for level in overlay_tiny.levels:
            seen: set[int] = set()
            current = None
            for source, _dst, _xs, _ys in level.rows():
                if source != current:
                    assert source not in seen
                    seen.add(source)
                    current = source

    def test_stats_populated(self, overlay_tiny):
        stats = overlay_tiny.stats
        assert len(stats.levels) == 2
        assert stats.shortcuts == sum(
            lv.shortcut_count for lv in overlay_tiny.levels
        )
        assert all(lv.profile_searches > 0 for lv in stats.levels)
        assert stats.build_seconds >= 0.0

    def test_parallel_build_matches_serial(self, metro_tiny, overlay_tiny):
        parallel = _build(metro_tiny, levels=2, workers=2)
        for serial_level, parallel_level in zip(
            overlay_tiny.levels, parallel.levels
        ):
            assert serial_level.src == parallel_level.src
            assert serial_level.dst == parallel_level.dst
            assert serial_level.off == parallel_level.off
            assert serial_level.xs == parallel_level.xs
            assert serial_level.ys == parallel_level.ys


class TestBudgets:
    def test_max_pops_budget_trips_during_build(self, metro_tiny):
        with pytest.raises(SearchBudgetExceeded):
            MultiLevelOverlay.build(metro_tiny, levels=1, max_pops=2)

    def test_deadline_trips_during_build(self, metro_tiny):
        with pytest.raises(QueryTimeout):
            MultiLevelOverlay.build(metro_tiny, levels=1, deadline=0.0)

    def test_parallel_build_budget_propagates(self, metro_tiny):
        with pytest.raises(SearchBudgetExceeded):
            MultiLevelOverlay.build(
                metro_tiny, levels=1, max_pops=2, workers=2
            )

    def test_query_max_pops_budget(self, overlay_tiny):
        engine = OverlayEngine(overlay_tiny, max_pops=1)
        with pytest.raises(SearchBudgetExceeded):
            engine.all_fastest_paths(0, 99, WINDOW)

    def test_query_deadline(self, overlay_tiny):
        engine = OverlayEngine(overlay_tiny)
        with pytest.raises(QueryTimeout):
            engine.all_fastest_paths(0, 99, WINDOW, deadline=0.0)

    def test_shared_context_budgets_apply(self, metro_tiny, overlay_tiny):
        context = SearchContext(metro_tiny, max_pops=1)
        engine = OverlayEngine(overlay_tiny, context=context)
        with pytest.raises(SearchBudgetExceeded):
            engine.all_fastest_paths(0, 99, WINDOW)


class TestCliqueSuppression:
    """Labels that enter a cell over a shortcut must not fan the clique out
    again — chained intra-cell shortcuts are pointwise >= the direct one."""

    def test_shortcut_entry_trims_clique(self, metro_tiny, overlay_tiny):
        from repro.hierarchy.engine import _OverlayQueryGraph

        graph = _OverlayQueryGraph(overlay_tiny, 0, 99)
        node = next(
            n
            for n in metro_tiny.node_ids()
            if any(hasattr(e, "min_tt") for e in graph.outgoing(n))
        )
        full = graph.outgoing_from(node, None)
        shortcuts = [e for e in full if hasattr(e, "min_tt")]
        streets = [e for e in full if not hasattr(e, "min_tt")]
        assert shortcuts
        # Arriving over one of the clique's own shortcuts: only the
        # crossing street edges remain.
        trimmed = graph.outgoing_from(node, shortcuts[0].target)
        assert [
            (e.source, e.target) for e in trimmed
        ] == [(e.source, e.target) for e in streets]
        # Arriving from outside the cell (the source endpoint's cell is
        # always a different one): the full clique is exposed.
        entered = graph.outgoing_from(node, 0)
        assert len(entered) == len(full)

    def test_engine_passes_predecessor(self, metro_tiny, overlay_tiny):
        """The generic engine must consult ``outgoing_from`` when present:
        overlay searches generate strictly fewer labels than the same
        query with the hook hidden."""
        engine = OverlayEngine(overlay_tiny)
        with_hook = engine.all_fastest_paths(0, 99, WINDOW)

        from repro.hierarchy import engine as hmod

        graph = hmod._OverlayQueryGraph(overlay_tiny, 0, 99)
        hidden = IntAllFastestPaths(_HideOutgoingFrom(graph))
        without_hook = hidden.all_fastest_paths(0, 99, WINDOW)
        assert (
            with_hook.stats.labels_generated
            < without_hook.stats.labels_generated
        )
        for instant in WINDOW.sample(7):
            assert with_hook.travel_time_at(instant) == pytest.approx(
                without_hook.travel_time_at(instant), abs=1e-9
            )


class _HideOutgoingFrom:
    """Accessor wrapper dropping the ``outgoing_from`` trimming hook."""

    def __init__(self, graph):
        self._graph = graph

    def __getattr__(self, name):
        if name == "outgoing_from":
            raise AttributeError(name)
        return getattr(self._graph, name)


class TestParity:
    @pytest.mark.parametrize("levels", [1, 2, 3])
    def test_tiny_all_level_counts(self, metro_tiny, levels):
        overlay = _build(metro_tiny, levels=levels)
        _assert_parity(metro_tiny, overlay, TINY_PAIRS)

    def test_small_three_levels(self, metro_small, overlay_small):
        _assert_parity(metro_small, overlay_small, SMALL_PAIRS)

    def test_same_base_cell_pair(self, metro_tiny, overlay_tiny):
        # Both endpoints inside one base cell: the query must fall back to
        # plain street edges and still agree with the flat engine.
        nodes = list(metro_tiny.node_ids())
        cell0 = overlay_tiny.cell_at(nodes[0], 0)
        mate = next(
            n
            for n in nodes[1:]
            if overlay_tiny.cell_at(n, 0) == cell0
        )
        _assert_parity(metro_tiny, overlay_tiny, [(nodes[0], mate)])

    def test_kernel_and_legacy_agree(self, metro_tiny, overlay_tiny):
        engine = OverlayEngine(overlay_tiny)

        def run():
            result = engine.all_fastest_paths(0, 99, WINDOW)
            return [result.travel_time_at(t) for t in WINDOW.sample(5)]

        previous = kernel.set_kernel_enabled(True)
        try:
            fast = run()
        finally:
            kernel.set_kernel_enabled(previous)
        previous = kernel.set_kernel_enabled(False)
        try:
            slow = run()
        finally:
            kernel.set_kernel_enabled(previous)
        assert fast == pytest.approx(slow, abs=1e-6)

    def test_horizon_enforced(self, overlay_tiny):
        horizon = overlay_tiny.horizon
        outside = TimeInterval(horizon.end + 1.0, horizon.end + 61.0)
        with pytest.raises(QueryError):
            OverlayEngine(overlay_tiny).all_fastest_paths(0, 99, outside)

    def test_expand_path_returns_street_edges(self, metro_tiny, overlay_tiny):
        engine = OverlayEngine(overlay_tiny)
        flat = IntAllFastestPaths(metro_tiny)
        result = engine.all_fastest_paths(0, 99, WINDOW)
        for entry in result.entries:
            depart = entry.interval.start
            expanded = engine.expand_path(entry.path, depart)
            assert expanded[0] == 0 and expanded[-1] == 99
            # Every consecutive hop is a real street edge.
            for u, v in zip(expanded, expanded[1:]):
                assert metro_tiny.has_edge(u, v)
            oracle = flat.all_fastest_paths(0, 99, WINDOW)
            assert result.travel_time_at(depart) == pytest.approx(
                oracle.travel_time_at(depart), abs=1e-6
            )


class TestSnapshotRoundTrip:
    @pytest.fixture()
    def saved(self, tmp_path, metro_tiny, overlay_tiny):
        estimator = BoundaryNodeEstimator(metro_tiny, 4, 4)
        estimator.precompute()
        path = tmp_path / "net.ovl"
        snap.save_tables(
            estimator.tables,
            path,
            snap.network_fingerprint(metro_tiny),
            overlay=overlay_tiny,
        )
        return path

    def _assert_same(self, original, loaded):
        assert loaded.level_count == original.level_count
        assert loaded.fanout == original.fanout
        assert loaded.grid.shape == original.grid.shape
        for a, b in zip(original.levels, loaded.levels):
            assert array.array("q", a.src) == array.array("q", b.src)
            assert array.array("q", a.dst) == array.array("q", b.dst)
            assert array.array("q", a.off) == array.array("q", b.off)
            assert array.array("d", a.xs) == array.array("d", b.xs)
            assert array.array("d", a.ys) == array.array("d", b.ys)

    def test_load_round_trip(self, saved, metro_tiny, overlay_tiny):
        loaded = snap.load_overlay(saved, metro_tiny)
        self._assert_same(overlay_tiny, loaded)

    def test_map_round_trip(self, saved, metro_tiny, overlay_tiny):
        mapped = snap.map_overlay(saved, metro_tiny)
        self._assert_same(overlay_tiny, mapped)

    def test_mapped_overlay_answers_match(self, saved, metro_tiny):
        mapped = snap.map_overlay(saved, metro_tiny)
        _assert_parity(metro_tiny, mapped, TINY_PAIRS[:2])

    def test_estimator_tables_still_load(self, saved, metro_tiny):
        estimator = BoundaryNodeEstimator.from_snapshot(metro_tiny, saved)
        assert estimator.tables is not None

    def test_v1_snapshot_has_no_overlay(self, tmp_path, metro_tiny):
        estimator = BoundaryNodeEstimator(metro_tiny, 4, 4)
        path = estimator.save_snapshot(tmp_path / "flat.est")
        with pytest.raises(EstimatorError, match="no overlay section"):
            snap.load_overlay(path, metro_tiny)

    def test_fingerprint_mismatch_rejected(self, saved):
        other = make_metro_network(MetroConfig(width=10, height=10, seed=9))
        with pytest.raises(EstimatorError, match="fingerprint"):
            snap.load_overlay(saved, other)

    def test_truncation_rejected(self, saved, tmp_path, metro_tiny):
        data = saved.read_bytes()
        clipped = tmp_path / "clipped.ovl"
        clipped.write_bytes(data[: len(data) - 16])
        with pytest.raises(EstimatorError):
            snap.load_overlay(clipped, metro_tiny)
        with pytest.raises(EstimatorError):
            snap.read_header(clipped)

    def test_read_header_reports_overlay(self, saved, overlay_tiny):
        header = snap.read_header(saved)
        assert header["version"] == snap.SNAPSHOT_VERSION_OVERLAY
        meta = header["overlay"]
        assert meta["levels"] == overlay_tiny.level_count
        assert meta["fanout"] == overlay_tiny.fanout
        details = meta["level_details"]
        assert [d["shortcuts"] for d in details] == [
            lv.shortcut_count for lv in overlay_tiny.levels
        ]

    def test_v1_header_has_no_overlay(self, tmp_path, metro_tiny):
        estimator = BoundaryNodeEstimator(metro_tiny, 4, 4)
        path = estimator.save_snapshot(tmp_path / "flat.est")
        header = snap.read_header(path)
        assert header["version"] == snap.SNAPSHOT_VERSION
        assert header.get("overlay") is None


class TestServing:
    def test_service_with_overlay_matches_flat(self, metro_tiny, overlay_tiny):
        from repro.serve import AllFPService, InProcessClient, ServiceConfig
        from repro.workloads.queries import QuerySpec

        spec = QuerySpec(
            source=0, target=99, interval=WINDOW, euclidean_distance=1.0
        )
        flat = AllFPService(metro_tiny, config=ServiceConfig(workers=1))
        try:
            expect = InProcessClient(flat).query(spec).result
        finally:
            flat.close()
        service = AllFPService(
            metro_tiny, config=ServiceConfig(workers=1), overlay=overlay_tiny
        )
        try:
            assert service.stats()["overlay_levels"] == 2
            got = InProcessClient(service).query(spec).result
        finally:
            service.close()
        for instant in WINDOW.sample(5):
            assert got.travel_time_at(instant) == pytest.approx(
                expect.travel_time_at(instant), abs=1e-6
            )

    def test_sharded_warm_boot(self, tmp_path, metro_tiny, overlay_tiny):
        from repro.serve import InProcessClient, ServiceConfig
        from repro.shard import ShardedService
        from repro.workloads.queries import QuerySpec

        estimator = BoundaryNodeEstimator(metro_tiny, 4, 4)
        estimator.precompute()
        path = tmp_path / "combo.ovl"
        snap.save_tables(
            estimator.tables,
            path,
            snap.network_fingerprint(metro_tiny),
            overlay=overlay_tiny,
        )
        spec = QuerySpec(
            source=0, target=99, interval=WINDOW, euclidean_distance=1.0
        )
        expect = IntAllFastestPaths(metro_tiny).all_fastest_paths(
            0, 99, WINDOW
        )
        tier = ShardedService(
            metro_tiny,
            None,
            ServiceConfig(workers=1),
            shards=1,
            snapshot_path=str(path),
            overlay_path=str(path),
        )
        try:
            health = tier.shard_health()
            assert all(h["overlay_mode"] == "mmap" for h in health)
            got = InProcessClient(tier).query(spec).result.as_dict()
        finally:
            tier.close()
        for lo_hi in got["border"]:
            instant, travel = lo_hi
            assert travel == pytest.approx(
                expect.travel_time_at(instant), abs=1e-6
            )

    def test_sharded_missing_overlay_degrades(self, tmp_path, metro_tiny):
        from repro.serve import ServiceConfig
        from repro.shard import ShardedService

        tier = ShardedService(
            metro_tiny,
            None,
            ServiceConfig(workers=1),
            shards=1,
            overlay_path=str(tmp_path / "missing.ovl"),
        )
        try:
            health = tier.shard_health()
            assert all(h["overlay_mode"] == "fallback" for h in health)
            assert tier.degraded
        finally:
            tier.close()
