"""Cross-validation against networkx, an entirely external implementation.

On a constant-speed network the fastest-path problem degrades to a static
shortest-path problem in travel-time weights (the paper's §1 observation),
so networkx's Dijkstra must agree with every engine in this repository.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.astar import fixed_departure_query
from repro.core.engine import IntAllFastestPaths
from repro.core.profile import arrival_profile
from repro.network.generator import MetroConfig, make_metro_network
from repro.patterns.schema import constant_speed_schema
from repro.timeutil import TimeInterval, parse_clock


@pytest.fixture(scope="module")
def constant_metro():
    return make_metro_network(
        MetroConfig(width=12, height=12, seed=31), schema=constant_speed_schema()
    )


@pytest.fixture(scope="module")
def nx_graph(constant_metro):
    g = nx.DiGraph()
    for node in constant_metro.nodes():
        g.add_node(node.id)
    for edge in constant_metro.edges():
        g.add_edge(
            edge.source,
            edge.target,
            minutes=edge.distance / edge.pattern.max_speed(),
        )
    return g


@pytest.fixture(scope="module")
def nx_times(nx_graph):
    return dict(nx.single_source_dijkstra_path_length(nx_graph, 0, weight="minutes"))


class TestAgainstNetworkx:
    def test_fixed_departure_matches(self, constant_metro, nx_times):
        for target in list(nx_times)[::11]:
            if target == 0:
                continue
            ours = fixed_departure_query(
                constant_metro, 0, target, parse_clock("9:00")
            )
            assert ours.travel_time == pytest.approx(
                nx_times[target], abs=1e-9
            )

    def test_interval_engine_matches(self, constant_metro, nx_times):
        engine = IntAllFastestPaths(constant_metro)
        interval = TimeInterval(parse_clock("7:00"), parse_clock("9:00"))
        for target in list(nx_times)[::29]:
            if target == 0:
                continue
            result = engine.all_fastest_paths(0, target, interval)
            assert len(result.entries) == 1  # constant speeds: one answer
            assert result.border.min_value() == pytest.approx(
                nx_times[target], abs=1e-9
            )

    def test_profile_search_matches(self, constant_metro, nx_times):
        interval = TimeInterval(parse_clock("7:00"), parse_clock("8:00"))
        profiles = arrival_profile(constant_metro, 0, interval)
        assert set(profiles) == set(nx_times)
        for node, fn in list(profiles.items())[::17]:
            travel = fn(interval.start) - interval.start
            assert travel == pytest.approx(nx_times[node], abs=1e-9)

    def test_path_lengths_match_not_just_times(
        self, constant_metro, nx_graph
    ):
        """The chosen paths have equal weight under networkx's metric."""
        for target in (50, 100, 143):
            ours = fixed_departure_query(
                constant_metro, 0, target, parse_clock("9:00")
            )
            weight = sum(
                nx_graph[u][v]["minutes"]
                for u, v in zip(ours.path, ours.path[1:])
            )
            assert weight == pytest.approx(ours.travel_time, abs=1e-9)
