"""Unit tests for the CapeCod network model."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    EdgeNotFoundError,
    NetworkError,
    NodeNotFoundError,
)
from repro.network.model import CapeCodNetwork, Edge, Node
from repro.patterns.categories import Calendar
from repro.patterns.schema import RoadClass
from repro.patterns.speed import CapeCodPattern


@pytest.fixture
def cal():
    return Calendar.single_category()


@pytest.fixture
def pat(cal):
    return CapeCodPattern.constant(1.0, cal.categories.names)


@pytest.fixture
def triangle(cal, pat):
    net = CapeCodNetwork(cal)
    net.add_node(0, 0.0, 0.0)
    net.add_node(1, 1.0, 0.0)
    net.add_node(2, 0.0, 1.0)
    net.add_edge(0, 1, 1.0, pat)
    net.add_edge(1, 2, 1.5, pat)
    net.add_edge(2, 0, 1.2, pat)
    return net


class TestNode:
    def test_location(self):
        n = Node(1, 3.0, 4.0)
        assert n.location == (3.0, 4.0)

    def test_distance(self):
        assert Node(0, 0.0, 0.0).distance_to(Node(1, 3.0, 4.0)) == 5.0


class TestEdge:
    def test_rejects_negative_length(self, pat):
        with pytest.raises(NetworkError):
            Edge(0, 1, -1.0, pat)


class TestConstruction:
    def test_counts(self, triangle):
        assert triangle.node_count == 3
        assert triangle.edge_count == 3

    def test_re_add_same_node_is_noop(self, cal):
        net = CapeCodNetwork(cal)
        net.add_node(0, 1.0, 2.0)
        net.add_node(0, 1.0, 2.0)
        assert net.node_count == 1

    def test_re_add_moved_node_raises(self, cal):
        net = CapeCodNetwork(cal)
        net.add_node(0, 1.0, 2.0)
        with pytest.raises(NetworkError):
            net.add_node(0, 9.0, 9.0)

    def test_edge_requires_nodes(self, cal, pat):
        net = CapeCodNetwork(cal)
        net.add_node(0, 0.0, 0.0)
        with pytest.raises(NodeNotFoundError):
            net.add_edge(0, 99, 1.0, pat)
        with pytest.raises(NodeNotFoundError):
            net.add_edge(99, 0, 1.0, pat)

    def test_rejects_self_loop(self, cal, pat):
        net = CapeCodNetwork(cal)
        net.add_node(0, 0.0, 0.0)
        with pytest.raises(NetworkError):
            net.add_edge(0, 0, 1.0, pat)

    def test_rejects_duplicate_edge(self, triangle, pat):
        with pytest.raises(NetworkError):
            triangle.add_edge(0, 1, 2.0, pat)

    def test_add_bidirectional(self, cal, pat):
        net = CapeCodNetwork(cal)
        net.add_node(0, 0.0, 0.0)
        net.add_node(1, 1.0, 0.0)
        fwd, bwd = net.add_bidirectional(0, 1, 1.0, pat)
        assert fwd.target == 1 and bwd.target == 0
        assert net.edge_count == 2

    def test_add_bidirectional_asymmetric_patterns(self, cal, pat):
        slow = CapeCodPattern.constant(0.5, cal.categories.names)
        net = CapeCodNetwork(cal)
        net.add_node(0, 0.0, 0.0)
        net.add_node(1, 1.0, 0.0)
        fwd, bwd = net.add_bidirectional(
            0, 1, 1.0, pat,
            road_class=RoadClass.INBOUND_HIGHWAY,
            reverse_pattern=slow,
            reverse_class=RoadClass.OUTBOUND_HIGHWAY,
        )
        assert fwd.pattern is pat and bwd.pattern is slow
        assert bwd.road_class is RoadClass.OUTBOUND_HIGHWAY

    def test_from_elements(self, cal, pat):
        net = CapeCodNetwork.from_elements(
            cal, [(0, 0.0, 0.0), (1, 1.0, 1.0)], [(0, 1, 2.0, pat)]
        )
        assert net.edge_count == 1


class TestAccessors:
    def test_node_lookup(self, triangle):
        assert triangle.node(1).x == 1.0
        with pytest.raises(NodeNotFoundError):
            triangle.node(99)

    def test_location(self, triangle):
        assert triangle.location(2) == (0.0, 1.0)

    def test_outgoing(self, triangle):
        out = triangle.outgoing(0)
        assert [e.target for e in out] == [1]
        with pytest.raises(NodeNotFoundError):
            triangle.outgoing(99)

    def test_incoming(self, triangle):
        assert [e.source for e in triangle.incoming(0)] == [2]

    def test_outgoing_returns_copy(self, triangle):
        triangle.outgoing(0).clear()
        assert len(triangle.outgoing(0)) == 1

    def test_find_edge(self, triangle):
        assert triangle.find_edge(0, 1).distance == 1.0
        with pytest.raises(EdgeNotFoundError):
            triangle.find_edge(1, 0)

    def test_has_edge(self, triangle):
        assert triangle.has_edge(0, 1)
        assert not triangle.has_edge(1, 0)

    def test_euclidean(self, triangle):
        assert triangle.euclidean(1, 2) == pytest.approx(2**0.5)

    def test_max_min_speed(self, cal):
        net = CapeCodNetwork(cal)
        net.add_node(0, 0.0, 0.0)
        net.add_node(1, 1.0, 0.0)
        net.add_edge(0, 1, 1.0, CapeCodPattern.constant(0.5, cal.categories.names))
        net.add_edge(1, 0, 1.0, CapeCodPattern.constant(2.0, cal.categories.names))
        assert net.max_speed() == 2.0
        assert net.min_speed() == 0.5

    def test_max_speed_empty_raises(self, cal):
        net = CapeCodNetwork(cal)
        net.add_node(0, 0.0, 0.0)
        with pytest.raises(NetworkError):
            net.max_speed()

    def test_max_speed_cache_invalidated_by_add(self, cal, pat):
        net = CapeCodNetwork(cal)
        net.add_node(0, 0.0, 0.0)
        net.add_node(1, 1.0, 0.0)
        net.add_edge(0, 1, 1.0, pat)
        assert net.max_speed() == 1.0
        net.add_edge(1, 0, 1.0, CapeCodPattern.constant(3.0, cal.categories.names))
        assert net.max_speed() == 3.0


class TestGraphViews:
    def test_bounding_box(self, triangle):
        assert triangle.bounding_box() == (0.0, 0.0, 1.0, 1.0)

    def test_bounding_box_empty_raises(self, cal):
        with pytest.raises(NetworkError):
            CapeCodNetwork(cal).bounding_box()

    def test_edges_iteration(self, triangle):
        assert sorted((e.source, e.target) for e in triangle.edges()) == [
            (0, 1), (1, 2), (2, 0),
        ]

    def test_degree_histogram(self, triangle):
        assert triangle.degree_histogram() == {1: 3}

    def test_strongly_connected_true(self, triangle):
        assert triangle.is_strongly_connected()

    def test_strongly_connected_false(self, cal, pat):
        net = CapeCodNetwork(cal)
        net.add_node(0, 0.0, 0.0)
        net.add_node(1, 1.0, 0.0)
        net.add_edge(0, 1, 1.0, pat)
        assert not net.is_strongly_connected()

    def test_reversed_copy(self, triangle):
        rev = triangle.reversed_copy()
        assert rev.has_edge(1, 0)
        assert not rev.has_edge(0, 1)
        assert rev.node_count == 3
        assert rev.find_edge(1, 0).distance == 1.0

    def test_to_networkx(self, triangle):
        g = triangle.to_networkx()
        assert g.number_of_nodes() == 3
        assert g.number_of_edges() == 3
        assert g[0][1]["distance"] == 1.0
