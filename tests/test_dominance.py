"""Unit tests for per-node dominance pruning."""

from __future__ import annotations

from repro.core.dominance import DominanceStore
from repro.func.monotone import MonotonePiecewiseLinear

MPL = MonotonePiecewiseLinear


class TestDominanceStore:
    def test_empty_never_dominates(self):
        store = DominanceStore(0.0, 10.0)
        assert not store.is_dominated(1, MPL([(0.0, 5.0), (10.0, 15.0)]))

    def test_identical_is_dominated(self):
        store = DominanceStore(0.0, 10.0)
        fn = MPL([(0.0, 5.0), (10.0, 15.0)])
        store.add(1, fn)
        assert store.is_dominated(1, fn)

    def test_later_arrival_dominated(self):
        store = DominanceStore(0.0, 10.0)
        store.add(1, MPL([(0.0, 5.0), (10.0, 15.0)]))
        assert store.is_dominated(1, MPL([(0.0, 6.0), (10.0, 16.0)]))

    def test_earlier_arrival_not_dominated(self):
        store = DominanceStore(0.0, 10.0)
        store.add(1, MPL([(0.0, 5.0), (10.0, 15.0)]))
        assert not store.is_dominated(1, MPL([(0.0, 4.0), (10.0, 14.0)]))

    def test_partially_better_not_dominated(self):
        store = DominanceStore(0.0, 10.0)
        store.add(1, MPL([(0.0, 5.0), (10.0, 15.0)]))
        # Worse early, strictly better late.
        crossing = MPL([(0.0, 7.0), (10.0, 13.0)])
        assert not store.is_dominated(1, crossing)

    def test_different_nodes_independent(self):
        store = DominanceStore(0.0, 10.0)
        fn = MPL([(0.0, 5.0), (10.0, 15.0)])
        store.add(1, fn)
        assert not store.is_dominated(2, fn)

    def test_envelope_of_two_dominates_mixture(self):
        store = DominanceStore(0.0, 10.0)
        store.add(1, MPL([(0.0, 2.0), (10.0, 20.0)]))  # good early
        store.add(1, MPL([(0.0, 8.0), (10.0, 12.0)]))  # good late
        # Worse than the min of the two everywhere, though it beats each
        # individual function somewhere.
        mixture = MPL([(0.0, 6.5), (10.0, 16.5)])
        assert store.is_dominated(1, mixture)

    def test_strictly_below_envelope_in_middle(self):
        store = DominanceStore(0.0, 10.0)
        store.add(1, MPL([(0.0, 2.0), (10.0, 20.0)]))
        store.add(1, MPL([(0.0, 8.0), (10.0, 12.0)]))
        # Dips under the crossing point of the stored pair.
        better_mid = MPL([(0.0, 6.0), (5.0, 6.1), (10.0, 16.0)])
        assert not store.is_dominated(1, better_mid)

    def test_len_counts_nodes(self):
        store = DominanceStore(0.0, 10.0)
        fn = MPL([(0.0, 5.0), (10.0, 15.0)])
        store.add(1, fn)
        store.add(1, fn)
        store.add(2, fn)
        assert len(store) == 2

    def test_instant_domain(self):
        store = DominanceStore(5.0, 5.0)
        store.add(1, MPL([(5.0, 8.0)]))
        assert store.is_dominated(1, MPL([(5.0, 9.0)]))
        assert not store.is_dominated(1, MPL([(5.0, 7.0)]))
