"""Tests for the streaming node/way importer (``repro.network.importer``)."""

from __future__ import annotations

import pytest

from repro.exceptions import NetworkError
from repro.network.generator import MetroConfig, emit_metro_lines
from repro.network.importer import (
    HIGHWAY_TAGS,
    import_network,
    parse_lines,
    write_lines,
)
from repro.patterns.schema import RoadClass


def _square(tag="residential", direction="twoway"):
    """A 2x2 unit square with one way around the rim."""
    return [
        "node 0 0.0 0.0",
        "node 1 1.0 0.0",
        "node 2 1.0 1.0",
        "node 3 0.0 1.0",
        f"way {direction} {tag} 0 1 2 3 0",
    ]


class TestParsing:
    def test_counts(self):
        net, stats = parse_lines(_square())
        assert net.node_count == 4
        assert stats.nodes == 4
        assert stats.ways == 1
        # A twoway 4-segment chain yields 8 directed edges.
        assert stats.edges == net.edge_count == 8

    def test_oneway_halves_edges(self):
        net, stats = parse_lines(_square(direction="oneway"))
        assert stats.edges == 4
        assert net.has_edge(0, 1) and not net.has_edge(1, 0)

    def test_comments_and_blank_lines_ignored(self):
        lines = ["# header", "", *_square(), "   # trailing"]
        _net, stats = parse_lines(lines)
        assert stats.nodes == 4 and stats.ways == 1

    def test_distances_are_euclidean(self):
        net, _stats = parse_lines(_square())
        assert net.find_edge(0, 1).distance == pytest.approx(1.0)
        lines = _square() + ["way oneway residential 0 2"]
        net, _stats = parse_lines(lines)
        assert net.find_edge(0, 2).distance == pytest.approx(2**0.5)

    def test_float_coordinates_preserved(self):
        lines = [
            "node 0 0.1234567890123 -7.75",
            "node 1 2.5 3.25",
            "way oneway residential 0 1",
        ]
        net, _stats = parse_lines(lines)
        assert net.location(0) == (0.1234567890123, -7.75)

    def test_streaming_consumes_an_iterator(self):
        net, _stats = parse_lines(iter(_square()))
        assert net.node_count == 4

    def test_import_network_reads_file(self, tmp_path):
        path = tmp_path / "net.txt"
        path.write_text("\n".join(_square()) + "\n", encoding="utf-8")
        net, stats = import_network(path)
        assert net.node_count == 4 and stats.edges == 8


class TestClassification:
    def test_highway_tags_map_to_highway_classes(self):
        for tag in HIGHWAY_TAGS:
            net, stats = parse_lines(_square(tag=tag))
            assert stats.highway_edges == stats.edges
            classes = {e.road_class for e in net.edges()}
            assert classes <= {
                RoadClass.INBOUND_HIGHWAY,
                RoadClass.OUTBOUND_HIGHWAY,
            }

    def test_highway_direction_is_per_segment(self):
        # 0 is the centroid-most node: 1 -> 0 heads inbound, 0 -> 1 out.
        lines = [
            "node 0 0.0 0.0",
            "node 1 9.0 0.0",
            "node 2 -9.0 0.0",
            "node 3 0.0 9.0",
            "node 4 0.0 -9.0",
            "way twoway motorway 1 0",
        ]
        net, _stats = parse_lines(lines)
        assert net.find_edge(1, 0).road_class is RoadClass.INBOUND_HIGHWAY
        assert net.find_edge(0, 1).road_class is RoadClass.OUTBOUND_HIGHWAY

    def test_local_split_by_city_radius(self):
        # Radius is a third of the bbox half-extent: a rim segment lies
        # outside it, a center segment inside.
        lines = [
            "node 0 0.0 0.0",
            "node 1 0.5 0.0",
            "node 2 30.0 30.0",
            "node 3 -30.0 -30.0",
            "way oneway residential 0 1",
            "way oneway residential 2 3",  # long, midpoint at the center
            "way oneway residential 3 2",
        ]
        net, _stats = parse_lines(lines)
        assert net.find_edge(0, 1).road_class is RoadClass.LOCAL_CITY
        rim = [
            "node 0 0.0 0.0",
            "node 1 30.0 30.0",
            "node 2 29.0 30.0",
            "way oneway residential 1 2",
        ]
        net, _stats = parse_lines(rim)
        assert net.find_edge(1, 2).road_class is RoadClass.LOCAL_OUTSIDE

    def test_duplicates_and_self_loops_counted_not_fatal(self):
        lines = _square() + [
            "way oneway residential 0 1",  # duplicate of a rim segment
            "way oneway residential 2 2",  # self-loop
        ]
        net, stats = parse_lines(lines)
        assert stats.skipped_duplicates == 1
        assert stats.skipped_self_loops == 1
        assert stats.edges == net.edge_count == 8


class TestErrors:
    @pytest.mark.parametrize(
        ("lines", "fragment"),
        [
            (["way oneway residential 0 1"], "way before any node"),
            (_square() + ["node 9 0.0 0.0"], "node after the first way"),
            (["node 0 0.0"], "node needs"),
            (["node zero 0.0 0.0"], "malformed node record"),
            (["node 0 0.0 0.0", "node 1 1.0 1.0", "way oneway residential 0"],
             "way needs"),
            (["node 0 0.0 0.0", "node 1 1.0 1.0", "way back residential 0 1"],
             "direction must be oneway or twoway"),
            (["node 0 0.0 0.0", "node 1 1.0 1.0", "way oneway residential 0 x"],
             "malformed way node list"),
            (["node 0 0.0 0.0", "node 1 1.0 1.0", "way oneway residential 0 7"],
             "unknown node 7"),
            (["street 0 1"], "unknown record type"),
        ],
    )
    def test_malformed_input(self, lines, fragment):
        with pytest.raises(NetworkError, match=fragment):
            parse_lines(lines)

    def test_errors_carry_line_numbers(self):
        lines = _square() + ["way oneway residential 0 99"]
        with pytest.raises(NetworkError, match=r"line 6:"):
            parse_lines(lines)


class TestRoundTrip:
    def test_write_then_parse_reproduces_topology(self):
        net, _stats = parse_lines(_square(tag="motorway"))
        again, stats = parse_lines(write_lines(net))
        assert again.node_count == net.node_count
        assert again.edge_count == net.edge_count
        for edge in net.edges():
            twin = again.find_edge(edge.source, edge.target)
            assert twin.distance == pytest.approx(edge.distance)
            assert twin.road_class.is_highway == edge.road_class.is_highway

    def test_metro_generator_emits_importable_lines(self):
        config = MetroConfig(width=10, height=10, seed=5)
        net, stats = parse_lines(emit_metro_lines(config))
        assert net.node_count == 100
        assert stats.highway_edges > 0 and stats.local_edges > 0
        # The street graph must be usable end to end.
        from repro.core.astar import fixed_departure_query

        result = fixed_departure_query(net, 0, 99, 420.0)
        assert result.arrival > 420.0

    def test_emit_lines_are_deterministic(self):
        config = MetroConfig(width=8, height=8, seed=7)
        assert list(emit_metro_lines(config)) == list(
            emit_metro_lines(config)
        )
