"""End-to-end scenario with a three-category calendar (Def 1's Friday case).

The paper motivates extra day categories: "if for some road segment the
speed pattern for Fridays is different from that of other workdays, we can
identify Friday as another category."  This module runs the full pipeline —
patterns, network, engine, CCAM — over a {workday, friday, non-workday}
calendar and checks that answers differ exactly where the categories do.
"""

from __future__ import annotations

import pytest

from repro.core.astar import fixed_departure_query
from repro.core.engine import IntAllFastestPaths
from repro.network.model import CapeCodNetwork
from repro.patterns.categories import Calendar, DayCategorySet
from repro.patterns.speed import CapeCodPattern, DailySpeedPattern
from repro.storage.ccam import CCAMStore
from repro.timeutil import TimeInterval, parse_clock

CATS = DayCategorySet(["workday", "friday", "non-workday"])
#: Mon-Thu workdays, Friday its own category, Sat/Sun weekend.
CAL = Calendar.periodic(
    CATS, ["workday"] * 4 + ["friday"] + ["non-workday"] * 2
)


def friday_getaway_pattern() -> CapeCodPattern:
    """Free-flowing except a *Friday-afternoon* getaway jam (2pm-8pm)."""
    normal = DailySpeedPattern.constant(1.0)
    friday = DailySpeedPattern(
        [(0.0, 1.0), (parse_clock("14:00"), 0.25), (parse_clock("20:00"), 1.0)]
    )
    return CapeCodPattern(
        {"workday": normal, "friday": friday, "non-workday": normal}
    )


@pytest.fixture(scope="module")
def network():
    """A two-route network: a highway with Friday jams and a local detour."""
    net = CapeCodNetwork(CAL)
    constant = CapeCodPattern.constant(0.5, CATS.names)
    net.add_node(0, 0.0, 0.0)
    net.add_node(1, 4.0, 0.0)
    net.add_node(2, 2.0, 1.0)
    net.add_edge(0, 1, 4.0, friday_getaway_pattern())  # highway: 4 min normally
    net.add_edge(0, 2, 2.5, constant)  # detour leg 1: 5 min
    net.add_edge(2, 1, 2.5, constant)  # detour leg 2: 5 min
    return net


class TestFridayCategory:
    def test_thursday_uses_highway(self, network):
        # Day 3 = Thursday: 15:00 is ordinary workday traffic.
        depart = parse_clock("15:00", day=3)
        result = fixed_departure_query(network, 0, 1, depart)
        assert result.path == (0, 1)
        assert result.travel_time == pytest.approx(4.0)

    def test_friday_takes_detour(self, network):
        # Day 4 = Friday: the 14:00-20:00 getaway jam makes 0->1 take 16 min.
        depart = parse_clock("15:00", day=4)
        result = fixed_departure_query(network, 0, 1, depart)
        assert result.path == (0, 2, 1)
        assert result.travel_time == pytest.approx(10.0)

    def test_saturday_back_to_highway(self, network):
        depart = parse_clock("15:00", day=5)
        result = fixed_departure_query(network, 0, 1, depart)
        assert result.path == (0, 1)

    def test_allfp_partition_on_friday(self, network):
        """Leaving window straddling the Friday 14:00 jam onset."""
        engine = IntAllFastestPaths(network)
        window = TimeInterval(
            parse_clock("13:00", day=4), parse_clock("15:00", day=4)
        )
        result = engine.all_fastest_paths(0, 1, window)
        paths = [e.path for e in result.entries]
        assert paths[0] == (0, 1)
        assert (0, 2, 1) in paths

    def test_allfp_single_path_on_thursday(self, network):
        engine = IntAllFastestPaths(network)
        window = TimeInterval(
            parse_clock("13:00", day=3), parse_clock("15:00", day=3)
        )
        result = engine.all_fastest_paths(0, 1, window)
        assert [e.path for e in result.entries] == [(0, 1)]

    def test_three_category_calendar_survives_ccam(self, network, tmp_path):
        path = tmp_path / "friday.ccam"
        with CCAMStore.build(network, path) as store:
            assert store.calendar.category_for_day(4) == "friday"
            depart = parse_clock("15:00", day=4)
            assert fixed_departure_query(store, 0, 1, depart).path == (0, 2, 1)
