"""Property-based tests (hypothesis) on the core invariants.

These cover the mathematical backbone of the paper's machinery:
piecewise-linear algebra laws, FIFO of arrival functions, envelope
correctness, estimator admissibility, Hilbert bijectivity, and B+-tree
equivalence with a dictionary model.
"""

from __future__ import annotations

import math

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core.astar import fixed_departure_query
from repro.estimators.boundary import BoundaryNodeEstimator
from repro.estimators.naive import NaiveEstimator
from repro.exceptions import NoPathError
from repro.func.envelope import AnnotatedEnvelope
from repro.func.monotone import MonotonePiecewiseLinear
from repro.func.piecewise import PiecewiseLinearFunction
from repro.network.generator import MetroConfig, make_metro_network
from repro.patterns.categories import Calendar
from repro.patterns.speed import CapeCodPattern, DailySpeedPattern
from repro.patterns.travel_time import edge_arrival_function, traverse
from repro.storage.bptree import BPlusTree
from repro.storage.buffer import MemoryPageStore
from repro.storage.hilbert import hilbert_index, hilbert_point

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
DOMAIN = (0.0, 100.0)


def _interior_points(draw, lo, hi, max_kinks):
    """Well-separated interior abscissae drawn from a fine grid."""
    cells = draw(
        st.lists(st.integers(1, 999), max_size=max_kinks, unique=True)
    )
    step = (hi - lo) / 1000.0
    return [lo + c * step for c in cells]


@st.composite
def plf(draw, lo=DOMAIN[0], hi=DOMAIN[1], max_kinks=6):
    """A continuous PLF on the fixed domain [lo, hi]."""
    interior = _interior_points(draw, lo, hi, max_kinks)
    xs = sorted([lo, hi] + interior)
    ys = [
        draw(st.floats(-50.0, 50.0, allow_nan=False, allow_infinity=False))
        for _ in xs
    ]
    return PiecewiseLinearFunction(list(zip(xs, ys)))


@st.composite
def monotone_plf(draw, lo=DOMAIN[0], hi=DOMAIN[1], max_kinks=5):
    """A strictly increasing PLF on [lo, hi] (an arrival-like function)."""
    interior = _interior_points(draw, lo, hi, max_kinks)
    xs = sorted([lo, hi] + interior)
    y = draw(st.floats(0.0, 10.0, allow_nan=False))
    ys = [y]
    for a, b in zip(xs, xs[1:]):
        slope = draw(st.floats(0.05, 3.0, allow_nan=False))
        y = y + slope * (b - a)
        ys.append(y)
    return MonotonePiecewiseLinear(list(zip(xs, ys)))


@st.composite
def daily_pattern(draw):
    cells = sorted(
        draw(st.lists(st.integers(1, 287), max_size=4, unique=True))
    )
    pieces = [(0.0, draw(st.floats(0.05, 2.0)))]
    pieces.extend(
        (c * 5.0, draw(st.floats(0.05, 2.0))) for c in cells
    )
    return DailySpeedPattern(pieces)


GRID_POINTS = [DOMAIN[0] + i * (DOMAIN[1] - DOMAIN[0]) / 40 for i in range(41)]


# ----------------------------------------------------------------------
# PLF algebra laws
# ----------------------------------------------------------------------
class TestPLFAlgebra:
    @given(plf(), plf())
    def test_addition_is_pointwise(self, f, g):
        h = f + g
        for x in GRID_POINTS:
            assert math.isclose(h(x), f(x) + g(x), abs_tol=1e-7)

    @given(plf(), plf())
    def test_addition_commutes(self, f, g):
        assert (f + g).equals_approx(g + f, tol=1e-7)

    @given(plf(), st.floats(-20, 20, allow_nan=False))
    def test_scalar_shift(self, f, c):
        g = f + c
        for x in GRID_POINTS[::5]:
            assert math.isclose(g(x), f(x) + c, abs_tol=1e-7)

    @given(plf())
    def test_simplify_is_pointwise_identity(self, f):
        g = f.simplify()
        for x in GRID_POINTS:
            assert math.isclose(g(x), f(x), abs_tol=1e-6)

    @given(plf())
    def test_restrict_preserves_values(self, f):
        g = f.restrict(20.0, 70.0)
        for x in GRID_POINTS:
            if 20.0 <= x <= 70.0:
                assert math.isclose(g(x), f(x), abs_tol=1e-7)

    @given(plf())
    def test_min_max_attained(self, f):
        values = [f(x) for x, _ in f.breakpoints]
        assert math.isclose(min(values), f.min_value(), abs_tol=1e-9)
        assert math.isclose(max(values), f.max_value(), abs_tol=1e-9)

    @given(plf())
    def test_argmin_attains_min(self, f):
        for lo, hi in f.argmin_intervals():
            assert math.isclose(f(lo), f.min_value(), abs_tol=1e-6)
            assert math.isclose(f(hi), f.min_value(), abs_tol=1e-6)

    @given(plf())
    def test_identity_roundtrip(self, f):
        assert f.plus_identity().minus_identity().equals_approx(f, tol=1e-7)


class TestMonotoneProperties:
    @given(monotone_plf())
    def test_inverse_roundtrip(self, f):
        inv = f.inverse()
        for x in GRID_POINTS[::4]:
            assert math.isclose(inv(f(x)), x, abs_tol=1e-6)

    @given(monotone_plf())
    def test_preimage_hits_value(self, f):
        y = 0.5 * (f.y_min + f.y_max)
        points = f.preimage_points(y)
        assert points
        for x in points:
            assert math.isclose(f(x), y, abs_tol=1e-6)

    @settings(suppress_health_check=[HealthCheck.too_slow])
    @given(monotone_plf(), st.data())
    def test_composition_pointwise(self, inner, data):
        lo, hi = inner.value_range
        outer = data.draw(monotone_plf(lo=lo - 1.0, hi=hi + 1.0))
        composed = outer.compose(inner)
        for x in GRID_POINTS[::4]:
            assert math.isclose(
                composed(x), outer(inner(x)), abs_tol=1e-6
            )

    @given(monotone_plf())
    def test_composition_preserves_monotonicity(self, inner):
        lo, hi = inner.value_range
        outer = MonotonePiecewiseLinear([(lo - 1, lo - 1), (hi + 1, hi + 1)])
        composed = outer.compose(inner)
        ys = [y for _x, y in composed.breakpoints]
        assert all(a <= b + 1e-9 for a, b in zip(ys, ys[1:]))


class TestEnvelopeProperties:
    @given(st.lists(plf(), min_size=1, max_size=5))
    def test_envelope_is_pointwise_min(self, fns):
        env = AnnotatedEnvelope(*DOMAIN)
        for i, f in enumerate(fns):
            env.add(f, tag=i)
        for x in GRID_POINTS:
            expected = min(f(x) for f in fns)
            assert math.isclose(env.value_at(x), expected, abs_tol=1e-6)

    @given(st.lists(plf(), min_size=1, max_size=5))
    def test_partition_covers_domain(self, fns):
        env = AnnotatedEnvelope(*DOMAIN)
        for i, f in enumerate(fns):
            env.add(f, tag=i)
        parts = env.partition()
        assert parts[0][0] == DOMAIN[0]
        assert math.isclose(parts[-1][1], DOMAIN[1], abs_tol=1e-9)
        for (_, end, _), (start, _, _) in zip(parts, parts[1:]):
            assert math.isclose(end, start, abs_tol=1e-9)

    @given(st.lists(plf(), min_size=1, max_size=5))
    def test_tag_owner_achieves_min(self, fns):
        env = AnnotatedEnvelope(*DOMAIN)
        for i, f in enumerate(fns):
            env.add(f, tag=i)
        for start, end, tag in env.partition():
            mid = 0.5 * (start + end)
            assert math.isclose(
                fns[tag](mid), env.value_at(mid), abs_tol=1e-6
            )


# ----------------------------------------------------------------------
# Travel-time machinery: FIFO and exactness
# ----------------------------------------------------------------------
class TestTravelTimeProperties:
    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    @given(
        daily_pattern(),
        st.floats(0.1, 20.0, allow_nan=False),
        st.floats(0.0, 1400.0, allow_nan=False),
    )
    def test_fifo(self, daily, distance, depart):
        cal = Calendar.single_category("d")
        pattern = CapeCodPattern({"d": daily})
        a1 = traverse(distance, pattern, cal, depart)
        a2 = traverse(distance, pattern, cal, depart + 1.0)
        assert a1 <= a2 + 1e-9

    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    @given(
        daily_pattern(),
        st.floats(0.1, 15.0, allow_nan=False),
        st.floats(0.0, 1200.0, allow_nan=False),
    )
    def test_arrival_function_matches_scalar(self, daily, distance, lo):
        cal = Calendar.single_category("d")
        pattern = CapeCodPattern({"d": daily})
        hi = lo + 90.0
        fn = edge_arrival_function(distance, pattern, cal, lo, hi)
        for i in range(11):
            t = lo + (hi - lo) * i / 10
            assert math.isclose(
                fn(t), traverse(distance, pattern, cal, t), abs_tol=1e-7
            )

    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    @given(daily_pattern(), st.floats(0.1, 15.0, allow_nan=False))
    def test_travel_time_bounded_by_speed_range(self, daily, distance):
        cal = Calendar.single_category("d")
        pattern = CapeCodPattern({"d": daily})
        t = traverse(distance, pattern, cal, 500.0) - 500.0
        assert distance / daily.max_speed() - 1e-9 <= t
        assert t <= distance / daily.min_speed() + 1e-9


# ----------------------------------------------------------------------
# Estimator admissibility on random queries
# ----------------------------------------------------------------------
_net = make_metro_network(MetroConfig(width=8, height=8, seed=11))
_naive = NaiveEstimator(_net)
_boundary = BoundaryNodeEstimator(_net, 3, 3)
_ids = sorted(_net.node_ids())


class TestEstimatorAdmissibility:
    @settings(max_examples=30, deadline=None)
    @given(
        st.sampled_from(_ids),
        st.sampled_from(_ids),
        st.floats(300.0, 700.0, allow_nan=False),
    )
    def test_bounds_never_exceed_truth(self, source, target, depart):
        assume(source != target)
        try:
            actual = fixed_departure_query(_net, source, target, depart).travel_time
        except NoPathError:
            assume(False)
        for estimator in (_naive, _boundary):
            estimator.prepare(target)
            assert estimator.bound(source) <= actual + 1e-9


# ----------------------------------------------------------------------
# Storage invariants
# ----------------------------------------------------------------------
class TestHilbertProperties:
    @settings(max_examples=60)
    @given(st.integers(0, 255), st.integers(0, 255))
    def test_roundtrip(self, x, y):
        assert hilbert_point(8, hilbert_index(8, x, y)) == (x, y)

    @settings(max_examples=60)
    @given(st.integers(0, 255 * 255))
    def test_index_in_range(self, d):
        x, y = hilbert_point(8, d)
        assert 0 <= x < 256 and 0 <= y < 256


class TestBPlusTreeModel:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["put", "del", "get"]),
                st.integers(0, 200),
                st.integers(0, 1 << 30),
            ),
            max_size=200,
        )
    )
    def test_equivalent_to_dict(self, ops):
        tree = BPlusTree(MemoryPageStore(128), 128)
        model: dict[int, int] = {}
        for op, key, value in ops:
            if op == "put":
                tree.insert(key, value)
                model[key] = value
            elif op == "del":
                assert tree.delete(key) == (key in model)
                model.pop(key, None)
            else:
                assert tree.get(key) == model.get(key)
        assert list(tree.items()) == sorted(model.items())
        tree.check_invariants()


class TestPointwiseMinimumProperties:
    @given(plf(), plf())
    def test_is_pointwise_min(self, f, g):
        from repro.func.piecewise import pointwise_minimum

        h = pointwise_minimum(f, g)
        for x in GRID_POINTS:
            assert math.isclose(h(x), min(f(x), g(x)), abs_tol=1e-6)

    @given(plf(), plf())
    def test_commutes(self, f, g):
        from repro.func.piecewise import pointwise_minimum

        assert pointwise_minimum(f, g).equals_approx(
            pointwise_minimum(g, f), tol=1e-6
        )

    @given(plf())
    def test_idempotent(self, f):
        from repro.func.piecewise import pointwise_minimum

        assert pointwise_minimum(f, f).equals_approx(f, tol=1e-9)

    @given(monotone_plf(), monotone_plf())
    def test_min_of_monotone_is_monotone(self, f, g):
        from repro.func.piecewise import pointwise_minimum

        h = pointwise_minimum(f, g)
        ys = [y for _x, y in h.breakpoints]
        assert all(a <= b + 1e-7 for a, b in zip(ys, ys[1:]))


class TestKnnProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.data())
    def test_knn_matches_per_candidate_optima(self, data):
        from repro.core.engine import IntAllFastestPaths
        from repro.core.knn import interval_knn
        from repro.timeutil import TimeInterval

        source = data.draw(st.sampled_from(_ids))
        candidates = data.draw(
            st.lists(
                st.sampled_from([n for n in _ids if n != source]),
                min_size=2,
                max_size=5,
                unique=True,
            )
        )
        window = TimeInterval(420.0, 540.0)
        result = interval_knn(_net, source, candidates, len(candidates), window)
        engine = IntAllFastestPaths(_net)
        for neighbor in result:
            exact = engine.single_fastest_path(source, neighbor.node, window)
            assert math.isclose(
                neighbor.min_travel_time,
                exact.optimal_travel_time,
                abs_tol=1e-6,
            )
