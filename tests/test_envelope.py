"""Unit tests for the annotated lower envelope (lower border function)."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import FunctionDomainError
from repro.func.envelope import AnnotatedEnvelope
from repro.func.piecewise import PiecewiseLinearFunction

PLF = PiecewiseLinearFunction


class TestEmptyEnvelope:
    def test_is_empty(self):
        env = AnnotatedEnvelope(0.0, 10.0)
        assert env.is_empty

    def test_value_is_inf(self):
        env = AnnotatedEnvelope(0.0, 10.0)
        assert env.value_at(5.0) == math.inf

    def test_max_min_are_inf(self):
        env = AnnotatedEnvelope(0.0, 10.0)
        assert env.max_value() == math.inf
        assert env.min_value() == math.inf

    def test_as_function_raises(self):
        with pytest.raises(FunctionDomainError):
            AnnotatedEnvelope(0.0, 10.0).as_function()

    def test_partition_empty(self):
        assert AnnotatedEnvelope(0.0, 10.0).partition() == []

    def test_rejects_reversed_domain(self):
        with pytest.raises(FunctionDomainError):
            AnnotatedEnvelope(10.0, 0.0)

    def test_value_outside_domain_raises(self):
        with pytest.raises(FunctionDomainError):
            AnnotatedEnvelope(0.0, 10.0).value_at(11.0)


class TestSingleFunction:
    def test_add_first(self):
        env = AnnotatedEnvelope(0.0, 10.0)
        assert env.add(PLF.constant(0.0, 10.0, 5.0), tag="a")
        assert not env.is_empty
        assert env.value_at(3.0) == 5.0
        assert env.tag_at(3.0) == "a"

    def test_max_min(self):
        env = AnnotatedEnvelope(0.0, 10.0)
        env.add(PLF([(0.0, 2.0), (10.0, 8.0)]), tag="a")
        assert env.min_value() == 2.0
        assert env.max_value() == 8.0

    def test_function_must_cover_domain(self):
        env = AnnotatedEnvelope(0.0, 10.0)
        with pytest.raises(FunctionDomainError):
            env.add(PLF.constant(0.0, 5.0, 1.0), tag="a")

    def test_partition_single(self):
        env = AnnotatedEnvelope(0.0, 10.0)
        env.add(PLF.constant(0.0, 10.0, 5.0), tag="a")
        assert env.partition() == [(0.0, 10.0, "a")]


class TestTwoFunctions:
    def test_constant_below_wins_everywhere(self):
        env = AnnotatedEnvelope(0.0, 10.0)
        env.add(PLF.constant(0.0, 10.0, 5.0), tag="a")
        assert env.add(PLF.constant(0.0, 10.0, 3.0), tag="b")
        assert env.value_at(5.0) == 3.0
        assert env.partition() == [(0.0, 10.0, "b")]

    def test_constant_above_changes_nothing(self):
        env = AnnotatedEnvelope(0.0, 10.0)
        env.add(PLF.constant(0.0, 10.0, 3.0), tag="a")
        assert not env.add(PLF.constant(0.0, 10.0, 5.0), tag="b")
        assert env.partition() == [(0.0, 10.0, "a")]

    def test_crossing_lines_split(self):
        env = AnnotatedEnvelope(0.0, 10.0)
        env.add(PLF([(0.0, 0.0), (10.0, 10.0)]), tag="up")
        assert env.add(PLF([(0.0, 10.0), (10.0, 0.0)]), tag="down")
        parts = env.partition()
        assert parts == [(0.0, 5.0, "up"), (5.0, 10.0, "down")]
        assert env.value_at(5.0) == pytest.approx(5.0)

    def test_paper_lower_border_shape(self):
        # Figure 7: constant 6 vs the V-shaped s=>n->e function; the border
        # is 6 / V / 6.
        env = AnnotatedEnvelope(0.0, 15.0)
        env.add(
            PLF([(0.0, 9.0), (4.0, 9.0), (10.0, 5.0), (13.0, 5.0), (15.0, 9.6667)]),
            tag="via_n",
        )
        env.add(PLF.constant(0.0, 15.0, 6.0), tag="direct")
        tags = [tag for _s, _e, tag in env.partition()]
        assert tags == ["direct", "via_n", "direct"]
        assert env.max_value() == pytest.approx(6.0)

    def test_tie_keeps_incumbent(self):
        env = AnnotatedEnvelope(0.0, 10.0)
        env.add(PLF.constant(0.0, 10.0, 4.0), tag="first")
        improved = env.add(PLF.constant(0.0, 10.0, 4.0), tag="second")
        assert not improved
        assert env.partition() == [(0.0, 10.0, "first")]

    def test_tangent_touch_does_not_split(self):
        env = AnnotatedEnvelope(0.0, 10.0)
        env.add(PLF.constant(0.0, 10.0, 5.0), tag="a")
        # V-shape touching 5 at exactly one point, above elsewhere.
        env.add(PLF([(0.0, 8.0), (5.0, 5.0), (10.0, 8.0)]), tag="b")
        assert [t for _s, _e, t in env.partition()] == ["a"]


class TestManyFunctions:
    def test_envelope_is_pointwise_min(self):
        fns = {
            "a": PLF([(0.0, 4.0), (10.0, 9.0)]),
            "b": PLF([(0.0, 9.0), (10.0, 4.0)]),
            "c": PLF.constant(0.0, 10.0, 6.0),
        }
        env = AnnotatedEnvelope(0.0, 10.0)
        for tag, fn in fns.items():
            env.add(fn, tag=tag)
        for i in range(101):
            x = 10.0 * i / 100.0
            expected = min(fn(x) for fn in fns.values())
            assert env.value_at(x) == pytest.approx(expected, abs=1e-9)

    def test_as_function_matches_value_at(self):
        env = AnnotatedEnvelope(0.0, 10.0)
        env.add(PLF([(0.0, 4.0), (10.0, 9.0)]), tag="a")
        env.add(PLF([(0.0, 9.0), (10.0, 4.0)]), tag="b")
        fn = env.as_function()
        for i in range(51):
            x = 10.0 * i / 50.0
            assert fn(x) == pytest.approx(env.value_at(x), abs=1e-9)

    def test_tags_listing(self):
        env = AnnotatedEnvelope(0.0, 10.0)
        env.add(PLF([(0.0, 0.0), (10.0, 10.0)]), tag="up")
        env.add(PLF([(0.0, 10.0), (10.0, 0.0)]), tag="down")
        assert env.tags() == ["up", "down"]

    def test_merge_tags(self):
        env = AnnotatedEnvelope(0.0, 10.0)
        env.add(PLF([(0.0, 0.0), (10.0, 10.0)]), tag="old")
        env.merge_tags([("old", "new")])
        assert env.tags() == ["new"]

    def test_zigzag_partition_merges_same_tag(self):
        env = AnnotatedEnvelope(0.0, 10.0)
        env.add(PLF([(0.0, 0.0), (5.0, 5.0), (10.0, 0.0)]), tag="tent")
        parts = env.partition()
        assert parts == [(0.0, 10.0, "tent")]


class TestInstantDomain:
    def test_single_instant(self):
        env = AnnotatedEnvelope(5.0, 5.0)
        env.add(PLF([(5.0, 7.0)]), tag="a")
        assert env.value_at(5.0) == 7.0
        env.add(PLF([(5.0, 3.0)]), tag="b")
        assert env.value_at(5.0) == 3.0
        assert env.tag_at(5.0) == "b"

    def test_instant_worse_not_taken(self):
        env = AnnotatedEnvelope(5.0, 5.0)
        env.add(PLF([(5.0, 3.0)]), tag="a")
        env.add(PLF([(5.0, 7.0)]), tag="b")
        assert env.tag_at(5.0) == "a"
