"""Tests pinning the exception hierarchy contract."""

from __future__ import annotations

import pytest

from repro import exceptions as exc


class TestHierarchy:
    @pytest.mark.parametrize(
        "error_type",
        [
            exc.FunctionDomainError,
            exc.FunctionShapeError,
            exc.NotMonotoneError,
            exc.PatternError,
            exc.NetworkError,
            exc.NodeNotFoundError,
            exc.EdgeNotFoundError,
            exc.NoPathError,
            exc.QueryError,
            exc.StorageError,
            exc.PageOverflowError,
            exc.EstimatorError,
        ],
    )
    def test_all_derive_from_base(self, error_type):
        assert issubclass(error_type, exc.ReproError)

    def test_not_monotone_is_shape_error(self):
        assert issubclass(exc.NotMonotoneError, exc.FunctionShapeError)

    def test_node_not_found_is_keyerror(self):
        # So dict-style callers can catch KeyError.
        assert issubclass(exc.NodeNotFoundError, KeyError)
        err = exc.NodeNotFoundError(42)
        assert err.node_id == 42
        assert "42" in str(err)

    def test_edge_not_found_carries_endpoints(self):
        err = exc.EdgeNotFoundError(1, 2)
        assert (err.source, err.target) == (1, 2)

    def test_no_path_carries_endpoints(self):
        err = exc.NoPathError(3, 4)
        assert (err.source, err.target) == (3, 4)
        assert "3" in str(err) and "4" in str(err)

    def test_page_overflow_is_storage_error(self):
        assert issubclass(exc.PageOverflowError, exc.StorageError)

    def test_single_catch_all(self):
        with pytest.raises(exc.ReproError):
            raise exc.QueryError("anything")
