"""Unit tests for the page-based B+-tree."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import StorageError
from repro.storage.bptree import BPlusTree
from repro.storage.buffer import MemoryPageStore

PAGE = 256


@pytest.fixture
def tree():
    return BPlusTree(MemoryPageStore(PAGE), PAGE)


class TestBasics:
    def test_empty(self, tree):
        assert tree.get(1) is None
        assert 1 not in tree
        assert len(tree) == 0
        assert list(tree.items()) == []

    def test_insert_get(self, tree):
        tree.insert(5, 50)
        assert tree.get(5) == 50
        assert 5 in tree

    def test_overwrite(self, tree):
        tree.insert(5, 50)
        tree.insert(5, 99)
        assert tree.get(5) == 99
        assert len(tree) == 1

    def test_ordered_items(self, tree):
        for k in (5, 1, 9, 3):
            tree.insert(k, k * 10)
        assert list(tree.items()) == [(1, 10), (3, 30), (5, 50), (9, 90)]

    def test_range_scan(self, tree):
        for k in range(20):
            tree.insert(k, k)
        assert [k for k, _v in tree.items(5, 9)] == [5, 6, 7, 8, 9]

    def test_range_scan_empty(self, tree):
        tree.insert(1, 1)
        assert list(tree.items(5, 9)) == []

    def test_rejects_tiny_pages(self):
        with pytest.raises(StorageError):
            BPlusTree(MemoryPageStore(64), 24)


class TestSplitting:
    def test_many_sequential_inserts(self, tree):
        n = 2000
        for k in range(n):
            tree.insert(k, k * 2)
        tree.check_invariants()
        assert len(tree) == n
        for k in range(0, n, 97):
            assert tree.get(k) == k * 2

    def test_many_reverse_inserts(self, tree):
        for k in range(1500, 0, -1):
            tree.insert(k, k)
        tree.check_invariants()
        assert [k for k, _ in tree.items()][:5] == [1, 2, 3, 4, 5]

    def test_random_inserts_model_check(self, tree):
        rng = random.Random(1)
        model = {}
        for _ in range(3000):
            k = rng.randrange(10000)
            v = rng.randrange(1 << 50)
            tree.insert(k, v)
            model[k] = v
        tree.check_invariants()
        assert list(tree.items()) == sorted(model.items())

    def test_root_grows_multiple_levels(self):
        store = MemoryPageStore(128)
        tree = BPlusTree(store, 128)
        for k in range(500):
            tree.insert(k, k)
        tree.check_invariants()
        # With 128-byte pages a 500-key tree needs >= 3 levels -> many pages.
        assert store.page_count > 50


class TestDelete:
    def test_delete_existing(self, tree):
        tree.insert(5, 50)
        assert tree.delete(5)
        assert tree.get(5) is None

    def test_delete_missing(self, tree):
        assert not tree.delete(5)

    def test_delete_random_model_check(self, tree):
        rng = random.Random(2)
        model = {}
        keys = rng.sample(range(50000), 1200)
        for k in keys:
            tree.insert(k, k)
            model[k] = k
        for k in rng.sample(keys, 800):
            assert tree.delete(k)
            del model[k]
        tree.check_invariants()
        assert list(tree.items()) == sorted(model.items())

    def test_scan_skips_emptied_leaves(self, tree):
        for k in range(300):
            tree.insert(k, k)
        for k in range(100, 200):
            tree.delete(k)
        keys = [k for k, _ in tree.items()]
        assert keys == list(range(100)) + list(range(200, 300))


class TestBulkLoad:
    def test_matches_incremental(self):
        items = [(k, k * 3) for k in range(0, 4000, 3)]
        store = MemoryPageStore(PAGE)
        bulk = BPlusTree.bulk_load(store, PAGE, items)
        bulk.check_invariants()
        assert list(bulk.items()) == items
        assert bulk.get(3) == 9
        assert bulk.get(4) is None

    def test_empty(self):
        store = MemoryPageStore(PAGE)
        tree = BPlusTree.bulk_load(store, PAGE, [])
        assert list(tree.items()) == []

    def test_single_item(self):
        store = MemoryPageStore(PAGE)
        tree = BPlusTree.bulk_load(store, PAGE, [(7, 70)])
        assert tree.get(7) == 70

    def test_rejects_unsorted(self):
        store = MemoryPageStore(PAGE)
        with pytest.raises(StorageError):
            BPlusTree.bulk_load(store, PAGE, [(2, 0), (1, 0)])

    def test_rejects_duplicates(self):
        store = MemoryPageStore(PAGE)
        with pytest.raises(StorageError):
            BPlusTree.bulk_load(store, PAGE, [(1, 0), (1, 1)])

    def test_insert_after_bulk_load(self):
        store = MemoryPageStore(PAGE)
        tree = BPlusTree.bulk_load(store, PAGE, [(k, k) for k in range(0, 1000, 2)])
        for k in range(1, 1000, 20):
            tree.insert(k, k)
        tree.check_invariants()
        assert tree.get(41) == 41

    def test_uses_fill_factor(self):
        items = [(k, k) for k in range(1000)]
        dense_store = MemoryPageStore(PAGE)
        BPlusTree.bulk_load(dense_store, PAGE, items, fill=1.0)
        sparse_store = MemoryPageStore(PAGE)
        BPlusTree.bulk_load(sparse_store, PAGE, items, fill=0.5)
        assert sparse_store.page_count > dense_store.page_count


class TestPersistence:
    def test_reopen_via_root_page(self):
        store = MemoryPageStore(PAGE)
        tree = BPlusTree(store, PAGE)
        for k in range(500):
            tree.insert(k, k + 1)
        reopened = BPlusTree(store, PAGE, root=tree.root_page)
        assert reopened.get(123) == 124
        assert len(reopened) == 500
