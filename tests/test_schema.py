"""Unit tests for the Table 1 schema and its baselines."""

from __future__ import annotations

import pytest

from repro.patterns.categories import NON_WORKDAY, WORKDAY
from repro.patterns.schema import (
    SPEED_LIMITS_MPH,
    RoadClass,
    constant_speed_schema,
    table1_schema,
    uniform_schema,
)
from repro.timeutil import mph_to_mpm, parse_clock


class TestTable1Schema:
    @pytest.fixture(scope="class")
    def schema(self):
        return table1_schema()

    def test_covers_all_classes(self, schema):
        assert set(schema) == set(RoadClass)

    def test_non_workday_speed_limits(self, schema):
        for cls in RoadClass:
            daily = schema[cls].daily(NON_WORKDAY)
            assert daily.piece_count == 1
            assert daily.speed_at(0.0) == pytest.approx(
                mph_to_mpm(SPEED_LIMITS_MPH[cls])
            )

    def test_inbound_morning_rush(self, schema):
        daily = schema[RoadClass.INBOUND_HIGHWAY].daily(WORKDAY)
        assert daily.speed_at(parse_clock("8:00")) == pytest.approx(mph_to_mpm(20))
        assert daily.speed_at(parse_clock("6:59")) == pytest.approx(mph_to_mpm(65))
        assert daily.speed_at(parse_clock("10:00")) == pytest.approx(mph_to_mpm(65))

    def test_inbound_not_slow_in_evening(self, schema):
        daily = schema[RoadClass.INBOUND_HIGHWAY].daily(WORKDAY)
        assert daily.speed_at(parse_clock("17:00")) == pytest.approx(mph_to_mpm(65))

    def test_outbound_evening_rush(self, schema):
        daily = schema[RoadClass.OUTBOUND_HIGHWAY].daily(WORKDAY)
        assert daily.speed_at(parse_clock("17:00")) == pytest.approx(mph_to_mpm(30))
        assert daily.speed_at(parse_clock("8:00")) == pytest.approx(mph_to_mpm(65))
        assert daily.speed_at(parse_clock("19:00")) == pytest.approx(mph_to_mpm(65))

    def test_local_city_both_rushes(self, schema):
        daily = schema[RoadClass.LOCAL_CITY].daily(WORKDAY)
        assert daily.speed_at(parse_clock("8:00")) == pytest.approx(mph_to_mpm(20))
        assert daily.speed_at(parse_clock("17:00")) == pytest.approx(mph_to_mpm(20))
        assert daily.speed_at(parse_clock("12:00")) == pytest.approx(mph_to_mpm(40))

    def test_local_outside_never_slows(self, schema):
        daily = schema[RoadClass.LOCAL_OUTSIDE].daily(WORKDAY)
        assert daily.piece_count == 1
        assert daily.speed_at(parse_clock("8:00")) == pytest.approx(mph_to_mpm(40))

    def test_rush_windows(self, schema):
        daily = schema[RoadClass.INBOUND_HIGHWAY].daily(WORKDAY)
        # The slowdown is exactly [7:00, 10:00).
        assert daily.speed_at(parse_clock("7:00")) == pytest.approx(mph_to_mpm(20))
        assert daily.speed_at(parse_clock("9:59")) == pytest.approx(mph_to_mpm(20))
        assert daily.speed_at(parse_clock("10:00")) == pytest.approx(mph_to_mpm(65))


class TestBaselineSchemas:
    def test_constant_speed_schema_is_constant(self):
        for pattern in constant_speed_schema().values():
            assert pattern.is_constant()

    def test_constant_speed_matches_limits(self):
        schema = constant_speed_schema()
        for cls in RoadClass:
            assert schema[cls].daily(WORKDAY).speed_at(
                parse_clock("8:00")
            ) == pytest.approx(mph_to_mpm(SPEED_LIMITS_MPH[cls]))

    def test_uniform_schema(self):
        schema = uniform_schema(2.0)
        for cls in RoadClass:
            assert schema[cls].max_speed() == 2.0
            assert schema[cls].min_speed() == 2.0

    def test_is_highway_property(self):
        assert RoadClass.INBOUND_HIGHWAY.is_highway
        assert RoadClass.OUTBOUND_HIGHWAY.is_highway
        assert not RoadClass.LOCAL_CITY.is_highway
        assert not RoadClass.LOCAL_OUTSIDE.is_highway
