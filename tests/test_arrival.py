"""Tests for arrival-interval allFP queries (the paper's "(or e)" variant)."""

from __future__ import annotations

import pytest

from repro.core.arrival import (
    ArrivalIntAllFastestPaths,
    reverse_boundary_estimator,
)
from repro.core.astar import fixed_departure_query, path_arrival_time
from repro.core.engine import IntAllFastestPaths
from repro.estimators.naive import NaiveEstimator
from repro.exceptions import NoPathError, QueryError
from repro.network.generator import (
    EXAMPLE_E,
    EXAMPLE_N,
    EXAMPLE_S,
    paper_example_network,
)
from repro.network.model import CapeCodNetwork
from repro.patterns.categories import Calendar
from repro.patterns.speed import CapeCodPattern
from repro.timeutil import TimeInterval, parse_clock


class TestOnPaperExample:
    """The paper's worked example, time-shifted to the arrival side."""

    @pytest.fixture(scope="class")
    def result(self, example_network):
        engine = ArrivalIntAllFastestPaths(example_network)
        window = TimeInterval(parse_clock("6:56"), parse_clock("7:10"))
        return engine.all_fastest_paths(EXAMPLE_S, EXAMPLE_E, window)

    def test_three_pieces(self, result):
        assert [e.path for e in result.entries] == [
            (EXAMPLE_S, EXAMPLE_E),
            (EXAMPLE_S, EXAMPLE_N, EXAMPLE_E),
            (EXAMPLE_S, EXAMPLE_E),
        ]

    def test_boundaries_are_forward_boundaries_shifted(self, result):
        # The direct road takes a constant 6 minutes, so the arrival-side
        # boundaries are the paper's leaving-side ones (6:58:30, 7:03:26)
        # plus 6 minutes.
        assert result.entries[0].interval.end == pytest.approx(
            parse_clock("6:58:30") + 6.0, abs=1e-6
        )
        assert result.entries[1].interval.end == pytest.approx(
            parse_clock("7:06") - 18.0 / 7.0 + 6.0, abs=1e-6
        )

    def test_departure_at_achieves_arrival(self, result, example_network):
        for a in result.interval.sample(9):
            path = result.path_at(a)
            leave = result.departure_at(a)
            assert path_arrival_time(
                example_network, path, leave
            ) == pytest.approx(a, abs=1e-6)

    def test_border_is_travel_time(self, result):
        for a in result.interval.sample(9):
            leave = result.departure_at(a)
            assert result.travel_time_at(a) == pytest.approx(
                a - leave, abs=1e-6
            )

    def test_singlefp_minimum(self, example_network):
        engine = ArrivalIntAllFastestPaths(example_network)
        window = TimeInterval(parse_clock("6:56"), parse_clock("7:10"))
        single = engine.single_fastest_path(EXAMPLE_S, EXAMPLE_E, window)
        # The 5-minute optimum (leave 7:00-7:03 via n) arrives 7:05-7:08.
        assert single.optimal_travel_time == pytest.approx(5.0)
        assert single.path == (EXAMPLE_S, EXAMPLE_N, EXAMPLE_E)


class TestLatestDepartureOptimality:
    """No departure later than the reported one can make the arrival."""

    WINDOW = TimeInterval(parse_clock("7:30"), parse_clock("9:30"))

    @pytest.mark.parametrize("pair", [(0, 255), (17, 240), (250, 3)])
    def test_departures_are_latest(self, metro_small, pair):
        engine = ArrivalIntAllFastestPaths(metro_small)
        result = engine.all_fastest_paths(pair[0], pair[1], self.WINDOW)
        for a in self.WINDOW.sample(9):
            leave = result.departure_at(a)
            later = fixed_departure_query(
                metro_small, pair[0], pair[1], leave + 0.05
            )
            assert later.arrival > a - 1e-6

    def test_travel_times_match_forward_engine(self, metro_small):
        """Backward travel(a) == forward travel(l) at l = departure(a)."""
        backward = ArrivalIntAllFastestPaths(metro_small)
        result = backward.all_fastest_paths(0, 255, self.WINDOW)
        for a in self.WINDOW.sample(7):
            leave = result.departure_at(a)
            forward = fixed_departure_query(metro_small, 0, 255, leave)
            assert forward.travel_time == pytest.approx(
                result.travel_time_at(a), abs=1e-6
            )

    def test_pruning_does_not_change_answers(self, metro_tiny):
        window = TimeInterval(parse_clock("7:30"), parse_clock("8:30"))
        pruned = ArrivalIntAllFastestPaths(metro_tiny, prune=True)
        literal = ArrivalIntAllFastestPaths(
            metro_tiny, prune=False, max_pops=200_000
        )
        a_res = pruned.all_fastest_paths(0, 99, window)
        b_res = literal.all_fastest_paths(0, 99, window)
        for a in window.sample(9):
            assert a_res.travel_time_at(a) == pytest.approx(
                b_res.travel_time_at(a), abs=1e-6
            )


class TestEstimators:
    WINDOW = TimeInterval(parse_clock("8:00"), parse_clock("9:00"))

    def test_reverse_boundary_estimator_agrees_with_naive(self, metro_small):
        naive_engine = ArrivalIntAllFastestPaths(
            metro_small, NaiveEstimator(metro_small)
        )
        bd_engine = ArrivalIntAllFastestPaths(
            metro_small, reverse_boundary_estimator(metro_small, 4, 4)
        )
        a_res = naive_engine.all_fastest_paths(3, 200, self.WINDOW)
        b_res = bd_engine.all_fastest_paths(3, 200, self.WINDOW)
        for a in self.WINDOW.sample(9):
            assert a_res.travel_time_at(a) == pytest.approx(
                b_res.travel_time_at(a), abs=1e-6
            )

    def test_reverse_boundary_prunes(self, metro_small):
        naive_engine = ArrivalIntAllFastestPaths(
            metro_small, NaiveEstimator(metro_small)
        )
        bd_engine = ArrivalIntAllFastestPaths(
            metro_small, reverse_boundary_estimator(metro_small, 4, 4)
        )
        a_res = naive_engine.all_fastest_paths(0, 255, self.WINDOW)
        b_res = bd_engine.all_fastest_paths(0, 255, self.WINDOW)
        assert (
            b_res.stats.expanded_paths
            <= a_res.stats.expanded_paths * 1.10 + 1
        )


class TestValidation:
    def test_same_source_target(self, metro_tiny):
        engine = ArrivalIntAllFastestPaths(metro_tiny)
        with pytest.raises(QueryError):
            engine.all_fastest_paths(0, 0, TimeInterval(0.0, 10.0))

    def test_no_path(self):
        cal = Calendar.single_category()
        pat = CapeCodPattern.constant(1.0, cal.categories.names)
        net = CapeCodNetwork(cal)
        for i in range(3):
            net.add_node(i, float(i), 0.0)
        net.add_edge(0, 1, 1.0, pat)
        net.add_edge(1, 2, 1.0, pat)
        engine = ArrivalIntAllFastestPaths(net)
        with pytest.raises(NoPathError):
            engine.all_fastest_paths(2, 0, TimeInterval(100.0, 110.0))

    def test_instant_arrival_window(self, example_network):
        engine = ArrivalIntAllFastestPaths(example_network)
        instant = TimeInterval(parse_clock("7:06"), parse_clock("7:06"))
        result = engine.all_fastest_paths(EXAMPLE_S, EXAMPLE_E, instant)
        assert len(result.entries) == 1
        # Arriving at 7:06 the best is via n: leave 7:01, 5 minutes.
        assert result.travel_time_at(parse_clock("7:06")) == pytest.approx(5.0)


class TestSymmetryWithForwardEngine:
    def test_backward_minimum_bounds_forward(self, metro_tiny):
        """Every departure in the leaving window arrives inside a wide
        enough arrival window, so the backward optimum (which additionally
        admits *earlier* departures) can only be at least as good."""
        leave = TimeInterval(parse_clock("7:00"), parse_clock("9:00"))
        forward = IntAllFastestPaths(metro_tiny).single_fastest_path(
            0, 99, leave
        )
        arrive = TimeInterval(
            parse_clock("7:00"), parse_clock("9:00") + 120.0
        )
        backward = ArrivalIntAllFastestPaths(metro_tiny).single_fastest_path(
            0, 99, arrive
        )
        assert (
            backward.optimal_travel_time
            <= forward.optimal_travel_time + 1e-6
        )

    def test_exact_symmetry_under_constant_speeds(self, grid5):
        """With time-invariant speeds travel time is departure-independent,
        so the two optima coincide exactly."""
        leave = TimeInterval(0.0, 60.0)
        forward = IntAllFastestPaths(grid5).single_fastest_path(0, 24, leave)
        arrive = TimeInterval(0.0, 120.0)
        backward = ArrivalIntAllFastestPaths(grid5).single_fastest_path(
            0, 24, arrive
        )
        assert backward.optimal_travel_time == pytest.approx(
            forward.optimal_travel_time, abs=1e-9
        )
