"""Unit tests for result types: formatting, serialization, helpers."""

from __future__ import annotations

import json

import pytest

from repro.core.results import (
    AllFPEntry,
    AllFPResult,
    FixedPathResult,
    SearchStats,
    SingleFPResult,
    merge_adjacent_entries,
)
from repro.func.piecewise import PiecewiseLinearFunction
from repro.timeutil import TimeInterval, parse_clock

PLF = PiecewiseLinearFunction


@pytest.fixture
def stats():
    return SearchStats(
        expanded_paths=10,
        distinct_nodes=7,
        labels_generated=25,
        pruned_dominated=3,
        pruned_bound=2,
        max_queue_size=9,
        page_reads=4,
    )


@pytest.fixture
def allfp(stats):
    interval = TimeInterval(parse_clock("7:00"), parse_clock("8:00"))
    mid = parse_clock("7:30")
    return AllFPResult(
        source=1,
        target=9,
        interval=interval,
        entries=(
            AllFPEntry(TimeInterval(interval.start, mid), (1, 2, 9)),
            AllFPEntry(TimeInterval(mid, interval.end), (1, 3, 9)),
        ),
        border=PLF(
            [(interval.start, 10.0), (mid, 6.0), (interval.end, 8.0)]
        ),
        stats=stats,
    )


class TestSearchStats:
    def test_as_dict_keys(self, stats):
        d = stats.as_dict()
        assert d["expanded_paths"] == 10
        assert d["page_reads"] == 4
        assert d["breakpoints_allocated"] == 0
        assert d["edge_cache_hits"] == 0
        assert d["timed_out"] is False
        assert d["bound_evaluations"] == 0
        assert d["kernel_backend"] in ("array", "numpy", "legacy")
        assert len(d) == 15

    def test_default_zeroed(self):
        assert SearchStats().expanded_paths == 0


class TestFixedPathResult:
    def test_travel_time(self, stats):
        result = FixedPathResult(1, 9, 100.0, (1, 2, 9), 106.5, stats)
        assert result.travel_time == pytest.approx(6.5)

    def test_str(self, stats):
        result = FixedPathResult(1, 9, parse_clock("7:00"), (1, 9), 426.0, stats)
        text = str(result)
        assert "7:00" in text and "1 -> 9" in text and "6m" in text


class TestSingleFPResult:
    @pytest.fixture
    def single(self, stats):
        interval = TimeInterval(parse_clock("7:00"), parse_clock("8:00"))
        fn = PLF([(interval.start, 10.0), (interval.end, 5.0)])
        return SingleFPResult(
            source=1,
            target=9,
            interval=interval,
            path=(1, 2, 9),
            travel_time_function=fn,
            optimal_travel_time=5.0,
            optimal_intervals=((interval.end, interval.end),),
            stats=stats,
        )

    def test_best_leaving_time(self, single):
        assert single.best_leaving_time == parse_clock("8:00")

    def test_str(self, single):
        text = str(single)
        assert "singleFP 1->9" in text and "5m" in text

    def test_as_dict_json_roundtrip(self, single):
        blob = json.dumps(single.as_dict())
        back = json.loads(blob)
        assert back["path"] == [1, 2, 9]
        assert back["optimal_travel_time"] == 5.0
        assert back["stats"]["expanded_paths"] == 10


class TestAllFPResult:
    def test_len_iter(self, allfp):
        assert len(allfp) == 2
        assert [e.path for e in allfp] == [(1, 2, 9), (1, 3, 9)]

    def test_distinct_paths_order(self, allfp):
        assert allfp.distinct_paths == ((1, 2, 9), (1, 3, 9))

    def test_path_at(self, allfp):
        assert allfp.path_at(parse_clock("7:10")) == (1, 2, 9)
        assert allfp.path_at(parse_clock("7:45")) == (1, 3, 9)

    def test_path_at_outside_raises(self, allfp):
        with pytest.raises(ValueError):
            allfp.path_at(parse_clock("9:00"))

    def test_travel_time_at_clamps(self, allfp):
        inside = allfp.travel_time_at(parse_clock("7:00"))
        clamped = allfp.travel_time_at(parse_clock("6:00"))
        assert inside == clamped == pytest.approx(10.0)

    def test_best(self, allfp):
        leave, travel = allfp.best()
        assert leave == parse_clock("7:30")
        assert travel == pytest.approx(6.0)

    def test_str(self, allfp):
        text = str(allfp)
        assert "allFP 1->9" in text
        assert "2 sub-interval(s)" in text

    def test_as_dict_json_roundtrip(self, allfp):
        blob = json.dumps(allfp.as_dict())
        back = json.loads(blob)
        assert len(back["entries"]) == 2
        assert back["entries"][0]["path"] == [1, 2, 9]
        assert back["border"][0] == [parse_clock("7:00"), 10.0]


class TestMergeAdjacentEntries:
    def test_merges_runs(self):
        entries = [
            AllFPEntry(TimeInterval(0.0, 10.0), (1, 2)),
            AllFPEntry(TimeInterval(10.0, 20.0), (1, 2)),
            AllFPEntry(TimeInterval(20.0, 30.0), (1, 3)),
        ]
        merged = merge_adjacent_entries(entries)
        assert len(merged) == 2
        assert merged[0].interval.end == 20.0

    def test_keeps_alternation(self):
        entries = [
            AllFPEntry(TimeInterval(0.0, 10.0), (1, 2)),
            AllFPEntry(TimeInterval(10.0, 20.0), (1, 3)),
            AllFPEntry(TimeInterval(20.0, 30.0), (1, 2)),
        ]
        assert len(merge_adjacent_entries(entries)) == 3

    def test_empty(self):
        assert merge_adjacent_entries([]) == ()

    def test_entry_str(self):
        entry = AllFPEntry(
            TimeInterval(parse_clock("7:00"), parse_clock("7:30")), (1, 2)
        )
        assert str(entry) == "[7:00, 7:30]: 1 -> 2"
