"""Model-based fuzz test: random CCAM update sequences vs an in-memory twin.

Applies a long random sequence of edge/node/pattern updates to a writable
CCAM store and, in lockstep, to a plain dict model; afterwards (and after a
close/reopen cycle) the disk adjacency must equal the model exactly, and
the B+-tree invariants must hold.
"""

from __future__ import annotations

import random

import pytest

from repro.network.generator import MetroConfig, make_metro_network
from repro.patterns.categories import NON_WORKDAY, WORKDAY
from repro.patterns.speed import CapeCodPattern, DailySpeedPattern
from repro.storage.ccam import CCAMStore


def pattern_with_speed(mpm: float) -> CapeCodPattern:
    daily = DailySpeedPattern.constant(mpm)
    return CapeCodPattern({WORKDAY: daily, NON_WORKDAY: daily})


def snapshot(store_or_model) -> dict:
    """Normalised adjacency snapshot {node: {target: (dist, pattern)}}."""
    if isinstance(store_or_model, dict):
        return store_or_model
    snap: dict = {}
    for nid in store_or_model.node_ids():
        snap[nid] = {
            e.target: (round(e.distance, 9), e.pattern)
            for e in store_or_model.outgoing(nid)
        }
    return snap


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_random_update_sequence_matches_model(tmp_path, seed):
    network = make_metro_network(MetroConfig(width=8, height=8, seed=seed))
    path = tmp_path / f"fuzz-{seed}.ccam"
    CCAMStore.build(network, path).close()

    rng = random.Random(seed)
    model: dict = {}
    for nid in network.node_ids():
        model[nid] = {
            e.target: (round(e.distance, 9), e.pattern)
            for e in network.outgoing(nid)
        }
    locations = {n.id: n.location for n in network.nodes()}
    next_node_id = 10_000

    with CCAMStore.open(path, writable=True) as store:
        for step in range(300):
            op = rng.choice(
                ["pattern", "pattern", "insert_edge", "remove_edge", "insert_node"]
            )
            nodes = list(model)
            if op == "pattern":
                source = rng.choice(nodes)
                if not model[source]:
                    continue
                target = rng.choice(list(model[source]))
                new_pattern = pattern_with_speed(rng.choice([0.2, 0.5, 1.0, 1.5]))
                store.update_edge_pattern(source, target, new_pattern)
                dist, _old = model[source][target]
                model[source][target] = (dist, new_pattern)
            elif op == "insert_edge":
                source, target = rng.choice(nodes), rng.choice(nodes)
                if source == target or target in model[source]:
                    continue
                dist = round(rng.uniform(0.1, 2.0), 3)
                pattern = pattern_with_speed(1.0)
                store.insert_edge(source, target, dist, pattern)
                model[source][target] = (dist, pattern)
            elif op == "remove_edge":
                source = rng.choice(nodes)
                if not model[source]:
                    continue
                target = rng.choice(list(model[source]))
                store.remove_edge(source, target)
                del model[source][target]
            else:  # insert_node
                new_id = next_node_id
                next_node_id += 1
                x, y = rng.uniform(0, 2), rng.uniform(0, 2)
                anchor = rng.choice(nodes)
                pattern = pattern_with_speed(0.8)
                store.insert_node(
                    new_id, x, y, edges=[(anchor, 0.5, pattern, None)]
                )
                model[new_id] = {anchor: (0.5, pattern)}
                locations[new_id] = (x, y)

        # In-session fidelity.
        assert snapshot(store) == model
        assert store.node_count == len(model)
        assert store.edge_count == sum(len(adj) for adj in model.values())
        store._tree.check_invariants()
        for nid, loc in list(locations.items())[::17]:
            assert store.location(nid) == loc

    # Reopen read-only: everything persisted.
    with CCAMStore.open(path) as reopened:
        assert snapshot(reopened) == model
        assert reopened.node_count == len(model)


def test_remove_nodes_then_reopen(tmp_path):
    network = make_metro_network(MetroConfig(width=6, height=6, seed=9))
    path = tmp_path / "removal.ccam"
    CCAMStore.build(network, path).close()
    with CCAMStore.open(path, writable=True) as store:
        # Add then fully remove a batch of leaf nodes.
        for i in range(20):
            store.insert_node(5000 + i, float(i), 0.0)
        for i in range(0, 20, 2):
            store.remove_node(5000 + i)
        remaining = {5000 + i for i in range(1, 20, 2)}
        assert remaining <= set(store.node_ids())
        assert not ({5000 + i for i in range(0, 20, 2)} & set(store.node_ids()))
    with CCAMStore.open(path) as reopened:
        assert remaining <= set(reopened.node_ids())
        assert reopened.node_count == network.node_count + 10
