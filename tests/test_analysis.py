"""Tests for the experiment harness (at a deliberately tiny scale)."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    bench_network,
    bench_queries,
    bench_scale,
    constant_speed_experiment,
    fig9_experiment,
    fig10_experiment,
)
from repro.analysis.report import format_table
from repro.estimators.boundary import BoundaryNodeEstimator
from repro.estimators.naive import NaiveEstimator
from repro.network.generator import MetroConfig, make_metro_network
from repro.patterns.schema import constant_speed_schema
from repro.timeutil import parse_clock


@pytest.fixture(scope="module")
def net():
    return make_metro_network(MetroConfig(width=12, height=12, seed=8))


@pytest.fixture(scope="module")
def const_net():
    return make_metro_network(
        MetroConfig(width=12, height=12, seed=8), schema=constant_speed_schema()
    )


class TestScaleControl:
    def test_default_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale() == "medium"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "small")
        assert bench_scale() == "small"

    def test_invalid_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "galactic")
        with pytest.raises(ValueError):
            bench_scale()

    def test_queries_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_QUERIES", "3")
        assert bench_queries() == 3

    def test_bench_network_cached(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "small")
        bench_network.cache_clear()
        a = bench_network()
        b = bench_network()
        assert a is b
        bench_network.cache_clear()


class TestFig9:
    def test_rows_shape(self, net):
        estimators = {
            "naiveLB": NaiveEstimator(net),
            "bdLB": BoundaryNodeEstimator(net, 3, 3),
        }
        rows = fig9_experiment(
            net, estimators, "singleFP", bands=[(0.5, 1.5)], per_band=3
        )
        assert len(rows) == 2
        for row in rows:
            assert row.queries == 3
            assert row.mean_expanded > 0
            assert row.query_type == "singleFP"

    def test_bd_no_worse_than_naive(self, net):
        estimators = {
            "naiveLB": NaiveEstimator(net),
            "bdLB": BoundaryNodeEstimator(net, 3, 3),
        }
        rows = fig9_experiment(
            net, estimators, "allFP", bands=[(1.0, 2.0)], per_band=4
        )
        by_name = {r.estimator: r for r in rows}
        assert by_name["bdLB"].mean_expanded <= by_name["naiveLB"].mean_expanded + 1e-9

    def test_rejects_bad_query_type(self, net):
        with pytest.raises(ValueError):
            fig9_experiment(net, {}, "shortest", bands=[(1, 2)], per_band=1)


class TestFig10:
    def test_rows_and_monotonicity(self, net):
        rows = fig10_experiment(
            net,
            steps_minutes=[60.0, 10.0],
            count=3,
            min_distance=1.0,
            max_distance=2.5,
        )
        assert [r.step_minutes for r in rows] == [60.0, 10.0]
        # Discrete can never beat the exact method on travel time.
        for row in rows:
            assert row.travel_time_ratio >= 1.0 - 1e-9
        # Finer discretization is at least as accurate and costs more.
        assert rows[1].travel_time_ratio <= rows[0].travel_time_ratio + 1e-9
        assert rows[1].query_time_ratio >= rows[0].query_time_ratio


class TestConstantSpeed:
    def test_capecod_never_slower(self, net, const_net):
        rows = constant_speed_experiment(
            net,
            const_net,
            leave_times=[parse_clock("8:00")],
            leave_labels=["8:00"],
            count=4,
            min_distance=1.0,
            max_distance=2.5,
        )
        (row,) = rows
        assert row.mean_capecod_minutes <= row.mean_constant_minutes + 1e-9
        assert row.improvement_percent >= -1e-9

    def test_no_improvement_off_peak(self, net, const_net):
        rows = constant_speed_experiment(
            net,
            const_net,
            leave_times=[parse_clock("3:00")],
            leave_labels=["3:00"],
            count=4,
            min_distance=1.0,
            max_distance=2.5,
        )
        # At 3am nothing is congested: both planners find the same times.
        assert rows[0].improvement_percent == pytest.approx(0.0, abs=1e-6)


class TestReport:
    def test_format_table(self):
        text = format_table(
            ["col", "value"], [["a", 1.2345], ["b", 12345.6]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "col" in lines[1]
        assert any("1.23" in line for line in lines)
        assert any("12,346" in line for line in lines)

    def test_format_table_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text

    def test_nan_rendering(self):
        text = format_table(["x"], [[float("nan")]])
        assert "-" in text.splitlines()[-1]
