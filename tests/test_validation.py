"""Tests for the public validation helpers (and via them, more oracle runs)."""

from __future__ import annotations

import pytest

from repro.analysis.validation import (
    ValidationReport,
    validate_allfp,
    validate_arrival_allfp,
)
from repro.core.arrival import ArrivalIntAllFastestPaths
from repro.core.engine import IntAllFastestPaths
from repro.core.results import AllFPEntry, AllFPResult, SearchStats
from repro.func.piecewise import PiecewiseLinearFunction
from repro.network.generator import EXAMPLE_E, EXAMPLE_S
from repro.timeutil import TimeInterval, parse_clock


class TestValidateAllFP:
    def test_correct_answer_passes(self, example_network, example_interval):
        engine = IntAllFastestPaths(example_network)
        result = engine.all_fastest_paths(EXAMPLE_S, EXAMPLE_E, example_interval)
        report = validate_allfp(example_network, result, samples=31)
        assert report.ok
        assert report.samples == 31
        assert report.max_travel_time_error <= 1e-9

    def test_metro_answers_pass(self, metro_small):
        engine = IntAllFastestPaths(metro_small)
        interval = TimeInterval(parse_clock("6:30"), parse_clock("8:30"))
        for target in (100, 200, 255):
            result = engine.all_fastest_paths(0, target, interval)
            assert validate_allfp(metro_small, result, samples=11).ok

    def test_detects_fabricated_answer(self, example_network, example_interval):
        """A wrong border (claims 1 minute everywhere) must be caught."""
        fake = AllFPResult(
            source=EXAMPLE_S,
            target=EXAMPLE_E,
            interval=example_interval,
            entries=(
                AllFPEntry(example_interval, (EXAMPLE_S, EXAMPLE_E)),
            ),
            border=PiecewiseLinearFunction.constant(
                example_interval.start, example_interval.end, 1.0
            ),
            stats=SearchStats(),
        )
        report = validate_allfp(example_network, fake, samples=9)
        assert not report.ok
        assert report.max_travel_time_error > 1.0

    def test_detects_suboptimal_path_claim(
        self, example_network, example_interval
    ):
        """Border values correct, but the claimed path can't achieve them."""
        engine = IntAllFastestPaths(example_network)
        genuine = engine.all_fastest_paths(
            EXAMPLE_S, EXAMPLE_E, example_interval
        )
        tampered = AllFPResult(
            source=genuine.source,
            target=genuine.target,
            interval=genuine.interval,
            entries=(
                AllFPEntry(example_interval, (EXAMPLE_S, EXAMPLE_E)),
            ),  # claims the direct road is always fastest
            border=genuine.border,
            stats=genuine.stats,
        )
        report = validate_allfp(example_network, tampered, samples=9)
        assert not report.ok
        assert report.max_path_suboptimality > 0.5


class TestValidateArrivalAllFP:
    def test_correct_answer_passes(self, example_network):
        engine = ArrivalIntAllFastestPaths(example_network)
        window = TimeInterval(parse_clock("6:56"), parse_clock("7:10"))
        result = engine.all_fastest_paths(EXAMPLE_S, EXAMPLE_E, window)
        assert validate_arrival_allfp(example_network, result, samples=15).ok

    def test_metro_answer_passes(self, metro_tiny):
        engine = ArrivalIntAllFastestPaths(metro_tiny)
        window = TimeInterval(parse_clock("7:30"), parse_clock("9:00"))
        result = engine.all_fastest_paths(0, 99, window)
        assert validate_arrival_allfp(metro_tiny, result, samples=11).ok


class TestReport:
    def test_ok_thresholds(self):
        assert ValidationReport(5, 1e-9, 0.0).ok
        assert not ValidationReport(5, 1e-3, 0.0).ok
        assert not ValidationReport(5, 0.0, 1e-3).ok
