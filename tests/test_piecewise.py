"""Unit tests for PiecewiseLinearFunction — the core function algebra."""

from __future__ import annotations

import pytest

from repro.exceptions import FunctionDomainError, FunctionShapeError
from repro.func.piecewise import LinearPiece, PiecewiseLinearFunction

PLF = PiecewiseLinearFunction


class TestConstruction:
    def test_two_points(self):
        f = PLF([(0.0, 1.0), (10.0, 3.0)])
        assert f.domain == (0.0, 10.0)
        assert len(f) == 2

    def test_single_point(self):
        f = PLF([(5.0, 2.0)])
        assert f.is_instant
        assert f(5.0) == 2.0

    def test_rejects_empty(self):
        with pytest.raises(FunctionShapeError):
            PLF([])

    def test_rejects_decreasing_x(self):
        with pytest.raises(FunctionShapeError):
            PLF([(1.0, 0.0), (0.0, 0.0)])

    def test_rejects_nan(self):
        with pytest.raises(FunctionShapeError):
            PLF([(0.0, float("nan"))])

    def test_rejects_inf(self):
        with pytest.raises(FunctionShapeError):
            PLF([(0.0, float("inf")), (1.0, 0.0)])

    def test_merges_duplicate_x(self):
        f = PLF([(0.0, 1.0), (0.0, 1.0), (1.0, 2.0)])
        assert len(f) == 2

    def test_rejects_conflicting_duplicate_x(self):
        with pytest.raises(FunctionShapeError):
            PLF([(0.0, 1.0), (0.0, 2.0), (1.0, 2.0)])

    def test_constant_constructor(self):
        f = PLF.constant(0.0, 5.0, 7.0)
        assert f(0.0) == f(2.5) == f(5.0) == 7.0

    def test_constant_degenerate(self):
        f = PLF.constant(3.0, 3.0, 1.0)
        assert f.is_instant

    def test_constant_rejects_reversed(self):
        with pytest.raises(FunctionShapeError):
            PLF.constant(5.0, 0.0, 1.0)

    def test_linear_constructor(self):
        f = PLF.linear(0.0, 10.0, 2.0, 1.0)
        assert f(0.0) == 1.0
        assert f(10.0) == 21.0

    def test_from_callable(self):
        f = PLF.from_callable(lambda x: 2 * x, [0.0, 1.0, 2.0])
        assert f(1.5) == 3.0


class TestEvaluation:
    def test_interpolation(self):
        f = PLF([(0.0, 0.0), (10.0, 10.0)])
        assert f(3.0) == pytest.approx(3.0)

    def test_at_breakpoints(self):
        f = PLF([(0.0, 1.0), (5.0, 6.0), (10.0, 2.0)])
        assert f(0.0) == 1.0
        assert f(5.0) == 6.0
        assert f(10.0) == 2.0

    def test_outside_domain_raises(self):
        f = PLF([(0.0, 0.0), (1.0, 1.0)])
        with pytest.raises(FunctionDomainError):
            f(-0.5)
        with pytest.raises(FunctionDomainError):
            f(1.5)

    def test_instant_domain_check(self):
        f = PLF([(5.0, 2.0)])
        with pytest.raises(FunctionDomainError):
            f(5.5)

    def test_piece_at(self):
        f = PLF([(0.0, 0.0), (5.0, 10.0), (10.0, 10.0)])
        piece = f.piece_at(2.0)
        assert piece.slope == pytest.approx(2.0)
        assert piece.intercept == pytest.approx(0.0)
        flat = f.piece_at(7.0)
        assert flat.slope == pytest.approx(0.0)

    def test_pieces_iteration(self):
        f = PLF([(0.0, 0.0), (5.0, 10.0), (10.0, 10.0)])
        pieces = list(f.pieces())
        assert len(pieces) == 2
        assert pieces[0].x_start == 0.0
        assert pieces[1].x_end == 10.0

    def test_linear_piece_values(self):
        piece = LinearPiece(0.0, 10.0, 2.0, 1.0)
        assert piece.y_start == 1.0
        assert piece.y_end == 21.0


class TestExtrema:
    def test_min_max(self):
        f = PLF([(0.0, 3.0), (5.0, 1.0), (10.0, 4.0)])
        assert f.min_value() == 1.0
        assert f.max_value() == 4.0

    def test_argmin_point(self):
        f = PLF([(0.0, 3.0), (5.0, 1.0), (10.0, 4.0)])
        assert f.argmin() == 5.0
        assert f.argmin_intervals() == [(5.0, 5.0)]

    def test_argmin_flat_interval(self):
        # The paper's singleFP answer is a flat optimum on [7:00, 7:03].
        f = PLF([(0.0, 9.0), (4.0, 5.0), (7.0, 5.0), (10.0, 8.0)])
        assert f.argmin_intervals() == [(4.0, 7.0)]

    def test_argmin_multiple_intervals(self):
        f = PLF([(0.0, 1.0), (2.0, 5.0), (4.0, 1.0)])
        assert f.argmin_intervals() == [(0.0, 0.0), (4.0, 4.0)]

    def test_argmin_whole_domain(self):
        f = PLF.constant(0.0, 5.0, 2.0)
        assert f.argmin_intervals() == [(0.0, 5.0)]


class TestAlgebra:
    def test_add_scalar(self):
        f = PLF([(0.0, 1.0), (10.0, 3.0)]) + 5.0
        assert f(0.0) == 6.0
        assert f(10.0) == 8.0

    def test_radd_scalar(self):
        f = 5.0 + PLF([(0.0, 1.0), (10.0, 3.0)])
        assert f(0.0) == 6.0

    def test_add_functions(self):
        f = PLF([(0.0, 0.0), (10.0, 10.0)])
        g = PLF([(0.0, 5.0), (5.0, 0.0), (10.0, 5.0)])
        h = f + g
        assert h(0.0) == 5.0
        assert h(5.0) == 5.0
        assert h(10.0) == 15.0
        # Breakpoint union is preserved.
        assert h(2.5) == pytest.approx(2.5 + 2.5)

    def test_add_domain_mismatch(self):
        f = PLF([(0.0, 0.0), (10.0, 10.0)])
        g = PLF([(0.0, 0.0), (5.0, 5.0)])
        with pytest.raises(FunctionDomainError):
            f + g

    def test_sub_scalar(self):
        f = PLF([(0.0, 1.0), (10.0, 3.0)]) - 1.0
        assert f(0.0) == 0.0

    def test_sub_functions(self):
        f = PLF([(0.0, 5.0), (10.0, 15.0)])
        g = PLF([(0.0, 1.0), (10.0, 3.0)])
        assert (f - g)(10.0) == pytest.approx(12.0)

    def test_scale(self):
        f = PLF([(0.0, 1.0), (10.0, 3.0)]).scale(2.0)
        assert f(10.0) == 6.0

    def test_shift_x(self):
        f = PLF([(0.0, 1.0), (10.0, 3.0)]).shift_x(5.0)
        assert f.domain == (5.0, 15.0)
        assert f(5.0) == 1.0

    def test_minus_identity(self):
        arrival = PLF([(0.0, 6.0), (10.0, 16.0)])
        travel = arrival.minus_identity()
        assert travel(0.0) == 6.0
        assert travel(10.0) == 6.0

    def test_plus_identity_roundtrip(self):
        travel = PLF([(0.0, 6.0), (10.0, 2.0)])
        assert travel.plus_identity().minus_identity().equals_approx(travel)


class TestRestrictSimplify:
    def test_restrict_interior(self):
        f = PLF([(0.0, 0.0), (10.0, 10.0)])
        g = f.restrict(2.0, 7.0)
        assert g.domain == (2.0, 7.0)
        assert g(2.0) == 2.0
        assert g(7.0) == 7.0

    def test_restrict_keeps_interior_breakpoints(self):
        f = PLF([(0.0, 0.0), (5.0, 10.0), (10.0, 0.0)])
        g = f.restrict(2.0, 8.0)
        assert g(5.0) == 10.0

    def test_restrict_to_instant(self):
        f = PLF([(0.0, 0.0), (10.0, 10.0)])
        g = f.restrict(4.0, 4.0)
        assert g.is_instant
        assert g(4.0) == 4.0

    def test_restrict_outside_raises(self):
        f = PLF([(0.0, 0.0), (10.0, 10.0)])
        with pytest.raises(FunctionDomainError):
            f.restrict(-1.0, 5.0)

    def test_simplify_collinear(self):
        f = PLF([(0.0, 0.0), (5.0, 5.0), (10.0, 10.0)])
        assert len(f.simplify()) == 2

    def test_simplify_preserves_kinks(self):
        f = PLF([(0.0, 0.0), (5.0, 5.0), (10.0, 0.0)])
        assert len(f.simplify()) == 3

    def test_simplify_pointwise_identical(self):
        f = PLF([(0.0, 3.0), (1.0, 3.0), (2.0, 3.0), (10.0, 3.0)])
        g = f.simplify()
        assert g.equals_approx(f)
        assert len(g) == 2


class TestComparison:
    def test_equals_approx_true(self):
        f = PLF([(0.0, 0.0), (10.0, 10.0)])
        g = PLF([(0.0, 0.0), (5.0, 5.0), (10.0, 10.0)])
        assert f.equals_approx(g)

    def test_equals_approx_false_value(self):
        f = PLF([(0.0, 0.0), (10.0, 10.0)])
        g = PLF([(0.0, 0.0), (10.0, 11.0)])
        assert not f.equals_approx(g)

    def test_equals_approx_false_domain(self):
        f = PLF([(0.0, 0.0), (10.0, 10.0)])
        g = PLF([(0.0, 0.0), (9.0, 9.0)])
        assert not f.equals_approx(g)

    def test_dominates(self):
        low = PLF([(0.0, 1.0), (10.0, 1.0)])
        high = PLF([(0.0, 2.0), (10.0, 3.0)])
        assert low.dominates(high)
        assert not high.dominates(low)

    def test_dominates_crossing(self):
        f = PLF([(0.0, 0.0), (10.0, 10.0)])
        g = PLF([(0.0, 10.0), (10.0, 0.0)])
        assert not f.dominates(g)
        assert not g.dominates(f)

    def test_dominates_self(self):
        f = PLF([(0.0, 0.0), (10.0, 10.0)])
        assert f.dominates(f)
