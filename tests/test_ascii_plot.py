"""Tests for the ASCII chart renderer."""

from __future__ import annotations

import pytest

from repro.analysis.ascii_plot import render_function, render_partition
from repro.core.results import AllFPEntry
from repro.func.piecewise import PiecewiseLinearFunction
from repro.timeutil import TimeInterval

PLF = PiecewiseLinearFunction


class TestRenderFunction:
    def test_basic_shape(self):
        fn = PLF([(420.0, 5.0), (480.0, 10.0)])
        text = render_function(fn, width=20, height=5, title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert len(lines) == 5 + 3  # title + rows + axis + labels
        assert "7:00" in lines[-1]
        assert "8:00" in lines[-1]

    def test_one_marker_per_column(self):
        fn = PLF([(0.0, 0.0), (100.0, 10.0)])
        text = render_function(fn, width=16, height=6)
        rows = [line.split("|", 1)[1] for line in text.splitlines()[:-2] if "|" in line]
        for col in range(16):
            assert sum(1 for row in rows if row[col] == "*") == 1

    def test_min_max_labels(self):
        fn = PLF([(0.0, 2.0), (50.0, 8.0), (100.0, 2.0)])
        text = render_function(fn, width=20, height=5)
        assert "8.0" in text
        assert "2.0" in text

    def test_constant_function(self):
        fn = PLF.constant(0.0, 100.0, 3.0)
        text = render_function(fn, width=12, height=4)
        assert text.count("*") == 12

    def test_instant_domain(self):
        fn = PLF([(420.0, 5.0)])
        text = render_function(fn)
        assert "7:00" in text and "5.00" in text

    def test_rejects_tiny_canvas(self):
        fn = PLF.constant(0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            render_function(fn, width=4)
        with pytest.raises(ValueError):
            render_function(fn, height=2)

    def test_custom_marker(self):
        fn = PLF.constant(0.0, 10.0, 1.0)
        text = render_function(fn, width=10, height=3, marker="#")
        assert "#" in text and "*" not in text


class TestRenderPartition:
    def _entries(self):
        return [
            AllFPEntry(TimeInterval(0.0, 30.0), (1, 2)),
            AllFPEntry(TimeInterval(30.0, 60.0), (1, 3, 2)),
            AllFPEntry(TimeInterval(60.0, 90.0), (1, 2)),
        ]

    def test_letters_reused_for_same_path(self):
        text = render_partition(self._entries(), width=30)
        bar = text.splitlines()[0].strip("|")
        assert set(bar) == {"A", "B"}
        assert bar.startswith("A") and bar.endswith("A")

    def test_legend_lists_paths(self):
        text = render_partition(self._entries(), width=30)
        assert "A = 1 -> 2" in text
        assert "B = 1 -> 3 -> 2" in text

    def test_custom_labels(self):
        text = render_partition(
            self._entries(), width=30, labels={(1, 2): "X"}
        )
        assert "X = 1 -> 2" in text

    def test_empty(self):
        assert "empty" in render_partition([])

    def test_tiny_piece_still_visible(self):
        entries = [
            AllFPEntry(TimeInterval(0.0, 99.0), (1, 2)),
            AllFPEntry(TimeInterval(99.0, 99.5), (1, 3, 2)),
        ]
        text = render_partition(entries, width=20)
        assert "B" in text.splitlines()[0]
