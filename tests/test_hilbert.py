"""Unit tests for the Hilbert space-filling curve."""

from __future__ import annotations

import pytest

from repro.exceptions import StorageError
from repro.storage.hilbert import hilbert_index, hilbert_point, hilbert_value


class TestHilbertIndex:
    def test_order_one(self):
        # The canonical order-1 curve: (0,0) (0,1) (1,1) (1,0).
        assert hilbert_index(1, 0, 0) == 0
        assert hilbert_index(1, 0, 1) == 1
        assert hilbert_index(1, 1, 1) == 2
        assert hilbert_index(1, 1, 0) == 3

    def test_bijective_order_4(self):
        side = 16
        seen = set()
        for x in range(side):
            for y in range(side):
                d = hilbert_index(4, x, y)
                assert 0 <= d < side * side
                seen.add(d)
        assert len(seen) == side * side

    def test_inverse_roundtrip(self):
        for d in range(256):
            x, y = hilbert_point(4, d)
            assert hilbert_index(4, x, y) == d

    def test_adjacent_indices_are_adjacent_cells(self):
        # Locality: consecutive curve positions are grid neighbours.
        for d in range(255):
            x0, y0 = hilbert_point(4, d)
            x1, y1 = hilbert_point(4, d + 1)
            assert abs(x0 - x1) + abs(y0 - y1) == 1

    def test_out_of_grid_raises(self):
        with pytest.raises(StorageError):
            hilbert_index(2, 4, 0)
        with pytest.raises(StorageError):
            hilbert_index(2, 0, -1)

    def test_point_out_of_curve_raises(self):
        with pytest.raises(StorageError):
            hilbert_point(2, 16)


class TestHilbertValue:
    BBOX = (0.0, 0.0, 10.0, 10.0)

    def test_corners_distinct(self):
        values = {
            hilbert_value(x, y, self.BBOX, order=8)
            for x, y in [(0, 0), (0, 10), (10, 10), (10, 0)]
        }
        assert len(values) == 4

    def test_clamps_outside_points(self):
        inside = hilbert_value(0.0, 0.0, self.BBOX, order=8)
        outside = hilbert_value(-5.0, -5.0, self.BBOX, order=8)
        assert inside == outside

    def test_locality(self):
        a = hilbert_value(3.0, 3.0, self.BBOX, order=10)
        b = hilbert_value(3.01, 3.0, self.BBOX, order=10)
        c = hilbert_value(9.9, 9.9, self.BBOX, order=10)
        assert abs(a - b) < abs(a - c)

    def test_degenerate_bbox(self):
        # All nodes on one point must not crash.
        assert hilbert_value(1.0, 1.0, (1.0, 1.0, 1.0, 1.0)) == 0
