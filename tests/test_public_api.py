"""Contract tests for the top-level public API surface."""

from __future__ import annotations

import importlib
import inspect

import pytest

import repro


class TestAllExports:
    def test_every_name_in_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ lists missing name {name}"

    def test_no_private_names_in_all(self):
        private = [
            n for n in repro.__all__
            if n.startswith("_") and n != "__version__"
        ]
        assert not private

    def test_version_string(self):
        major, minor, patch = repro.__version__.split(".")
        assert all(part.isdigit() for part in (major, minor, patch))

    @pytest.mark.parametrize(
        "name",
        [
            "IntAllFastestPaths",
            "ArrivalIntAllFastestPaths",
            "HierarchicalEngine",
            "DiscreteTimeModel",
            "CCAMStore",
            "CapeCodNetwork",
            "NaiveEstimator",
            "BoundaryNodeEstimator",
            "TimeInterval",
            "interval_knn",
        ],
    )
    def test_headline_symbols_exported(self, name):
        assert name in repro.__all__

    def test_subpackages_importable(self):
        for module in (
            "repro.func",
            "repro.patterns",
            "repro.network",
            "repro.storage",
            "repro.estimators",
            "repro.core",
            "repro.hierarchy",
            "repro.workloads",
            "repro.analysis",
            "repro.cli",
        ):
            importlib.import_module(module)


class TestDocstrings:
    def test_all_public_classes_documented(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(name)
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_all_public_modules_documented(self):
        for module_name in (
            "repro",
            "repro.func.piecewise",
            "repro.func.monotone",
            "repro.func.envelope",
            "repro.patterns.travel_time",
            "repro.core.engine",
            "repro.core.arrival",
            "repro.core.knn",
            "repro.core.profile",
            "repro.storage.ccam",
            "repro.storage.bptree",
            "repro.estimators.boundary",
            "repro.hierarchy.index",
            "repro.hierarchy.engine",
        ):
            module = importlib.import_module(module_name)
            assert (module.__doc__ or "").strip(), module_name

    def test_engine_methods_documented(self):
        for method in (
            repro.IntAllFastestPaths.all_fastest_paths,
            repro.IntAllFastestPaths.single_fastest_path,
            repro.CCAMStore.build,
            repro.CCAMStore.find_node,
        ):
            assert (method.__doc__ or "").strip()
