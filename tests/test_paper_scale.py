"""Paper-scale smoke validation (opt-in: set REPRO_PAPER_SCALE=1).

Generates the 14,520-node network (the paper: 14,456 nodes, 20,461 directed
edges), runs one long rush-hour query with both estimators, and
cross-validates the answer.  Takes ~30 s; excluded from the default run.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.validation import validate_allfp
from repro.core.engine import IntAllFastestPaths
from repro.estimators.boundary import BoundaryNodeEstimator
from repro.estimators.naive import NaiveEstimator
from repro.network.generator import MetroConfig, make_metro_network
from repro.workloads.queries import distance_band_queries, morning_rush_interval

pytestmark = pytest.mark.skipif(
    not os.environ.get("REPRO_PAPER_SCALE"),
    reason="paper-scale validation is opt-in (REPRO_PAPER_SCALE=1)",
)


@pytest.fixture(scope="module")
def paper_net():
    return make_metro_network(MetroConfig.paper_scale(seed=42))


class TestPaperScale:
    def test_network_size_matches_paper(self, paper_net):
        # Paper: 14,456 nodes / 20,461 directed edges (Suffolk County).
        assert abs(paper_net.node_count - 14_456) < 200
        assert abs(paper_net.edge_count - 20_461) / 20_461 < 0.05
        assert paper_net.is_strongly_connected()

    def test_long_rush_query_both_estimators(self, paper_net):
        interval = morning_rush_interval(3.0)
        query = distance_band_queries(
            paper_net, [(7.0, 8.0)], 1, interval, seed=5
        )[(7.0, 8.0)][0]
        naive_engine = IntAllFastestPaths(paper_net, NaiveEstimator(paper_net))
        bd_engine = IntAllFastestPaths(
            paper_net, BoundaryNodeEstimator(paper_net, 8, 8)
        )
        naive = naive_engine.all_fastest_paths(
            query.source, query.target, query.interval
        )
        bd = bd_engine.all_fastest_paths(
            query.source, query.target, query.interval
        )
        assert bd.stats.expanded_paths < naive.stats.expanded_paths
        assert validate_allfp(paper_net, naive, samples=7).ok
        for instant in query.interval.sample(7):
            assert abs(
                naive.travel_time_at(instant) - bd.travel_time_at(instant)
            ) <= 1e-6
