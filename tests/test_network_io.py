"""Unit tests for network JSON serialization."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import NetworkError
from repro.network.generator import MetroConfig, make_metro_network, paper_example_network
from repro.network.io import load_network, save_network
from repro.patterns.travel_time import traverse
from repro.timeutil import parse_clock


@pytest.fixture
def metro(tmp_path):
    net = make_metro_network(MetroConfig(width=8, height=8, seed=2))
    path = tmp_path / "net.json"
    save_network(net, path)
    return net, path


class TestRoundTrip:
    def test_counts(self, metro):
        net, path = metro
        loaded = load_network(path)
        assert loaded.node_count == net.node_count
        assert loaded.edge_count == net.edge_count

    def test_locations_exact(self, metro):
        net, path = metro
        loaded = load_network(path)
        for nid in net.node_ids():
            assert loaded.location(nid) == net.location(nid)

    def test_edges_exact(self, metro):
        net, path = metro
        loaded = load_network(path)
        for e in net.edges():
            e2 = loaded.find_edge(e.source, e.target)
            assert e2.distance == e.distance
            assert e2.pattern == e.pattern
            assert e2.road_class == e.road_class

    def test_calendar_behaviour_preserved(self, metro):
        net, path = metro
        loaded = load_network(path)
        for day in range(14):
            assert loaded.calendar.category_for_day(
                day
            ) == net.calendar.category_for_day(day)

    def test_travel_times_preserved(self, metro):
        net, path = metro
        loaded = load_network(path)
        edge = next(net.edges())
        edge2 = loaded.find_edge(edge.source, edge.target)
        for clock in ("6:00", "8:00", "12:00"):
            t = parse_clock(clock)
            assert traverse(
                edge.distance, edge.pattern, net.calendar, t
            ) == pytest.approx(
                traverse(edge2.distance, edge2.pattern, loaded.calendar, t)
            )

    def test_paper_example_roundtrip(self, tmp_path):
        net = paper_example_network()
        path = tmp_path / "example.json"
        save_network(net, path)
        loaded = load_network(path)
        assert loaded.edge_count == 3
        assert loaded.find_edge(0, 2).distance == 6.0


class TestFormatValidation:
    def test_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(NetworkError):
            load_network(path)

    def test_rejects_wrong_version(self, tmp_path, metro):
        _net, src = metro
        doc = json.loads(src.read_text())
        doc["version"] = 999
        path = tmp_path / "v999.json"
        path.write_text(json.dumps(doc))
        with pytest.raises(NetworkError):
            load_network(path)

    def test_pattern_deduplication(self, metro):
        _net, path = metro
        doc = json.loads(path.read_text())
        # The metro schema has far fewer distinct patterns than edges.
        assert len(doc["patterns"]) < 10
        assert len(doc["edges"]) > 50
