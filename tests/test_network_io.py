"""Unit tests for network JSON serialization."""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import NetworkError
from repro.network.generator import MetroConfig, make_metro_network, paper_example_network
from repro.network.importer import parse_lines
from repro.network.io import load_network, save_network
from repro.patterns.travel_time import traverse
from repro.timeutil import parse_clock


@pytest.fixture
def metro(tmp_path):
    net = make_metro_network(MetroConfig(width=8, height=8, seed=2))
    path = tmp_path / "net.json"
    save_network(net, path)
    return net, path


class TestRoundTrip:
    def test_counts(self, metro):
        net, path = metro
        loaded = load_network(path)
        assert loaded.node_count == net.node_count
        assert loaded.edge_count == net.edge_count

    def test_locations_exact(self, metro):
        net, path = metro
        loaded = load_network(path)
        for nid in net.node_ids():
            assert loaded.location(nid) == net.location(nid)

    def test_edges_exact(self, metro):
        net, path = metro
        loaded = load_network(path)
        for e in net.edges():
            e2 = loaded.find_edge(e.source, e.target)
            assert e2.distance == e.distance
            assert e2.pattern == e.pattern
            assert e2.road_class == e.road_class

    def test_calendar_behaviour_preserved(self, metro):
        net, path = metro
        loaded = load_network(path)
        for day in range(14):
            assert loaded.calendar.category_for_day(
                day
            ) == net.calendar.category_for_day(day)

    def test_travel_times_preserved(self, metro):
        net, path = metro
        loaded = load_network(path)
        edge = next(net.edges())
        edge2 = loaded.find_edge(edge.source, edge.target)
        for clock in ("6:00", "8:00", "12:00"):
            t = parse_clock(clock)
            assert traverse(
                edge.distance, edge.pattern, net.calendar, t
            ) == pytest.approx(
                traverse(edge2.distance, edge2.pattern, loaded.calendar, t)
            )

    def test_paper_example_roundtrip(self, tmp_path):
        net = paper_example_network()
        path = tmp_path / "example.json"
        save_network(net, path)
        loaded = load_network(path)
        assert loaded.edge_count == 3
        assert loaded.find_edge(0, 2).distance == 6.0


coordinates = st.floats(
    min_value=-500.0,
    max_value=500.0,
    allow_nan=False,
    allow_infinity=False,
)


@st.composite
def importer_networks(draw):
    """A small random network built through the importer path.

    Nodes get arbitrary (finite) float coordinates; a random set of way
    chains connects them, mixing highway and local tags and both
    directions — exactly what ``repro-allfp import`` produces.
    """
    count = draw(st.integers(min_value=2, max_value=8))
    xs = draw(
        st.lists(coordinates, min_size=count, max_size=count, unique=True)
    )
    ys = draw(
        st.lists(coordinates, min_size=count, max_size=count, unique=True)
    )
    lines = [f"node {i} {xs[i]!r} {ys[i]!r}" for i in range(count)]
    chain_count = draw(st.integers(min_value=1, max_value=4))
    for _ in range(chain_count):
        chain = draw(
            st.lists(
                st.integers(min_value=0, max_value=count - 1),
                min_size=2,
                max_size=5,
            )
        )
        direction = draw(st.sampled_from(["oneway", "twoway"]))
        tag = draw(st.sampled_from(["motorway", "primary", "residential"]))
        lines.append(f"way {direction} {tag} {' '.join(map(str, chain))}")
    network, _stats = parse_lines(lines)
    return network


class TestRoundTripProperties:
    """write -> read -> write is byte-stable and loses nothing."""

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(network=importer_networks())
    def test_importer_output_round_trips_byte_stable(
        self, network, tmp_path_factory
    ):
        tmp = tmp_path_factory.mktemp("roundtrip")
        first, second = tmp / "a.json", tmp / "b.json"
        save_network(network, first)
        loaded = load_network(first)
        save_network(loaded, second)
        assert first.read_bytes() == second.read_bytes()
        assert loaded.node_count == network.node_count
        assert loaded.edge_count == network.edge_count
        for nid in network.node_ids():
            # Float coordinates survive exactly, not approximately.
            assert loaded.location(nid) == network.location(nid)
        for edge in network.edges():
            twin = loaded.find_edge(edge.source, edge.target)
            assert twin.distance == edge.distance
            assert twin.road_class == edge.road_class

    def test_metro_round_trip_byte_stable(self, tmp_path, metro):
        _net, path = metro
        loaded = load_network(path)
        again = tmp_path / "again.json"
        save_network(loaded, again)
        assert path.read_bytes() == again.read_bytes()


class TestFormatValidation:
    def test_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(NetworkError):
            load_network(path)

    def test_rejects_wrong_version(self, tmp_path, metro):
        _net, src = metro
        doc = json.loads(src.read_text())
        doc["version"] = 999
        path = tmp_path / "v999.json"
        path.write_text(json.dumps(doc))
        with pytest.raises(NetworkError):
            load_network(path)

    def test_pattern_deduplication(self, metro):
        _net, path = metro
        doc = json.loads(path.read_text())
        # The metro schema has far fewer distinct patterns than edges.
        assert len(doc["patterns"]) < 10
        assert len(doc["edges"]) > 50
