"""Property-based cross-checks of the array kernel.

Every kernel operator is verified three ways on randomized piecewise-linear
functions:

* against a **dense-sampling oracle** (the mathematical definition evaluated
  pointwise),
* against the **legacy implementation** (kernel disabled via
  :func:`repro.func.kernel.set_kernel_enabled`),
* on **degenerate inputs** — single-point domains and near-duplicate
  abscissae — that historically hide off-by-one sweeps.

Plus direct tests of the configuration surface: the MAX_BREAKPOINTS guard
(triggered through repeated composition) and the named continuity tolerance.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import FunctionShapeError
from repro.func import kernel
from repro.func.envelope import AnnotatedEnvelope
from repro.func.monotone import MonotonePiecewiseLinear
from repro.func.piecewise import (
    CONTINUITY_TOL,
    XTOL,
    YTOL,
    PiecewiseLinearFunction,
    pointwise_minimum,
)

LO, HI = 0.0, 10.0
#: Dense oracle grid over the shared domain.
GRID = [LO + i * (HI - LO) / 97 for i in range(98)]


@pytest.fixture
def legacy_mode():
    """Run the wrapped code with the kernel disabled; restore afterwards."""
    previous = kernel.set_kernel_enabled(False)
    yield
    kernel.set_kernel_enabled(previous)


def _with_kernel(flag: bool, fn):
    previous = kernel.set_kernel_enabled(flag)
    try:
        return fn()
    finally:
        kernel.set_kernel_enabled(previous)


# ----------------------------------------------------------------------
# Strategies.
# ----------------------------------------------------------------------

_Y = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)
# Interior abscissae include values snapped onto near-duplicate positions.
_X = st.floats(min_value=LO, max_value=HI, allow_nan=False)


@st.composite
def plf(draw) -> PiecewiseLinearFunction:
    """A random PLF on [LO, HI], occasionally with near-duplicate abscissae."""
    interior = draw(st.lists(_X, max_size=6))
    raw = [LO, *sorted(interior), HI]
    xs = [raw[0]]
    for x in raw[1:]:
        if x > xs[-1] + 2 * XTOL:
            xs.append(x)
    ys = [draw(_Y) for _ in xs]
    pts = list(zip(xs, ys))
    if draw(st.booleans()) and len(xs) > 2:
        # Shadow one interior point at distance ~XTOL/2 with a
        # continuity-compatible ordinate: dedupe territory.
        wiggle = draw(
            st.floats(min_value=-5e-7, max_value=5e-7, allow_nan=False)
        )
        pts.append((xs[1] + 4e-10, ys[1] + wiggle))
        pts.sort()
    return PiecewiseLinearFunction(pts)


@st.composite
def monotone(draw, lo: float = LO, hi: float = HI) -> MonotonePiecewiseLinear:
    """A strictly increasing PLF on [lo, hi] (invertible)."""
    interior = draw(st.lists(_X, max_size=6))
    span = hi - lo
    raw = sorted({lo, hi, *[lo + (x - LO) / (HI - LO) * span for x in interior]})
    xs = [raw[0]]
    for x in raw[1:]:
        if x > xs[-1] + XTOL:
            xs.append(x)
    deltas = [
        draw(st.floats(min_value=0.05, max_value=3.0, allow_nan=False))
        for _ in xs
    ]
    y = draw(st.floats(min_value=-20.0, max_value=20.0, allow_nan=False))
    pts = []
    for x, d in zip(xs, deltas):
        pts.append((x, y))
        y += d
    return MonotonePiecewiseLinear(pts)


# ----------------------------------------------------------------------
# Binary operators: add / min / dominates.
# ----------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(plf(), plf())
def test_add_matches_oracle_and_legacy(a, b):
    fused = _with_kernel(True, lambda: a + b)
    legacy = _with_kernel(False, lambda: a + b)
    for t in GRID:
        want = a(t) + b(t)
        assert fused(t) == pytest.approx(want, abs=1e-6)
        assert legacy(t) == pytest.approx(fused(t), abs=1e-6)


@settings(max_examples=60, deadline=None)
@given(plf(), plf())
def test_min_matches_oracle_and_legacy(a, b):
    fused = _with_kernel(True, lambda: pointwise_minimum(a, b))
    legacy = _with_kernel(False, lambda: pointwise_minimum(a, b))
    for t in GRID:
        want = min(a(t), b(t))
        assert fused(t) == pytest.approx(want, abs=1e-6)
        assert legacy(t) == pytest.approx(fused(t), abs=1e-6)
    # min never exceeds either input anywhere (including crossing points).
    for x, y in fused.breakpoints:
        assert y <= a(x) + 1e-6
        assert y <= b(x) + 1e-6


@settings(max_examples=60, deadline=None)
@given(plf(), plf())
def test_dominates_matches_legacy(a, b):
    fused = _with_kernel(True, lambda: a.dominates(b))
    legacy = _with_kernel(False, lambda: a.dominates(b))
    assert fused == legacy
    # Self-dominance always holds (the tie case).
    assert _with_kernel(True, lambda: a.dominates(a))


# ----------------------------------------------------------------------
# Monotone operators: compose / inverse.
# ----------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(st.data())
def test_compose_matches_oracle_and_legacy(data):
    inner = data.draw(monotone())
    lo, hi = inner.value_range
    outer = data.draw(monotone(lo - 1.0, hi + 1.0))
    fused = _with_kernel(True, lambda: outer.compose(inner))
    legacy = _with_kernel(False, lambda: outer.compose(inner))
    assert fused.x_min == pytest.approx(inner.x_min)
    assert fused.x_max == pytest.approx(inner.x_max)
    for t in GRID:
        want = outer(min(max(inner(t), outer.x_min), outer.x_max))
        assert fused(t) == pytest.approx(want, abs=1e-6)
        assert legacy(t) == pytest.approx(fused(t), abs=1e-6)


@settings(max_examples=60, deadline=None)
@given(monotone())
def test_inverse_roundtrip_and_legacy(f):
    fused = _with_kernel(True, f.inverse)
    legacy = _with_kernel(False, f.inverse)
    for t in GRID:
        y = f(t)
        assert fused(y) == pytest.approx(t, abs=1e-6)
        assert legacy(y) == pytest.approx(fused(y), abs=1e-6)


# ----------------------------------------------------------------------
# Reshaping: simplify / restrict.
# ----------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(plf())
def test_simplify_preserves_values(f):
    fused = _with_kernel(True, lambda: f.simplify(1e-9))
    legacy = _with_kernel(False, lambda: f.simplify(1e-9))
    assert fused.breakpoints == legacy.breakpoints
    for t in GRID:
        assert fused(t) == pytest.approx(f(t), abs=1e-6)


@settings(max_examples=60, deadline=None)
@given(plf(), st.floats(min_value=LO, max_value=HI), st.floats(min_value=LO, max_value=HI))
def test_restrict_matches_legacy(f, p, q):
    lo, hi = min(p, q), max(p, q)
    fused = _with_kernel(True, lambda: f.restrict(lo, hi))
    legacy = _with_kernel(False, lambda: f.restrict(lo, hi))
    assert fused.x_min == pytest.approx(legacy.x_min)
    assert fused.x_max == pytest.approx(legacy.x_max)
    steps = 20
    for i in range(steps + 1):
        t = lo + (hi - lo) * i / steps
        assert fused(t) == pytest.approx(f(t), abs=1e-6)
        assert legacy(t) == pytest.approx(fused(t), abs=1e-6)


# ----------------------------------------------------------------------
# Envelope fold.
# ----------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(st.lists(plf(), min_size=1, max_size=5))
def test_envelope_fold_matches_oracle_and_legacy(fns):
    def build():
        env = AnnotatedEnvelope(LO, HI)
        flags = [env.add(fn, tag=k) for k, fn in enumerate(fns)]
        return env, flags

    fused_env, fused_flags = _with_kernel(True, build)
    legacy_env, legacy_flags = _with_kernel(False, build)
    assert fused_flags == legacy_flags
    # The first fold always improves an empty envelope.
    assert fused_flags[0] is True
    for t in GRID:
        # The envelope dedupes abscissae within XTOL, so a crossing sliver
        # narrower than XTOL may legitimately be snapped away.  On functions
        # with near-vertical segments that snap moves the value by
        # slope * XTOL, so the oracle is checked as an interval: the fold's
        # value must fall between the true minimum's extremes over an
        # XTOL-wide neighbourhood of t.
        nbhd = [t, max(LO, t - 2e-9), min(HI, t + 2e-9)]
        want_lo = min(fn(s) for fn in fns for s in nbhd)
        want_hi = min(max(fn(s) for s in nbhd) for fn in fns)
        got = fused_env.value_at(t)
        assert want_lo - 1e-6 <= got <= want_hi + 1e-6
        assert legacy_env.value_at(t) == pytest.approx(got, abs=1e-6)


def test_envelope_fold_instant_domain():
    env = AnnotatedEnvelope(5.0, 5.0)
    assert env.add(PiecewiseLinearFunction([(5.0, 3.0)]), tag="a")
    assert not env.add(PiecewiseLinearFunction([(5.0, 3.0)]), tag="b")
    assert env.add(PiecewiseLinearFunction([(5.0, 1.0)]), tag="c")
    assert env.tag_at(5.0) == "c"
    assert env.value_at(5.0) == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Degenerate single-point domains.
# ----------------------------------------------------------------------

def test_single_point_add_and_min():
    a = PiecewiseLinearFunction([(5.0, 2.0)])
    b = PiecewiseLinearFunction([(5.0, 7.0)])
    assert (a + b)(5.0) == pytest.approx(9.0)
    assert pointwise_minimum(a, b)(5.0) == pytest.approx(2.0)
    assert a.dominates(b)
    assert not b.dominates(a)


def test_single_point_compose():
    inner = MonotonePiecewiseLinear([(5.0, 3.0)])
    outer = MonotonePiecewiseLinear([(2.0, 0.0), (4.0, 8.0)])
    out = outer.compose(inner)
    assert out(5.0) == pytest.approx(4.0)


# ----------------------------------------------------------------------
# Guard and configuration surface.
# ----------------------------------------------------------------------

def test_max_breakpoints_guard_via_repeated_composition():
    """Repeated composition fattens a function until the guard trips."""
    n = 60
    step = (HI - LO) / (n - 1)
    pts = []
    y = 0.0
    for i in range(n):
        pts.append((LO + i * step, y))
        y += 0.11 if i % 2 == 0 else 0.25
    f = MonotonePiecewiseLinear(pts)
    # An identity-like outer spanning f's range, equally fat.
    lo, hi = f.value_range
    ostep = (hi - lo) / (n - 1)
    outer = MonotonePiecewiseLinear(
        [(lo + i * ostep, lo + i * ostep) for i in range(n)]
    )
    previous = kernel.set_max_breakpoints(100)
    prev_mode = kernel.set_kernel_enabled(True)  # the guard is a kernel feature
    try:
        with pytest.raises(FunctionShapeError, match="MAX_BREAKPOINTS"):
            g = f
            for _ in range(50):
                g = outer.compose(g)  # breakpoints accumulate each round
    finally:
        kernel.set_max_breakpoints(previous)
        kernel.set_kernel_enabled(prev_mode)


def test_set_max_breakpoints_validates():
    with pytest.raises(ValueError):
        kernel.set_max_breakpoints(1)
    previous = kernel.set_max_breakpoints(500)
    assert kernel.get_max_breakpoints() == 500
    assert kernel.set_max_breakpoints(previous) == 500


def test_set_kernel_enabled_returns_previous():
    first = kernel.set_kernel_enabled(False)
    try:
        assert kernel.KERNEL_ENABLED is False
        assert kernel.set_kernel_enabled(first) is False
    finally:
        kernel.set_kernel_enabled(first)


def test_counters_delta():
    snap = kernel.COUNTERS.snapshot()
    _with_kernel(
        True,
        lambda: PiecewiseLinearFunction([(0.0, 1.0), (1.0, 2.0)])
        + PiecewiseLinearFunction([(0.0, 1.0), (1.0, 0.0)]),
    )
    bp, _merges = kernel.COUNTERS.delta(snap)
    assert bp >= 2


def test_continuity_tolerance_is_named_and_consistent():
    """Satellite fix: the dedupe tolerance is one named constant (1e-6)."""
    assert CONTINUITY_TOL == 1e-6
    # Just-inside the tolerance: duplicate abscissae merge fine.
    f = PiecewiseLinearFunction(
        [(0.0, 1.0), (5.0, 2.0), (5.0 + 1e-10, 2.0 + 5e-7), (10.0, 3.0)]
    )
    assert len(f.breakpoints) == 3
    # Beyond it: a genuine discontinuity is rejected.
    with pytest.raises(Exception):
        PiecewiseLinearFunction(
            [(0.0, 1.0), (5.0, 2.0), (5.0 + 1e-10, 2.1), (10.0, 3.0)]
        )


def test_legacy_mode_fixture_round_trips(legacy_mode):
    """With the kernel off, class ops still work (A/B baseline path)."""
    a = PiecewiseLinearFunction([(0.0, 1.0), (10.0, 3.0)])
    b = PiecewiseLinearFunction([(0.0, 2.0), (10.0, 2.0)])
    assert (a + b)(5.0) == pytest.approx(4.0)
    assert pointwise_minimum(a, b)(0.0) == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Numpy backend: bitwise parity with the array kernel.
#
# The numpy implementations replicate the array kernel's floating-point
# operation order exactly, so every answer must be bitwise identical —
# these tests compare with ``==``, not ``approx``.
# ----------------------------------------------------------------------

needs_numpy = pytest.mark.skipif(
    not kernel.numpy_available(), reason="numpy is not installed"
)


def _xy(fn) -> tuple[list[float], list[float]]:
    pts = fn.breakpoints
    return [p[0] for p in pts], [p[1] for p in pts]


def _np_op(name: str):
    module = kernel._load_numpy_backend()
    assert module is not None
    return getattr(module, name)


def _pair(name: str, *args):
    """``(array_result, numpy_result)`` for one dispatched op."""
    return kernel._ARRAY_IMPLS[name](*args), _np_op(name)(*args)


def _assert_kernel_invariants(xs: list[float], ys: list[float]) -> None:
    """Shape invariants every kernel output must satisfy (both backends)."""
    assert len(xs) == len(ys) >= 1
    for a, b in zip(xs, xs[1:]):
        assert b > a  # strictly increasing abscissae
    # Continuous by construction: materialising the pair must not trip the
    # CONTINUITY_TOL discontinuity check.
    PiecewiseLinearFunction(list(zip(xs, ys)))


@needs_numpy
class TestNumpyParity:
    @settings(max_examples=60, deadline=None)
    @given(plf(), plf())
    def test_merge_add_bitwise(self, a, b):
        want, got = _pair("merge_add", *_xy(a), *_xy(b))
        assert got == want
        _assert_kernel_invariants(*got)

    @settings(max_examples=60, deadline=None)
    @given(plf(), plf())
    def test_merge_min_bitwise(self, a, b):
        want, got = _pair("merge_min", *_xy(a), *_xy(b))
        assert got == want
        _assert_kernel_invariants(*got)

    @settings(max_examples=60, deadline=None)
    @given(plf(), plf())
    def test_comparisons_bitwise(self, a, b):
        axy, bxy = _xy(a), _xy(b)
        for name in ("lt_somewhere", "le_everywhere"):
            for left, right in ((axy, bxy), (bxy, axy), (axy, axy)):
                want, got = _pair(name, *left, *right, YTOL)
                assert got == want

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_compose_bitwise(self, data):
        inner = data.draw(monotone())
        lo, hi = inner.value_range
        outer = data.draw(monotone(lo - 1.0, hi + 1.0))
        want, got = _pair("compose", *_xy(outer), *_xy(inner))
        assert got == want
        _assert_kernel_invariants(*got)

    @settings(max_examples=60, deadline=None)
    @given(monotone())
    def test_inverse_bitwise(self, f):
        want, got = _pair("inverse", *_xy(f))
        assert got == want
        _assert_kernel_invariants(*got)

    def test_inverse_flat_raises_identically(self):
        xs, ys = [0.0, 4.0, 6.0, 10.0], [0.0, 1.0, 1.0, 2.0]
        with pytest.raises(Exception) as array_err:
            kernel._ARRAY_IMPLS["inverse"](xs, ys)
        with pytest.raises(Exception) as np_err:
            _np_op("inverse")(xs, ys)
        assert type(np_err.value) is type(array_err.value)
        assert str(np_err.value) == str(array_err.value)

    @settings(max_examples=60, deadline=None)
    @given(plf(), st.sampled_from([1e-9, 1e-3, 0.05]))
    def test_simplify_bitwise(self, f, tol):
        want, got = _pair("simplify", *_xy(f), tol)
        assert got == want
        _assert_kernel_invariants(*got)

    @settings(max_examples=60, deadline=None)
    @given(
        plf(),
        st.floats(min_value=LO, max_value=HI),
        st.floats(min_value=LO, max_value=HI),
    )
    def test_restrict_bitwise(self, f, p, q):
        lo, hi = min(p, q), max(p, q)
        want, got = _pair("restrict", *_xy(f), lo, hi)
        assert got == want
        _assert_kernel_invariants(*got)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(plf(), min_size=1, max_size=5))
    def test_envelope_fold_bitwise(self, fns):
        state_a: tuple = ([], [], [], [])
        state_n: tuple = ([], [], [], [])
        for tag, fn in enumerate(fns):
            xs, ys = _xy(fn)
            *state_a, improved_a = kernel._ARRAY_IMPLS["envelope_fold"](
                *state_a, xs, ys, tag, LO, HI
            )
            *state_n, improved_n = _np_op("envelope_fold")(
                *state_n, xs, ys, tag, LO, HI
            )
            assert improved_n == improved_a
            assert state_n == state_a

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_compose_many_bitwise_ragged(self, data):
        inners = data.draw(st.lists(monotone(), min_size=1, max_size=4))
        lo = min(f.value_range[0] for f in inners)
        hi = max(f.value_range[1] for f in inners)
        outer = data.draw(monotone(lo - 1.0, hi + 1.0))
        stacked = [_xy(f) for f in inners]
        want, got = _pair("compose_many", *_xy(outer), stacked)
        assert got == want
        for xs, ys in got:
            _assert_kernel_invariants(xs, ys)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(plf(), min_size=1, max_size=5))
    def test_merge_min_many_bitwise_ragged(self, fns):
        stacked = [_xy(f) for f in fns]
        want, got = _pair("merge_min_many", stacked)
        assert got == want
        _assert_kernel_invariants(*got)

    def test_merge_min_many_empty_raises_identically(self):
        with pytest.raises(ValueError) as array_err:
            kernel._ARRAY_IMPLS["merge_min_many"]([])
        with pytest.raises(ValueError) as np_err:
            _np_op("merge_min_many")([])
        assert str(np_err.value) == str(array_err.value)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(plf(), min_size=1, max_size=4))
    def test_envelope_fold_many_matches_loop(self, fns):
        """The stacked fold equals folding one function at a time."""
        stacked = [(*_xy(fn), tag) for tag, fn in enumerate(fns)]
        previous = kernel.set_backend("numpy")
        try:
            many = kernel.envelope_fold_many([], [], [], [], stacked, LO, HI)
            state: tuple = ([], [], [], [])
            improved_any = False
            for xs, ys, tag in stacked:
                *state, improved = kernel.envelope_fold(
                    *state, xs, ys, tag, LO, HI
                )
                improved_any = improved_any or improved
            assert many == (*state, improved_any)
        finally:
            kernel.set_backend(previous)


# ----------------------------------------------------------------------
# Backend selection and the numpy-absent fallback.
# ----------------------------------------------------------------------

class TestBackendSelection:
    def test_set_backend_round_trip(self):
        previous = kernel.get_backend()
        assert kernel.set_backend("array") == previous
        assert kernel.get_backend() == "array"
        kernel.set_backend(previous)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernel.set_backend("cuda")

    def test_active_backend_tracks_kernel_flag(self):
        assert kernel.active_backend() == kernel.get_backend()
        previous = kernel.set_kernel_enabled(False)
        try:
            assert kernel.active_backend() == "legacy"
        finally:
            kernel.set_kernel_enabled(previous)

    @needs_numpy
    def test_numpy_backend_installs_and_dispatches(self):
        previous = kernel.set_backend("numpy")
        try:
            assert kernel.get_backend() == "numpy"
            assert "kernel_np" in kernel.merge_min.__module__
            xs, ys = kernel.merge_min(
                [0.0, 10.0], [5.0, 1.0], [0.0, 10.0], [2.0, 2.0]
            )
            assert kernel.eval_at(xs, ys, 0.0) == pytest.approx(2.0)
        finally:
            kernel.set_backend(previous)

    def test_numpy_absent_falls_back_with_note(self, monkeypatch, capsys):
        """REPRO_FUNC_KERNEL=numpy without numpy degrades to 'array'."""
        import sys as _sys

        previous = kernel.get_backend()
        kernel.set_backend("array")
        # ``import numpy`` raises ImportError when sys.modules maps the
        # name to None — this simulates an environment without numpy even
        # if numpy is importable here.
        monkeypatch.setitem(_sys.modules, "numpy", None)
        try:
            assert not kernel.numpy_available()
            assert kernel.set_backend("numpy") == "array"
            assert kernel.get_backend() == "array"
            note = capsys.readouterr().err
            assert "numpy is unavailable" in note
            assert "falls back to 'array'" in note
            # The dispatched ops still answer (with the array impls).
            xs, ys = kernel.merge_min(
                [0.0, 10.0], [5.0, 1.0], [0.0, 10.0], [2.0, 2.0]
            )
            assert kernel.eval_at(xs, ys, 10.0) == pytest.approx(1.0)
        finally:
            monkeypatch.undo()
            kernel.set_backend(previous)
