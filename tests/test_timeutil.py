"""Unit tests for time representation and intervals."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import QueryError
from repro.timeutil import (
    MINUTES_PER_DAY,
    TimeInterval,
    day_index,
    days,
    format_clock,
    format_duration,
    hours,
    mph_to_mpm,
    parse_clock,
    time_of_day,
)


class TestConversions:
    def test_hours(self):
        assert hours(2) == 120.0

    def test_hours_fractional(self):
        assert hours(1.5) == 90.0

    def test_days(self):
        assert days(1) == 1440.0

    def test_mph_to_mpm(self):
        assert mph_to_mpm(60.0) == 1.0

    def test_mph_to_mpm_table1_inbound_rush(self):
        assert mph_to_mpm(20.0) == pytest.approx(1.0 / 3.0)


class TestParseClock:
    def test_basic(self):
        assert parse_clock("7:00") == 420.0

    def test_with_seconds(self):
        assert parse_clock("6:58:30") == 418.5

    def test_midnight(self):
        assert parse_clock("0:00") == 0.0

    def test_evening(self):
        assert parse_clock("16:30") == 990.0

    def test_day_offset(self):
        assert parse_clock("7:00", day=1) == 1440.0 + 420.0

    def test_whitespace_tolerated(self):
        assert parse_clock(" 7:05 ") == 425.0

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_clock("noon")

    def test_rejects_single_field(self):
        with pytest.raises(ValueError):
            parse_clock("7")

    def test_rejects_minutes_out_of_range(self):
        with pytest.raises(ValueError):
            parse_clock("7:61")

    def test_rejects_seconds_out_of_range(self):
        with pytest.raises(ValueError):
            parse_clock("7:00:60")


class TestFormatClock:
    def test_basic(self):
        assert format_clock(420.0) == "7:00"

    def test_seconds(self):
        assert format_clock(418.5) == "6:58:30"

    def test_suppresses_zero_seconds(self):
        assert format_clock(425.0) == "7:05"

    def test_without_seconds_flag(self):
        assert format_clock(418.5, with_seconds=False) == "6:58"

    def test_next_day_prefix(self):
        assert format_clock(1440.0 + 60.0) == "d1+1:00"

    def test_roundtrip(self):
        for text in ("0:00", "6:58:30", "12:34:56", "23:59"):
            assert format_clock(parse_clock(text)) == text

    def test_rounding_past_midnight(self):
        # 23:59:59.9 rounds up to the next day's 0:00.
        almost = MINUTES_PER_DAY - 1.0 / 600.0
        assert format_clock(almost) == "d1+0:00"


class TestFormatDuration:
    def test_minutes_only(self):
        assert format_duration(5.0) == "5m"

    def test_minutes_seconds(self):
        assert format_duration(5.5) == "5m 30s"

    def test_hours(self):
        assert format_duration(125.0) == "2h 05m"

    def test_seconds_only(self):
        assert format_duration(0.5) == "30s"

    def test_negative(self):
        assert format_duration(-5.0) == "-5m"


class TestDayHelpers:
    def test_time_of_day(self):
        assert time_of_day(1440.0 + 420.0) == pytest.approx(420.0)

    def test_day_index(self):
        assert day_index(0.0) == 0
        assert day_index(1439.9) == 0
        assert day_index(1440.0) == 1
        assert day_index(3000.0) == 2


class TestTimeInterval:
    def test_construction(self):
        interval = TimeInterval(10.0, 20.0)
        assert interval.length == 10.0
        assert not interval.is_instant

    def test_instant(self):
        interval = TimeInterval(10.0, 10.0)
        assert interval.is_instant
        assert interval.length == 0.0

    def test_rejects_reversed(self):
        with pytest.raises(QueryError):
            TimeInterval(20.0, 10.0)

    def test_rejects_non_finite(self):
        with pytest.raises(QueryError):
            TimeInterval(0.0, math.inf)

    def test_from_clock(self):
        interval = TimeInterval.from_clock("6:50", "7:05")
        assert interval.start == 410.0
        assert interval.end == 425.0

    def test_contains(self):
        interval = TimeInterval(10.0, 20.0)
        assert interval.contains(10.0)
        assert interval.contains(20.0)
        assert interval.contains(15.0)
        assert not interval.contains(9.0)
        assert not interval.contains(21.0)

    def test_clamp(self):
        interval = TimeInterval(10.0, 20.0)
        assert interval.clamp(5.0) == 10.0
        assert interval.clamp(25.0) == 20.0
        assert interval.clamp(15.0) == 15.0

    def test_intersect_overlapping(self):
        a = TimeInterval(0.0, 10.0)
        b = TimeInterval(5.0, 15.0)
        inter = a.intersect(b)
        assert inter is not None
        assert (inter.start, inter.end) == (5.0, 10.0)

    def test_intersect_disjoint(self):
        assert TimeInterval(0.0, 1.0).intersect(TimeInterval(2.0, 3.0)) is None

    def test_intersect_touching(self):
        inter = TimeInterval(0.0, 5.0).intersect(TimeInterval(5.0, 9.0))
        assert inter is not None
        assert inter.is_instant

    def test_sample_endpoints(self):
        samples = TimeInterval(0.0, 10.0).sample(3)
        assert samples == [0.0, 5.0, 10.0]

    def test_sample_single(self):
        assert TimeInterval(3.0, 9.0).sample(1) == [3.0]

    def test_sample_instant(self):
        assert TimeInterval(3.0, 3.0).sample(5) == [3.0]

    def test_sample_rejects_zero(self):
        with pytest.raises(ValueError):
            TimeInterval(0.0, 1.0).sample(0)

    def test_str(self):
        assert str(TimeInterval.from_clock("6:50", "7:05")) == "[6:50, 7:05]"

    def test_frozen(self):
        interval = TimeInterval(0.0, 1.0)
        with pytest.raises(AttributeError):
            interval.start = 5.0  # type: ignore[misc]
