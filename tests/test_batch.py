"""Batch query layer: core engine, service mode, HTTP endpoint, CLI verb."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.core.batch import (
    BatchResult,
    batch_fastest_times,
    batch_one_to_many,
)
from repro.core.engine import IntAllFastestPaths
from repro.core.runtime import SearchContext
from repro.exceptions import QueryError
from repro.serve import (
    AllFPService,
    HTTPClient,
    InProcessClient,
    QueryRequest,
    ServiceConfig,
    make_server,
    start_in_thread,
)
from repro.serve.http import MAX_BATCH_ITEMS
from repro.timeutil import TimeInterval


@pytest.fixture
def interval():
    return TimeInterval.from_clock("7:00", "8:00")


@pytest.fixture(scope="module")
def network_json(tmp_path_factory):
    path = tmp_path_factory.mktemp("batch-cli") / "net.json"
    code = main(
        ["generate", "--out", str(path), "--width", "10", "--height", "10"]
    )
    assert code == 0
    return path


@pytest.fixture
def service(metro_tiny):
    svc = AllFPService(metro_tiny, config=ServiceConfig(workers=2))
    yield svc
    svc.close()


@pytest.fixture
def http_service(metro_tiny):
    svc = AllFPService(metro_tiny, config=ServiceConfig(workers=2))
    server = make_server(svc, port=0)
    start_in_thread(server)
    host, port = server.server_address[:2]
    client = HTTPClient(f"http://{host}:{port}")
    yield svc, client
    server.shutdown()
    svc.close()


# ----------------------------------------------------------------------
# Core engine
# ----------------------------------------------------------------------
class TestBatchEngine:
    def test_matches_per_pair_allfp(self, metro_tiny, interval):
        """Batched optimum == the allFP border minimum, pair by pair."""
        pairs = [(0, 37), (0, 99), (5, 42), (0, 11)]
        result = batch_fastest_times(metro_tiny, pairs, interval)
        assert [(i.source, i.target) for i in result.items] == pairs
        assert result.groups == 2  # sources 0 and 5
        engine = IntAllFastestPaths(metro_tiny)
        for item in result.items:
            assert item.reachable and item.error is None
            allfp = engine.all_fastest_paths(
                item.source, item.target, interval
            )
            assert item.optimal_travel_time == pytest.approx(
                allfp.border.min_value(), abs=1e-6
            )

    def test_travel_time_function_and_intervals(self, metro_tiny, interval):
        result = batch_one_to_many(metro_tiny, 0, [99], interval)
        item = result.items[0]
        fn = item.travel_time_function
        assert fn is not None
        assert fn.min_value() == pytest.approx(item.optimal_travel_time)
        assert item.optimal_intervals
        lo, hi = item.optimal_intervals[0]
        assert interval.start <= lo <= hi <= interval.end

    def test_duplicate_pairs_each_answered(self, metro_tiny, interval):
        result = batch_fastest_times(
            metro_tiny, [(0, 9), (0, 9)], interval
        )
        assert len(result.items) == 2
        assert result.groups == 1
        assert result.items[0].optimal_travel_time == pytest.approx(
            result.items[1].optimal_travel_time
        )

    def test_one_search_per_source(self, metro_tiny, interval):
        """N same-source targets cost one profile search, not N."""
        many = batch_one_to_many(metro_tiny, 0, list(range(1, 21)), interval)
        one = batch_one_to_many(metro_tiny, 0, [1], interval)
        assert many.groups == 1
        assert many.stats.expanded_paths == one.stats.expanded_paths

    def test_shared_context_warms_edge_cache(self, metro_tiny, interval):
        ctx = SearchContext(metro_tiny)
        first = batch_one_to_many(metro_tiny, 0, [99], interval, context=ctx)
        second = batch_one_to_many(metro_tiny, 5, [99], interval, context=ctx)
        assert first.stats.edge_cache_hits == 0
        assert second.stats.edge_cache_hits > 0

    def test_unknown_target_unreachable_without_error(
        self, metro_tiny, interval
    ):
        result = batch_one_to_many(metro_tiny, 0, [10 ** 9], interval)
        item = result.items[0]
        assert not item.reachable
        assert item.error is None
        assert item.optimal_travel_time is None

    def test_unknown_source_fails_only_its_group(self, metro_tiny, interval):
        result = batch_fastest_times(
            metro_tiny, [(10 ** 9, 5), (0, 5)], interval
        )
        bad, good = result.items
        assert not bad.reachable
        assert bad.error is not None and "NodeNotFound" in bad.error
        assert good.reachable and good.error is None

    def test_exhausted_deadline_yields_error_items(self, metro_tiny, interval):
        result = batch_one_to_many(
            metro_tiny, 0, [5, 6], interval, deadline=0.0
        )
        assert result.stats.timed_out
        for item in result.items:
            assert item.error is not None and "QueryTimeout" in item.error

    def test_empty_batch_rejected(self, metro_tiny, interval):
        with pytest.raises(QueryError, match="at least one"):
            batch_fastest_times(metro_tiny, [], interval)

    def test_stats_and_as_dict(self, metro_tiny, interval):
        result = batch_fastest_times(metro_tiny, [(0, 9), (3, 7)], interval)
        assert result.stats.expanded_paths > 0
        assert result.stats.kernel_backend in ("array", "numpy", "legacy")
        blob = result.as_dict()
        assert blob["groups"] == 2
        assert len(blob["items"]) == 2
        assert blob["items"][0]["source"] == 0
        assert blob["items"][0]["travel_time_function"]
        assert blob["stats"]["expanded_paths"] > 0
        assert "pair(s)" in str(result)


# ----------------------------------------------------------------------
# Service mode
# ----------------------------------------------------------------------
class TestBatchService:
    def test_batch_mode(self, service, interval):
        response = service.batch([(0, 9), (3, 7)], interval)
        assert isinstance(response.result, BatchResult)
        assert len(response.result.items) == 2
        assert response.result.items[0].reachable

    def test_one_to_many_and_result_cache(self, service, interval):
        first = service.batch_one_to_many(0, [9, 10], interval)
        second = service.batch_one_to_many(0, [9, 10], interval)
        assert not first.cached
        assert second.cached

    def test_order_sensitive_cache_key(self, service, interval):
        forward = service.batch([(0, 9), (0, 10)], interval)
        reversed_ = service.batch([(0, 10), (0, 9)], interval)
        assert not reversed_.cached
        assert [i.target for i in forward.result.items] == [9, 10]
        assert [i.target for i in reversed_.result.items] == [10, 9]

    def test_request_validation(self, interval):
        with pytest.raises(QueryError, match="non-empty pairs"):
            QueryRequest(0, None, interval, "batch")

    def test_inprocess_client(self, service, interval):
        client = InProcessClient(service)
        response = client.batch([(0, 9)], interval)
        assert response.result.items[0].reachable

    def test_metrics_labelled_by_mode(self, service, interval):
        from repro.func import kernel

        service.batch([(0, 9)], interval)
        text = service.render_metrics()
        kb = f'kernel_backend="{kernel.active_backend()}"'
        assert f'responses_total{{{kb},mode="batch",status="ok"}}' in text


# ----------------------------------------------------------------------
# HTTP endpoint
# ----------------------------------------------------------------------
class TestBatchHTTP:
    def test_items_form(self, http_service, interval):
        _, client = http_service
        status, body = client.batch([(0, 9), (3, 7)], interval)
        assert status == 200
        items = body["result"]["items"]
        assert [(i["source"], i["target"]) for i in items] == [(0, 9), (3, 7)]
        assert items[0]["reachable"] is True
        assert items[0]["optimal_travel_time"] > 0
        assert body["result"]["stats"]["kernel_backend"] in (
            "array",
            "numpy",
            "legacy",
        )

    def test_one_to_many_form(self, http_service, interval):
        _, client = http_service
        status, body = client.batch_one_to_many(0, [9, 10, 11], interval)
        assert status == 200
        assert len(body["result"]["items"]) == 3
        assert body["result"]["groups"] == 1

    @pytest.mark.parametrize(
        "body_extra",
        [
            {},  # neither items nor source/targets
            {"items": []},
            {"items": [{"source": 0}]},  # missing target
            {"items": "nope"},
            {"source": 0, "targets": []},
            {"items": [{"source": 0, "target": 1}] * (MAX_BATCH_ITEMS + 1)},
        ],
    )
    def test_bad_requests_rejected(self, http_service, interval, body_extra):
        _, client = http_service
        body = {"start": interval.start, "end": interval.end, **body_extra}
        status, decoded = client.post("/v1/batch", body)
        assert status == 400
        assert decoded["error"] == "BadRequest"


# ----------------------------------------------------------------------
# CLI verb
# ----------------------------------------------------------------------
class TestBatchCLI:
    def test_one_to_many(self, network_json, capsys):
        code = main(
            [
                "batch",
                "--network",
                str(network_json),
                "--source",
                "0",
                "--targets",
                "5,27,99",
                "--from",
                "7:00",
                "--to",
                "8:00",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "0 -> 5: best" in out
        assert "0 -> 99: best" in out
        assert "3 pair(s) in 1 profile search(es)" in out

    def test_explicit_pairs(self, network_json, capsys):
        code = main(
            ["batch", "--network", str(network_json), "--pairs", "0:9,3:7"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "0 -> 9: best" in out
        assert "3 -> 7: best" in out
        assert "2 profile search(es)" in out

    def test_requires_exactly_one_form(self, network_json, capsys):
        code = main(
            [
                "batch",
                "--network",
                str(network_json),
                "--pairs",
                "0:9",
                "--source",
                "0",
                "--targets",
                "3",
            ]
        )
        assert code == 2
        assert "exactly one" in capsys.readouterr().err

    def test_bad_pair_syntax(self, network_json, capsys):
        code = main(
            ["batch", "--network", str(network_json), "--pairs", "0-9"]
        )
        assert code == 2
        assert "SOURCE:TARGET" in capsys.readouterr().err
