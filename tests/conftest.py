"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.network.generator import (
    MetroConfig,
    make_grid_network,
    make_metro_network,
    paper_example_network,
)
from repro.patterns.categories import Calendar
from repro.patterns.speed import CapeCodPattern, DailySpeedPattern
from repro.timeutil import TimeInterval, parse_clock


@pytest.fixture(scope="session")
def single_calendar() -> Calendar:
    """A calendar with one category for every day."""
    return Calendar.single_category()


@pytest.fixture(scope="session")
def example_network():
    """The paper's Figure 2 running-example network."""
    return paper_example_network()


@pytest.fixture(scope="session")
def example_interval() -> TimeInterval:
    """The paper's query interval I = [6:50, 7:05]."""
    return TimeInterval.from_clock("6:50", "7:05")


@pytest.fixture(scope="session")
def grid5():
    """A 5×5 uniform-speed two-way grid."""
    return make_grid_network(5, 5)


@pytest.fixture(scope="session")
def metro_small():
    """A small metro network with Table 1 patterns (16×16, seeded)."""
    return make_metro_network(MetroConfig(width=16, height=16, seed=3))


@pytest.fixture(scope="session")
def metro_tiny():
    """An even smaller metro network for exhaustive checks (10×10)."""
    return make_metro_network(MetroConfig(width=10, height=10, seed=5))


@pytest.fixture
def rush_pattern(single_calendar) -> CapeCodPattern:
    """1 mpm all day except 0.5 mpm during [7:00, 9:00)."""
    cat = single_calendar.categories.names[0]
    return CapeCodPattern(
        {
            cat: DailySpeedPattern(
                [(0.0, 1.0), (parse_clock("7:00"), 0.5), (parse_clock("9:00"), 1.0)]
            )
        }
    )
