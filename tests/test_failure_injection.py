"""Failure-injection tests: corrupted storage must fail loudly, not wrongly."""

from __future__ import annotations

import json
import struct

import pytest

from repro.exceptions import StorageError
from repro.network.generator import MetroConfig, make_metro_network
from repro.storage.bptree import BPlusTree
from repro.storage.buffer import MemoryPageStore
from repro.storage.ccam import CCAMStore


@pytest.fixture(scope="module")
def network():
    return make_metro_network(MetroConfig(width=8, height=8, seed=19))


@pytest.fixture
def db_bytes(network, tmp_path):
    path = tmp_path / "net.ccam"
    CCAMStore.build(network, path).close()
    return path, bytearray(path.read_bytes())


class TestCorruptHeader:
    def test_flipped_magic(self, db_bytes, tmp_path):
        path, data = db_bytes
        data[0] ^= 0xFF
        bad = tmp_path / "bad_magic.ccam"
        bad.write_bytes(data)
        with pytest.raises(StorageError, match="not a CCAM"):
            CCAMStore.open(bad)

    def test_future_version(self, db_bytes, tmp_path):
        path, data = db_bytes
        struct.pack_into("<I", data, 8, 999)
        bad = tmp_path / "bad_version.ccam"
        bad.write_bytes(data)
        with pytest.raises(StorageError, match="version"):
            CCAMStore.open(bad)

    def test_truncated_file(self, db_bytes, tmp_path):
        path, data = db_bytes
        bad = tmp_path / "short.ccam"
        bad.write_bytes(data[: len(data) // 2])
        with pytest.raises((StorageError, json.JSONDecodeError, ValueError)):
            store = CCAMStore.open(bad)
            # If the metadata happened to survive, page reads must fail.
            for nid in range(64):
                store.find_node(nid)


class TestCorruptTreePages:
    def test_bad_node_type_byte(self, network, tmp_path):
        path = tmp_path / "net.ccam"
        store = CCAMStore.build(network, path)
        header = path.read_bytes()[: struct.calcsize("<8sIIIIIQQ")]
        (_m, _v, page_size, _region, _r, tree_root, _mo, _ml) = struct.unpack(
            "<8sIIIIIQQ", header
        )
        store.close()
        data = bytearray(path.read_bytes())
        root_offset = (1 + tree_root) * page_size
        data[root_offset] = 7  # neither leaf (1) nor internal (0)
        path.write_bytes(data)
        corrupted = CCAMStore.open(path)
        with pytest.raises(StorageError, match="corrupt"):
            corrupted.find_node(0)
        corrupted.close()


class TestBPlusTreeMisuse:
    def test_garbage_page_detected_on_search(self):
        store = MemoryPageStore(256)
        tree = BPlusTree(store, 256)
        for k in range(500):
            tree.insert(k, k)
        root = tree.root_page
        page = bytearray(store.read(root))
        page[0] = 9  # invalid node-type byte
        store.write(root, bytes(page))
        with pytest.raises(StorageError, match="corrupt"):
            tree.get(42)

    def test_write_through_readonly_region_blocked(self, network, tmp_path):
        path = tmp_path / "net.ccam"
        with CCAMStore.build(network, path) as store:
            with pytest.raises(StorageError):
                store._tree.insert(10**6, 1)
