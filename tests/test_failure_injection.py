"""Failure-injection tests: corrupted storage must fail loudly, not wrongly.

Extended by the reliability PR with the seeded fault-injection framework
(:mod:`repro.reliability`), estimator snapshot faults, precompute pool
shutdown, and the serve layer's graceful degradation (worker replacement,
estimator circuit breaker, stale serving, retrying HTTP client).
"""

from __future__ import annotations

import io
import json
import random
import struct
import time
import urllib.error

import pytest

from repro import reliability
from repro.exceptions import (
    EstimatorError,
    InjectedFault,
    ReproError,
    ServeClientError,
    StorageError,
    WorkerCrashed,
)
from repro.network.generator import MetroConfig, make_metro_network
from repro.reliability import CircuitBreaker, FaultInjector, FaultPlan, FaultSpec
from repro.storage.bptree import BPlusTree
from repro.storage.buffer import MemoryPageStore
from repro.storage.ccam import CCAMStore


@pytest.fixture(scope="module")
def network():
    return make_metro_network(MetroConfig(width=8, height=8, seed=19))


@pytest.fixture(autouse=True)
def _no_leaked_injector():
    """Every test leaves the process injector-free."""
    yield
    reliability.uninstall()


@pytest.fixture
def db_bytes(network, tmp_path):
    path = tmp_path / "net.ccam"
    CCAMStore.build(network, path).close()
    return path, bytearray(path.read_bytes())


class TestCorruptHeader:
    def test_flipped_magic(self, db_bytes, tmp_path):
        path, data = db_bytes
        data[0] ^= 0xFF
        bad = tmp_path / "bad_magic.ccam"
        bad.write_bytes(data)
        with pytest.raises(StorageError, match="not a CCAM"):
            CCAMStore.open(bad)

    def test_future_version(self, db_bytes, tmp_path):
        path, data = db_bytes
        struct.pack_into("<I", data, 8, 999)
        bad = tmp_path / "bad_version.ccam"
        bad.write_bytes(data)
        with pytest.raises(StorageError, match="version"):
            CCAMStore.open(bad)

    def test_truncated_file(self, db_bytes, tmp_path):
        path, data = db_bytes
        bad = tmp_path / "short.ccam"
        bad.write_bytes(data[: len(data) // 2])
        with pytest.raises((StorageError, json.JSONDecodeError, ValueError)):
            store = CCAMStore.open(bad)
            # If the metadata happened to survive, page reads must fail.
            for nid in range(64):
                store.find_node(nid)


class TestCorruptTreePages:
    def test_bad_node_type_byte(self, network, tmp_path):
        path = tmp_path / "net.ccam"
        store = CCAMStore.build(network, path)
        header = path.read_bytes()[: struct.calcsize("<8sIIIIIQQ")]
        (_m, _v, page_size, _region, _r, tree_root, _mo, _ml) = struct.unpack(
            "<8sIIIIIQQ", header
        )
        store.close()
        data = bytearray(path.read_bytes())
        root_offset = (1 + tree_root) * page_size
        data[root_offset] = 7  # neither leaf (1) nor internal (0)
        path.write_bytes(data)
        corrupted = CCAMStore.open(path)
        with pytest.raises(StorageError, match="corrupt"):
            corrupted.find_node(0)
        corrupted.close()


class TestBPlusTreeMisuse:
    def test_garbage_page_detected_on_search(self):
        store = MemoryPageStore(256)
        tree = BPlusTree(store, 256)
        for k in range(500):
            tree.insert(k, k)
        root = tree.root_page
        page = bytearray(store.read(root))
        page[0] = 9  # invalid node-type byte
        store.write(root, bytes(page))
        with pytest.raises(StorageError, match="corrupt"):
            tree.get(42)

    def test_write_through_readonly_region_blocked(self, network, tmp_path):
        path = tmp_path / "net.ccam"
        with CCAMStore.build(network, path) as store:
            with pytest.raises(StorageError):
                store._tree.insert(10**6, 1)


# ======================================================================
# The fault-injection framework itself
# ======================================================================


class TestFaultInjector:
    def test_same_plan_same_history(self):
        plan = FaultPlan(
            seed=99,
            specs=(
                FaultSpec("a.b", probability=0.4),
                FaultSpec("a.c", mode="delay", probability=0.7, delay_seconds=0.0),
            ),
        )
        histories = []
        for _ in range(2):
            injector = FaultInjector(plan)
            for i in range(300):
                point = "a.b" if i % 3 else "a.c"
                try:
                    injector.fire(point)
                except InjectedFault:
                    pass
            histories.append(
                [(e.seq, e.point, e.spec_point, e.mode) for e in injector.history()]
            )
        assert histories[0] == histories[1]
        assert histories[0]  # the plan actually fired

    def test_different_seed_different_history(self):
        specs = (FaultSpec("x", probability=0.5),)
        seqs = []
        for seed in (1, 2):
            injector = FaultInjector(FaultPlan(seed=seed, specs=specs))
            fired = []
            for i in range(200):
                try:
                    injector.fire("x")
                    fired.append(0)
                except InjectedFault:
                    fired.append(1)
            seqs.append(fired)
        assert seqs[0] != seqs[1]

    def test_prefix_matching(self):
        injector = FaultInjector(
            FaultPlan(specs=(FaultSpec("repro.storage", probability=1.0),))
        )
        with pytest.raises(InjectedFault):
            injector.fire("repro.storage.pages.read")
        # "repro.storageX" must NOT match the dotted prefix "repro.storage"
        assert injector.fire("repro.storageX.read", b"ok") == b"ok"

    def test_max_fires_exhausts(self):
        injector = FaultInjector(
            FaultPlan(specs=(FaultSpec("p", probability=1.0, max_fires=2),))
        )
        for _ in range(2):
            with pytest.raises(InjectedFault):
                injector.fire("p")
        assert injector.fire("p") is None
        assert injector.fired == 2

    def test_corrupt_flips_exactly_one_byte(self):
        injector = FaultInjector(
            FaultPlan(specs=(FaultSpec("p", mode="corrupt", probability=1.0),))
        )
        payload = bytes(range(64))
        mutated = injector.fire("p", payload)
        assert mutated != payload and len(mutated) == len(payload)
        assert sum(a != b for a, b in zip(payload, mutated)) == 1

    def test_corrupt_without_payload_raises_typed(self):
        injector = FaultInjector(
            FaultPlan(specs=(FaultSpec("p", mode="corrupt"),))
        )
        with pytest.raises(InjectedFault):
            injector.fire("p")

    def test_error_type_registry(self):
        for name, exc_type in reliability.ERROR_TYPES.items():
            injector = FaultInjector(
                FaultPlan(specs=(FaultSpec("p", error=name),))
            )
            with pytest.raises(exc_type):
                injector.fire("p")

    def test_module_install_uninstall(self):
        assert not reliability.is_active()
        assert reliability.fire("anything", b"x") == b"x"
        reliability.install(FaultPlan(specs=(FaultSpec("p"),)))
        assert reliability.is_active()
        with pytest.raises(InjectedFault):
            reliability.fire("p")
        assert reliability.fired_total() == 1
        reliability.uninstall()
        assert reliability.fire("p", b"x") == b"x"

    def test_install_from_env_inline_and_path(self, tmp_path):
        doc = {"seed": 5, "faults": [{"point": "p", "mode": "error"}]}
        injector = reliability.install_from_env({"REPRO_FAULTS": json.dumps(doc)})
        assert injector is not None and injector.plan.seed == 5
        reliability.uninstall()
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(json.dumps(doc))
        injector = reliability.install_from_env({"REPRO_FAULTS": str(plan_file)})
        assert injector is not None and len(injector.plan.specs) == 1
        assert reliability.install_from_env({}) is None

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            FaultSpec("p", mode="explode")
        with pytest.raises(ValueError):
            FaultSpec("p", probability=1.5)
        with pytest.raises(ValueError):
            FaultSpec("p", error="nonsense")
        with pytest.raises(ValueError):
            FaultPlan.from_json("not json")
        with pytest.raises(ValueError):
            FaultPlan.from_json('{"faults": [{"mode": "error"}]}')


class TestCircuitBreaker:
    def test_opens_after_threshold_and_half_open_single_trial(self):
        now = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=2, reset_timeout=10.0, clock=lambda: now[0]
        )
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        now[0] = 11.0
        assert breaker.allow()  # the one half-open trial
        assert not breaker.allow()  # concurrent caller stays blocked
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        now[0] = 22.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()
        assert breaker.opened_total == 2


# ======================================================================
# Estimator snapshot faults (crash-safe save, typed load failures)
# ======================================================================


class TestSnapshotFaults:
    @pytest.fixture
    def estimator_and_snapshot(self, network, tmp_path):
        from repro.estimators.boundary import BoundaryNodeEstimator

        estimator = BoundaryNodeEstimator(network, 3, 3)
        path = tmp_path / "net.est"
        estimator.save_snapshot(path)
        return estimator, path

    def test_fault_mid_save_leaves_old_snapshot_intact(
        self, network, estimator_and_snapshot
    ):
        from repro.estimators.boundary import BoundaryNodeEstimator

        estimator, path = estimator_and_snapshot
        good_bytes = path.read_bytes()
        reliability.install(
            FaultPlan(
                specs=(
                    FaultSpec(
                        "repro.estimators.snapshot.save",
                        error="os",
                        max_fires=1,
                    ),
                )
            )
        )
        with pytest.raises(OSError):
            estimator.save_snapshot(path)
        reliability.uninstall()
        # os.replace never ran: the old snapshot is byte-identical, still
        # loads, and the temporary file was cleaned up.
        assert path.read_bytes() == good_bytes
        assert not list(path.parent.glob(f"{path.name}.tmp.*"))
        warm = BoundaryNodeEstimator.from_snapshot(network, path)
        assert warm.loaded_from_snapshot

    def test_interrupted_save_cleans_tmp_on_keyboardinterrupt(
        self, network, estimator_and_snapshot, monkeypatch
    ):
        from repro.estimators import snapshot as snap

        estimator, path = estimator_and_snapshot
        good_bytes = path.read_bytes()
        calls = {"n": 0}
        original = snap._write_array

        def dying_write(out, arr):
            calls["n"] += 1
            if calls["n"] == 3:
                raise KeyboardInterrupt
            original(out, arr)

        monkeypatch.setattr(snap, "_write_array", dying_write)
        with pytest.raises(KeyboardInterrupt):
            estimator.save_snapshot(path)
        assert path.read_bytes() == good_bytes
        assert not list(path.parent.glob(f"{path.name}.tmp.*"))

    def test_load_fault_is_typed(self, network, estimator_and_snapshot):
        from repro.estimators.boundary import BoundaryNodeEstimator

        _estimator, path = estimator_and_snapshot
        reliability.install(
            FaultPlan(
                specs=(
                    FaultSpec("repro.estimators.snapshot.load", error="estimator"),
                )
            )
        )
        with pytest.raises(EstimatorError):
            BoundaryNodeEstimator.from_snapshot(network, path)

    def test_load_corrupt_mode_raises_instead_of_mutating(
        self, network, estimator_and_snapshot
    ):
        from repro.estimators.boundary import BoundaryNodeEstimator

        _estimator, path = estimator_and_snapshot
        reliability.install(
            FaultPlan(
                specs=(FaultSpec("repro.estimators.snapshot.load", mode="corrupt"),)
            )
        )
        # The load site carries no payload on purpose: silent header
        # corruption could break admissibility without failing a check.
        with pytest.raises(InjectedFault):
            BoundaryNodeEstimator.from_snapshot(network, path)


# ======================================================================
# Precompute pool shutdown and serial fallback
# ======================================================================


class _FakePool:
    def __init__(self, fail_with: BaseException) -> None:
        self.fail_with = fail_with
        self.terminated = False
        self.joined = False

    def map(self, fn, tasks, chunksize=1):
        raise self.fail_with

    def terminate(self):
        self.terminated = True

    def join(self):
        self.joined = True


class TestPrecomputePoolShutdown:
    def test_dead_pool_is_reaped_and_falls_back_serial(self, network, monkeypatch):
        from repro.estimators import precompute
        from repro.estimators.grid import GridPartition

        grid = GridPartition(network, 3, 3)
        serial = precompute.compute_tables(network, grid, "time", workers=1)

        fake = _FakePool(RuntimeError("worker died"))
        monkeypatch.setattr(precompute, "_make_pool", lambda w, s: fake)
        tables = precompute.compute_tables(network, grid, "time", workers=4)
        assert fake.terminated and fake.joined
        assert tables.workers_used == 1
        assert tables.cell_pair == serial.cell_pair
        assert tables.to_boundary == serial.to_boundary
        assert tables.from_boundary == serial.from_boundary

    def test_keyboardinterrupt_reraises_after_reaping(self, network, monkeypatch):
        from repro.estimators import precompute
        from repro.estimators.grid import GridPartition

        grid = GridPartition(network, 3, 3)
        fake = _FakePool(KeyboardInterrupt())
        monkeypatch.setattr(precompute, "_make_pool", lambda w, s: fake)
        with pytest.raises(KeyboardInterrupt):
            precompute.compute_tables(network, grid, "time", workers=4)
        assert fake.terminated and fake.joined

    def test_worker_fault_point_fires_in_cell_job(self, network):
        from repro.estimators import precompute
        from repro.estimators.grid import GridPartition

        grid = GridPartition(network, 3, 3)
        reliability.install(
            FaultPlan(
                specs=(
                    FaultSpec(
                        "repro.estimators.precompute.cell",
                        error="estimator",
                        max_fires=1,
                    ),
                )
            )
        )
        with pytest.raises(EstimatorError):
            precompute.compute_tables(network, grid, "time", workers=1)


# ======================================================================
# Serve-layer degradation: worker replacement, breaker fallback, stale
# ======================================================================


def _answer(response) -> str:
    from repro.serve.chaos import _canonical

    return _canonical(response.result)


@pytest.fixture
def grid_service():
    """workers=1 so thread-local engine behavior is deterministic."""
    from repro.estimators.boundary import BoundaryNodeEstimator
    from repro.network.generator import make_grid_network
    from repro.serve import AllFPService, ServiceConfig
    from repro.serve.service import QueryRequest
    from repro.timeutil import TimeInterval

    network = make_grid_network(5, 5)
    estimator = BoundaryNodeEstimator(network, 2, 2)
    service = AllFPService(
        network,
        estimator,
        ServiceConfig(
            workers=1,
            breaker_failures=1,
            breaker_reset=0.05,
            serve_stale=True,
        ),
    )
    request = QueryRequest(0, 24, TimeInterval(420.0, 540.0), "allfp", None)
    yield service, request
    service.close()


class TestServeDegradation:
    def test_worker_crash_is_replaced_and_retried(self, grid_service):
        service, request = grid_service
        baseline = _answer(service.query(request))
        reliability.install(
            FaultPlan(
                specs=(
                    FaultSpec(
                        "repro.serve.service.task", error="crash", max_fires=1
                    ),
                )
            )
        )
        service.invalidate()
        response = service.query(request)
        assert _answer(response) == baseline
        assert not response.degraded
        assert service.metrics.counter_total("worker_crashes_total") == 1
        assert service.metrics.counter_total("task_retries_total") == 1

    def test_crash_every_attempt_surfaces_typed_workercrashed(self, grid_service):
        service, request = grid_service
        reliability.install(
            FaultPlan(
                specs=(FaultSpec("repro.serve.service.task", error="crash"),)
            )
        )
        with pytest.raises(WorkerCrashed) as excinfo:
            service.query(request)
        assert isinstance(excinfo.value, ReproError)
        assert excinfo.value.attempts == 2  # 1 + task_retries default

    def test_breaker_fallback_is_admissible_and_flagged(self, grid_service):
        service, request = grid_service
        baseline = _answer(service.query(request))
        reliability.install(
            FaultPlan(
                specs=(FaultSpec("repro.serve.service.clone", error="estimator"),)
            )
        )
        service.invalidate(refresh_estimator=True)  # force engine rebuild
        response = service.query(request)
        # Flagged degraded, but the naive bound is admissible: the answer
        # (border function) is byte-identical to the baseline.
        assert response.degraded
        assert _answer(response) == baseline
        assert service.degraded
        assert service.metrics.counter_total("estimator_fallbacks_total") >= 1
        assert service.stats()["breaker"]["state"] != "closed"

    def test_breaker_recovers_after_reset_timeout(self, grid_service):
        service, request = grid_service
        baseline = _answer(service.query(request))
        reliability.install(
            FaultPlan(
                specs=(FaultSpec("repro.serve.service.clone", error="estimator"),)
            )
        )
        service.invalidate(refresh_estimator=True)
        assert service.query(request).degraded
        reliability.uninstall()  # the estimator "comes back"
        time.sleep(0.06)  # past breaker_reset: next rebuild is the trial
        service.invalidate()  # drop cached degraded answers
        response = service.query(request)
        assert not response.degraded
        assert _answer(response) == baseline
        assert not service.degraded

    def test_stale_answer_on_deadline_trip(self, grid_service):
        from repro.serve.service import QueryRequest

        service, request = grid_service
        good = service.query(request)  # populates the stale cache
        assert not good.stale
        service.invalidate()  # version bump: stale cache must survive it
        hurried = QueryRequest(
            request.source,
            request.target,
            request.interval,
            "allfp",
            1e-7,  # expires before any worker can pick it up
        )
        response = service.query(hurried)
        assert response.stale and response.degraded and response.cached
        assert _answer(response) == _answer(good)
        assert (
            service.metrics.counter_total("stale_results_served_total") == 1
        )

    def test_refresh_failure_trips_breaker_not_caller(self, grid_service):
        service, request = grid_service
        service.query(request)
        reliability.install(
            FaultPlan(
                specs=(
                    FaultSpec(
                        "repro.estimators.precompute.cell", error="estimator"
                    ),
                )
            )
        )
        # invalidate() must absorb the refresh failure (breaker records it)
        # rather than raising into the updater's thread.
        service.invalidate(refresh_estimator=True)
        assert (
            service.metrics.counter_total("estimator_refresh_failures_total")
            == 1
        )

    def test_boot_degraded_flags_every_response(self):
        from repro.network.generator import make_grid_network
        from repro.serve import AllFPService, ServiceConfig
        from repro.serve.service import QueryRequest
        from repro.timeutil import TimeInterval

        network = make_grid_network(4, 4)
        service = AllFPService(
            network, None, ServiceConfig(workers=1), degraded=True
        )
        try:
            response = service.query(
                QueryRequest(0, 15, TimeInterval(420.0, 480.0), "allfp", None)
            )
            assert response.degraded
            assert service.degraded
            assert service.metrics.counter_total("degraded_responses_total") == 1
        finally:
            service.close()


class TestChaosHarness:
    def test_invariant_holds_under_default_plan(self):
        from repro.estimators.boundary import BoundaryNodeEstimator
        from repro.network.generator import make_grid_network
        from repro.serve import AllFPService, ServiceConfig
        from repro.serve.chaos import default_fault_plan, run_chaos
        from repro.workloads.queries import morning_rush_interval, random_queries

        network = make_grid_network(6, 6)
        service = AllFPService(
            network,
            BoundaryNodeEstimator(network, 2, 2),
            ServiceConfig(workers=2, breaker_reset=0.1, serve_stale=True),
        )
        queries = random_queries(network, 12, morning_rush_interval(), seed=4)
        try:
            report = run_chaos(
                service, queries, default_fault_plan(seed=1), clients=3
            )
        finally:
            service.close()
        assert report.passed(), report.violations
        assert report.requests == 12
        assert report.ok + sum(report.typed_errors.values()) == 12
        assert not reliability.is_active()  # harness uninstalled its plan


# ======================================================================
# Retrying HTTP client
# ======================================================================


class _FakeResponse:
    def __init__(self, status: int, body: bytes) -> None:
        self.status = status
        self._body = body
        self.headers = {}

    def read(self) -> bytes:
        return self._body

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


def _http_error(code: int, body: bytes, headers: dict | None = None):
    import email.message

    msg = email.message.Message()
    for name, value in (headers or {}).items():
        msg[name] = value
    return urllib.error.HTTPError(
        "http://test/v1/allfp", code, "err", msg, io.BytesIO(body)
    )


class TestHTTPClientRetries:
    def test_connection_refused_becomes_typed_after_retries(self):
        from repro.serve import HTTPClient

        sleeps: list[float] = []
        client = HTTPClient(
            "http://127.0.0.1:1",
            timeout=0.2,
            retries=2,
            backoff_base=0.001,
            sleep=sleeps.append,
            rng=random.Random(7),
        )
        with pytest.raises(ServeClientError) as excinfo:
            client.healthz()
        assert isinstance(excinfo.value, ReproError)
        assert excinfo.value.attempts == 3
        assert "127.0.0.1:1" in str(excinfo.value.url)
        # Deterministic full-jitter schedule under the pinned RNG.
        expected_rng = random.Random(7)
        expected = [
            expected_rng.uniform(0.0, 0.001),
            expected_rng.uniform(0.0, 0.002),
        ]
        assert sleeps == expected

    def test_backoff_schedule_is_reproducible(self):
        from repro.serve import HTTPClient

        schedules = []
        for _ in range(2):
            sleeps: list[float] = []
            client = HTTPClient(
                "http://127.0.0.1:1",
                timeout=0.2,
                retries=3,
                backoff_base=0.001,
                sleep=sleeps.append,
                rng=random.Random(42),
            )
            with pytest.raises(ServeClientError):
                client.healthz()
            schedules.append(sleeps)
        assert schedules[0] == schedules[1] and len(schedules[0]) == 3

    def test_retry_after_header_is_honored_on_503(self, monkeypatch):
        from repro.serve import HTTPClient

        calls = {"n": 0}

        def fake_urlopen(req, timeout=None):
            calls["n"] += 1
            if calls["n"] == 1:
                raise _http_error(
                    503,
                    b'{"error": "ServiceOverloaded", "message": "busy"}',
                    {"Retry-After": "0.25"},
                )
            return _FakeResponse(200, b'{"ok": true}')

        monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
        sleeps: list[float] = []
        client = HTTPClient("http://test", retries=2, sleep=sleeps.append)
        status, body = client.post("/v1/allfp", {})
        assert status == 200 and body == {"ok": True}
        assert sleeps == [0.25]
        assert calls["n"] == 2

    def test_503_returned_when_retries_exhausted(self, monkeypatch):
        from repro.serve import HTTPClient

        def fake_urlopen(req, timeout=None):
            raise _http_error(
                503, b'{"error": "ServiceOverloaded", "message": "busy"}'
            )

        monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
        sleeps: list[float] = []
        client = HTTPClient(
            "http://test", retries=1, backoff_base=0.001, sleep=sleeps.append
        )
        status, body = client.post("/v1/allfp", {})
        assert status == 503 and body["error"] == "ServiceOverloaded"
        assert len(sleeps) == 1

    def test_4xx_never_retried(self, monkeypatch):
        from repro.serve import HTTPClient

        calls = {"n": 0}

        def fake_urlopen(req, timeout=None):
            calls["n"] += 1
            raise _http_error(400, b'{"error": "BadRequest", "message": "x"}')

        monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
        client = HTTPClient("http://test", retries=3)
        status, body = client.post("/v1/allfp", {})
        assert status == 400 and calls["n"] == 1

    def test_unparseable_200_is_typed(self, monkeypatch):
        from repro.serve import HTTPClient

        monkeypatch.setattr(
            urllib.request,
            "urlopen",
            lambda req, timeout=None: _FakeResponse(200, b"not json"),
        )
        client = HTTPClient("http://test", retries=0)
        with pytest.raises(ServeClientError):
            client.post("/v1/allfp", {})


class TestCLIFailureModes:
    def test_missing_network_exits_2_with_one_line(self, capsys):
        from repro.cli import main

        code = main(
            ["query", "--network", "/nonexistent.json",
             "--source", "0", "--target", "1"]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error:")
        assert "Traceback" not in captured.err

    def test_chaos_verb_passes_on_tiny_grid(self, tmp_path, capsys):
        from repro.cli import main
        from repro.network.generator import make_grid_network
        from repro.network.io import save_network

        path = tmp_path / "grid.json"
        save_network(make_grid_network(5, 5), path)
        code = main(
            ["chaos", "--network", str(path), "--estimator", "boundary",
             "--grid", "2", "--queries", "6", "--clients", "2",
             "--serve-stale"]
        )
        captured = capsys.readouterr()
        assert code == 0, captured.out + captured.err
        assert "invariant held" in captured.out
