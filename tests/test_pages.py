"""Unit tests for node-record and data-page codecs."""

from __future__ import annotations

import pytest

from repro.exceptions import PageOverflowError, StorageError
from repro.storage.pages import (
    NO_CLASS,
    NeighborRef,
    NodeRecord,
    decode_data_page,
    decode_record,
    decode_record_at_slot,
    encode_data_page,
    encode_record,
    page_payload,
    record_size,
)


@pytest.fixture
def record():
    return NodeRecord(
        42,
        1.25,
        -3.5,
        (
            NeighborRef(7, 0.5, 0, 1),
            NeighborRef(9, 1.75, 3, NO_CLASS),
        ),
    )


class TestRecordCodec:
    def test_roundtrip(self, record):
        data = encode_record(record)
        decoded, offset = decode_record(data, 0)
        assert decoded == record
        assert offset == len(data)

    def test_record_size_matches(self, record):
        assert len(encode_record(record)) == record_size(len(record.neighbors))

    def test_empty_adjacency(self):
        rec = NodeRecord(1, 0.0, 0.0, ())
        decoded, _ = decode_record(encode_record(rec), 0)
        assert decoded.neighbors == ()

    def test_location_property(self, record):
        assert record.location == (1.25, -3.5)

    def test_float_precision_exact(self):
        rec = NodeRecord(1, 0.1 + 0.2, 1e-17, (NeighborRef(2, 1 / 3, 0),))
        decoded, _ = decode_record(encode_record(rec), 0)
        assert decoded.x == rec.x
        assert decoded.neighbors[0].distance == 1 / 3


class TestDataPageCodec:
    def test_roundtrip_multiple_records(self, record):
        other = NodeRecord(43, 0.0, 0.0, (NeighborRef(42, 1.0, 0),))
        page = encode_data_page(
            [encode_record(record), encode_record(other)], 512
        )
        assert len(page) == 512
        decoded = decode_data_page(page)
        assert decoded == [record, other]

    def test_empty_page(self):
        page = encode_data_page([], 256)
        assert decode_data_page(page) == []

    def test_overflow_raises(self, record):
        blob = encode_record(record)
        needed = len(blob) * 10
        with pytest.raises(PageOverflowError):
            encode_data_page([blob] * 10, needed - 1)

    def test_slot_access(self, record):
        records = [
            NodeRecord(i, float(i), 0.0, tuple(NeighborRef(j, 1.0, 0) for j in range(i)))
            for i in range(5)
        ]
        page = encode_data_page([encode_record(r) for r in records], 1024)
        for slot, expected in enumerate(records):
            assert decode_record_at_slot(page, slot) == expected

    def test_slot_out_of_range(self, record):
        page = encode_data_page([encode_record(record)], 256)
        with pytest.raises(StorageError):
            decode_record_at_slot(page, 1)

    def test_page_payload(self):
        assert page_payload(2048) == 2046
