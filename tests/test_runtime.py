"""The shared search runtime: one SearchContext under every engine.

Covers the unified contracts every engine now honours:

* ``deadline`` → :class:`QueryTimeout` with partial stats (``timed_out``),
* ``max_pops`` → :class:`SearchBudgetExceeded` with partial stats,
* fully-populated :class:`SearchStats` on success (``elapsed_seconds``,
  ``distinct_nodes``) — including on engines that used to report partial
  or no stats (A*, profile, kNN, discrete),
* :class:`NoPathError` carrying the finalized stats of the exhausted search,
* one context (and so one warm edge cache) shared across engines,
* kernel/legacy parity for the rewritten profile search and its dependents
  (kNN, hierarchy shortcut functions).
"""

from __future__ import annotations

import pytest

from repro.core.astar import fixed_departure_query
from repro.core.discrete import DiscreteTimeModel
from repro.core.engine import IntAllFastestPaths
from repro.core.knn import interval_knn, nearest_partition
from repro.core.profile import arrival_profile, profile_search
from repro.core.runtime import (
    EdgeFunctionCache,
    QueryTimeout,
    SearchBudgetExceeded,
    SearchContext,
)
from repro.exceptions import NoPathError
from repro.func import kernel
from repro.hierarchy.engine import HierarchicalEngine
from repro.hierarchy.index import HierarchicalIndex
from repro.network.generator import MetroConfig, make_metro_network
from repro.timeutil import TimeInterval


@pytest.fixture
def interval() -> TimeInterval:
    return TimeInterval.from_clock("7:00", "8:00")


@pytest.fixture(scope="module")
def horizon() -> TimeInterval:
    return TimeInterval.from_clock("5:00", "14:00")


def _with_kernel(flag: bool, fn):
    previous = kernel.set_kernel_enabled(flag)
    try:
        return fn()
    finally:
        kernel.set_kernel_enabled(previous)


def _assert_partial_stats(stats) -> None:
    """A budget/timeout exit still carries a finalized counter set."""
    assert stats is not None
    assert stats.elapsed_seconds > 0.0


def _assert_success_stats(stats) -> None:
    assert stats.expanded_paths > 0
    assert stats.distinct_nodes > 0
    assert stats.elapsed_seconds > 0.0
    assert not stats.timed_out


# ----------------------------------------------------------------------
# Uniform deadline enforcement: deadline=0 times out on every engine.
# ----------------------------------------------------------------------


class TestDeadlines:
    def test_interval_engine(self, metro_tiny, interval):
        engine = IntAllFastestPaths(metro_tiny)
        with pytest.raises(QueryTimeout) as info:
            engine.all_fastest_paths(0, 99, interval, deadline=0.0)
        assert info.value.stats.timed_out
        _assert_partial_stats(info.value.stats)

    def test_astar(self, metro_tiny):
        with pytest.raises(QueryTimeout) as info:
            fixed_departure_query(metro_tiny, 0, 99, 420.0, deadline=0.0)
        assert info.value.stats.timed_out
        _assert_partial_stats(info.value.stats)

    def test_profile(self, metro_tiny, interval):
        with pytest.raises(QueryTimeout) as info:
            profile_search(metro_tiny, 0, interval, deadline=0.0)
        assert info.value.stats.timed_out
        _assert_partial_stats(info.value.stats)

    def test_discrete(self, metro_tiny, interval):
        model = DiscreteTimeModel(metro_tiny, deadline=0.0)
        with pytest.raises(QueryTimeout) as info:
            model.single_fastest_path(0, 99, interval, step=15.0)
        assert info.value.stats.timed_out
        _assert_partial_stats(info.value.stats)

    def test_knn(self, metro_tiny, interval):
        with pytest.raises(QueryTimeout) as info:
            interval_knn(
                metro_tiny, 0, [55, 67, 99], 2, interval, deadline=0.0
            )
        assert info.value.stats.timed_out

    def test_arrival_engine(self, metro_tiny, interval):
        from repro.core.arrival import ArrivalIntAllFastestPaths

        engine = ArrivalIntAllFastestPaths(metro_tiny)
        with pytest.raises(QueryTimeout) as info:
            engine.all_fastest_paths(0, 99, interval, deadline=0.0)
        assert info.value.stats.timed_out

    def test_hierarchy_build(self, metro_tiny, horizon):
        with pytest.raises(QueryTimeout) as info:
            HierarchicalIndex(metro_tiny, 3, 3, horizon, deadline=0.0)
        assert info.value.stats.timed_out

    def test_hierarchy_query(self, metro_tiny, horizon):
        index = HierarchicalIndex(metro_tiny, 3, 3, horizon)
        engine = HierarchicalEngine(index)
        window = TimeInterval.from_clock("6:30", "9:30")
        with pytest.raises(QueryTimeout):
            engine.all_fastest_paths(0, 99, window, deadline=0.0)


# ----------------------------------------------------------------------
# Uniform pop budgets: max_pops=1 cuts every engine short.
# ----------------------------------------------------------------------


class TestBudgets:
    def test_interval_engine(self, metro_tiny, interval):
        engine = IntAllFastestPaths(metro_tiny, max_pops=1)
        with pytest.raises(SearchBudgetExceeded) as info:
            engine.all_fastest_paths(0, 99, interval)
        assert info.value.what == "max_pops"
        assert info.value.budget == 1
        _assert_partial_stats(info.value.stats)

    def test_astar(self, metro_tiny):
        with pytest.raises(SearchBudgetExceeded) as info:
            fixed_departure_query(metro_tiny, 0, 99, 420.0, max_pops=1)
        _assert_partial_stats(info.value.stats)

    def test_profile(self, metro_tiny, interval):
        with pytest.raises(SearchBudgetExceeded) as info:
            profile_search(metro_tiny, 0, interval, max_pops=1)
        _assert_partial_stats(info.value.stats)

    def test_discrete_budget_is_total(self, metro_tiny, interval):
        # Generous enough for the first instant, not for the whole batch.
        first = fixed_departure_query(metro_tiny, 0, 99, interval.start)
        budget = first.stats.expanded_paths + 1
        model = DiscreteTimeModel(metro_tiny, max_pops=budget)
        with pytest.raises(SearchBudgetExceeded) as info:
            model.single_fastest_path(0, 99, interval, step=15.0)
        assert info.value.stats.expanded_paths >= first.stats.expanded_paths

    def test_knn(self, metro_tiny, interval):
        with pytest.raises(SearchBudgetExceeded):
            interval_knn(metro_tiny, 0, [55, 67, 99], 2, interval, max_pops=1)

    def test_arrival_engine(self, metro_tiny, interval):
        from repro.core.arrival import ArrivalIntAllFastestPaths

        engine = ArrivalIntAllFastestPaths(metro_tiny, max_pops=1)
        with pytest.raises(SearchBudgetExceeded) as info:
            engine.all_fastest_paths(0, 99, interval)
        _assert_partial_stats(info.value.stats)

    def test_hierarchy_build(self, metro_tiny, horizon):
        with pytest.raises(SearchBudgetExceeded):
            HierarchicalIndex(metro_tiny, 3, 3, horizon, max_pops=1)

    def test_profile_relaxation_budget_is_typed(
        self, metro_tiny, interval, monkeypatch
    ):
        # Force the FIFO safety valve to fire on the first relaxation: the
        # old code raised a bare QueryError with no counters.
        monkeypatch.setattr(
            "repro.core.profile._MAX_RELAXATIONS_FACTOR", 0
        )
        with pytest.raises(SearchBudgetExceeded) as info:
            profile_search(metro_tiny, 0, interval)
        assert info.value.what == "relaxations"
        _assert_partial_stats(info.value.stats)


# ----------------------------------------------------------------------
# Fully-populated stats on success, and NoPathError carrying stats.
# ----------------------------------------------------------------------


class TestStats:
    def test_astar_success_stats_finalized(self, metro_tiny):
        result = fixed_departure_query(metro_tiny, 0, 99, 420.0)
        _assert_success_stats(result.stats)
        assert result.stats.max_queue_size > 0

    def test_profile_success_stats(self, metro_tiny, interval):
        result = profile_search(metro_tiny, 0, interval)
        _assert_success_stats(result.stats)
        assert result.stats.distinct_nodes == len(result.profiles)

    def test_knn_result_carries_stats(self, metro_tiny, interval):
        result = interval_knn(metro_tiny, 0, [55, 67, 99], 2, interval)
        _assert_success_stats(result.stats)
        payload = result.as_dict()
        assert payload["stats"]["expanded_paths"] > 0
        assert [n["node"] for n in payload["neighbors"]] == list(
            result.node_ids()
        )

    def test_discrete_elapsed_populated(self, metro_tiny, interval):
        model = DiscreteTimeModel(metro_tiny)
        result = model.single_fastest_path(0, 99, interval, step=30.0)
        assert result.stats.elapsed_seconds > 0.0

    def test_no_path_error_carries_stats(self):
        # Two disconnected components: 1x2 metro has no edges between
        # far-apart nodes?  Build an explicit disconnected network instead.
        from repro.network.model import CapeCodNetwork
        from repro.patterns.categories import Calendar

        calendar = Calendar.single_category()
        network = CapeCodNetwork(calendar)
        network.add_node(0, 0.0, 0.0)
        network.add_node(1, 1.0, 0.0)
        with pytest.raises(NoPathError) as info:
            fixed_departure_query(network, 0, 1, 420.0)
        assert info.value.stats is not None
        assert info.value.stats.elapsed_seconds > 0.0

    def test_profile_result_as_dict(self, metro_tiny, interval):
        result = profile_search(metro_tiny, 0, interval, targets=[5, 7])
        payload = result.as_dict()
        assert set(payload["profiles"]) <= {"5", "7"}
        assert payload["interval"] == [interval.start, interval.end]
        assert payload["stats"]["distinct_nodes"] > 0


# ----------------------------------------------------------------------
# Context sharing: one cache warms every engine built over it.
# ----------------------------------------------------------------------


class TestContextSharing:
    def test_engines_share_edge_cache(self, metro_tiny, interval):
        context = SearchContext(metro_tiny)
        engine = IntAllFastestPaths(metro_tiny, context=context)
        engine.all_fastest_paths(0, 55, interval)
        warm = len(context.edge_cache)
        assert warm > 0
        result = profile_search(metro_tiny, 0, interval, context=context)
        assert result.stats.edge_cache_hits > 0
        assert engine.edge_cache is context.edge_cache

    def test_begin_overrides_context_defaults(self, metro_tiny):
        context = SearchContext(metro_tiny, max_pops=1)
        run = context.begin(max_pops=None)
        assert run.max_pops is None
        run = context.begin()
        assert run.max_pops == 1

    def test_explicit_cache_shared(self, metro_tiny, interval):
        cache = EdgeFunctionCache(metro_tiny.calendar, 4096)
        a = SearchContext(metro_tiny, edge_cache=cache)
        b = SearchContext(metro_tiny, edge_cache=cache)
        profile_search(metro_tiny, 0, interval, context=a)
        second = profile_search(metro_tiny, 0, interval, context=b)
        assert second.stats.edge_cache_misses == 0
        assert second.stats.edge_cache_hits > 0


# ----------------------------------------------------------------------
# Kernel/legacy parity for the rewritten profile search and dependents.
# ----------------------------------------------------------------------


def _sample_points(interval: TimeInterval, n: int = 9) -> list[float]:
    step = (interval.end - interval.start) / (n - 1)
    return [interval.start + i * step for i in range(n)]


class TestKernelParity:
    def test_arrival_profile_matches_legacy(self, metro_tiny, interval):
        fast = _with_kernel(
            True, lambda: arrival_profile(metro_tiny, 0, interval)
        )
        slow = _with_kernel(
            False, lambda: arrival_profile(metro_tiny, 0, interval)
        )
        assert set(fast) == set(slow)
        for node in fast:
            for t in _sample_points(interval):
                assert fast[node](t) == pytest.approx(
                    slow[node](t), abs=1e-6
                )

    def test_interval_knn_matches_legacy(self, metro_tiny, interval):
        candidates = [33, 55, 67, 99]
        fast = _with_kernel(
            True, lambda: interval_knn(metro_tiny, 0, candidates, 3, interval)
        )
        slow = _with_kernel(
            False, lambda: interval_knn(metro_tiny, 0, candidates, 3, interval)
        )
        assert fast.node_ids() == slow.node_ids()
        for f, s in zip(fast.neighbors, slow.neighbors):
            assert f.min_travel_time == pytest.approx(
                s.min_travel_time, abs=1e-6
            )

    def test_nearest_partition_matches_legacy(self, metro_tiny, interval):
        candidates = [33, 55, 99]
        fast_entries, fast_border = _with_kernel(
            True,
            lambda: nearest_partition(metro_tiny, 0, candidates, interval),
        )
        slow_entries, slow_border = _with_kernel(
            False,
            lambda: nearest_partition(metro_tiny, 0, candidates, interval),
        )
        assert [e.node for e in fast_entries] == [e.node for e in slow_entries]
        for t in _sample_points(interval):
            assert fast_border(t) == pytest.approx(
                slow_border(t), abs=1e-6
            )

    def test_hierarchy_shortcuts_match_legacy(self, horizon):
        network = make_metro_network(MetroConfig(width=8, height=8, seed=7))
        fast = _with_kernel(
            True, lambda: HierarchicalIndex(network, 2, 2, horizon)
        )
        slow = _with_kernel(
            False, lambda: HierarchicalIndex(network, 2, 2, horizon)
        )
        assert fast.stats.shortcuts == slow.stats.shortcuts
        for node in network.node_ids():
            fast_cuts = {
                s.target: s.profile for s in fast.shortcuts_from(node)
            }
            slow_cuts = {
                s.target: s.profile for s in slow.shortcuts_from(node)
            }
            assert set(fast_cuts) == set(slow_cuts)
            for target, fn in fast_cuts.items():
                other = slow_cuts[target]
                for t in _sample_points(horizon, 7):
                    assert fn(t) == pytest.approx(other(t), abs=1e-6)
