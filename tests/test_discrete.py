"""Unit tests for the discrete-time baseline (§3, §6.3)."""

from __future__ import annotations

import pytest

from repro.core.discrete import DiscreteTimeModel
from repro.core.engine import IntAllFastestPaths
from repro.estimators.naive import NaiveEstimator
from repro.exceptions import QueryError
from repro.network.generator import EXAMPLE_E, EXAMPLE_S
from repro.timeutil import TimeInterval, parse_clock


@pytest.fixture
def interval():
    return TimeInterval(parse_clock("6:50"), parse_clock("7:05"))


class TestInstantGrid:
    def test_step_covers_interval(self, example_network, interval):
        model = DiscreteTimeModel(example_network)
        instants = model._instants(interval, 5.0)
        assert instants[0] == interval.start
        assert instants == [410.0, 415.0, 420.0, 425.0]

    def test_non_divisible_step(self, example_network, interval):
        model = DiscreteTimeModel(example_network)
        instants = model._instants(interval, 4.0)
        assert instants == [410.0, 414.0, 418.0, 422.0]

    def test_rejects_bad_step(self, example_network, interval):
        model = DiscreteTimeModel(example_network)
        with pytest.raises(QueryError):
            model.single_fastest_path(EXAMPLE_S, EXAMPLE_E, interval, 0.0)


class TestSingleFP:
    def test_fine_step_matches_continuous(self, example_network, interval):
        model = DiscreteTimeModel(example_network)
        exact = IntAllFastestPaths(example_network).single_fastest_path(
            EXAMPLE_S, EXAMPLE_E, interval
        )
        approx = model.single_fastest_path(EXAMPLE_S, EXAMPLE_E, interval, 1.0)
        # The optimum (5 min at 7:00-7:03) lies on the 1-minute grid.
        assert approx.travel_time == pytest.approx(exact.optimal_travel_time)
        assert approx.path == exact.path

    def test_coarse_step_never_better(self, example_network, interval):
        model = DiscreteTimeModel(example_network)
        exact = IntAllFastestPaths(example_network).single_fastest_path(
            EXAMPLE_S, EXAMPLE_E, interval
        )
        for step in (15.0, 10.0, 6.0, 2.0):
            approx = model.single_fastest_path(
                EXAMPLE_S, EXAMPLE_E, interval, step
            )
            assert approx.travel_time >= exact.optimal_travel_time - 1e-9

    def test_accuracy_improves_with_refinement(self, metro_small):
        interval = TimeInterval(parse_clock("7:00"), parse_clock("9:00"))
        model = DiscreteTimeModel(metro_small)
        errors = []
        exact = IntAllFastestPaths(metro_small).single_fastest_path(
            0, 255, interval
        )
        for step in (60.0, 10.0, 1.0):
            approx = model.single_fastest_path(0, 255, interval, step)
            errors.append(approx.travel_time - exact.optimal_travel_time)
        assert all(e >= -1e-9 for e in errors)
        assert errors[-1] <= errors[0] + 1e-9

    def test_cost_scales_with_instants(self, metro_small):
        interval = TimeInterval(parse_clock("7:00"), parse_clock("9:00"))
        model = DiscreteTimeModel(metro_small)
        coarse = model.single_fastest_path(0, 255, interval, 60.0)
        fine = model.single_fastest_path(0, 255, interval, 10.0)
        assert coarse.instants == 3
        assert fine.instants == 13
        assert fine.stats.expanded_paths > coarse.stats.expanded_paths

    def test_with_estimator(self, metro_small):
        interval = TimeInterval(parse_clock("7:00"), parse_clock("8:00"))
        blind = DiscreteTimeModel(metro_small)
        guided = DiscreteTimeModel(metro_small, NaiveEstimator(metro_small))
        a = blind.single_fastest_path(0, 255, interval, 30.0)
        b = guided.single_fastest_path(0, 255, interval, 30.0)
        assert b.travel_time == pytest.approx(a.travel_time)
        assert b.stats.expanded_paths <= a.stats.expanded_paths


class TestAllFP:
    def test_partition_covers_interval(self, example_network, interval):
        model = DiscreteTimeModel(example_network)
        entries, _stats = model.all_fastest_paths(
            EXAMPLE_S, EXAMPLE_E, interval, 1.0
        )
        assert entries[0].interval.start == interval.start
        assert entries[-1].interval.end == interval.end

    def test_fine_grid_finds_both_paths(self, example_network, interval):
        model = DiscreteTimeModel(example_network)
        entries, _stats = model.all_fastest_paths(
            EXAMPLE_S, EXAMPLE_E, interval, 0.5
        )
        paths = {e.path for e in entries}
        assert (EXAMPLE_S, EXAMPLE_E) in paths
        assert len(paths) == 2

    def test_coarse_grid_misses_boundaries(self, example_network, interval):
        # With a 15-minute step only the 6:50 instant (plus 7:05) is probed;
        # the continuous answer's boundary at 6:58:30 cannot be located.
        model = DiscreteTimeModel(example_network)
        entries, _stats = model.all_fastest_paths(
            EXAMPLE_S, EXAMPLE_E, interval, 15.0
        )
        boundaries = {e.interval.end for e in entries}
        assert parse_clock("6:58:30") not in boundaries

    def test_stats_accumulate(self, example_network, interval):
        model = DiscreteTimeModel(example_network)
        _entries, stats = model.all_fastest_paths(
            EXAMPLE_S, EXAMPLE_E, interval, 5.0
        )
        assert stats.expanded_paths > 0
        assert stats.labels_generated > 0
