"""Live-update stream: wire formats, delta re-customization, bounded staleness.

Covers the update pipeline end to end — mutation/batch/trace parsing and
its typed failures, the admissibility-preserving estimator delta refresh,
the overlay shortcut splice, the service-level versioned apply (caches
invalidated, answers byte-identical to a from-scratch service on the
mutated network), the ``max_staleness`` contract, the
``invalidate(refresh_estimator=True)``-racing-queries invariant, and the
mutation-chaos harness itself.
"""

from __future__ import annotations

import copy
import threading

import pytest

from repro.core.engine import IntAllFastestPaths
from repro.estimators.boundary import BoundaryNodeEstimator
from repro.estimators.naive import NaiveEstimator
from repro.exceptions import (
    EdgeNotFoundError,
    NetworkError,
    QueryError,
    StalenessExceeded,
)
from repro.hierarchy import MultiLevelOverlay
from repro.network.generator import MetroConfig, make_metro_network
from repro.serve.chaos import _canonical, default_fault_plan, run_mutation_chaos
from repro.serve.service import AllFPService, QueryRequest, ServiceConfig
from repro.serve.updates import (
    EdgeMutation,
    MAX_MUTATIONS_PER_BATCH,
    MutationBatch,
    TraceEvent,
    apply_batch,
    dump_trace,
    load_trace,
    slowdown_pattern,
    validate_batch,
)
from repro.timeutil import TimeInterval
from repro.workloads.queries import QuerySpec

INTERVAL = TimeInterval(480.0, 540.0)


@pytest.fixture
def network():
    """A fresh (mutable) network per test — these tests update edges."""
    return make_metro_network(MetroConfig(width=8, height=8, seed=23))


def mutation_for(network, index: int = 0, factor: float = 0.25) -> EdgeMutation:
    edge = list(network.edges())[index]
    return EdgeMutation(
        edge.source, edge.target, slowdown_pattern(edge.pattern, factor)
    )


# ----------------------------------------------------------------------
# Wire formats
# ----------------------------------------------------------------------
class TestWire:
    def test_mutation_round_trip(self, network):
        mutation = mutation_for(network)
        clone = EdgeMutation.from_wire(mutation.to_wire())
        assert clone.source == mutation.source
        assert clone.target == mutation.target
        assert clone.pattern == mutation.pattern

    def test_batch_round_trip(self, network):
        batch = MutationBatch(
            (mutation_for(network, 0), mutation_for(network, 3, 0.5))
        )
        clone = MutationBatch.from_wire(batch.to_wire())
        assert len(clone) == 2
        assert clone.to_wire() == batch.to_wire()

    @pytest.mark.parametrize(
        "doc",
        [
            "not an object",
            {},
            {"mutations": []},
            {"mutations": "nope"},
        ],
    )
    def test_malformed_batch(self, doc):
        with pytest.raises(QueryError):
            MutationBatch.from_wire(doc)

    @pytest.mark.parametrize(
        "doc",
        [
            [],
            {"source": True, "target": 1, "pattern": {}},
            {"source": 0, "target": "x", "pattern": {}},
            {"source": 0, "target": 1},
        ],
    )
    def test_malformed_mutation(self, doc):
        with pytest.raises(QueryError):
            EdgeMutation.from_wire(doc)

    def test_batch_size_limit(self, network):
        wire = mutation_for(network).to_wire()
        doc = {"mutations": [wire] * (MAX_MUTATIONS_PER_BATCH + 1)}
        with pytest.raises(QueryError, match="exceeds the limit"):
            MutationBatch.from_wire(doc)


# ----------------------------------------------------------------------
# Validation and application
# ----------------------------------------------------------------------
class TestValidateApply:
    def test_unknown_edge_is_typed_and_atomic(self, network):
        good = mutation_for(network)
        bad = EdgeMutation(good.source, good.source + 999999, good.pattern)
        before = {
            (e.source, e.target): e.pattern for e in network.edges()
        }
        with pytest.raises(EdgeNotFoundError):
            apply_batch(network, MutationBatch((good, bad)))
        after = {(e.source, e.target): e.pattern for e in network.edges()}
        assert after == before  # all-or-nothing: the good one did not land

    def test_calendar_gap_is_typed(self, network):
        edge = list(network.edges())[0]
        partial = slowdown_pattern(edge.pattern, 0.5)
        only_first = type(partial)(
            {partial.categories[0]: partial.daily(partial.categories[0])}
        )
        if set(network.calendar.categories.names) <= {partial.categories[0]}:
            pytest.skip("single-category calendar cannot have a gap")
        with pytest.raises(NetworkError, match="do not cover"):
            validate_batch(
                network,
                MutationBatch(
                    (EdgeMutation(edge.source, edge.target, only_first),)
                ),
            )

    def test_apply_records_old_and_new(self, network):
        mutation = mutation_for(network, 0, 0.25)
        old_pattern = network.find_edge(mutation.source, mutation.target).pattern
        applied = apply_batch(network, MutationBatch((mutation,)))
        assert len(applied) == 1
        record = applied[0]
        assert record.old_pattern == old_pattern
        assert record.new_pattern == mutation.pattern
        assert (
            network.find_edge(mutation.source, mutation.target).pattern
            == mutation.pattern
        )


# ----------------------------------------------------------------------
# Incident traces
# ----------------------------------------------------------------------
class TestTrace:
    def test_round_trip_sorted(self, network, tmp_path):
        events = [
            TraceEvent(5.0, MutationBatch((mutation_for(network, 1),))),
            TraceEvent(1.0, MutationBatch((mutation_for(network, 0),))),
        ]
        path = tmp_path / "trace.jsonl"
        dump_trace(events, path)
        loaded = load_trace(path)
        assert [e.at for e in loaded] == [1.0, 5.0]
        assert loaded[1].batch.to_wire() == events[0].batch.to_wire()

    def test_comments_and_blanks_skipped(self, network, tmp_path):
        path = tmp_path / "trace.jsonl"
        wire = MutationBatch((mutation_for(network),)).to_wire()
        import json

        path.write_text(
            "# incident replay\n\n"
            + json.dumps({"at": 0.5, **wire})
            + "\n",
            encoding="utf-8",
        )
        assert len(load_trace(path)) == 1

    def test_bad_line_names_its_number(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"at": 1.0}\n', encoding="utf-8")
        with pytest.raises(QueryError, match="trace.jsonl:1"):
            load_trace(path)

    def test_negative_offset_rejected(self, network, tmp_path):
        import json

        path = tmp_path / "trace.jsonl"
        wire = MutationBatch((mutation_for(network),)).to_wire()
        path.write_text(json.dumps({"at": -1, **wire}), encoding="utf-8")
        with pytest.raises(QueryError, match="seconds >= 0"):
            load_trace(path)

    def test_empty_trace_rejected(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("# nothing here\n", encoding="utf-8")
        with pytest.raises(QueryError, match="no events"):
            load_trace(path)


# ----------------------------------------------------------------------
# Delta re-customization stays exact
# ----------------------------------------------------------------------
def _answers(network, estimator, pairs):
    engine = IntAllFastestPaths(network, estimator)
    return [
        _canonical(engine.all_fastest_paths(s, t, INTERVAL)) for s, t in pairs
    ]


class TestEstimatorDelta:
    def test_delta_refresh_keeps_queries_exact(self, network):
        estimator = BoundaryNodeEstimator(network, 4, 4)
        estimator.precompute()
        mutation = mutation_for(network, 0, 0.2)
        applied = apply_batch(network, MutationBatch((mutation,)))
        estimator.refresh_delta(applied)

        pairs = [
            (mutation.source, mutation.target),
            (0, network.node_count - 1),
            (3, network.node_count - 5),
        ]
        exact = _answers(network, NaiveEstimator(network), pairs)
        assert _answers(network, estimator, pairs) == exact

    def test_speedup_keeps_bound_admissible(self, network):
        # Raising a speed raises v_max: the naive component must follow,
        # or the Euclidean bound turns inadmissible and A* goes wrong.
        estimator = BoundaryNodeEstimator(network, 4, 4)
        estimator.precompute()
        mutation = mutation_for(network, 0, 4.0)
        applied = apply_batch(network, MutationBatch((mutation,)))
        estimator.refresh_delta(applied)
        pairs = [(mutation.source, mutation.target), (0, network.node_count - 1)]
        exact = _answers(network, NaiveEstimator(network), pairs)
        assert _answers(network, estimator, pairs) == exact


class TestOverlayDelta:
    def test_splice_matches_full_rebuild(self):
        network = make_metro_network(MetroConfig(width=10, height=10, seed=23))
        horizon = TimeInterval(0.0, 48 * 60.0)
        overlay = MultiLevelOverlay.build(
            network, levels=2, nx=4, horizon=horizon
        )
        # An intra-cell edge at level 0 (same cell for both endpoints).
        mutation = next(
            m
            for m in (
                mutation_for(network, i, 0.2)
                for i in range(len(list(network.edges())))
            )
            if overlay.cell_at(m.source, 0) == overlay.cell_at(m.target, 0)
        )
        applied = apply_batch(network, MutationBatch((mutation,)))
        recomputed = overlay.refresh_delta(applied)
        assert recomputed >= 1

        rebuilt = MultiLevelOverlay.build(
            network, levels=2, nx=4, horizon=horizon
        )
        for level, fresh in zip(overlay.levels, rebuilt.levels):
            assert bytes(level.src) == bytes(fresh.src)
            assert bytes(level.dst) == bytes(fresh.dst)
            assert bytes(level.off) == bytes(fresh.off)
            assert bytes(level.xs) == bytes(fresh.xs)
            assert bytes(level.ys) == bytes(fresh.ys)

    def test_cross_cell_edge_needs_no_recompute(self):
        network = make_metro_network(MetroConfig(width=10, height=10, seed=23))
        overlay = MultiLevelOverlay.build(
            network, levels=1, nx=4, horizon=TimeInterval(0.0, 48 * 60.0)
        )
        mutation = next(
            m
            for m in (
                mutation_for(network, i, 0.2)
                for i in range(len(list(network.edges())))
            )
            if overlay.cell_at(m.source, 0) != overlay.cell_at(m.target, 0)
        )
        before = bytes(overlay.levels[0].xs)
        applied = apply_batch(network, MutationBatch((mutation,)))
        assert overlay.refresh_delta(applied) == 0
        assert bytes(overlay.levels[0].xs) == before


# ----------------------------------------------------------------------
# Service-level live updates
# ----------------------------------------------------------------------
def _request(source, target, **kw):
    return QueryRequest(source, target, INTERVAL, "allfp", **kw)


class TestServiceUpdates:
    def test_versioned_apply_matches_fresh_service(self, network):
        reference_net = copy.deepcopy(network)
        service = AllFPService(network, config=ServiceConfig(workers=2))
        try:
            mutation = mutation_for(network, 0, 0.2)
            pairs = [
                (mutation.source, mutation.target),
                (0, network.node_count - 1),
            ]
            before = service.query(_request(*pairs[0]))
            assert before.version == 0

            version = service.apply_updates(MutationBatch((mutation,)))
            assert version == 1
            assert service.net_version == 1

            apply_batch(reference_net, MutationBatch((mutation,)))
            reference = AllFPService(
                reference_net, config=ServiceConfig(workers=2)
            )
            try:
                for source, target in pairs:
                    live = service.query(_request(source, target))
                    assert live.version == 1
                    fresh = reference.query(_request(source, target))
                    assert _canonical(live.result) == _canonical(fresh.result)
            finally:
                reference.close()
        finally:
            service.close()

    def test_caches_invalidated_by_update(self, network):
        service = AllFPService(network, config=ServiceConfig(workers=2))
        try:
            mutation = mutation_for(network, 0, 0.05)
            request = _request(mutation.source, mutation.target)
            before = service.query(request).result.best()[1]
            service.query(request)  # definitely cached now
            service.apply_updates(MutationBatch((mutation,)))
            after = service.query(request).result.best()[1]
            # 20x slowdown on the direct edge must show up: a cached
            # result or a poisoned edge-function memo would hide it.
            assert after > before
        finally:
            service.close()

    def test_rejected_batch_leaves_version_alone(self, network):
        service = AllFPService(network, config=ServiceConfig(workers=2))
        try:
            good = mutation_for(network)
            bad = EdgeMutation(good.source, good.source + 999999, good.pattern)
            with pytest.raises(EdgeNotFoundError):
                service.apply_updates(MutationBatch((good, bad)))
            assert service.net_version == 0
            assert service.pending_updates == 0
            assert service.query(_request(0, 5)).version == 0
        finally:
            service.close()

    def test_max_staleness_rejection_is_typed(self, network):
        service = AllFPService(network, config=ServiceConfig(workers=2))
        try:
            # Simulate a long-pending batch without racing a real apply.
            import time as _time

            with service._pending_lock:
                service._pending_updates.append(_time.monotonic() - 5.0)
            with pytest.raises(StalenessExceeded) as excinfo:
                service.query(_request(0, 5, max_staleness=1.0))
            assert excinfo.value.staleness >= 5.0
            assert excinfo.value.max_staleness == 1.0
            with service._pending_lock:
                service._pending_updates.clear()
            # Bounded-staleness queries pass when the backlog is clear.
            assert service.query(_request(0, 5, max_staleness=1.0)).version == 0
        finally:
            service.close()

    def test_stats_and_metrics_expose_staleness(self, network):
        service = AllFPService(network, config=ServiceConfig(workers=2))
        try:
            service.apply_updates(MutationBatch((mutation_for(network),)))
            updates = service.stats()["updates"]
            assert updates["applied_version"] == 1
            assert updates["batches_applied"] == 1
            assert updates["mutations_applied"] == 1
            assert updates["pending"] == 0
            assert updates["staleness_seconds"] == 0.0
            assert updates["max_staleness_seconds"] > 0.0
            text = service.metrics.render()
            for gauge in (
                "network_applied_version",
                "update_staleness_seconds",
                "updates_pending",
            ):
                assert gauge in text
        finally:
            service.close()


# ----------------------------------------------------------------------
# The race satellite: invalidate(refresh_estimator=True) vs. in-flight
# queries — no stale-version answer may escape unflagged.
# ----------------------------------------------------------------------
class TestInvalidateRace:
    def test_no_unflagged_stale_answer_escapes(self, network):
        estimator = BoundaryNodeEstimator(network, 4, 4)
        estimator.precompute()
        service = AllFPService(
            network, estimator, config=ServiceConfig(workers=2)
        )
        mutation = mutation_for(network, 0, 0.2)

        baseline_nets = [copy.deepcopy(network)]
        mutated = copy.deepcopy(network)
        apply_batch(mutated, MutationBatch((mutation,)))
        baseline_nets.append(mutated)
        pairs = [(mutation.source, mutation.target), (0, network.node_count - 1)]
        baselines = []
        for net in baseline_nets:
            ref = AllFPService(net, config=ServiceConfig(workers=2))
            try:
                baselines.append(
                    [_canonical(ref.query(_request(*p)).result) for p in pairs]
                )
            finally:
                ref.close()

        responses = []
        failures = []
        stop = threading.Event()

        def reader() -> None:
            while not stop.is_set():
                for pair in pairs:
                    try:
                        responses.append(service.query(_request(*pair)))
                    except Exception as exc:  # noqa: BLE001
                        failures.append(exc)
                        return

        threads = [threading.Thread(target=reader) for _ in range(3)]
        try:
            for t in threads:
                t.start()
            service.invalidate(refresh_estimator=True)
            service.apply_updates(MutationBatch((mutation,)))
            service.invalidate(refresh_estimator=True)
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=60.0)
            service.close()

        assert not failures, failures
        assert responses
        by_pair = {pair: i for i, pair in enumerate(pairs)}
        for response in responses:
            pair = (response.result.source, response.result.target)
            if response.version < 0:
                # Unversioned answers are only legal when flagged stale.
                assert response.stale
                continue
            assert response.version in (0, 1)
            expected = baselines[response.version][by_pair[pair]]
            assert _canonical(response.result) == expected


# ----------------------------------------------------------------------
# Chaos under mutation
# ----------------------------------------------------------------------
def _chaos_fixture(seed: int):
    network = make_metro_network(MetroConfig(width=8, height=8, seed=seed))
    edges = list(network.edges())
    trace = [
        TraceEvent(
            0.05,
            MutationBatch(
                (
                    EdgeMutation(
                        edges[0].source,
                        edges[0].target,
                        slowdown_pattern(edges[0].pattern, 0.25),
                    ),
                )
            ),
        ),
        TraceEvent(
            0.15,
            MutationBatch(
                (
                    EdgeMutation(
                        edges[4].source,
                        edges[4].target,
                        slowdown_pattern(edges[4].pattern, 0.5),
                    ),
                    EdgeMutation(
                        edges[0].source,
                        edges[0].target,
                        slowdown_pattern(edges[0].pattern, 2.0),
                    ),
                )
            ),
        ),
    ]
    queries = [
        QuerySpec(edges[0].source, edges[0].target, INTERVAL, 0.0),
        QuerySpec(0, network.node_count - 1, INTERVAL, 0.0),
    ]
    return network, trace, queries


class TestMutationChaos:
    def test_invariant_holds_without_faults(self):
        network, trace, queries = _chaos_fixture(23)
        service = AllFPService(network, config=ServiceConfig(workers=2))
        try:
            report = run_mutation_chaos(service, queries, trace, clients=2)
        finally:
            service.close()
        assert report.passed(), report.violations
        assert report.versions == len(trace)
        assert report.mutations_applied == 3
        assert report.requests > 0

    def test_invariant_holds_under_faults(self):
        network, trace, queries = _chaos_fixture(31)
        service = AllFPService(network, config=ServiceConfig(workers=2))
        try:
            report = run_mutation_chaos(
                service, queries, trace, plan=default_fault_plan(7), clients=2
            )
        finally:
            service.close()
        assert report.passed(), report.violations
        assert report.versions == len(trace)

    def test_report_dict_carries_mutation_fields(self):
        network, trace, queries = _chaos_fixture(5)
        service = AllFPService(network, config=ServiceConfig(workers=2))
        try:
            report = run_mutation_chaos(service, queries, trace, clients=1)
        finally:
            service.close()
        doc = report.as_dict()
        assert doc["mutations_applied"] == 3
        assert doc["versions"] == 2
        assert doc["passed"] is True
