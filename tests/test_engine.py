"""Integration tests for IntAllFastestPaths — the paper's algorithm."""

from __future__ import annotations

import pytest

from repro.core.astar import fixed_departure_query, path_travel_time
from repro.core.engine import IntAllFastestPaths, SearchBudgetExceeded
from repro.estimators.boundary import BoundaryNodeEstimator
from repro.estimators.naive import NaiveEstimator, ZeroEstimator
from repro.exceptions import NoPathError, QueryError
from repro.network.generator import (
    EXAMPLE_E,
    EXAMPLE_N,
    EXAMPLE_S,
    make_grid_network,
)
from repro.network.model import CapeCodNetwork
from repro.patterns.categories import Calendar
from repro.patterns.speed import CapeCodPattern
from repro.timeutil import TimeInterval, parse_clock


class TestPaperWorkedExample:
    """§4.3–§4.6 of the paper, end to end."""

    @pytest.fixture(scope="class")
    def allfp(self, example_network, example_interval):
        engine = IntAllFastestPaths(example_network)
        return engine.all_fastest_paths(EXAMPLE_S, EXAMPLE_E, example_interval)

    def test_three_sub_intervals(self, allfp):
        assert len(allfp.entries) == 3

    def test_paths_in_order(self, allfp):
        assert [e.path for e in allfp.entries] == [
            (EXAMPLE_S, EXAMPLE_E),
            (EXAMPLE_S, EXAMPLE_N, EXAMPLE_E),
            (EXAMPLE_S, EXAMPLE_E),
        ]

    def test_first_boundary_is_6_58_30(self, allfp):
        assert allfp.entries[0].interval.end == pytest.approx(
            parse_clock("6:58:30"), abs=1e-6
        )

    def test_second_boundary_is_7_03_26(self, allfp):
        # 12 - (7/3)(7:06 - l) = 6  =>  l = 7:06 - 18/7 min ≈ 7:03:25.7.
        expected = parse_clock("7:06") - 18.0 / 7.0
        assert allfp.entries[1].interval.end == pytest.approx(expected, abs=1e-6)

    def test_partition_covers_interval(self, allfp, example_interval):
        assert allfp.entries[0].interval.start == example_interval.start
        assert allfp.entries[-1].interval.end == example_interval.end
        for a, b in zip(allfp.entries, allfp.entries[1:]):
            assert a.interval.end == pytest.approx(b.interval.start)

    def test_distinct_paths(self, allfp):
        assert allfp.distinct_paths == (
            (EXAMPLE_S, EXAMPLE_E),
            (EXAMPLE_S, EXAMPLE_N, EXAMPLE_E),
        )

    def test_border_max_is_six(self, allfp):
        assert allfp.border.max_value() == pytest.approx(6.0)

    def test_border_min_is_five(self, allfp):
        assert allfp.border.min_value() == pytest.approx(5.0)

    def test_singlefp(self, example_network, example_interval):
        engine = IntAllFastestPaths(example_network)
        single = engine.single_fastest_path(
            EXAMPLE_S, EXAMPLE_E, example_interval
        )
        assert single.path == (EXAMPLE_S, EXAMPLE_N, EXAMPLE_E)
        assert single.optimal_travel_time == pytest.approx(5.0)
        (window,) = single.optimal_intervals
        assert window[0] == pytest.approx(parse_clock("7:00"))
        assert window[1] == pytest.approx(parse_clock("7:03"))

    def test_path_at_and_travel_time_at(self, allfp):
        assert allfp.path_at(parse_clock("6:52")) == (EXAMPLE_S, EXAMPLE_E)
        assert allfp.path_at(parse_clock("7:00")) == (
            EXAMPLE_S, EXAMPLE_N, EXAMPLE_E,
        )
        assert allfp.travel_time_at(parse_clock("7:00")) == pytest.approx(5.0)
        assert allfp.travel_time_at(parse_clock("6:52")) == pytest.approx(6.0)

    def test_path_at_outside_interval_raises(self, allfp):
        with pytest.raises(ValueError):
            allfp.path_at(parse_clock("5:00"))

    def test_best(self, allfp):
        leave, travel = allfp.best()
        assert travel == pytest.approx(5.0)
        assert parse_clock("7:00") <= leave <= parse_clock("7:03")


class OracleMixin:
    """Cross-check an allFP answer against fixed-departure A* sampling."""

    @staticmethod
    def check_against_oracle(network, result, samples=15):
        for instant in result.interval.sample(samples):
            oracle = fixed_departure_query(
                network, result.source, result.target, instant
            )
            border_val = result.travel_time_at(instant)
            assert border_val == pytest.approx(oracle.travel_time, abs=1e-6)
            chosen = result.path_at(instant)
            achieved = path_travel_time(network, chosen, instant)
            assert achieved == pytest.approx(border_val, abs=1e-6)


class TestOnMetroNetworks(OracleMixin):
    INTERVAL = TimeInterval(parse_clock("6:30"), parse_clock("9:30"))

    @pytest.mark.parametrize("pair", [(0, 255), (17, 240), (5, 130), (250, 3)])
    def test_allfp_matches_oracle_naive(self, metro_small, pair):
        engine = IntAllFastestPaths(metro_small, NaiveEstimator(metro_small))
        result = engine.all_fastest_paths(pair[0], pair[1], self.INTERVAL)
        self.check_against_oracle(metro_small, result)

    @pytest.mark.parametrize("pair", [(0, 255), (17, 240)])
    def test_allfp_matches_oracle_boundary(self, metro_small, pair):
        est = BoundaryNodeEstimator(metro_small, 4, 4)
        engine = IntAllFastestPaths(metro_small, est)
        result = engine.all_fastest_paths(pair[0], pair[1], self.INTERVAL)
        self.check_against_oracle(metro_small, result)

    def test_allfp_matches_oracle_zero_estimator(self, metro_tiny):
        engine = IntAllFastestPaths(metro_tiny, ZeroEstimator())
        result = engine.all_fastest_paths(0, 99, self.INTERVAL)
        self.check_against_oracle(metro_tiny, result)

    def test_estimators_agree_on_answer(self, metro_small):
        naive_engine = IntAllFastestPaths(metro_small, NaiveEstimator(metro_small))
        bd_engine = IntAllFastestPaths(
            metro_small, BoundaryNodeEstimator(metro_small, 4, 4)
        )
        a = naive_engine.all_fastest_paths(3, 200, self.INTERVAL)
        b = bd_engine.all_fastest_paths(3, 200, self.INTERVAL)
        for instant in self.INTERVAL.sample(11):
            assert a.travel_time_at(instant) == pytest.approx(
                b.travel_time_at(instant), abs=1e-6
            )

    def test_boundary_estimator_expands_no_more(self, metro_small):
        naive_engine = IntAllFastestPaths(metro_small, NaiveEstimator(metro_small))
        bd_engine = IntAllFastestPaths(
            metro_small, BoundaryNodeEstimator(metro_small, 4, 4)
        )
        a = naive_engine.all_fastest_paths(0, 255, self.INTERVAL)
        b = bd_engine.all_fastest_paths(0, 255, self.INTERVAL)
        assert b.stats.expanded_paths <= a.stats.expanded_paths

    def test_singlefp_is_border_minimum(self, metro_small):
        engine = IntAllFastestPaths(metro_small)
        single = engine.single_fastest_path(0, 255, self.INTERVAL)
        full = engine.all_fastest_paths(0, 255, self.INTERVAL)
        assert single.optimal_travel_time == pytest.approx(
            full.border.min_value(), abs=1e-6
        )

    def test_singlefp_cheaper_than_allfp(self, metro_small):
        engine = IntAllFastestPaths(metro_small)
        single = engine.single_fastest_path(0, 255, self.INTERVAL)
        full = engine.all_fastest_paths(0, 255, self.INTERVAL)
        assert single.stats.expanded_paths <= full.stats.expanded_paths


class TestPruningModes(OracleMixin):
    INTERVAL = TimeInterval(parse_clock("6:45"), parse_clock("8:00"))

    def test_unpruned_matches_pruned(self, metro_tiny):
        pruned = IntAllFastestPaths(metro_tiny, prune=True)
        literal = IntAllFastestPaths(metro_tiny, prune=False, max_pops=200_000)
        a = pruned.all_fastest_paths(0, 55, self.INTERVAL)
        b = literal.all_fastest_paths(0, 55, self.INTERVAL)
        for instant in self.INTERVAL.sample(9):
            assert a.travel_time_at(instant) == pytest.approx(
                b.travel_time_at(instant), abs=1e-6
            )

    def test_unpruned_expands_more(self, metro_tiny):
        pruned = IntAllFastestPaths(metro_tiny, prune=True)
        literal = IntAllFastestPaths(metro_tiny, prune=False, max_pops=200_000)
        a = pruned.all_fastest_paths(0, 99, self.INTERVAL)
        b = literal.all_fastest_paths(0, 99, self.INTERVAL)
        assert b.stats.expanded_paths >= a.stats.expanded_paths

    def test_budget_exceeded_raises(self, metro_small):
        engine = IntAllFastestPaths(metro_small, max_pops=5)
        with pytest.raises(SearchBudgetExceeded) as info:
            engine.all_fastest_paths(
                0, 255, TimeInterval(parse_clock("7:00"), parse_clock("10:00"))
            )
        assert info.value.stats.expanded_paths == 6


class TestDegenerateInterval:
    def test_instant_interval_equals_fixed_departure(self, metro_tiny):
        depart = parse_clock("7:30")
        instant = TimeInterval(depart, depart)
        engine = IntAllFastestPaths(metro_tiny)
        result = engine.all_fastest_paths(0, 99, instant)
        oracle = fixed_departure_query(metro_tiny, 0, 99, depart)
        assert len(result.entries) == 1
        assert result.travel_time_at(depart) == pytest.approx(
            oracle.travel_time, abs=1e-6
        )

    def test_instant_singlefp(self, example_network):
        depart = parse_clock("7:00")
        engine = IntAllFastestPaths(example_network)
        single = engine.single_fastest_path(
            EXAMPLE_S, EXAMPLE_E, TimeInterval(depart, depart)
        )
        assert single.optimal_travel_time == pytest.approx(5.0)


class TestQueryValidation:
    def test_same_source_target(self, metro_tiny):
        engine = IntAllFastestPaths(metro_tiny)
        with pytest.raises(QueryError):
            engine.all_fastest_paths(0, 0, TimeInterval(0.0, 10.0))

    def test_unknown_nodes(self, metro_tiny):
        engine = IntAllFastestPaths(metro_tiny)
        with pytest.raises(KeyError):
            engine.all_fastest_paths(0, 10**9, TimeInterval(0.0, 10.0))

    def test_no_path(self):
        cal = Calendar.single_category()
        pat = CapeCodPattern.constant(1.0, cal.categories.names)
        net = CapeCodNetwork(cal)
        for i in range(3):
            net.add_node(i, float(i), 0.0)
        net.add_edge(0, 1, 1.0, pat)
        net.add_edge(2, 1, 1.0, pat)  # 2 unreachable from 0
        engine = IntAllFastestPaths(net)
        with pytest.raises(NoPathError):
            engine.all_fastest_paths(0, 2, TimeInterval(0.0, 10.0))


class TestEngineReuse:
    def test_multiple_queries_same_engine(self, metro_tiny):
        engine = IntAllFastestPaths(metro_tiny)
        interval = TimeInterval(parse_clock("7:00"), parse_clock("8:00"))
        first = engine.all_fastest_paths(0, 99, interval)
        second = engine.all_fastest_paths(99, 0, interval)
        third = engine.all_fastest_paths(0, 99, interval)
        assert first.border.equals_approx(third.border)
        assert second.source == 99

    def test_edge_cache_grows_once(self, metro_tiny):
        engine = IntAllFastestPaths(metro_tiny)
        interval = TimeInterval(parse_clock("7:00"), parse_clock("8:00"))
        engine.all_fastest_paths(0, 99, interval)
        cached = len(engine.edge_cache)
        engine.all_fastest_paths(0, 99, interval)
        assert len(engine.edge_cache) == cached


class TestConstantNetworkSpecialCase:
    def test_single_entry_on_constant_grid(self, grid5):
        engine = IntAllFastestPaths(grid5)
        result = engine.all_fastest_paths(
            0, 24, TimeInterval(0.0, 120.0)
        )
        assert len(result.entries) == 1
        assert result.border.max_value() == pytest.approx(
            result.border.min_value()
        )
        assert result.border.min_value() == pytest.approx(8.0)
