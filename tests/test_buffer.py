"""Unit tests for page stores and the LRU buffer manager."""

from __future__ import annotations

import pytest

from repro.exceptions import StorageError
from repro.storage.buffer import BufferManager, FilePageStore, MemoryPageStore


class TestMemoryPageStore:
    def test_allocate_and_roundtrip(self):
        store = MemoryPageStore(128)
        p = store.allocate()
        store.write(p, b"hello")
        data = store.read(p)
        assert data.startswith(b"hello")
        assert len(data) == 128

    def test_pages_zero_initialised(self):
        store = MemoryPageStore(128)
        p = store.allocate()
        assert store.read(p) == bytes(128)

    def test_write_overflow_raises(self):
        store = MemoryPageStore(64)
        p = store.allocate()
        with pytest.raises(StorageError):
            store.write(p, b"x" * 65)

    def test_out_of_range_raises(self):
        store = MemoryPageStore(64)
        with pytest.raises(StorageError):
            store.read(0)
        store.allocate()
        with pytest.raises(StorageError):
            store.read(5)

    def test_too_small_page_size_rejected(self):
        with pytest.raises(StorageError):
            MemoryPageStore(16)

    def test_dump(self, tmp_path):
        store = MemoryPageStore(64)
        for i in range(3):
            p = store.allocate()
            store.write(p, bytes([i]) * 10)
        path = tmp_path / "pages.bin"
        with open(path, "wb") as f:
            store.dump(f)
        assert path.stat().st_size == 3 * 64


class TestFilePageStore:
    @pytest.fixture
    def backing(self, tmp_path):
        path = tmp_path / "db.bin"
        payload = b"".join(bytes([i]) * 64 for i in range(10))
        path.write_bytes(payload)
        return path

    def test_read(self, backing):
        with FilePageStore(backing, 64, 10) as store:
            assert store.read(3) == bytes([3]) * 64

    def test_offset_region(self, backing):
        with FilePageStore(backing, 64, 8, offset=2 * 64) as store:
            assert store.read(0) == bytes([2]) * 64

    def test_out_of_range(self, backing):
        with FilePageStore(backing, 64, 10) as store:
            with pytest.raises(StorageError):
                store.read(10)

    def test_short_read_detected(self, backing):
        with FilePageStore(backing, 64, 11) as store:
            with pytest.raises(StorageError):
                store.read(10)

    def test_read_only(self, backing):
        with FilePageStore(backing, 64, 10) as store:
            with pytest.raises(StorageError):
                store.write(0, b"x")
            with pytest.raises(StorageError):
                store.allocate()


class TestBufferManager:
    @pytest.fixture
    def store(self):
        s = MemoryPageStore(64)
        for i in range(10):
            p = s.allocate()
            s.write(p, bytes([i]) * 8)
        return s

    def test_counts_hits_and_misses(self, store):
        buf = BufferManager(store, capacity=4)
        buf.read(0)
        buf.read(0)
        assert buf.logical_reads == 2
        assert buf.physical_reads == 1
        assert buf.hit_rate == 0.5

    def test_lru_eviction(self, store):
        buf = BufferManager(store, capacity=2)
        buf.read(0)
        buf.read(1)
        buf.read(2)  # evicts page 0
        buf.read(0)  # miss again
        assert buf.physical_reads == 4

    def test_lru_recency_update(self, store):
        buf = BufferManager(store, capacity=2)
        buf.read(0)
        buf.read(1)
        buf.read(0)  # touch 0, making 1 the LRU
        buf.read(2)  # evicts 1
        buf.read(0)  # still cached
        assert buf.physical_reads == 3

    def test_invalidate_single(self, store):
        buf = BufferManager(store, capacity=4)
        buf.read(0)
        buf.invalidate(0)
        buf.read(0)
        assert buf.physical_reads == 2

    def test_invalidate_all(self, store):
        buf = BufferManager(store, capacity=4)
        buf.read(0)
        buf.read(1)
        buf.invalidate()
        buf.read(0)
        assert buf.physical_reads == 3

    def test_reset_counters(self, store):
        buf = BufferManager(store, capacity=4)
        buf.read(0)
        buf.reset_counters()
        assert buf.logical_reads == 0
        assert buf.physical_reads == 0

    def test_hit_rate_empty(self, store):
        assert BufferManager(store).hit_rate == 0.0

    def test_rejects_zero_capacity(self, store):
        with pytest.raises(StorageError):
            BufferManager(store, capacity=0)

    def test_data_correctness_through_cache(self, store):
        buf = BufferManager(store, capacity=2)
        for _ in range(3):
            for i in range(10):
                assert buf.read(i)[:8] == bytes([i]) * 8
