"""Integration tests for the CCAM store (system S6)."""

from __future__ import annotations

import pytest

from repro.core.astar import fixed_departure_query
from repro.core.engine import IntAllFastestPaths
from repro.estimators.naive import NaiveEstimator
from repro.exceptions import NodeNotFoundError, StorageError, EdgeNotFoundError
from repro.network.generator import MetroConfig, make_metro_network
from repro.storage.ccam import CCAMStore
from repro.timeutil import TimeInterval, parse_clock


@pytest.fixture(scope="module")
def metro():
    return make_metro_network(MetroConfig(width=12, height=12, seed=6))


@pytest.fixture(scope="module")
def db_path(metro, tmp_path_factory):
    path = tmp_path_factory.mktemp("ccam") / "metro.ccam"
    CCAMStore.build(metro, path).close()
    return path


@pytest.fixture
def store(db_path):
    with CCAMStore.open(db_path) as s:
        yield s


class TestBuild:
    def test_build_info(self, store):
        assert store.build_info["strategy"] == "connectivity"
        assert 0.0 < store.build_info["clustering_quality"] <= 1.0
        assert store.build_info["data_pages"] > 0

    def test_hilbert_strategy(self, metro, tmp_path):
        path = tmp_path / "h.ccam"
        with CCAMStore.build(metro, path, strategy="hilbert") as s:
            assert s.build_info["strategy"] == "hilbert"
            assert s.node_count == metro.node_count

    def test_unknown_strategy(self, metro, tmp_path):
        with pytest.raises(StorageError):
            CCAMStore.build(metro, tmp_path / "x.ccam", strategy="random")  # type: ignore[arg-type]

    def test_small_pages(self, metro, tmp_path):
        path = tmp_path / "small.ccam"
        with CCAMStore.build(metro, path, page_size=512) as s:
            assert s.page_size == 512
            assert s.build_info["data_pages"] > store_pages_at_2048(metro, tmp_path)

    def test_counts(self, store, metro):
        assert store.node_count == metro.node_count
        assert store.edge_count == metro.edge_count


def store_pages_at_2048(metro, tmp_path) -> int:
    path = tmp_path / "ref.ccam"
    with CCAMStore.build(metro, path, page_size=2048) as s:
        return s.build_info["data_pages"]


class TestOpenValidation:
    def test_not_a_database(self, tmp_path):
        path = tmp_path / "garbage.ccam"
        path.write_bytes(b"not a ccam file" * 100)
        with pytest.raises(StorageError):
            CCAMStore.open(path)

    def test_truncated(self, tmp_path):
        path = tmp_path / "trunc.ccam"
        path.write_bytes(b"xy")
        with pytest.raises(StorageError):
            CCAMStore.open(path)


class TestAccessorFidelity:
    def test_find_node(self, store, metro):
        record = store.find_node(0)
        assert record.node_id == 0
        assert record.location == metro.location(0)

    def test_find_node_missing(self, store):
        with pytest.raises(NodeNotFoundError):
            store.find_node(99999)

    def test_all_locations_match(self, store, metro):
        for nid in metro.node_ids():
            assert store.location(nid) == metro.location(nid)

    def test_all_adjacency_matches(self, store, metro):
        for nid in metro.node_ids():
            mem = sorted(
                (e.target, e.distance, e.pattern, e.road_class)
                for e in metro.outgoing(nid)
            )
            dsk = sorted(
                (e.target, e.distance, e.pattern, e.road_class)
                for e in store.outgoing(nid)
            )
            assert mem == dsk

    def test_get_successors_alias(self, store):
        assert store.get_successors(0) == store.outgoing(0)

    def test_find_edge(self, store, metro):
        edge = next(metro.edges())
        found = store.find_edge(edge.source, edge.target)
        assert found.distance == edge.distance
        with pytest.raises(EdgeNotFoundError):
            store.find_edge(edge.source, edge.source + 10_000)

    def test_speed_summaries(self, store, metro):
        assert store.max_speed() == pytest.approx(metro.max_speed())
        assert store.min_speed() == pytest.approx(metro.min_speed())

    def test_node_ids_scan(self, store, metro):
        assert sorted(store.node_ids()) == sorted(metro.node_ids())


class TestIOAccounting:
    def test_reads_counted(self, store):
        store.reset_io_counters()
        store.drop_buffer()
        store.find_node(0)
        assert store.page_reads > 0
        assert store.logical_reads >= store.page_reads

    def test_buffer_absorbs_repeats(self, store):
        store.drop_buffer()
        store.reset_io_counters()
        store.find_node(0)
        cold = store.page_reads
        store.find_node(0)
        assert store.page_reads == cold  # second lookup fully buffered

    def test_smaller_buffer_more_io(self, db_path, metro):
        interval = TimeInterval(parse_clock("7:00"), parse_clock("8:00"))
        reads = {}
        for pages in (4, 256):
            with CCAMStore.open(db_path, buffer_pages=pages) as s:
                engine = IntAllFastestPaths(s, NaiveEstimator(s))
                s.reset_io_counters()
                engine.all_fastest_paths(0, metro.node_count - 1, interval)
                reads[pages] = s.page_reads
        assert reads[4] >= reads[256]


class TestQueriesAgainstDisk:
    def test_allfp_matches_memory(self, store, metro):
        interval = TimeInterval(parse_clock("7:00"), parse_clock("9:00"))
        disk_engine = IntAllFastestPaths(store, NaiveEstimator(store))
        result = disk_engine.all_fastest_paths(0, metro.node_count - 1, interval)
        for instant in interval.sample(9):
            oracle = fixed_departure_query(metro, 0, metro.node_count - 1, instant)
            assert result.travel_time_at(instant) == pytest.approx(
                oracle.travel_time, abs=1e-6
            )

    def test_page_reads_in_stats(self, store, metro):
        interval = TimeInterval(parse_clock("7:00"), parse_clock("8:00"))
        engine = IntAllFastestPaths(store, NaiveEstimator(store))
        store.drop_buffer()
        result = engine.all_fastest_paths(0, metro.node_count - 1, interval)
        assert result.stats.page_reads > 0
