"""Smoke tests: every example script runs cleanly and prints its headline.

Marked opt-in by default-skipping under ``REPRO_SKIP_EXAMPLES=1`` (CI knob);
each example finishes in seconds.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_EXAMPLES") == "1",
    reason="example smoke tests disabled via REPRO_SKIP_EXAMPLES",
)


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "6:58:30" in out
        assert "s -> n -> e" in out
        assert "5m" in out

    def test_commuter_rush_hour(self):
        out = run_example("commuter_rush_hour.py")
        assert "allFP" in out
        assert "inbound highway" in out
        assert "Saturday" in out

    def test_discrete_vs_continuous(self):
        out = run_example("discrete_vs_continuous.py")
        assert "continuous (CapeCod)" in out
        assert "1 hour" in out and "10 sec" in out
        # The coarse grid must exhibit an error; the fine one must be exact.
        assert "+" in out and "exact" in out

    def test_disk_backed_queries(self):
        out = run_example("disk_backed_queries.py")
        assert "physical page reads" in out
        assert "agree at 13 sampled instants: True" in out

    def test_airport_deadline(self):
        out = run_example("airport_deadline.py")
        assert "leave by" in out
        assert "travel time (min) vs arrival time" in out

    def test_lunch_knn(self):
        out = run_example("lunch_knn.py")
        assert "#1" in out
        assert "nearest restaurant by leaving instant" in out

    def test_traffic_incident(self):
        out = run_example("traffic_incident.py")
        assert "incident" in out
        assert "persisted" in out
