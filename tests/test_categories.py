"""Unit tests for day-category sets and calendars (Definition 1)."""

from __future__ import annotations

import pytest

from repro.exceptions import PatternError
from repro.patterns.categories import (
    NON_WORKDAY,
    WORKDAY,
    WORKWEEK,
    Calendar,
    DayCategorySet,
    workweek_calendar,
)


class TestDayCategorySet:
    def test_names(self):
        cats = DayCategorySet(["a", "b"])
        assert cats.names == ("a", "b")
        assert len(cats) == 2

    def test_contains(self):
        cats = DayCategorySet(["a", "b"])
        assert "a" in cats
        assert "z" not in cats

    def test_iteration_order(self):
        assert list(DayCategorySet(["x", "y", "z"])) == ["x", "y", "z"]

    def test_rejects_empty(self):
        with pytest.raises(PatternError):
            DayCategorySet([])

    def test_rejects_duplicates(self):
        with pytest.raises(PatternError):
            DayCategorySet(["a", "a"])

    def test_validate_member(self):
        cats = DayCategorySet(["a"])
        assert cats.validate("a") == "a"

    def test_validate_non_member(self):
        with pytest.raises(PatternError):
            DayCategorySet(["a"]).validate("b")

    def test_equality_and_hash(self):
        assert DayCategorySet(["a", "b"]) == DayCategorySet(["a", "b"])
        assert DayCategorySet(["a", "b"]) != DayCategorySet(["b", "a"])
        assert hash(DayCategorySet(["a"])) == hash(DayCategorySet(["a"]))

    def test_workweek_constant(self):
        assert WORKWEEK.names == ("workday", "non-workday")


class TestCalendar:
    def test_single_category(self):
        cal = Calendar.single_category("x")
        assert cal.category_for_day(0) == "x"
        assert cal.category_for_day(400) == "x"

    def test_periodic(self):
        cats = DayCategorySet(["a", "b"])
        cal = Calendar.periodic(cats, ["a", "a", "b"])
        assert [cal.category_for_day(d) for d in range(6)] == [
            "a", "a", "b", "a", "a", "b",
        ]

    def test_periodic_rejects_empty(self):
        with pytest.raises(PatternError):
            Calendar.periodic(DayCategorySet(["a"]), [])

    def test_periodic_rejects_unknown(self):
        with pytest.raises(PatternError):
            Calendar.periodic(DayCategorySet(["a"]), ["b"])

    def test_custom_assignment_validated(self):
        cal = Calendar(DayCategorySet(["a"]), lambda day: "z")
        with pytest.raises(PatternError):
            cal.category_for_day(0)

    def test_caching(self):
        calls = []
        cal = Calendar(DayCategorySet(["a"]), lambda day: (calls.append(day), "a")[1])
        cal.category_for_day(3)
        cal.category_for_day(3)
        assert calls == [3]


class TestWorkweekCalendar:
    def test_weekdays(self):
        cal = workweek_calendar()
        # Day 0 is a Monday.
        assert [cal.category_for_day(d) for d in range(7)] == [
            WORKDAY, WORKDAY, WORKDAY, WORKDAY, WORKDAY,
            NON_WORKDAY, NON_WORKDAY,
        ]

    def test_repeats_weekly(self):
        cal = workweek_calendar()
        assert cal.category_for_day(7) == WORKDAY
        assert cal.category_for_day(12) == NON_WORKDAY

    def test_category_set(self):
        assert workweek_calendar().categories == WORKWEEK
