"""Tests for CCAM update operations (§2.2's network-update support)."""

from __future__ import annotations

import pytest

from repro.core.astar import fixed_departure_query
from repro.core.engine import IntAllFastestPaths
from repro.estimators.naive import NaiveEstimator
from repro.exceptions import (
    EdgeNotFoundError,
    NetworkError,
    NodeNotFoundError,
    StorageError,
)
from repro.network.generator import MetroConfig, make_metro_network
from repro.patterns.speed import CapeCodPattern, DailySpeedPattern
from repro.patterns.categories import NON_WORKDAY, WORKDAY
from repro.storage.ccam import CCAMStore
from repro.timeutil import TimeInterval, parse_clock


@pytest.fixture(scope="module")
def network():
    return make_metro_network(MetroConfig(width=10, height=10, seed=23))


@pytest.fixture
def store(network, tmp_path):
    path = tmp_path / "net.ccam"
    CCAMStore.build(network, path).close()
    with CCAMStore.open(path, writable=True) as s:
        yield s


def crawl_pattern():
    daily = DailySpeedPattern.constant(0.05)
    return CapeCodPattern({WORKDAY: daily, NON_WORKDAY: daily})


class TestWritableGate:
    def test_read_only_store_rejects_updates(self, network, tmp_path):
        path = tmp_path / "ro.ccam"
        with CCAMStore.build(network, path) as s:
            with pytest.raises(StorageError, match="read-only"):
                s.remove_edge(0, 1)

    def test_writable_flag(self, store):
        assert store.writable


class TestUpdateEdgePattern:
    def test_pattern_changes_travel_time(self, store):
        edge = store.outgoing(0)[0]
        before = fixed_departure_query(
            store, 0, edge.target, parse_clock("12:00")
        ).travel_time
        store.update_edge_pattern(0, edge.target, crawl_pattern())
        after = fixed_departure_query(
            store, 0, edge.target, parse_clock("12:00")
        ).travel_time
        assert after > before * 2

    def test_missing_edge_raises(self, store):
        with pytest.raises(EdgeNotFoundError):
            store.update_edge_pattern(0, 10**6, crawl_pattern())

    def test_max_speed_tracks_new_patterns(self, store):
        fast = CapeCodPattern(
            {
                WORKDAY: DailySpeedPattern.constant(9.0),
                NON_WORKDAY: DailySpeedPattern.constant(9.0),
            }
        )
        edge = store.outgoing(0)[0]
        store.update_edge_pattern(0, edge.target, fast)
        assert store.max_speed() == pytest.approx(9.0)

    def test_persists_across_reopen(self, store, tmp_path):
        edge = store.outgoing(0)[0]
        store.update_edge_pattern(0, edge.target, crawl_pattern())
        store.flush()
        path = store._path
        store.close()
        with CCAMStore.open(path) as reopened:
            reloaded = reopened.find_edge(0, edge.target)
            assert reloaded.pattern == crawl_pattern()


class TestInsertRemoveEdge:
    def test_insert_and_query(self, store, network):
        # A diagonal expressway between two far corners.
        a, b = 0, network.node_count - 1
        assert not any(e.target == b for e in store.outgoing(a))
        store.insert_edge(a, b, 1.0, crawl_pattern())
        assert store.find_edge(a, b).distance == 1.0
        assert store.edge_count == network.edge_count + 1

    def test_duplicate_rejected(self, store):
        edge = store.outgoing(0)[0]
        with pytest.raises(NetworkError):
            store.insert_edge(0, edge.target, 1.0, crawl_pattern())

    def test_missing_target_rejected(self, store):
        with pytest.raises(NodeNotFoundError):
            store.insert_edge(0, 10**6, 1.0, crawl_pattern())

    def test_remove(self, store, network):
        edge = store.outgoing(0)[0]
        store.remove_edge(0, edge.target)
        assert not any(e.target == edge.target for e in store.outgoing(0))
        assert store.edge_count == network.edge_count - 1

    def test_remove_missing(self, store):
        with pytest.raises(EdgeNotFoundError):
            store.remove_edge(0, 10**6)

    def test_many_insertions_overflow_pages(self, store, network):
        """Growing one node's adjacency forces a record relocation."""
        hub = 0
        added = []
        for target in range(1, 90):
            if any(e.target == target for e in store.outgoing(hub)):
                continue
            store.insert_edge(hub, target, 0.5, crawl_pattern())
            added.append(target)
        out = {e.target for e in store.outgoing(hub)}
        assert set(added) <= out
        # Every other node still resolves.
        for nid in list(network.node_ids())[::9]:
            store.find_node(nid)


class TestInsertRemoveNode:
    def test_insert_node_with_edges(self, store, network):
        new_id = 10_000
        store.insert_node(
            new_id, 1.23, 4.56, edges=[(0, 0.7, crawl_pattern(), None)]
        )
        record = store.find_node(new_id)
        assert record.location == (1.23, 4.56)
        assert store.find_edge(new_id, 0).distance == 0.7
        assert store.node_count == network.node_count + 1

    def test_duplicate_node_rejected(self, store):
        with pytest.raises(NetworkError):
            store.insert_node(0, 0.0, 0.0)

    def test_connectivity_placement(self, store):
        """The new record lands in a page holding one of its neighbours."""
        anchor = 42
        anchor_page, _slot = store._locator(anchor)
        new_id = 20_000
        store.insert_node(
            new_id, 9.9, 9.9, edges=[(anchor, 0.1, crawl_pattern(), None)]
        )
        new_page, _slot = store._locator(new_id)
        # Either co-located with the anchor or the anchor's page was full.
        assert new_page == anchor_page or store._page_free(anchor_page) < 60

    def test_remove_node(self, store, network):
        new_id = 30_000
        store.insert_node(new_id, 0.0, 0.0)
        store.remove_node(new_id)
        with pytest.raises(NodeNotFoundError):
            store.find_node(new_id)
        assert store.node_count == network.node_count

    def test_roundtrip_persistence(self, store):
        new_id = 40_000
        store.insert_node(
            new_id, 5.0, 5.0, edges=[(7, 0.3, crawl_pattern(), None)]
        )
        path = store._path
        store.close()
        with CCAMStore.open(path) as reopened:
            assert reopened.find_node(new_id).location == (5.0, 5.0)
            assert reopened.find_edge(new_id, 7).distance == 0.3


class TestQueriesAfterUpdates:
    def test_engine_sees_updates(self, store, network):
        """A fresh engine routes over a newly inserted expressway."""
        a, b = 0, network.node_count - 1
        interval = TimeInterval(parse_clock("12:00"), parse_clock("12:30"))
        before = IntAllFastestPaths(store, NaiveEstimator(store)).all_fastest_paths(
            a, b, interval
        )
        fast = CapeCodPattern(
            {
                WORKDAY: DailySpeedPattern.constant(5.0),
                NON_WORKDAY: DailySpeedPattern.constant(5.0),
            }
        )
        store.insert_edge(a, b, 0.5, fast)
        after = IntAllFastestPaths(store, NaiveEstimator(store)).all_fastest_paths(
            a, b, interval
        )
        assert after.border.min_value() < before.border.min_value()
        assert after.path_at(parse_clock("12:10")) == (a, b)
