"""Unit tests for path labels and the label priority queue."""

from __future__ import annotations

import pytest

from repro.core.labels import LabelQueue, PathLabel
from repro.func.monotone import MonotonePiecewiseLinear, identity

MPL = MonotonePiecewiseLinear


def make_label(path, points, estimate=0.0):
    return PathLabel.make(tuple(path), MPL(points), estimate)


class TestPathLabel:
    def test_end_and_hops(self):
        label = make_label([1, 2, 3], [(0.0, 5.0), (10.0, 15.0)])
        assert label.end == 3
        assert label.hops == 2

    def test_f_min_constant_travel(self):
        # Arrival = l + 5 -> travel 5; estimate 2 -> f_min 7.
        label = make_label([1, 2], [(0.0, 5.0), (10.0, 15.0)], estimate=2.0)
        assert label.f_min == pytest.approx(7.0)

    def test_f_min_varying_travel(self):
        # Travel falls from 10 to 2 across the window.
        label = make_label([1], [(0.0, 10.0), (8.0, 10.0)], estimate=0.0)
        assert label.f_min == pytest.approx(2.0)

    def test_travel_time_function(self):
        label = make_label([1], [(0.0, 6.0), (10.0, 16.0)])
        travel = label.travel_time_function()
        assert travel(0.0) == pytest.approx(6.0)
        assert travel(10.0) == pytest.approx(6.0)

    def test_source_label_zero_travel(self):
        label = PathLabel.make((7,), identity(0.0, 10.0), 3.5)
        assert label.f_min == pytest.approx(3.5)

    def test_frozen(self):
        label = make_label([1], [(0.0, 1.0), (1.0, 2.0)])
        with pytest.raises(AttributeError):
            label.estimate = 9.0  # type: ignore[misc]


class TestLabelQueue:
    def test_orders_by_f_min(self):
        q = LabelQueue()
        a = make_label([1], [(0.0, 5.0), (10.0, 15.0)])  # f=5
        b = make_label([2], [(0.0, 3.0), (10.0, 13.0)])  # f=3
        c = make_label([3], [(0.0, 8.0), (10.0, 18.0)])  # f=8
        for label in (a, b, c):
            q.push(label)
        assert q.pop() is b
        assert q.pop() is a
        assert q.pop() is c

    def test_tie_break_fewer_hops_first(self):
        q = LabelQueue()
        long = make_label([1, 2, 3], [(0.0, 5.0), (10.0, 15.0)])
        short = make_label([9], [(0.0, 5.0), (10.0, 15.0)])
        q.push(long)
        q.push(short)
        assert q.pop() is short

    def test_peek_f_min(self):
        q = LabelQueue()
        assert q.peek_f_min() == float("inf")
        q.push(make_label([1], [(0.0, 4.0), (10.0, 14.0)]))
        assert q.peek_f_min() == pytest.approx(4.0)

    def test_len_and_bool(self):
        q = LabelQueue()
        assert not q
        q.push(make_label([1], [(0.0, 4.0), (10.0, 14.0)]))
        assert q
        assert len(q) == 1

    def test_max_size_high_water_mark(self):
        q = LabelQueue()
        for i in range(5):
            q.push(make_label([i], [(0.0, float(i + 1)), (10.0, 10.0 + i + 1)]))
        for _ in range(5):
            q.pop()
        assert q.max_size == 5
        assert len(q) == 0
