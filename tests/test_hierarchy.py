"""Tests for the two-level hierarchical subsystem (S15)."""

from __future__ import annotations

import pytest

from repro.core.astar import path_travel_time
from repro.core.engine import IntAllFastestPaths
from repro.core.profile import arrival_profile, travel_time_profile
from repro.core.astar import fixed_departure_query
from repro.exceptions import QueryError
from repro.hierarchy import HierarchicalEngine, HierarchicalIndex, ShortcutEdge
from repro.func.monotone import MonotonePiecewiseLinear
from repro.timeutil import TimeInterval, parse_clock

HORIZON = TimeInterval(parse_clock("5:00"), parse_clock("14:00"))
WINDOW = TimeInterval(parse_clock("6:30"), parse_clock("9:30"))


@pytest.fixture(scope="module")
def index(metro_small):
    return HierarchicalIndex(metro_small, 4, 4, HORIZON)


@pytest.fixture(scope="module")
def engine(index):
    return HierarchicalEngine(index)


@pytest.fixture(scope="module")
def flat(metro_small):
    return IntAllFastestPaths(metro_small)


class TestProfileSearch:
    def test_matches_oracle(self, metro_tiny):
        interval = TimeInterval(parse_clock("6:30"), parse_clock("8:30"))
        profiles = arrival_profile(metro_tiny, 0, interval)
        assert len(profiles) == metro_tiny.node_count
        for node in list(profiles)[::13]:
            if node == 0:
                continue
            for instant in interval.sample(5):
                oracle = fixed_departure_query(metro_tiny, 0, node, instant)
                assert profiles[node](instant) == pytest.approx(
                    oracle.arrival, abs=1e-6
                )

    def test_source_profile_is_identity(self, metro_tiny):
        interval = TimeInterval(100.0, 200.0)
        profiles = arrival_profile(metro_tiny, 5, interval)
        assert profiles[5](150.0) == pytest.approx(150.0)

    def test_node_filter_restricts(self, metro_tiny):
        interval = TimeInterval(100.0, 200.0)
        allowed = set(range(30))
        profiles = arrival_profile(
            metro_tiny, 0, interval, node_filter=allowed.__contains__
        )
        assert set(profiles) <= allowed

    def test_targets_filter(self, metro_tiny):
        interval = TimeInterval(100.0, 200.0)
        profiles = arrival_profile(metro_tiny, 0, interval, targets=[7, 13])
        assert set(profiles) <= {0, 7, 13} - {0} | {7, 13}

    def test_travel_time_profile_convenience(self, metro_tiny):
        interval = TimeInterval(100.0, 160.0)
        fn = travel_time_profile(metro_tiny, 0, interval, 42)
        assert fn is not None
        oracle = fixed_departure_query(metro_tiny, 0, 42, 130.0)
        assert fn(130.0) == pytest.approx(oracle.arrival, abs=1e-6)

    def test_unreachable_absent(self, metro_tiny):
        interval = TimeInterval(100.0, 160.0)
        profiles = arrival_profile(
            metro_tiny, 0, interval, node_filter=lambda n: n == 0
        )
        assert set(profiles) == {0}


class TestIndexBuild:
    def test_stats(self, index):
        assert index.stats.fragments == 16
        assert index.stats.boundary_nodes > 0
        assert index.stats.shortcuts > 0
        assert index.stats.profile_searches == index.stats.boundary_nodes

    def test_shortcuts_are_intra_fragment(self, index):
        for node in list(index.network.node_ids())[::7]:
            for shortcut in index.shortcuts_from(node):
                assert index.cell_of(shortcut.source) == index.cell_of(
                    shortcut.target
                )

    def test_shortcut_lower_bounded_by_direct_edge(self, index, metro_small):
        """Where a direct intra-fragment edge exists, the shortcut can only
        be at least as fast."""
        checked = 0
        for edge in metro_small.edges():
            if index.cell_of(edge.source) != index.cell_of(edge.target):
                continue
            for shortcut in index.shortcuts_from(edge.source):
                if shortcut.target != edge.target:
                    continue
                depart = parse_clock("8:00")
                direct = path_travel_time(
                    metro_small, (edge.source, edge.target), depart
                )
                via = shortcut.profile(depart) - depart
                assert via <= direct + 1e-6
                checked += 1
        assert checked > 0

    def test_shortcut_horizon_enforced(self, index):
        node = next(
            n for n in index.network.node_ids() if index.shortcuts_from(n)
        )
        shortcut = index.shortcuts_from(node)[0]
        with pytest.raises(QueryError, match="horizon"):
            shortcut.arrival_function(0.0, 10.0)

    def test_shortcut_min_travel_time_positive(self, index):
        node = next(
            n for n in index.network.node_ids() if index.shortcuts_from(n)
        )
        assert index.shortcuts_from(node)[0].min_travel_time > 0


class TestHierarchicalQueries:
    @pytest.mark.parametrize("pair", [(0, 255), (17, 240), (250, 3), (5, 130)])
    def test_travel_times_match_flat(self, engine, flat, pair):
        h = engine.all_fastest_paths(pair[0], pair[1], WINDOW)
        f = flat.all_fastest_paths(pair[0], pair[1], WINDOW)
        for instant in WINDOW.sample(11):
            assert h.travel_time_at(instant) == pytest.approx(
                f.travel_time_at(instant), abs=1e-6
            )

    def test_singlefp_matches_flat(self, engine, flat):
        h = engine.single_fastest_path(0, 255, WINDOW)
        f = flat.single_fastest_path(0, 255, WINDOW)
        assert h.optimal_travel_time == pytest.approx(
            f.optimal_travel_time, abs=1e-6
        )

    def test_same_fragment_query(self, engine, flat, index):
        cell0 = index.fragment_members(index.cell_of(0))
        other = next(n for n in sorted(cell0) if n != 0)
        h = engine.all_fastest_paths(0, other, WINDOW)
        f = flat.all_fastest_paths(0, other, WINDOW)
        for instant in WINDOW.sample(5):
            assert h.travel_time_at(instant) == pytest.approx(
                f.travel_time_at(instant), abs=1e-6
            )

    def test_expand_path_achieves_travel_time(self, engine, flat, metro_small):
        result = engine.all_fastest_paths(0, 255, WINDOW)
        for instant in WINDOW.sample(5):
            concrete = engine.expand_path(result.path_at(instant), instant)
            achieved = path_travel_time(metro_small, concrete, instant)
            assert achieved == pytest.approx(
                result.travel_time_at(instant), abs=1e-6
            )
            # Concrete paths use only real edges.
            for u, v in zip(concrete, concrete[1:]):
                assert metro_small.has_edge(u, v)

    def test_query_outside_horizon_rejected(self, engine):
        late = TimeInterval(parse_clock("20:00"), parse_clock("21:00"))
        with pytest.raises(QueryError, match="horizon"):
            engine.all_fastest_paths(0, 255, late)

    def test_expand_rejects_nonsense_hop(self, engine):
        with pytest.raises(QueryError):
            engine.expand_path((0, 255), parse_clock("8:00"))


class TestShortcutEdgeType:
    def test_duck_typing_fields(self):
        fn = MonotonePiecewiseLinear([(0.0, 5.0), (100.0, 110.0)])
        shortcut = ShortcutEdge(1, 2, fn)
        assert shortcut.source == 1
        assert shortcut.target == 2
        assert shortcut.cache_tag == 1
        # Any covered window gets the stored profile back unclipped
        # (compose seeks to the window itself); uncovered windows raise.
        assert shortcut.arrival_function(10.0, 50.0) is fn
        assert shortcut.arrival_function(0.0, 100.0) is fn


class TestIndexPersistence:
    def test_save_load_roundtrip(self, index, metro_small, tmp_path):
        path = tmp_path / "index.json"
        index.save(path)
        loaded = HierarchicalIndex.load(metro_small, path)
        assert loaded.stats.shortcuts == index.stats.shortcuts
        assert loaded.stats.fragments == index.stats.fragments
        # Spot-check a shortcut function survives exactly.
        node = next(
            n for n in metro_small.node_ids() if index.shortcuts_from(n)
        )
        original = index.shortcuts_from(node)[0]
        reloaded = next(
            s for s in loaded.shortcuts_from(node)
            if s.target == original.target
        )
        assert reloaded.profile.equals_approx(original.profile, tol=1e-9)

    def test_loaded_index_answers_match(self, index, metro_small, tmp_path):
        path = tmp_path / "index.json"
        index.save(path)
        loaded = HierarchicalIndex.load(metro_small, path)
        a = HierarchicalEngine(index).all_fastest_paths(0, 255, WINDOW)
        b = HierarchicalEngine(loaded).all_fastest_paths(0, 255, WINDOW)
        for instant in WINDOW.sample(7):
            assert a.travel_time_at(instant) == pytest.approx(
                b.travel_time_at(instant), abs=1e-9
            )

    def test_wrong_network_rejected(self, index, tmp_path):
        from repro.network.generator import MetroConfig, make_metro_network

        path = tmp_path / "index.json"
        index.save(path)
        other = make_metro_network(MetroConfig(width=9, height=9, seed=1))
        with pytest.raises(QueryError, match="different network"):
            HierarchicalIndex.load(other, path)

    def test_garbage_file_rejected(self, metro_small, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(QueryError):
            HierarchicalIndex.load(metro_small, path)
