"""End-to-end tests for the repro-allfp command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def network_json(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "net.json"
    code = main(
        [
            "generate",
            "--out",
            str(path),
            "--width",
            "10",
            "--height",
            "10",
            "--seed",
            "7",
        ]
    )
    assert code == 0
    return path


@pytest.fixture(scope="module")
def ccam_db(network_json, tmp_path_factory):
    path = tmp_path_factory.mktemp("cli-db") / "net.ccam"
    code = main(
        ["build-ccam", "--network", str(network_json), "--out", str(path)]
    )
    assert code == 0
    return path


class TestGenerate:
    def test_writes_file(self, network_json, capsys):
        assert network_json.exists()

    def test_output_message(self, tmp_path, capsys):
        main(["generate", "--out", str(tmp_path / "n.json"), "--width", "6", "--height", "6"])
        out = capsys.readouterr().out
        assert "36 nodes" in out


class TestBuildCCAM:
    def test_builds(self, ccam_db):
        assert ccam_db.exists()

    def test_reports_clustering(self, network_json, tmp_path, capsys):
        main(
            [
                "build-ccam",
                "--network",
                str(network_json),
                "--out",
                str(tmp_path / "x.ccam"),
                "--strategy",
                "hilbert",
            ]
        )
        out = capsys.readouterr().out
        assert "clustering quality" in out


class TestQuery:
    def test_allfp_on_json(self, network_json, capsys):
        code = main(
            [
                "query",
                "--network",
                str(network_json),
                "--source",
                "0",
                "--target",
                "99",
                "--from",
                "7:00",
                "--to",
                "8:00",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "allFP 0->99" in out
        assert "expanded paths" in out

    def test_singlefp_on_ccam(self, ccam_db, capsys):
        code = main(
            [
                "query",
                "--network",
                str(ccam_db),
                "--source",
                "0",
                "--target",
                "99",
                "--mode",
                "singlefp",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "singleFP 0->99" in out
        assert "page reads" in out

    def test_arrival_constraint(self, network_json, capsys):
        code = main(
            [
                "query",
                "--network",
                str(network_json),
                "--source",
                "0",
                "--target",
                "99",
                "--from",
                "8:00",
                "--to",
                "9:00",
                "--constraint",
                "arrival",
                "--mode",
                "singlefp",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "singleFP 0->99" in out

    def test_arrival_with_boundary_estimator(self, network_json, capsys):
        code = main(
            [
                "query",
                "--network",
                str(network_json),
                "--source",
                "0",
                "--target",
                "55",
                "--constraint",
                "arrival",
                "--estimator",
                "boundary",
                "--grid",
                "3",
            ]
        )
        assert code == 0

    def test_boundary_estimator_on_json(self, network_json, capsys):
        code = main(
            [
                "query",
                "--network",
                str(network_json),
                "--source",
                "0",
                "--target",
                "55",
                "--estimator",
                "boundary",
                "--grid",
                "3",
            ]
        )
        assert code == 0

    def test_boundary_estimator_on_ccam_warns(self, ccam_db, capsys):
        code = main(
            [
                "query",
                "--network",
                str(ccam_db),
                "--source",
                "0",
                "--target",
                "55",
                "--estimator",
                "boundary",
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "falling back to naive" in err


class TestProfileAndKnn:
    def test_profile_with_targets(self, network_json, capsys):
        code = main(
            [
                "profile",
                "--network",
                str(network_json),
                "--source",
                "0",
                "--targets",
                "5,27,99",
                "--from",
                "7:00",
                "--to",
                "8:00",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "node 5: best" in out
        assert "node 99: best" in out
        assert "reachable nodes: 3" in out
        assert "expanded:" in out

    def test_profile_one_to_all(self, network_json, capsys):
        code = main(
            ["profile", "--network", str(network_json), "--source", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "reachable nodes: 100" in out

    def test_knn_ranks_candidates(self, network_json, capsys):
        code = main(
            [
                "knn",
                "--network",
                str(network_json),
                "--source",
                "0",
                "--candidates",
                "12,34,56,78",
                "--k",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "#1 node" in out
        assert "#2 node" in out
        assert "reachable candidates: 4/4" in out

    def test_bad_node_list_is_error(self, network_json, capsys):
        code = main(
            [
                "knn",
                "--network",
                str(network_json),
                "--source",
                "0",
                "--candidates",
                "12,potato",
            ]
        )
        assert code == 2
        assert "--candidates" in capsys.readouterr().err


class TestInfo:
    def test_json(self, network_json, capsys):
        assert main(["info", "--network", str(network_json)]) == 0
        out = capsys.readouterr().out
        assert "nodes: 100" in out

    def test_ccam(self, ccam_db, capsys):
        assert main(["info", "--network", str(ccam_db)]) == 0
        out = capsys.readouterr().out
        assert "page size: 2048" in out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestErrorPaths:
    """Deliberate failures exit non-zero with one clean message, no traceback."""

    def _assert_clean_error(self, code, captured, fragment):
        assert code != 0
        assert captured.err.startswith("error:")
        assert fragment in captured.err
        assert "Traceback" not in captured.err

    def test_unknown_node_id(self, network_json, capsys):
        code = main(
            [
                "query",
                "--network",
                str(network_json),
                "--source",
                "0",
                "--target",
                "123456",
            ]
        )
        self._assert_clean_error(code, capsys.readouterr(), "not found")

    def test_malformed_clock_string(self, network_json, capsys):
        code = main(
            [
                "query",
                "--network",
                str(network_json),
                "--source",
                "0",
                "--target",
                "99",
                "--from",
                "7h30",
                "--to",
                "9:00",
            ]
        )
        self._assert_clean_error(
            code, capsys.readouterr(), "cannot parse clock string"
        )

    def test_clock_minutes_out_of_range(self, network_json, capsys):
        code = main(
            [
                "query",
                "--network",
                str(network_json),
                "--source",
                "0",
                "--target",
                "99",
                "--from",
                "7:99",
                "--to",
                "9:00",
            ]
        )
        self._assert_clean_error(code, capsys.readouterr(), "out of range")

    def test_nonexistent_network_file(self, tmp_path, capsys):
        code = main(
            [
                "query",
                "--network",
                str(tmp_path / "does-not-exist.json"),
                "--source",
                "0",
                "--target",
                "99",
            ]
        )
        self._assert_clean_error(code, capsys.readouterr(), "does-not-exist")

    def test_equal_source_and_target(self, network_json, capsys):
        code = main(
            [
                "query",
                "--network",
                str(network_json),
                "--source",
                "5",
                "--target",
                "5",
            ]
        )
        self._assert_clean_error(code, capsys.readouterr(), "differ")


class TestBenchLoad:
    def test_closed_loop_reports(self, network_json, capsys):
        code = main(
            [
                "bench-load",
                "--network",
                str(network_json),
                "--queries",
                "6",
                "--clients",
                "2",
                "--interval-hours",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput:" in out
        assert "p50=" in out
        assert "engine runs:" in out

    def test_poisson_arrivals(self, network_json, capsys):
        code = main(
            [
                "bench-load",
                "--network",
                str(network_json),
                "--queries",
                "4",
                "--arrivals",
                "poisson",
                "--rate",
                "200",
                "--duration",
                "0.05",
                "--interval-hours",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "open-loop" in out
        assert "requests:" in out


class TestImportVerb:
    @pytest.fixture(scope="class")
    def text_file(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-import") / "net.txt"
        code = main(
            [
                "generate",
                "--out",
                str(path),
                "--width",
                "8",
                "--height",
                "8",
                "--format",
                "osm-text",
            ]
        )
        assert code == 0
        return path

    def test_generate_osm_text(self, text_file):
        body = text_file.read_text(encoding="utf-8")
        assert body.startswith("node ")
        assert "\nway " in body

    def test_import_to_json(self, text_file, tmp_path, capsys):
        out = tmp_path / "imported.json"
        code = main(["import", str(text_file), "--out", str(out)])
        assert code == 0
        assert out.exists()
        text = capsys.readouterr().out
        assert "64 nodes" in text
        assert "directed edges" in text

    def test_import_to_ccam(self, text_file, tmp_path, capsys):
        out = tmp_path / "imported.ccam"
        code = main(["import", str(text_file), "--out", str(out)])
        assert code == 0
        assert out.exists()

    def test_imported_network_queryable(self, text_file, tmp_path, capsys):
        out = tmp_path / "imported.json"
        assert main(["import", str(text_file), "--out", str(out)]) == 0
        capsys.readouterr()
        code = main(
            [
                "query",
                "--network",
                str(out),
                "--source",
                "0",
                "--target",
                "63",
            ]
        )
        assert code == 0
        assert "best:" in capsys.readouterr().out

    def test_malformed_input_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("way oneway residential 0 1\n", encoding="utf-8")
        code = main(["import", str(bad), "--out", str(tmp_path / "x.json")])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "line 1" in err


class TestOverlayVerbs:
    @pytest.fixture(scope="class")
    def overlay_snapshot(self, network_json, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-overlay") / "net.ovl"
        code = main(
            [
                "build-overlay",
                "--network",
                str(network_json),
                "--out",
                str(path),
                "--levels",
                "2",
                "--overlay-grid",
                "6",
                "--grid",
                "4",
            ]
        )
        assert code == 0
        return path

    def test_build_overlay_reports_levels(self, overlay_snapshot, capsys):
        assert overlay_snapshot.exists()

    def test_snapshot_info_shows_overlay(self, overlay_snapshot, capsys):
        code = main(["snapshot-info", "--snapshot", str(overlay_snapshot)])
        assert code == 0
        out = capsys.readouterr().out
        assert "RPRESNAP v2" in out
        assert "overlay: 2 level(s)" in out
        assert "level 0:" in out and "level 1:" in out
        assert "shortcuts" in out

    def test_query_with_overlay_cache_matches_flat(
        self, network_json, overlay_snapshot, capsys
    ):
        argv = [
            "query",
            "--network",
            str(network_json),
            "--source",
            "0",
            "--target",
            "99",
        ]
        assert main(argv) == 0
        flat = capsys.readouterr().out
        assert (
            main(argv + ["--overlay-cache", str(overlay_snapshot)]) == 0
        )
        captured = capsys.readouterr()
        assert "overlay cache hit" in captured.err
        flat_best = next(l for l in flat.splitlines() if l.startswith("best:"))
        ovl_best = next(
            l for l in captured.out.splitlines() if l.startswith("best:")
        )
        assert flat_best.split(";")[0] == ovl_best.split(";")[0]

    def test_overlay_levels_builds_and_caches(
        self, network_json, tmp_path, capsys
    ):
        cache = tmp_path / "fresh.ovl"
        code = main(
            [
                "query",
                "--network",
                str(network_json),
                "--source",
                "0",
                "--target",
                "50",
                "--mode",
                "singlefp",
                "--overlay-levels",
                "1",
                "--overlay-cache",
                str(cache),
            ]
        )
        assert code == 0
        assert "overlay cache miss" in capsys.readouterr().err
        assert cache.exists()

    def test_missing_cache_without_levels_exits_2(
        self, network_json, tmp_path, capsys
    ):
        code = main(
            [
                "query",
                "--network",
                str(network_json),
                "--source",
                "0",
                "--target",
                "5",
                "--overlay-cache",
                str(tmp_path / "nope.ovl"),
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_corrupt_snapshot_exits_2(
        self, overlay_snapshot, tmp_path, capsys
    ):
        data = overlay_snapshot.read_bytes()
        bad = tmp_path / "bad.ovl"
        bad.write_bytes(data[: len(data) // 2])
        code = main(["snapshot-info", "--snapshot", str(bad)])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert err.count("\n") == 1

    def test_bench_load_with_overlay(
        self, network_json, overlay_snapshot, capsys
    ):
        code = main(
            [
                "bench-load",
                "--network",
                str(network_json),
                "--queries",
                "4",
                "--clients",
                "1",
                "--interval-hours",
                "1",
                "--overlay-cache",
                str(overlay_snapshot),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "overlay cache hit" in captured.err
        assert "throughput:" in captured.out
