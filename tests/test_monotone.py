"""Unit tests for monotone functions: inverse, preimages, composition."""

from __future__ import annotations

import pytest

from repro.exceptions import FunctionDomainError, NotMonotoneError
from repro.func.monotone import MonotonePiecewiseLinear, identity

MPL = MonotonePiecewiseLinear


class TestConstruction:
    def test_accepts_nondecreasing(self):
        f = MPL([(0.0, 0.0), (5.0, 2.0), (10.0, 2.0)])
        assert f.value_range == (0.0, 2.0)

    def test_rejects_decreasing(self):
        with pytest.raises(NotMonotoneError):
            MPL([(0.0, 5.0), (10.0, 0.0)])

    def test_snaps_numeric_noise(self):
        f = MPL([(0.0, 1.0), (1.0, 1.0 - 1e-9), (2.0, 2.0)])
        assert f(1.0) >= f(0.0)

    def test_y_min_max(self):
        f = MPL([(0.0, 3.0), (10.0, 7.0)])
        assert f.y_min == 3.0
        assert f.y_max == 7.0

    def test_identity(self):
        f = identity(2.0, 9.0)
        assert f(2.0) == 2.0
        assert f(5.5) == 5.5
        assert f(9.0) == 9.0

    def test_identity_instant(self):
        f = identity(4.0, 4.0)
        assert f.is_instant
        assert f(4.0) == 4.0


class TestPreimages:
    def test_strictly_increasing_single(self):
        f = MPL([(0.0, 0.0), (10.0, 20.0)])
        assert f.preimage_points(10.0) == [5.0]

    def test_flat_segment_interval(self):
        f = MPL([(0.0, 0.0), (4.0, 4.0), (8.0, 4.0), (10.0, 6.0)])
        points = f.preimage_points(4.0)
        assert points[0] == pytest.approx(4.0)
        assert points[-1] == pytest.approx(8.0)

    def test_outside_range(self):
        f = MPL([(0.0, 0.0), (10.0, 20.0)])
        assert f.preimage_points(-1.0) == []
        assert f.preimage_points(25.0) == []

    def test_at_endpoints(self):
        f = MPL([(0.0, 0.0), (10.0, 20.0)])
        assert f.preimage_points(0.0) == [0.0]
        assert f.preimage_points(20.0) == [10.0]

    def test_instant_function(self):
        f = MPL([(3.0, 7.0)])
        assert f.preimage_points(7.0) == [3.0]
        assert f.preimage_points(8.0) == []


class TestInverse:
    def test_strictly_increasing(self):
        f = MPL([(0.0, 1.0), (4.0, 5.0), (10.0, 23.0)])
        inv = f.inverse()
        for x in (0.0, 2.0, 4.0, 7.0, 10.0):
            assert inv(f(x)) == pytest.approx(x)

    def test_flat_raises(self):
        f = MPL([(0.0, 0.0), (5.0, 0.0), (10.0, 5.0)])
        with pytest.raises(NotMonotoneError):
            f.inverse()

    def test_inverse_domain_is_range(self):
        f = MPL([(0.0, 3.0), (10.0, 13.0)])
        assert f.inverse().domain == (3.0, 13.0)


class TestCompose:
    def test_identity_left(self):
        f = MPL([(0.0, 5.0), (10.0, 25.0)])
        outer = identity(5.0, 25.0)
        assert outer.compose(f).equals_approx(f)

    def test_identity_right(self):
        f = MPL([(0.0, 5.0), (10.0, 25.0)])
        inner = identity(0.0, 10.0)
        assert f.compose(inner).equals_approx(f)

    def test_linear_composition(self):
        inner = MPL([(0.0, 0.0), (10.0, 20.0)])  # 2x
        outer = MPL([(0.0, 1.0), (20.0, 61.0)])  # 3y + 1
        composed = outer.compose(inner)
        for x in (0.0, 2.5, 5.0, 10.0):
            assert composed(x) == pytest.approx(6 * x + 1)

    def test_breakpoints_include_preimages(self):
        # Outer kinks at y=10; inner hits 10 at x=5 -> composition kinks at 5.
        inner = MPL([(0.0, 0.0), (10.0, 20.0)])
        outer = MPL([(0.0, 0.0), (10.0, 10.0), (20.0, 40.0)])
        composed = outer.compose(inner)
        xs = [x for x, _y in composed.breakpoints]
        assert any(abs(x - 5.0) < 1e-9 for x in xs)
        assert composed(5.0) == pytest.approx(10.0)
        assert composed(10.0) == pytest.approx(40.0)

    def test_pointwise_agreement_random_grid(self):
        inner = MPL([(0.0, 2.0), (3.0, 4.0), (6.0, 10.0), (9.0, 11.0)])
        outer = MPL([(2.0, 0.0), (5.0, 9.0), (11.0, 12.0)])
        composed = outer.compose(inner)
        for i in range(50):
            x = 9.0 * i / 49.0
            assert composed(x) == pytest.approx(outer(inner(x)), abs=1e-9)

    def test_range_outside_domain_raises(self):
        inner = MPL([(0.0, 0.0), (10.0, 100.0)])
        outer = MPL([(0.0, 0.0), (10.0, 10.0)])
        with pytest.raises(FunctionDomainError):
            outer.compose(inner)

    def test_monotone_closure(self):
        inner = MPL([(0.0, 2.0), (6.0, 10.0)])
        outer = MPL([(2.0, 0.0), (10.0, 12.0)])
        assert isinstance(outer.compose(inner), MPL)

    def test_associativity(self):
        f = MPL([(0.0, 1.0), (10.0, 11.0)])
        g = MPL([(1.0, 2.0), (11.0, 22.0)])
        h = MPL([(2.0, 0.0), (22.0, 40.0)])
        left = h.compose(g).compose(f)
        right = h.compose(g.compose(f))
        assert left.equals_approx(right)


class TestOverrides:
    def test_restrict_returns_monotone(self):
        f = MPL([(0.0, 0.0), (10.0, 10.0)])
        assert isinstance(f.restrict(1.0, 5.0), MPL)

    def test_simplify_returns_monotone(self):
        f = MPL([(0.0, 0.0), (5.0, 5.0), (10.0, 10.0)])
        g = f.simplify()
        assert isinstance(g, MPL)
        assert len(g) == 2

    def test_shift_x_returns_monotone(self):
        f = MPL([(0.0, 0.0), (10.0, 10.0)]).shift_x(3.0)
        assert isinstance(f, MPL)
        assert f.domain == (3.0, 13.0)
