"""Sharded serve tier: hash ring, snapshot transports, router, failover."""

from __future__ import annotations

import json
import subprocess
import sys
import time

import pytest

from repro.cli import main
from repro.core.results import SearchStats
from repro.core.runtime import QueryTimeout
from repro.estimators.boundary import BoundaryNodeEstimator
from repro.estimators import snapshot as snap
from repro.exceptions import (
    EstimatorError,
    NodeNotFoundError,
    NoPathError,
    ServiceOverloaded,
    ShardUnavailable,
    WorkerCrashed,
)
from repro.serve import AllFPService, ServiceConfig, parse_metrics
from repro.serve.chaos import _canonical, run_shard_chaos
from repro.serve.service import QueryRequest
from repro.shard import (
    DEFAULT_REPLICAS,
    HashRing,
    ShardedService,
    describe_error,
    rebuild_error,
    routing_key,
    stable_hash,
)
from repro.timeutil import TimeInterval
from repro.workloads.queries import morning_rush_interval, random_queries


@pytest.fixture
def interval():
    return TimeInterval.from_clock("7:00", "8:00")


@pytest.fixture(scope="module")
def tier(metro_tiny):
    """One 2-shard tier over metro_tiny, shared-memory tables transport."""
    estimator = BoundaryNodeEstimator(metro_tiny, 4, 4)
    service = ShardedService(
        metro_tiny,
        estimator,
        ServiceConfig(workers=2),
        shards=2,
        breaker_reset=0.5,
    )
    yield service
    service.close()


@pytest.fixture(scope="module")
def single(metro_tiny):
    """The single-process reference the tier must agree with."""
    service = AllFPService(
        metro_tiny, BoundaryNodeEstimator(metro_tiny, 4, 4),
        ServiceConfig(workers=2),
    )
    yield service
    service.close()


# ----------------------------------------------------------------------
# Hash ring
# ----------------------------------------------------------------------
class TestHashRing:
    def test_deterministic_across_processes(self):
        """The ring owes its cache affinity to sha256, not the per-process
        salted ``hash()`` — the same keys map identically in a fresh
        interpreter."""
        keys = [f"src:{i}" for i in range(64)]
        local = HashRing(range(4)).assignment(keys)
        code = (
            "import json, sys\n"
            "from repro.shard import HashRing\n"
            "keys = json.loads(sys.stdin.read())\n"
            "print(json.dumps(HashRing(range(4)).assignment(keys)))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            input=json.dumps(keys),
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        assert json.loads(out) == local

    def test_balanced_assignment(self):
        """No shard owns more than 2x the mean over 10k keys."""
        keys = [f"src:{i}" for i in range(10_000)]
        for shards in (2, 3, 4, 8):
            ring = HashRing(range(shards))
            counts = {sid: 0 for sid in range(shards)}
            for owner in ring.assignment(keys).values():
                counts[owner] += 1
            mean = len(keys) / shards
            assert max(counts.values()) < 2 * mean, (shards, counts)

    def test_minimal_movement_on_removal(self):
        """Removing a shard moves exactly the keys it owned — everyone
        else keeps their shard (and their warm caches)."""
        keys = [f"src:{i}" for i in range(10_000)]
        ring = HashRing(range(4))
        before = ring.assignment(keys)
        ring.remove(1)
        after = ring.assignment(keys)
        moved = [k for k in keys if before[k] != after[k]]
        owned_by_removed = [k for k in keys if before[k] == 1]
        assert set(moved) == set(owned_by_removed)
        # this deterministic configuration also meets the ≤ keys/N bound
        assert len(moved) <= len(keys) / 4
        assert all(after[k] != 1 for k in keys)

    def test_preference_walks_distinct_shards(self):
        ring = HashRing(range(3))
        order = ring.preference("src:42")
        assert sorted(order) == [0, 1, 2]
        assert ring.node_for("src:42") == order[0]

    def test_add_is_idempotent_and_remove_unknown_is_noop(self):
        ring = HashRing(range(2))
        ring.add(1)
        ring.remove(99)
        assert ring.shard_ids == (0, 1)
        with pytest.raises(ValueError, match="at least one"):
            HashRing([])

    def test_stable_hash_is_sha256_based(self):
        assert stable_hash("x") == int.from_bytes(
            __import__("hashlib").sha256(b"x").digest()[:8], "big"
        )


class TestRoutingKey:
    def test_source_modes_share_a_key(self, interval):
        allfp = QueryRequest(7, 9, interval)
        profile = QueryRequest(7, None, interval, mode="profile")
        knn = QueryRequest(
            7, None, interval, mode="knn", candidates=(1, 2), k=1
        )
        assert (
            routing_key(allfp)
            == routing_key(profile)
            == routing_key(knn)
            == "src:7"
        )

    def test_singlefp_routes_by_pair(self, interval):
        request = QueryRequest(3, 5, interval, mode="singlefp")
        assert routing_key(request) == "pair:3:5"
        assert routing_key(QueryRequest(5, 3, interval, mode="singlefp")) != (
            routing_key(request)
        )

    def test_batch_routes_by_sorted_distinct_sources(self, interval):
        a = QueryRequest(
            5, None, interval, mode="batch", pairs=((5, 1), (0, 2), (5, 3))
        )
        b = QueryRequest(
            0, None, interval, mode="batch", pairs=((0, 9), (5, 8))
        )
        assert routing_key(a) == routing_key(b) == "group:0,5"


# ----------------------------------------------------------------------
# Snapshot transports (mmap / shared memory)
# ----------------------------------------------------------------------
class TestSnapshotTransports:
    @pytest.fixture(scope="class")
    def snapshot(self, metro_tiny, tmp_path_factory):
        estimator = BoundaryNodeEstimator(metro_tiny, 3, 3)
        path = tmp_path_factory.mktemp("snap") / "est.snap"
        estimator.save_snapshot(path)
        return path, snap.network_fingerprint(metro_tiny)

    def test_map_tables_matches_load_tables(self, snapshot):
        path, fp = snapshot
        loaded = snap.load_tables(path, fp)
        mapped = snap.map_tables(path, fp)
        assert mapped.zero_copy and not loaded.zero_copy
        assert mapped.nbytes == loaded.nbytes
        for name in (
            "node_ids", "node_cell", "to_boundary", "from_boundary", "cell_pair"
        ):
            assert list(getattr(mapped, name)) == list(getattr(loaded, name))

    def test_mapped_tables_are_read_only(self, snapshot):
        path, fp = snapshot
        mapped = snap.map_tables(path, fp)
        with pytest.raises(TypeError):
            mapped.cell_pair[0] = 1.0

    def test_share_and_attach_round_trip(self, snapshot, metro_tiny):
        path, fp = snapshot
        tables = snap.load_tables(path, fp)
        shared = snap.share_tables(tables, fp)
        try:
            attached, handle = snap.attach_tables(shared.name, fp)
            assert attached.zero_copy
            assert list(attached.cell_pair) == list(tables.cell_pair)
            estimator = BoundaryNodeEstimator(
                metro_tiny, tables.nx, tables.ny, tables=attached
            )
            assert estimator.tables is attached
            # release every view over the segment before detaching, the
            # order the worker teardown follows too
            del estimator, attached
            import gc

            gc.collect()
            handle.close()
        finally:
            shared.close()

    def test_attach_copy_mode_detaches_immediately(self, snapshot):
        path, fp = snapshot
        tables = snap.load_tables(path, fp)
        shared = snap.share_tables(tables, fp)
        try:
            copied, handle = snap.attach_tables(shared.name, fp, copy=True)
            assert not copied.zero_copy
            assert list(copied.to_boundary) == list(tables.to_boundary)
        finally:
            shared.close()

    def test_fingerprint_mismatch_rejected(self, snapshot):
        path, _ = snapshot
        with pytest.raises(EstimatorError, match="fingerprint"):
            snap.map_tables(path, b"\x00" * 32)

    def test_read_header_fields(self, snapshot):
        path, fp = snapshot
        header = snap.read_header(path)
        assert header["version"] == 1
        assert header["nx"] == header["ny"] == 3
        assert header["cell_count"] == 9
        assert header["fingerprint"] == fp.hex()
        assert header["arrays"] == 5
        assert header["file_bytes"] == path.stat().st_size

    def test_read_header_detects_truncation(self, snapshot, tmp_path):
        path, _ = snapshot
        stub = tmp_path / "trunc.snap"
        stub.write_bytes(path.read_bytes()[:100])
        with pytest.raises(EstimatorError, match="header implies"):
            snap.read_header(stub)

    def test_read_header_detects_bad_magic(self, snapshot, tmp_path):
        path, _ = snapshot
        data = bytearray(path.read_bytes())
        data[:8] = b"NOTASNAP"
        bad = tmp_path / "bad.snap"
        bad.write_bytes(bytes(data))
        with pytest.raises(EstimatorError, match="not an estimator snapshot"):
            snap.read_header(bad)


# ----------------------------------------------------------------------
# Wire protocol: typed errors across the pipe
# ----------------------------------------------------------------------
class TestErrorWire:
    @pytest.mark.parametrize(
        "error",
        [
            NodeNotFoundError(42),
            NoPathError(3, 9),
            ServiceOverloaded(65, 64, 0.1),
            WorkerCrashed(2, "boom"),
            QueryTimeout(1.5, SearchStats(timed_out=True)),
        ],
        ids=lambda e: type(e).__name__,
    )
    def test_round_trip_preserves_type(self, error):
        rebuilt = rebuild_error(describe_error(error))
        assert type(rebuilt) is type(error)

    def test_attributes_survive(self):
        rebuilt = rebuild_error(describe_error(NodeNotFoundError(42)))
        assert rebuilt.node_id == 42
        rebuilt = rebuild_error(describe_error(ServiceOverloaded(65, 64, 0.1)))
        assert (rebuilt.pending, rebuilt.max_pending) == (65, 64)
        assert rebuilt.retry_after == pytest.approx(0.1)
        rebuilt = rebuild_error(describe_error(QueryTimeout(1.5, SearchStats(timed_out=True))))
        assert rebuilt.deadline == pytest.approx(1.5)

    def test_unknown_type_degrades_to_service_error(self):
        from repro.exceptions import ServiceError

        rebuilt = rebuild_error(
            {"type": "SomethingNew", "message": "huh", "attrs": {}}
        )
        assert isinstance(rebuilt, ServiceError)
        assert "SomethingNew" in str(rebuilt)


# ----------------------------------------------------------------------
# The tier end to end
# ----------------------------------------------------------------------
class TestShardedService:
    def test_boot_health(self, tier):
        health = tier.shard_health()
        assert [h["shard_id"] for h in health] == [0, 1]
        assert all(h["alive"] for h in health)
        assert all(h["tables_mode"] == "shm" for h in health)
        assert not tier.degraded

    @pytest.mark.parametrize("mode", ["allfp", "singlefp", "profile", "knn", "batch"])
    def test_answer_parity_with_single_process(
        self, tier, single, interval, mode
    ):
        kwargs = {
            "allfp": dict(target=99),
            "singlefp": dict(target=42, mode="singlefp"),
            "profile": dict(target=None, mode="profile", targets=(5, 27, 99)),
            "knn": dict(
                target=None, mode="knn", candidates=(12, 34, 56, 78), k=2
            ),
            "batch": dict(
                target=None, mode="batch", pairs=((0, 9), (3, 7))
            ),
        }[mode]
        request = QueryRequest(0, interval=interval, **kwargs)
        sharded = tier.query(request)
        reference = single.query(request)
        assert _canonical(sharded.result) == _canonical(reference.result)
        assert not sharded.degraded

    def test_typed_error_crosses_the_pipe(self, tier, interval):
        with pytest.raises(NodeNotFoundError) as exc_info:
            tier.query(QueryRequest(10 ** 9, 5, interval))
        assert exc_info.value.node_id == 10 ** 9

    def test_metrics_carry_shard_labels(self, tier, interval):
        tier.query(QueryRequest(1, 50, interval))
        text = tier.render_metrics()
        assert 'shard_id="0"' in text and 'shard_id="1"' in text
        assert 'shard_count="2"' in text
        assert "repro_shard_requests_total" in text
        # the concatenated exposition stays parseable, no colliding series
        samples = parse_metrics(text)
        assert any("shard_id" in name for name in samples)

    def test_result_cache_affinity(self, tier, interval):
        request = QueryRequest(2, 88, interval)
        first = tier.query(request)
        second = tier.query(request)
        assert not first.cached
        assert second.cached  # same key -> same shard -> warm cache

    def test_invalidate_broadcasts(self, tier, interval):
        request = QueryRequest(3, 77, interval)
        tier.query(request)
        assert tier.invalidate() >= 1
        assert not tier.query(request).cached

    def test_stats_aggregates_shards(self, tier):
        stats = tier.stats()
        assert stats["shards"] == 2
        assert set(stats["per_shard"]) == {0, 1}

    def test_kill_failover_and_restart(self, metro_tiny, interval):
        """The PR-5 ladder at shard level: kill -> failover (flagged
        degraded, exact answer) -> automatic restart -> clean again."""
        estimator = BoundaryNodeEstimator(metro_tiny, 4, 4)
        tier = ShardedService(
            metro_tiny,
            estimator,
            ServiceConfig(workers=2),
            shards=2,
            breaker_reset=0.2,
        )
        single = AllFPService(
            metro_tiny,
            BoundaryNodeEstimator(metro_tiny, 4, 4),
            ServiceConfig(workers=2),
        )
        try:
            request = None
            for source in range(60):
                candidate = QueryRequest(source, 99, interval)
                if tier.ring.preference(routing_key(candidate))[0] == 0:
                    request = candidate
                    break
            assert request is not None
            tier.kill_shard(0)
            response = tier.query(request)  # before the restart completes
            assert response.degraded
            assert response.degraded_shard == 0
            assert _canonical(response.result) == _canonical(
                single.query(request).result
            )
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if all(h["alive"] for h in tier.shard_health()):
                    break
                time.sleep(0.05)
            health = tier.shard_health()
            assert all(h["alive"] for h in health), health
            assert health[0]["restarts"] == 1
            # breaker may need its reset window before closing again
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                response = tier.query(request)
                if not response.degraded:
                    break
                time.sleep(0.05)
            assert not response.degraded
            assert response.degraded_shard is None
        finally:
            tier.close()
            single.close()

    def test_all_shards_down_raises_shard_unavailable(
        self, metro_tiny, interval
    ):
        tier = ShardedService(
            metro_tiny,
            None,
            ServiceConfig(workers=1),
            shards=1,
            restart_limit=0,
        )
        try:
            tier.kill_shard(0)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if not tier._handles[0].alive:
                    break
                time.sleep(0.02)
            with pytest.raises(ShardUnavailable):
                tier.query(QueryRequest(0, 99, interval))
            assert tier.degraded
        finally:
            tier.close()

    def test_close_is_idempotent(self, metro_tiny):
        tier = ShardedService(metro_tiny, None, ServiceConfig(workers=1), shards=1)
        tier.close()
        tier.close()


# ----------------------------------------------------------------------
# Shard chaos
# ----------------------------------------------------------------------
class TestShardChaos:
    def test_kill_one_shard_mid_run_invariant_holds(self, metro_tiny):
        interval = morning_rush_interval(2.0)
        queries = random_queries(metro_tiny, 16, interval, seed=1)
        tier = ShardedService(
            metro_tiny,
            BoundaryNodeEstimator(metro_tiny, 4, 4),
            ServiceConfig(workers=2),
            shards=2,
            breaker_reset=0.2,
        )
        try:
            report = run_shard_chaos(
                tier, queries, plan=None, clients=4, kill_delay=0.0
            )
        finally:
            tier.close()
        assert report.passed(), report.violations
        assert report.requests == 16
        assert report.fault_events >= 1


# ----------------------------------------------------------------------
# snapshot-info CLI
# ----------------------------------------------------------------------
class TestSnapshotInfoCLI:
    @pytest.fixture(scope="class")
    def snapshot_file(self, metro_tiny, tmp_path_factory):
        estimator = BoundaryNodeEstimator(metro_tiny, 3, 3)
        path = tmp_path_factory.mktemp("snapcli") / "est.snap"
        estimator.save_snapshot(path)
        return path

    def test_prints_header_fields(self, snapshot_file, capsys):
        assert main(["snapshot-info", "--snapshot", str(snapshot_file)]) == 0
        out = capsys.readouterr().out
        assert "RPRESNAP v1" in out
        assert "3x3" in out
        assert "nodes: 100" in out
        assert f"{snapshot_file.stat().st_size} bytes" in out

    def test_corrupt_file_exits_2(self, snapshot_file, tmp_path, capsys):
        bad = tmp_path / "bad.snap"
        bad.write_bytes(snapshot_file.read_bytes()[:64])
        assert main(["snapshot-info", "--snapshot", str(bad)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and err.count("\n") == 1

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(
            ["snapshot-info", "--snapshot", str(tmp_path / "nope.snap")]
        ) == 2
        assert "error:" in capsys.readouterr().err
