"""Unit tests for the speed-pattern → travel-time conversion (§4.1, Eq. 1)."""

from __future__ import annotations

import pytest

from repro.exceptions import PatternError
from repro.func.monotone import MonotonePiecewiseLinear
from repro.patterns.categories import Calendar, DayCategorySet
from repro.patterns.speed import CapeCodPattern, DailySpeedPattern
from repro.patterns.travel_time import (
    cumulative_distance_function,
    edge_arrival_function,
    edge_travel_time_function,
    min_travel_time,
    traverse,
)
from repro.timeutil import MINUTES_PER_DAY, parse_clock


@pytest.fixture
def cal():
    return Calendar.single_category("d")


def pattern(pieces, cal):
    return CapeCodPattern({"d": DailySpeedPattern(pieces)})


class TestTraverse:
    def test_constant_speed(self, cal):
        p = pattern([(0.0, 2.0)], cal)
        assert traverse(10.0, p, cal, 100.0) == pytest.approx(105.0)

    def test_zero_distance(self, cal):
        p = pattern([(0.0, 1.0)], cal)
        assert traverse(0.0, p, cal, 100.0) == 100.0

    def test_negative_distance_raises(self, cal):
        p = pattern([(0.0, 1.0)], cal)
        with pytest.raises(PatternError):
            traverse(-1.0, p, cal, 0.0)

    def test_crossing_speed_change(self, cal):
        # 1 mpm until minute 100, then 0.5 mpm.  Leave at 95 with 10 miles:
        # 5 miles by minute 100, remaining 5 miles at 0.5 -> 10 more minutes.
        p = pattern([(0.0, 1.0), (100.0, 0.5)], cal)
        assert traverse(10.0, p, cal, 95.0) == pytest.approx(110.0)

    def test_crossing_multiple_changes(self, cal):
        # Speeds 1.0 / 0.5 / 2.0 switching at 100 and 110.
        p = pattern([(0.0, 1.0), (100.0, 0.5), (110.0, 2.0)], cal)
        # Leave 95, 12 miles: 5 by 100, 5 more by 110 (0.5*10), 2 left at 2.0.
        assert traverse(12.0, p, cal, 95.0) == pytest.approx(111.0)

    def test_crosses_midnight(self, cal):
        p = pattern([(0.0, 1.0)], cal)
        depart = MINUTES_PER_DAY - 5.0
        assert traverse(10.0, p, cal, depart) == pytest.approx(MINUTES_PER_DAY + 5.0)

    def test_calendar_switches_categories(self):
        cats = DayCategorySet(["fast", "slow"])
        cal = Calendar.periodic(cats, ["fast", "slow"])
        p = CapeCodPattern(
            {
                "fast": DailySpeedPattern.constant(1.0),
                "slow": DailySpeedPattern.constant(0.5),
            }
        )
        depart = MINUTES_PER_DAY - 10.0
        # 10 miles at 1.0 to midnight, then 10 miles at 0.5 -> 20 minutes.
        assert traverse(20.0, p, cal, depart) == pytest.approx(
            MINUTES_PER_DAY + 20.0
        )

    def test_fifo_scalar(self, cal):
        p = pattern([(0.0, 1.0), (420.0, 0.25), (540.0, 1.5)], cal)
        arrivals = [traverse(7.0, p, cal, t) for t in range(360, 600, 5)]
        assert all(a <= b + 1e-9 for a, b in zip(arrivals, arrivals[1:]))


class TestCumulativeDistance:
    def test_slope_equals_speed(self, cal):
        p = pattern([(0.0, 1.0), (100.0, 0.5)], cal)
        s = cumulative_distance_function(p, cal, 90.0, 120.0, 5.0)
        assert s(90.0) == 0.0
        assert s(100.0) == pytest.approx(10.0)
        assert s(110.0) == pytest.approx(15.0)

    def test_extends_past_window(self, cal):
        p = pattern([(0.0, 0.1)], cal)
        s = cumulative_distance_function(p, cal, 0.0, 10.0, 50.0)
        assert s(s.x_max) >= s(10.0) + 50.0 - 1e-9

    def test_rejects_bad_window(self, cal):
        p = pattern([(0.0, 1.0)], cal)
        with pytest.raises(PatternError):
            cumulative_distance_function(p, cal, 10.0, 0.0, 1.0)


class TestEdgeArrivalFunction:
    def test_constant_speed_is_shift(self, cal):
        p = pattern([(0.0, 2.0)], cal)
        a = edge_arrival_function(10.0, p, cal, 0.0, 60.0)
        for t in (0.0, 13.0, 60.0):
            assert a(t) == pytest.approx(t + 5.0)

    def test_matches_scalar_traverse_everywhere(self, cal):
        p = pattern([(0.0, 1.0), (420.0, 1.0 / 3.0), (540.0, 0.8)], cal)
        a = edge_arrival_function(4.0, p, cal, 400.0, 560.0)
        for i in range(81):
            t = 400.0 + 2.0 * i
            assert a(t) == pytest.approx(traverse(4.0, p, cal, t), abs=1e-9)

    def test_is_monotone_type(self, cal):
        p = pattern([(0.0, 1.0), (420.0, 0.5)], cal)
        a = edge_arrival_function(3.0, p, cal, 400.0, 440.0)
        assert isinstance(a, MonotonePiecewiseLinear)

    def test_zero_distance_identity(self, cal):
        p = pattern([(0.0, 1.0)], cal)
        a = edge_arrival_function(0.0, p, cal, 5.0, 10.0)
        assert a(7.0) == 7.0

    def test_instant_window(self, cal):
        p = pattern([(0.0, 2.0)], cal)
        a = edge_arrival_function(4.0, p, cal, 100.0, 100.0)
        assert a(100.0) == pytest.approx(102.0)


class TestPaperEquationOne:
    """The worked functions of §4.3–4.4, reproduced exactly."""

    def test_s_to_n_function(self, cal):
        # d=2 mi, 1/3 mpm before 7:00, 1 mpm after.
        p = pattern([(0.0, 1.0 / 3.0), (parse_clock("7:00"), 1.0)], cal)
        T = edge_travel_time_function(
            2.0, p, cal, parse_clock("6:50"), parse_clock("7:05")
        )
        assert T(parse_clock("6:50")) == pytest.approx(6.0)
        assert T(parse_clock("6:53")) == pytest.approx(6.0)
        assert T(parse_clock("6:54")) == pytest.approx(6.0)
        # (2/3)(7:00 - l) + 2 on [6:54, 7:00)
        assert T(parse_clock("6:57")) == pytest.approx((2.0 / 3.0) * 3 + 2)
        assert T(parse_clock("7:00")) == pytest.approx(2.0)
        assert T(parse_clock("7:05")) == pytest.approx(2.0)

    def test_n_to_e_function(self, cal):
        # d=1 mi, 1/3 mpm before 7:08, 0.1 mpm after.
        p = pattern([(0.0, 1.0 / 3.0), (parse_clock("7:08"), 0.1)], cal)
        T = edge_travel_time_function(
            1.0, p, cal, parse_clock("6:56"), parse_clock("7:07")
        )
        assert T(parse_clock("6:56")) == pytest.approx(3.0)
        assert T(parse_clock("7:04")) == pytest.approx(3.0)
        # 10 - (7/3)(7:08 - l) on [7:05, 7:07]
        assert T(parse_clock("7:05")) == pytest.approx(3.0)
        assert T(parse_clock("7:06")) == pytest.approx(10 - (7.0 / 3.0) * 2)
        assert T(parse_clock("7:07")) == pytest.approx(10 - (7.0 / 3.0) * 1)

    def test_eq1_breakpoint_at_t2_minus_d_over_v1(self, cal):
        # Equation 1: the kink is at t2 - d/v1.
        t2 = parse_clock("7:00")
        p = pattern([(0.0, 1.0 / 3.0), (t2, 1.0)], cal)
        T = edge_travel_time_function(2.0, p, cal, parse_clock("6:40"), t2)
        xs = [x for x, _y in T.breakpoints]
        kink = t2 - 2.0 / (1.0 / 3.0)  # 6:54
        assert any(abs(x - kink) < 1e-9 for x in xs)


class TestMinTravelTime:
    def test_uses_fastest_speed(self, cal):
        p = pattern([(0.0, 0.5), (100.0, 2.0)], cal)
        assert min_travel_time(10.0, p) == pytest.approx(5.0)

    def test_is_admissible_bound(self, cal):
        p = pattern([(0.0, 0.5), (420.0, 0.25), (540.0, 1.0)], cal)
        bound = min_travel_time(6.0, p)
        for t in range(0, 1440, 60):
            actual = traverse(6.0, p, cal, float(t)) - t
            assert bound <= actual + 1e-9
