"""Property-based end-to-end tests: random networks, random patterns,
random queries — every allFP answer must survive the brute-force oracle.

This is the strongest correctness statement in the suite: whatever network
hypothesis dreams up (within the CapeCod model), the continuous engine's
lower border and partition agree with independent fixed-departure searches.
"""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.validation import validate_allfp, validate_arrival_allfp
from repro.core.arrival import ArrivalIntAllFastestPaths
from repro.core.engine import IntAllFastestPaths
from repro.network.model import CapeCodNetwork
from repro.patterns.categories import Calendar
from repro.patterns.speed import CapeCodPattern, DailySpeedPattern
from repro.timeutil import TimeInterval

_CAL = Calendar.single_category("d")


@st.composite
def random_pattern(draw) -> CapeCodPattern:
    """A daily pattern with up to three speed changes on a 5-min grid."""
    cells = sorted(draw(st.lists(st.integers(1, 287), max_size=3, unique=True)))
    pieces = [(0.0, draw(st.floats(0.1, 1.5)))]
    pieces.extend((c * 5.0, draw(st.floats(0.1, 1.5))) for c in cells)
    return CapeCodPattern({"d": DailySpeedPattern(pieces)})


@st.composite
def random_network(draw) -> CapeCodNetwork:
    """A small strongly-connected random network.

    Nodes sit on a jittered ring (guaranteeing distinct locations); a
    directed ring gives strong connectivity and random chords add route
    choices.  Edge lengths are at least the Euclidean distance.
    """
    n = draw(st.integers(4, 9))
    net = CapeCodNetwork(_CAL)
    for i in range(n):
        angle = 2 * math.pi * i / n
        radius = 1.0 + draw(st.floats(0.0, 0.3))
        net.add_node(i, radius * math.cos(angle), radius * math.sin(angle))

    def add(u: int, v: int) -> None:
        if u == v or net.has_edge(u, v):
            return
        stretch = 1.0 + draw(st.floats(0.0, 0.5))
        net.add_edge(u, v, net.euclidean(u, v) * stretch, draw(random_pattern()))

    for i in range(n):
        add(i, (i + 1) % n)
    chords = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=2 * n,
        )
    )
    for u, v in chords:
        add(u, v)
    return net


QUERY_WINDOW = TimeInterval(400.0, 520.0)  # 6:40 - 8:40


class TestRandomNetworksAgainstOracle:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(random_network(), st.data())
    def test_allfp_matches_oracle(self, net, data):
        source = data.draw(st.integers(0, net.node_count - 1))
        target = data.draw(st.integers(0, net.node_count - 1))
        if source == target:
            target = (target + 1) % net.node_count
        engine = IntAllFastestPaths(net)
        result = engine.all_fastest_paths(source, target, QUERY_WINDOW)
        report = validate_allfp(net, result, samples=13)
        assert report.ok, report

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(random_network(), st.data())
    def test_pruned_equals_literal_algorithm(self, net, data):
        source = data.draw(st.integers(0, net.node_count - 1))
        target = (source + net.node_count // 2) % net.node_count
        pruned = IntAllFastestPaths(net, prune=True)
        literal = IntAllFastestPaths(net, prune=False, max_pops=100_000)
        a = pruned.all_fastest_paths(source, target, QUERY_WINDOW)
        b = literal.all_fastest_paths(source, target, QUERY_WINDOW)
        for instant in QUERY_WINDOW.sample(9):
            assert math.isclose(
                a.travel_time_at(instant),
                b.travel_time_at(instant),
                abs_tol=1e-6,
            )

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(random_network(), st.data())
    def test_arrival_engine_matches_oracle(self, net, data):
        source = data.draw(st.integers(0, net.node_count - 1))
        target = (source + 1 + data.draw(st.integers(0, net.node_count - 2))) % (
            net.node_count
        )
        if source == target:
            target = (target + 1) % net.node_count
        engine = ArrivalIntAllFastestPaths(net)
        result = engine.all_fastest_paths(
            source, target, TimeInterval(460.0, 540.0)
        )
        report = validate_arrival_allfp(net, result, samples=9)
        assert report.ok, report
