"""Tests for experiment-harness invariants the benchmarks rely on."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import _SCALES, bench_network, default_bands
from repro.network.generator import MetroConfig, make_metro_network
from repro.patterns.schema import constant_speed_schema


class TestTwinTopologies:
    """The constant-speed comparison requires *identical* topology.

    The generator must consume its PRNG identically regardless of the
    pattern schema, so the CapeCod network and its constant-speed twin
    align node for node and edge for edge.
    """

    @pytest.fixture(scope="class")
    def twins(self):
        config = MetroConfig(width=10, height=10, seed=77)
        real = make_metro_network(config)
        const = make_metro_network(config, schema=constant_speed_schema())
        return real, const

    def test_same_nodes(self, twins):
        real, const = twins
        assert [n.location for n in real.nodes()] == [
            n.location for n in const.nodes()
        ]

    def test_same_edges_and_lengths(self, twins):
        real, const = twins
        assert [
            (e.source, e.target, e.distance, e.road_class)
            for e in real.edges()
        ] == [
            (e.source, e.target, e.distance, e.road_class)
            for e in const.edges()
        ]

    def test_constant_twin_really_constant(self, twins):
        _real, const = twins
        assert all(e.pattern.is_constant() for e in const.edges())

    def test_real_twin_time_dependent(self, twins):
        real, _const = twins
        assert any(not e.pattern.is_constant() for e in real.edges())


class TestScalePresets:
    def test_three_scales_defined(self):
        assert set(_SCALES) == {"small", "medium", "paper"}

    def test_scales_strictly_grow(self):
        sizes = [
            _SCALES[name].width * _SCALES[name].height
            for name in ("small", "medium", "paper")
        ]
        assert sizes == sorted(sizes)
        assert sizes[-1] > 14_000  # the paper's node count

    def test_default_bands_fit_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "small")
        assert max(hi for _lo, hi in default_bands()) <= 4
        monkeypatch.setenv("REPRO_BENCH_SCALE", "medium")
        assert max(hi for _lo, hi in default_bands()) == 8

    def test_bench_network_constant_twin_cached_separately(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "small")
        bench_network.cache_clear()
        real = bench_network()
        const = bench_network(constant_speed=True)
        assert real is not const
        assert real.node_count == const.node_count
        bench_network.cache_clear()
