"""E-T1 — the §6 comparison against constant speed-limit routing.

Table 1 defines the CapeCod schema; §6's introduction reports that, under
that schema, CapeCod-aware routing improves travel time by ~50% during rush
hours over "the approach used by most commercial navigation systems", i.e.
planning with speed = speed limit.  The paper also notes the improvement
vanishes when there is no rush-hour speed differential.

This bench drives both planners over the same topology (the constant-speed
network shares every coordinate and length with the CapeCod one — same
generator seed) at three leaving instants: morning rush, midday, and night.

Expected shape: a substantial improvement at 8:00, little at 12:00 (only
local-city evening patterns differ then — none at noon), none at 3:00.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import bench_queries, bench_scale, constant_speed_experiment
from repro.analysis.report import format_table
from repro.core.astar import fixed_departure_query
from repro.timeutil import parse_clock
from repro.workloads.queries import distance_band_queries, morning_rush_interval

LEAVE_TIMES = [parse_clock("8:00"), parse_clock("12:00"), parse_clock("3:00")]
LEAVE_LABELS = ["8:00 (rush)", "12:00 (midday)", "3:00 (night)"]


def _distance_band() -> tuple[float, float]:
    return (1.0, 3.0) if bench_scale() == "small" else (4.0, 8.0)


class TestConstantSpeedComparison:
    def test_sweep(
        self, benchmark, medium_network, constant_network, record_table
    ):
        lo, hi = _distance_band()
        rows = benchmark.pedantic(
            lambda: constant_speed_experiment(
                medium_network,
                constant_network,
                leave_times=LEAVE_TIMES,
                leave_labels=LEAVE_LABELS,
                count=bench_queries(default=8),
                min_distance=lo,
                max_distance=hi,
            ),
            rounds=1,
            iterations=1,
        )
        record_table(
            "table1_constant_speed",
            format_table(
                [
                    "leave at",
                    "constant-speed plan (min)",
                    "CapeCod plan (min)",
                    "improvement %",
                ],
                [
                    [
                        r.leave_clock,
                        r.mean_constant_minutes,
                        r.mean_capecod_minutes,
                        r.improvement_percent,
                    ]
                    for r in rows
                ],
                title=(
                    "§6 comparison vs constant speed-limit routing "
                    f"({rows[0].queries} queries, d_euc {lo:g}-{hi:g} mi)"
                ),
            ),
        )
        by_label = {r.leave_clock: r for r in rows}
        rush = by_label["8:00 (rush)"]
        night = by_label["3:00 (night)"]
        # CapeCod-aware routing can never lose (it optimizes true times).
        for r in rows:
            assert r.improvement_percent >= -1e-6
        # The rush-hour improvement must dominate the night one, which is 0
        # ("if there is no speed difference ... our method saves nothing").
        assert night.improvement_percent == pytest.approx(0.0, abs=1e-6)
        assert rush.improvement_percent > night.improvement_percent


class TestCorridorCommutes:
    """The paper's headline scenario: suburb-to-downtown commutes that the
    constant-speed planner routes down the (jammed) inbound highway."""

    def test_corridor_commutes(
        self, benchmark, medium_network, constant_network, record_table
    ):
        from repro.core.astar import path_travel_time
        import statistics

        net = medium_network
        min_x, min_y, max_x, max_y = net.bounding_box()
        cx, cy = (min_x + max_x) / 2, (min_y + max_y) / 2
        homes = [
            n.id
            for n in net.nodes()
            if n.x < min_x + (max_x - min_x) * 0.15 and abs(n.y - cy) < 0.6
        ][: bench_queries(default=10)]
        office = min(
            net.nodes(), key=lambda n: (n.x - cx) ** 2 + (n.y - cy) ** 2
        ).id

        def sweep():
            rows = []
            for leave, label in zip(LEAVE_TIMES, LEAVE_LABELS):
                const_minutes, cape_minutes = [], []
                for home in homes:
                    planned = fixed_departure_query(
                        constant_network, home, office, leave
                    )
                    const_minutes.append(
                        path_travel_time(net, planned.path, leave)
                    )
                    cape_minutes.append(
                        fixed_departure_query(net, home, office, leave).travel_time
                    )
                mean_const = statistics.fmean(const_minutes)
                mean_cape = statistics.fmean(cape_minutes)
                rows.append(
                    [
                        label,
                        mean_const,
                        mean_cape,
                        100.0 * (mean_const - mean_cape) / mean_const,
                    ]
                )
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        record_table(
            "table1_corridor_commutes",
            format_table(
                [
                    "leave at",
                    "constant-speed plan (min)",
                    "CapeCod plan (min)",
                    "improvement %",
                ],
                rows,
                title=(
                    "§6 comparison, corridor commutes "
                    f"(suburb -> downtown, {len(homes)} homes)"
                ),
            ),
        )
        by_label = {row[0]: row[3] for row in rows}
        assert by_label["8:00 (rush)"] > by_label["3:00 (night)"]


class TestPlannerTiming:
    def test_fixed_departure_rush(self, benchmark, medium_network):
        band = _distance_band()
        query = distance_band_queries(
            medium_network, [band], 1, morning_rush_interval(), seed=55
        )[band][0]
        benchmark.pedantic(
            lambda: fixed_departure_query(
                medium_network, query.source, query.target, parse_clock("8:00")
            ),
            rounds=5,
            iterations=1,
        )
