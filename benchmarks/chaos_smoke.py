"""CI smoke test for the fault-injection framework and graceful degradation.

Four checks, all deterministic:

1. **Determinism** — two injectors built from the same plan, fired against
   the same point sequence, produce byte-identical event histories.
2. **Scenario A (in-memory + boundary estimator)** — a mixed fault plan
   (estimator clone failures, worker crashes, slow tasks) against a grid
   network.  The chaos invariant must hold: every request ends in a
   correct answer, a typed error, or a flagged degraded answer whose
   border function still equals the fault-free baseline.  The plan is
   sized so the circuit breaker provably opens (degraded answers > 0)
   and at least one task crash surfaces.
3. **Scenario B (CCAM disk store)** — page-read errors against a
   disk-backed network; faults must surface as typed ``StorageError``
   responses, never corruption (``error`` mode, not ``corrupt`` — see
   docs/reliability.md on why corrupting raw data pages can be silent).
4. **Client** — a connection-refused endpoint maps to a typed
   ``ServeClientError`` after the configured retries.

Exits non-zero on the first failed assertion.

Usage::

    PYTHONPATH=src python benchmarks/chaos_smoke.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import reliability
from repro.estimators.boundary import BoundaryNodeEstimator
from repro.exceptions import ServeClientError
from repro.network.generator import MetroConfig, make_grid_network, make_metro_network
from repro.reliability import FaultPlan, FaultSpec
from repro.serve import AllFPService, HTTPClient, ServiceConfig, run_chaos
from repro.serve.chaos import default_fault_plan
from repro.storage.ccam import CCAMStore
from repro.workloads.queries import morning_rush_interval, random_queries


def check_determinism() -> None:
    plan = default_fault_plan(seed=11)
    points = [spec.point for spec in plan.specs] * 40
    histories = []
    for _ in range(2):
        injector = reliability.FaultInjector(plan)
        events = []
        for point in points:
            try:
                injector.fire(point)
            except BaseException as exc:  # noqa: BLE001 - recording, not handling
                events.append((point, type(exc).__name__))
            else:
                events.append((point, None))
        histories.append((events, injector.history()))
    assert histories[0] == histories[1], "same plan, same seed, different history"
    fired = sum(1 for _, name in histories[0][0] if name is not None)
    print(f"determinism ok: {fired} faults, identical histories across runs")


def check_scenario_a() -> None:
    network = make_grid_network(6, 6)
    estimator = BoundaryNodeEstimator(network, 2, 2)
    service = AllFPService(
        network,
        estimator,
        ServiceConfig(workers=2, breaker_reset=60.0, serve_stale=True),
    )
    queries = random_queries(network, 16, morning_rush_interval(), seed=3)
    try:
        report = run_chaos(
            service, queries, default_fault_plan(seed=1), clients=4
        )
    finally:
        service.close()
    for line in report.summary_lines():
        print(line)
    assert report.passed(), report.violations
    assert report.degraded > 0, "breaker never opened: no degraded answers"
    assert report.fault_events > 0, "plan injected nothing"
    assert not reliability.is_active(), "harness leaked its injector"
    print("scenario A ok: invariant held with degraded answers present")


def check_scenario_b() -> None:
    network = make_metro_network(MetroConfig(width=12, height=12, seed=5))
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "net.ccam"
        CCAMStore.build(network, path)
        store = CCAMStore(path, buffer_pages=32)
        service = AllFPService(store, config=ServiceConfig(workers=2))
        queries = random_queries(store, 10, morning_rush_interval(), seed=9)
        # Fire on the node lookup, not the page/buffer reads: after the
        # baseline pass the whole tiny network is decoded and cached, so
        # lower storage layers are never reached again.  Cap the fires so
        # most queries still complete and prove the correct-answer side of
        # the invariant.
        plan = FaultPlan(
            seed=2,
            specs=(
                FaultSpec(
                    "repro.storage.ccam.find_node",
                    mode="error",
                    error="storage",
                    probability=0.05,
                    max_fires=4,
                ),
            ),
        )
        try:
            report = run_chaos(service, queries, plan, clients=3)
        finally:
            service.close()
            store.close()
    for line in report.summary_lines():
        print(line)
    assert report.passed(), report.violations
    typed = sum(report.typed_errors.values())
    assert report.ok + typed == report.requests, report.as_dict()
    assert typed > 0, "no storage fault ever surfaced"
    assert report.ok > 0, "every query failed: cap the plan harder"
    print(
        f"scenario B ok: {typed} storage fault(s) surfaced typed, "
        f"{report.ok} answers correct"
    )


def check_client_typed_errors() -> None:
    sleeps: list[float] = []
    client = HTTPClient(
        "http://127.0.0.1:1",
        timeout=0.2,
        retries=1,
        backoff_base=0.001,
        sleep=sleeps.append,
    )
    try:
        client.healthz()
    except ServeClientError as exc:
        assert exc.attempts == 2, exc.attempts
        assert len(sleeps) == 1, sleeps
        print(f"client ok: connection refused -> typed after {exc.attempts} attempts")
    else:
        raise AssertionError("expected ServeClientError on a refused port")


def main() -> int:
    check_determinism()
    check_scenario_a()
    check_scenario_b()
    check_client_typed_errors()
    print("chaos smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
