"""Kernel vs legacy A/B microbenchmarks — writes ``BENCH_kernel.json``.

Runs every hot operator of the piecewise-linear kernel twice — once through
the fused array kernel (:mod:`repro.func.kernel`) and once through the
legacy per-point implementations (``REPRO_FUNC_KERNEL=0`` path) — on the
same randomized inputs, then a small end-to-end allFP workload.  Reports
ns/op, the speedup, output breakpoint counts and engine pops, and writes
the machine-readable artifact at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel.py [--quick]

``--quick`` shrinks inputs and repetition counts so CI can smoke-test the
emitter in seconds.
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from pathlib import Path
from typing import Callable

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from emit_json import emit_bench_json

from repro.core.engine import IntAllFastestPaths
from repro.func import kernel
from repro.func.envelope import AnnotatedEnvelope
from repro.func.monotone import MonotonePiecewiseLinear
from repro.func.piecewise import PiecewiseLinearFunction, pointwise_minimum
from repro.network.generator import MetroConfig, make_metro_network
from repro.patterns.categories import Calendar
from repro.patterns.speed import CapeCodPattern, DailySpeedPattern
from repro.patterns.travel_time import edge_arrival_function
from repro.timeutil import TimeInterval


# ----------------------------------------------------------------------
# Randomized inputs (seeded — both modes see identical functions).
# ----------------------------------------------------------------------

def _rand_xs(rng: random.Random, lo: float, hi: float, n: int) -> list[float]:
    xs = sorted(rng.uniform(lo, hi) for _ in range(max(n - 2, 0)))
    return [lo] + xs + [hi]


def rand_plf(
    rng: random.Random, lo: float, hi: float, n: int, base: float
) -> PiecewiseLinearFunction:
    xs = _rand_xs(rng, lo, hi, n)
    return PiecewiseLinearFunction(
        [(x, base + rng.uniform(0.0, 5.0)) for x in xs]
    )


def rand_monotone(
    rng: random.Random, lo: float, hi: float, n: int, y0: float
) -> MonotonePiecewiseLinear:
    xs = _rand_xs(rng, lo, hi, n)
    pts = []
    y = y0
    for x in xs:
        pts.append((x, y))
        y += rng.uniform(0.05, 2.0)
    return MonotonePiecewiseLinear(pts)


# ----------------------------------------------------------------------
# Timing.
# ----------------------------------------------------------------------

def time_op(fn: Callable[[], object], reps: int) -> float:
    """Best-of-3 mean ns per call."""
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        for _ in range(reps):
            fn()
        elapsed = time.perf_counter() - t0
        best = min(best, elapsed / reps)
    return best * 1e9


def _breakpoint_count(obj: object) -> int:
    if isinstance(obj, AnnotatedEnvelope):
        return len(obj.pieces()) + 1
    if isinstance(obj, PiecewiseLinearFunction):
        return len(obj.breakpoints)
    return 0


# ----------------------------------------------------------------------
# Workloads.
# ----------------------------------------------------------------------

def build_micro_ops(quick: bool) -> dict[str, Callable[[], object]]:
    n = 40 if quick else 200
    rng = random.Random(42)
    a = rand_plf(rng, 0.0, 100.0, n, 5.0)
    b = rand_plf(rng, 0.0, 100.0, n, 5.3)
    low = a + (-0.5)  # everywhere below a: dominance comparisons do work
    inner = rand_monotone(rng, 0.0, 100.0, n, 10.0)
    lo, hi = inner.value_range
    outer = rand_monotone(rng, lo - 1.0, hi + 1.0, n, 0.0)
    env_fns = [
        rand_plf(rng, 0.0, 100.0, max(n // 10, 4), 5.0 + k * 0.05)
        for k in range(20)
    ]
    cal = Calendar.single_category("d")
    pattern = CapeCodPattern(
        {
            "d": DailySpeedPattern(
                [
                    (0.0, 1.0),
                    (420.0, 0.33),
                    (540.0, 1.0),
                    (960.0, 0.5),
                    (1140.0, 1.0),
                ]
            )
        }
    )

    def fold_envelope() -> AnnotatedEnvelope:
        env = AnnotatedEnvelope(0.0, 100.0)
        for k, fn in enumerate(env_fns):
            env.add(fn, tag=k)
        return env

    return {
        "add": lambda: a + b,
        "min": lambda: pointwise_minimum(a, b),
        "dominates": lambda: low.dominates(a),
        "compose": lambda: outer.compose(inner),
        "inverse": lambda: inner.inverse(),
        "simplify": lambda: a.simplify(),
        "envelope_fold_20": fold_envelope,
        "edge_arrival_build": lambda: edge_arrival_function(
            3.0, pattern, cal, 360.0, 720.0
        ),
    }


def run_micro(quick: bool) -> list[dict[str, object]]:
    reps = {"envelope_fold_20": 5 if quick else 50,
            "edge_arrival_build": 20 if quick else 200}
    default_reps = 50 if quick else 500
    rows: list[dict[str, object]] = []
    for name, op in build_micro_ops(quick).items():
        r = reps.get(name, default_reps)
        previous = kernel.set_kernel_enabled(True)
        out = op()
        kernel_ns = time_op(op, r)
        kernel.set_kernel_enabled(False)
        legacy_ns = time_op(op, r)
        kernel.set_kernel_enabled(previous)
        rows.append(
            {
                "name": name,
                "kernel_ns_per_op": round(kernel_ns, 1),
                "legacy_ns_per_op": round(legacy_ns, 1),
                "speedup": round(legacy_ns / kernel_ns, 2),
                "out_breakpoints": _breakpoint_count(out),
            }
        )
    return rows


def run_end_to_end(quick: bool) -> dict[str, object]:
    """A small allFP workload, kernel vs legacy, on the same queries."""
    config = MetroConfig(width=12, height=12, spacing=0.25, seed=7)
    network = make_metro_network(config)
    rng = random.Random(9)
    nodes = list(network.node_ids())
    n_queries = 2 if quick else 8
    pairs = []
    while len(pairs) < n_queries:
        s, t = rng.sample(nodes, 2)
        pairs.append((s, t))
    interval = TimeInterval(7 * 60.0, 9 * 60.0)

    def run_all() -> tuple[float, int, int]:
        engine = IntAllFastestPaths(network)
        pops = 0
        peak_bp = 0
        t0 = time.perf_counter()
        for s, t in pairs:
            result = engine.all_fastest_paths(s, t, interval)
            pops += result.stats.expanded_paths
            peak_bp = max(peak_bp, result.stats.breakpoints_allocated)
        return (time.perf_counter() - t0, pops, peak_bp)

    previous = kernel.set_kernel_enabled(True)
    kernel_s, kernel_pops, peak_bp = run_all()
    kernel.set_kernel_enabled(False)
    legacy_s, legacy_pops, _ = run_all()
    kernel.set_kernel_enabled(previous)
    return {
        "name": "allfp_end_to_end",
        "queries": n_queries,
        "kernel_ms_per_query": round(kernel_s / n_queries * 1e3, 3),
        "legacy_ms_per_query": round(legacy_s / n_queries * 1e3, 3),
        "speedup": round(legacy_s / kernel_s, 2),
        "kernel_pops": kernel_pops,
        "legacy_pops": legacy_pops,
        "peak_breakpoints_per_query": peak_bp,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small inputs / few reps (CI smoke mode)",
    )
    args = parser.parse_args(argv)

    rows = run_micro(args.quick)
    rows.append(run_end_to_end(args.quick))

    width = max(len(r["name"]) for r in rows)
    print(f"{'op':<{width}}  {'kernel':>12}  {'legacy':>12}  speedup")
    for r in rows:
        if "kernel_ns_per_op" in r:
            k, l = r["kernel_ns_per_op"], r["legacy_ns_per_op"]
            print(
                f"{r['name']:<{width}}  {k:>10.0f}ns  {l:>10.0f}ns  "
                f"{r['speedup']:>6.2f}x"
            )
        else:
            k, l = r["kernel_ms_per_query"], r["legacy_ms_per_query"]
            print(
                f"{r['name']:<{width}}  {k:>10.2f}ms  {l:>10.2f}ms  "
                f"{r['speedup']:>6.2f}x"
            )

    path = emit_bench_json(
        "kernel",
        rows,
        quick=args.quick,
        meta={
            "seed": 42,
            "kernel_default": kernel.KERNEL_ENABLED,
            "kernel_backend": kernel.active_backend(),
        },
    )
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
