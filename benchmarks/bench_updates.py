"""Live-update benchmark — writes ``BENCH_updates.json``.

Measures what a localized incident costs to absorb: a cluster of
edge-pattern mutations confined to one partition cell (at most 5% of the
network's edges), applied to a service built on the 24x24 metro network
with a boundary estimator and a two-level overlay.

Two legs on the same mutated network:

* **delta** — :meth:`BoundaryNodeEstimator.refresh_delta` +
  :meth:`MultiLevelOverlay.refresh_delta`: only the estimator cells and
  overlay shortcut rows the incident touches are recomputed, everything
  else gets the admissibility-preserving slack correction;
* **full** — :meth:`BoundaryNodeEstimator.refresh` (complete precompute)
  + :meth:`MultiLevelOverlay.build` from scratch, the pre-delta baseline.

Gates (enforced in quick mode too — the network is the same):

* the delta leg must be at least **5x** faster than the full rebuild
  (``meta.speedup_delta_vs_full``);
* post-update answers through the delta-refreshed estimator and overlay
  must be **byte-identical** to the from-scratch rebuild on every sampled
  pair (``meta.answers_checked``), and the spliced overlay arrays must be
  byte-identical to freshly built ones.

Usage::

    PYTHONPATH=src python benchmarks/bench_updates.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from emit_json import emit_bench_json

from repro.core.engine import IntAllFastestPaths
from repro.estimators.boundary import BoundaryNodeEstimator
from repro.func import kernel
from repro.hierarchy import MultiLevelOverlay, OverlayEngine
from repro.network.generator import MetroConfig, make_metro_network
from repro.serve.updates import (
    EdgeMutation,
    MutationBatch,
    apply_batch,
    slowdown_pattern,
)
from repro.timeutil import TimeInterval

WIDTH = HEIGHT = 24
SEED = 23
GRID = 6
OVERLAY_NX = 8
OVERLAY_LEVELS = 2
HORIZON = TimeInterval(0.0, 48 * 60.0)
INTERVAL = TimeInterval(7 * 60.0, 9 * 60.0)
SPEEDUP_GATE = 5.0


def incident_batch(network, overlay) -> MutationBatch:
    """Every edge inside one level-0 cell, slowed to crawl — a localized
    incident by construction (both endpoints share the cell), capped at
    5% of the network's directed edges."""
    edges = list(network.edges())
    by_cell: dict[int, list] = {}
    for edge in edges:
        cell = overlay.cell_at(edge.source, 0)
        if cell == overlay.cell_at(edge.target, 0):
            by_cell.setdefault(cell, []).append(edge)
    cell, members = max(by_cell.items(), key=lambda item: len(item[1]))
    cap = max(1, len(edges) // 20)
    members = members[:cap]
    print(
        f"incident: {len(members)} edge(s) in cell {cell} "
        f"({len(members) / len(edges):.1%} of {len(edges)} edges)"
    )
    return MutationBatch(
        tuple(
            EdgeMutation(e.source, e.target, slowdown_pattern(e.pattern, 0.25))
            for e in members
        )
    )


def check_answers(network, delta_est, delta_ovl, full_est, full_ovl, pairs):
    """Post-update answers must be byte-identical across the two legs."""
    from repro.serve.chaos import _canonical

    checked = 0
    delta_engine = OverlayEngine(delta_ovl, delta_est)
    full_engine = OverlayEngine(full_ovl, full_est)
    flat_engine = IntAllFastestPaths(network, full_est)
    for source, target in pairs:
        a = _canonical(delta_engine.all_fastest_paths(source, target, INTERVAL))
        b = _canonical(full_engine.all_fastest_paths(source, target, INTERVAL))
        c = _canonical(flat_engine.all_fastest_paths(source, target, INTERVAL))
        assert a == b == c, f"answers diverge on {source}->{target}"
        checked += 1
    for spliced, fresh in zip(delta_ovl.levels, full_ovl.levels):
        for attr in ("src", "dst", "off", "xs", "ys"):
            assert bytes(getattr(spliced, attr)) == bytes(
                getattr(fresh, attr)
            ), f"overlay level {spliced.level} array {attr} diverges"
    return checked


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args()
    workers = min(4, os.cpu_count() or 1)
    pair_count = 4 if args.quick else 10

    network = make_metro_network(MetroConfig(width=WIDTH, height=HEIGHT, seed=SEED))
    print(
        f"network: {WIDTH}x{HEIGHT} metro, {network.node_count} nodes, "
        f"{len(list(network.edges()))} edges; workers={workers}"
    )
    t0 = time.perf_counter()
    estimator = BoundaryNodeEstimator(network, GRID, GRID, workers=workers)
    estimator.precompute()
    overlay = MultiLevelOverlay.build(
        network,
        levels=OVERLAY_LEVELS,
        nx=OVERLAY_NX,
        horizon=HORIZON,
        workers=workers,
    )
    build_seconds = time.perf_counter() - t0
    print(f"initial build: {build_seconds:.2f}s")

    batch = incident_batch(network, overlay)
    t0 = time.perf_counter()
    applied = apply_batch(network, batch)
    apply_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    estimator.refresh_delta(applied, workers=workers)
    cells = overlay.refresh_delta(applied, workers=workers)
    delta_seconds = time.perf_counter() - t0
    print(f"delta re-customization: {delta_seconds:.3f}s ({cells} overlay cell(s))")

    full_estimator = BoundaryNodeEstimator(network, GRID, GRID, workers=workers)
    t0 = time.perf_counter()
    full_estimator.precompute()
    full_overlay = MultiLevelOverlay.build(
        network,
        levels=OVERLAY_LEVELS,
        nx=OVERLAY_NX,
        horizon=HORIZON,
        workers=workers,
    )
    full_seconds = time.perf_counter() - t0
    print(f"full rebuild: {full_seconds:.3f}s")

    speedup = full_seconds / delta_seconds if delta_seconds > 0 else float("inf")
    nodes = network.node_count
    rng_pairs = [
        (batch.mutations[0].source, batch.mutations[0].target),
        (0, nodes - 1),
    ]
    step = max(1, nodes // pair_count)
    rng_pairs += [(i, nodes - 1 - i) for i in range(1, nodes // 2, step)][
        : pair_count - 2
    ]
    checked = check_answers(
        network, estimator, overlay, full_estimator, full_overlay, rng_pairs
    )
    print(f"answers checked: {checked} pair(s), byte-identical across legs")
    print(f"speedup delta vs full: {speedup:.1f}x (gate {SPEEDUP_GATE:.0f}x)")
    assert speedup >= SPEEDUP_GATE, (
        f"delta re-customization only {speedup:.2f}x faster than a full "
        f"rebuild (gate {SPEEDUP_GATE}x)"
    )

    results = [
        {
            "name": "apply_batch",
            "seconds": apply_seconds,
            "mutations": len(batch),
        },
        {
            "name": "delta_recustomization",
            "seconds": delta_seconds,
            "overlay_cells_recomputed": cells,
        },
        {"name": "full_rebuild", "seconds": full_seconds},
        {"name": "initial_build", "seconds": build_seconds},
    ]
    meta = {
        "speedup_delta_vs_full": speedup,
        "answers_checked": checked,
        "mutated_edges": len(batch),
        "edge_fraction": len(batch) / len(list(network.edges())),
        "network": f"{WIDTH}x{HEIGHT}",
        "kernel_backend": kernel.active_backend(),
        "cpu_count": os.cpu_count(),
        "workers": workers,
    }
    path = emit_bench_json(
        "updates",
        results,
        scale="quick" if args.quick else "small",
        quick=args.quick,
        meta=meta,
    )
    print(f"wrote {path}")
    print(json.dumps(meta, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
