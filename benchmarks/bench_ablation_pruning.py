"""E-A4 — ablation: dominance pruning on/off.

DESIGN.md documents one deliberate deviation from the paper's literal
algorithm: per-node dominance pruning of queue labels.  This ablation
quantifies why — without pruning the number of expanded *paths* (and the
queue) grows combinatorially with distance, while the answers stay
identical.

Run on a small dedicated network so the unpruned runs finish.
"""

from __future__ import annotations

import statistics

import pytest

from repro.analysis.report import format_table
from repro.core.engine import IntAllFastestPaths
from repro.network.generator import MetroConfig, make_metro_network
from repro.timeutil import TimeInterval, parse_clock
from repro.workloads.queries import distance_band_queries

INTERVAL = TimeInterval(parse_clock("6:45"), parse_clock("8:00"))


@pytest.fixture(scope="module")
def network():
    return make_metro_network(MetroConfig(width=10, height=10, seed=31))


@pytest.fixture(scope="module")
def queries(network):
    return distance_band_queries(network, [(1.0, 2.0)], 5, INTERVAL, seed=37)[
        (1.0, 2.0)
    ]


class TestPruningAblation:
    def test_pruning_sweep(self, benchmark, network, queries, record_table):
        def sweep():
            rows = []
            for prune in (True, False):
                engine = IntAllFastestPaths(
                    network, prune=prune, max_pops=500_000
                )
                expanded, queue_peak = [], []
                borders = []
                for q in queries:
                    result = engine.all_fastest_paths(
                        q.source, q.target, q.interval
                    )
                    expanded.append(result.stats.expanded_paths)
                    queue_peak.append(result.stats.max_queue_size)
                    borders.append(result.border)
                rows.append(
                    [
                        "on" if prune else "off",
                        statistics.fmean(expanded),
                        max(queue_peak),
                        borders,
                    ]
                )
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        record_table(
            "ablation_pruning",
            format_table(
                ["dominance pruning", "expanded/query", "peak queue"],
                [row[:3] for row in rows],
                title=f"E-A4: dominance pruning ({len(queries)} allFP queries, "
                "10x10 metro, 75-minute interval)",
            ),
        )
        pruned, literal = rows[0], rows[1]
        # Identical answers...
        for border_a, border_b in zip(pruned[3], literal[3]):
            assert border_a.equals_approx(border_b, tol=1e-6)
        # ...at a fraction of the work.
        assert pruned[1] <= literal[1]
        assert pruned[2] <= literal[2]

    def test_pruned_query(self, benchmark, network, queries):
        engine = IntAllFastestPaths(network, prune=True)
        q = queries[0]
        benchmark.pedantic(
            lambda: engine.all_fastest_paths(q.source, q.target, q.interval),
            rounds=3,
            iterations=1,
        )

    def test_unpruned_query(self, benchmark, network, queries):
        engine = IntAllFastestPaths(network, prune=False, max_pops=500_000)
        q = queries[0]
        benchmark.pedantic(
            lambda: engine.all_fastest_paths(q.source, q.target, q.interval),
            rounds=3,
            iterations=1,
        )
