"""E-A5 — the paper's §6.1 scaling claim: hierarchical partitioning.

The paper argues its algorithm scales to larger networks via hierarchical
partitioning with fragments "equal to the size of the network explored in
our experiments", at the cost of "applying our algorithm few more times".
This bench quantifies the trade on the benchmark network: flat vs two-level
queries — expanded paths, wall time, and the one-off index build cost —
plus the exactness check that both report identical travel times.

Expected shape: the hierarchical engine expands fewer paths for long
queries (intermediate fragments collapse to boundary hops) at the price of
index precomputation; short same-fragment queries see no benefit.
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro.analysis.experiments import bench_queries
from repro.analysis.report import format_table
from repro.core.engine import IntAllFastestPaths
from repro.hierarchy import HierarchicalEngine, HierarchicalIndex
from repro.timeutil import TimeInterval, parse_clock
from repro.workloads.queries import distance_band_queries

HORIZON = TimeInterval(parse_clock("5:00"), parse_clock("14:00"))
WINDOW = TimeInterval(parse_clock("7:00"), parse_clock("9:00"))


@pytest.fixture(scope="module")
def index(medium_network):
    return HierarchicalIndex(medium_network, 6, 6, HORIZON)


class TestHierarchyAblation:
    def test_flat_vs_hierarchical(
        self, benchmark, medium_network, index, record_table
    ):
        flat = IntAllFastestPaths(medium_network)
        hier = HierarchicalEngine(index)
        bands = [(1.0, 2.0), (3.0, 4.0), (6.0, 8.0)]
        workload = distance_band_queries(
            medium_network, bands, bench_queries(default=5), WINDOW, seed=47
        )

        def sweep():
            rows = []
            for band in bands:
                f_exp, h_exp, f_sec, h_sec = [], [], [], []
                for q in workload[band]:
                    start = time.perf_counter()
                    f = flat.all_fastest_paths(q.source, q.target, q.interval)
                    f_sec.append(time.perf_counter() - start)
                    start = time.perf_counter()
                    h = hier.all_fastest_paths(q.source, q.target, q.interval)
                    h_sec.append(time.perf_counter() - start)
                    f_exp.append(f.stats.expanded_paths)
                    h_exp.append(h.stats.expanded_paths)
                    for instant in q.interval.sample(5):
                        assert abs(
                            f.travel_time_at(instant) - h.travel_time_at(instant)
                        ) <= 1e-6
                rows.append(
                    [
                        f"{band[0]:g}-{band[1]:g}",
                        statistics.fmean(f_exp),
                        statistics.fmean(h_exp),
                        statistics.fmean(f_sec) * 1000,
                        statistics.fmean(h_sec) * 1000,
                    ]
                )
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        record_table(
            "ablation_hierarchy",
            format_table(
                [
                    "d_euc (mi)",
                    "flat expanded",
                    "hier expanded",
                    "flat ms",
                    "hier ms",
                ],
                rows,
                title=(
                    "E-A5: flat vs two-level hierarchical allFP "
                    f"({index.stats.fragments} fragments, "
                    f"{index.stats.shortcuts} shortcuts; answers identical)"
                ),
            ),
        )
        # Long queries traverse collapsed fragments: strictly fewer pops.
        assert rows[-1][2] < rows[-1][1]

    def test_index_build_cost(self, benchmark, medium_network, record_table):
        result = benchmark.pedantic(
            lambda: HierarchicalIndex(medium_network, 6, 6, HORIZON),
            rounds=1,
            iterations=1,
        )
        record_table(
            "ablation_hierarchy_build",
            format_table(
                ["fragments", "boundary nodes", "shortcuts", "profile searches"],
                [
                    [
                        result.stats.fragments,
                        result.stats.boundary_nodes,
                        result.stats.shortcuts,
                        result.stats.profile_searches,
                    ]
                ],
                title="E-A5: hierarchical index build effort",
            ),
        )
        assert result.stats.shortcuts > 0
