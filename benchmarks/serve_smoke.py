"""CI smoke test for the HTTP query service.

Starts the full stack on a tiny generated network and an ephemeral port,
then checks the end-to-end contract the CI job cares about:

1. ``GET /healthz`` answers,
2. one ``POST /v1/allfp`` query returns a partition,
3. duplicate concurrent requests coalesce into a single engine run
   (deterministically: the network is gated so the leader is provably
   still in flight when the duplicates arrive),
4. ``GET /metrics`` counters reconcile with the client-observed request
   count,
5. the one-to-many endpoints answer: ``POST /v1/profile`` returns one
   arrival profile per requested target, ``POST /v1/batch`` answers both
   accepted request forms, and ``POST /v1/knn`` a ranked
   neighbour list, both with search stats attached.

Exits non-zero on the first failed assertion.

Usage::

    PYTHONPATH=src python benchmarks/serve_smoke.py
"""

from __future__ import annotations

import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.func import kernel
from repro.network.generator import MetroConfig, make_metro_network
from repro.serve import (
    AllFPService,
    HTTPClient,
    ServiceConfig,
    make_server,
    parse_metrics,
    start_in_thread,
)
from repro.timeutil import TimeInterval


class GatedNetwork:
    """Blocks ``outgoing`` while the gate is closed (see tests/test_serve.py)."""

    def __init__(self, inner):
        self._inner = inner
        self.gate = threading.Event()
        self.gate.set()

    def outgoing(self, node_id):
        assert self.gate.wait(timeout=60.0), "gate never opened"
        return self._inner.outgoing(node_id)

    def __getattr__(self, name):
        return getattr(self._inner, name)


def wait_until(predicate, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.005)
    raise AssertionError("condition not reached within timeout")


def main() -> int:
    network = GatedNetwork(
        make_metro_network(MetroConfig(width=10, height=10, seed=5))
    )
    service = AllFPService(network, config=ServiceConfig(workers=2))
    server = make_server(service, port=0)
    start_in_thread(server)
    host, port = server.server_address[:2]
    client = HTTPClient(f"http://{host}:{port}")
    interval = TimeInterval.from_clock("7:00", "8:00")

    try:
        # 1. healthz
        health = client.healthz()
        assert health["status"] == "ok", health
        assert health["nodes"] == 100, health
        print(f"healthz ok: {health}")

        # 2. one allFP query
        status, body = client.query(0, 99, interval)
        assert status == 200, (status, body)
        assert body["result"]["entries"], body
        print(
            f"allfp ok: {len(body['result']['entries'])} sub-interval(s), "
            f"{body['elapsed_ms']:.1f} ms"
        )

        # 3. duplicate concurrent requests coalesce into one engine run
        runs_before = service.stats()["engine_runs"]
        network.gate.clear()
        n = 4
        outcomes: list[tuple[int, dict]] = []

        def duplicate():
            outcomes.append(client.query(5, 77, interval))

        threads = [threading.Thread(target=duplicate) for _ in range(n)]
        for t in threads:
            t.start()
        wait_until(
            lambda: service.stats()["single_flight"]["coalesced"] == n - 1
        )
        network.gate.set()
        for t in threads:
            t.join()
        assert all(status == 200 for status, _ in outcomes), outcomes
        coalesced_responses = sum(
            1 for _, body in outcomes if body["coalesced"]
        )
        assert coalesced_responses == n - 1, outcomes
        runs = service.stats()["engine_runs"] - runs_before
        assert runs == 1, f"expected 1 engine run for {n} duplicates, got {runs}"
        print(f"coalescing ok: {n} duplicates -> 1 engine run")

        # 4. /metrics reconciles with what this client sent.  Every sample
        # carries the kernel_backend const label now, so build names with it.
        samples = parse_metrics(client.metrics_text())
        sent = 1 + n

        def sample(name: str, **labels) -> str:
            labels["kernel_backend"] = kernel.active_backend()
            block = ",".join(
                f'{k}="{v}"' for k, v in sorted(labels.items())
            )
            return f"repro_{name}{{{block}}}"

        assert samples[sample("requests_total", mode="allfp")] == sent, samples
        assert (
            samples[sample("responses_total", mode="allfp", status="ok")] == sent
        ), samples
        assert samples[sample("coalesced_total")] == n - 1, samples
        assert samples[sample("engine_runs_total")] == 2, samples
        assert samples[sample("pending_requests")] == 0, samples
        print(f"metrics ok: {sent} requests reconciled")

        # 5. one-to-many endpoints: /v1/profile and /v1/knn
        status, body = client.profile(0, [5, 27, 99], interval)
        assert status == 200, (status, body)
        profiles = body["result"]["profiles"]
        assert set(profiles) == {"5", "27", "99"}, sorted(profiles)
        assert body["result"]["stats"]["expanded_paths"] > 0, body
        print(f"profile ok: {len(profiles)} target profile(s)")

        status, body = client.knn(0, [12, 34, 56, 78], 2, interval)
        assert status == 200, (status, body)
        neighbors = body["result"]["neighbors"]
        assert len(neighbors) == 2, body
        assert (
            neighbors[0]["min_travel_time"] <= neighbors[1]["min_travel_time"]
        ), neighbors
        print(f"knn ok: top-{len(neighbors)} of 4 candidates")

        # 6. batch endpoint: explicit pairs and the one-to-many shorthand
        status, body = client.batch([(0, 99), (3, 42)], interval)
        assert status == 200, (status, body)
        items = body["result"]["items"]
        assert [(i["source"], i["target"]) for i in items] == [(0, 99), (3, 42)]
        assert all(i["reachable"] for i in items), items
        assert body["result"]["groups"] == 2, body["result"]
        status, body = client.batch_one_to_many(0, [5, 27, 99], interval)
        assert status == 200, (status, body)
        assert len(body["result"]["items"]) == 3, body
        assert body["result"]["groups"] == 1, body["result"]
        backend = body["result"]["stats"]["kernel_backend"]
        assert backend in ("array", "numpy", "legacy"), backend
        print(f"batch ok: 2 forms answered on backend {backend!r}")
    finally:
        network.gate.set()
        server.shutdown()
        service.close()

    print("serve smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
