"""CI smoke test for the sharded serve tier.

Boots a 2-shard :class:`repro.shard.ShardedService` (shared-memory
estimator transport) behind the stdlib HTTP server and checks the
end-to-end contract the CI job cares about:

1. ``GET /healthz`` aggregates both shards, alive, over the shm
   transport,
2. an allFP query over HTTP answers identically to a single-process
   ``AllFPService``,
3. ``GET /metrics`` carries per-shard series (``shard_id`` /
   ``shard_count`` / ``kernel_backend`` labels),
4. hard-killing the shard that owns a query mid-run fails over to the
   surviving shard: the response is still the baseline answer, flagged
   ``degraded`` with ``degraded_shard`` naming the dead ring node,
5. the killed worker restarts and the tier reports 2/2 alive again.

Exits non-zero on the first failed assertion.

Usage::

    PYTHONPATH=src python benchmarks/shard_smoke.py
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.estimators.boundary import BoundaryNodeEstimator
from repro.func import kernel
from repro.network.generator import MetroConfig, make_metro_network
from repro.serve import AllFPService, HTTPClient, ServiceConfig, make_server, start_in_thread
from repro.serve.chaos import _round_floats
from repro.serve.service import QueryRequest
from repro.shard import ShardedService, routing_key
from repro.timeutil import TimeInterval


def canonical(result_doc: dict) -> str:
    """Answer-only canonical form (mirrors repro.serve.chaos._canonical)."""
    doc = dict(result_doc)
    doc.pop("stats", None)
    doc.pop("entries", None)
    return json.dumps(_round_floats(doc), sort_keys=True)


def wait_until(predicate, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError("condition not reached within timeout")


def main() -> int:
    network = make_metro_network(MetroConfig(width=10, height=10, seed=5))
    estimator = BoundaryNodeEstimator(network, 4, 4)
    interval = TimeInterval.from_clock("7:00", "8:00")
    config = ServiceConfig(workers=2, cache_results=False, coalesce=False)

    # Single-process reference answers.
    single = AllFPService(network, estimator, config=config)
    specs = [(0, 99), (5, 77), (12, 87), (33, 66), (48, 51), (7, 92)]
    baseline = {}
    for source, target in specs:
        response = single.query(
            QueryRequest(source, target, interval, "allfp", None)
        )
        baseline[(source, target)] = canonical(response.result.as_dict())
    single.close()

    tier = ShardedService(network, estimator, config, shards=2)
    server = make_server(tier, port=0)
    start_in_thread(server)
    host, port = server.server_address[:2]
    client = HTTPClient(f"http://{host}:{port}")

    try:
        # 1. healthz aggregates both shards
        health = client.healthz()
        shards = health.get("shards")
        assert shards and len(shards) == 2, health
        assert all(s["alive"] for s in shards), shards
        assert all(s["tables_mode"] == "shm" for s in shards), shards
        print(f"healthz ok: 2/2 shards alive over shm transport")

        # 2. HTTP answer equals the single-process answer
        status, body = client.query(0, 99, interval)
        assert status == 200, (status, body)
        assert canonical(body["result"]) == baseline[(0, 99)], body
        assert "degraded_shard" not in body, body
        print("allfp ok: HTTP answer matches single-process baseline")

        # 3. per-shard metrics series
        text = client.metrics_text()
        backend = kernel.active_backend()
        for sid in (0, 1):
            needle = f'shard_id="{sid}"'
            assert needle in text, f"{needle} missing from /metrics"
        assert 'shard_count="2"' in text, "shard_count label missing"
        assert f'kernel_backend="{backend}"' in text, "kernel_backend missing"
        print("metrics ok: shard_id/shard_count/kernel_backend labels present")

        # 4. kill the shard that owns a query; failover must still answer
        victim = None
        for source, target in specs:
            request = QueryRequest(source, target, interval, "allfp", None)
            owner = tier.ring.preference(routing_key(request))[0]
            if victim is None or owner == 0:
                victim = (source, target, owner)
            if owner == 0:
                break
        source, target, owner = victim
        tier.kill_shard(owner)
        status, body = client.query(source, target, interval)
        assert status == 200, (status, body)
        assert body["degraded"] is True, body
        assert body.get("degraded_shard") == owner, body
        assert canonical(body["result"]) == baseline[(source, target)], body
        print(
            f"failover ok: shard {owner} killed, survivor answered "
            f"{source}->{target} with the baseline answer (flagged degraded)"
        )

        # 5. the dead worker restarts
        wait_until(lambda: tier.stats()["alive"] == 2)
        stats = tier.stats()
        assert stats["restarts"][owner] == 1, stats["restarts"]
        print(f"restart ok: shard {owner} back, 2/2 alive")
    finally:
        server.shutdown()
        tier.close()

    print("shard smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
