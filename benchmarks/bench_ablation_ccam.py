"""E-A1 — ablation: CCAM page size, packing strategy, and buffer size vs I/O.

The paper fixes the page size at 2048 bytes and clusters with CCAM; this
ablation justifies those choices by measuring, per singleFP query against
the disk store, the physical page reads under

* page sizes 512 / 1024 / 2048 / 4096,
* Hilbert-sequential vs connectivity-BFS packing,
* a small (8-page) vs a generous (256-page) buffer pool.

Expected shape: larger pages and connectivity packing reduce physical reads;
the buffer pool amortises repeated node accesses within one query.
"""

from __future__ import annotations

import statistics

import pytest

from repro.analysis.report import format_table
from repro.core.engine import IntAllFastestPaths
from repro.estimators.naive import NaiveEstimator
from repro.network.generator import MetroConfig, make_metro_network
from repro.storage.ccam import CCAMStore
from repro.workloads.queries import distance_band_queries, morning_rush_interval

PAGE_SIZES = [512, 1024, 2048, 4096]


@pytest.fixture(scope="module")
def network():
    # A dedicated mid-size network so database builds stay quick.
    return make_metro_network(MetroConfig(width=24, height=24, seed=13))


@pytest.fixture(scope="module")
def queries(network):
    interval = morning_rush_interval(1.0)
    return distance_band_queries(network, [(1.0, 3.0)], 6, interval, seed=17)[
        (1.0, 3.0)
    ]


def _mean_page_reads(store: CCAMStore, queries) -> float:
    engine = IntAllFastestPaths(store, NaiveEstimator(store))
    reads = []
    for q in queries:
        store.drop_buffer()
        store.reset_io_counters()
        engine.single_fastest_path(q.source, q.target, q.interval)
        reads.append(store.page_reads)
    return statistics.fmean(reads)


class TestPageSizeAblation:
    def test_page_size_sweep(
        self, benchmark, network, queries, tmp_path_factory, record_table
    ):
        tmp = tmp_path_factory.mktemp("ccam-pages")

        def sweep():
            rows = []
            for page_size in PAGE_SIZES:
                path = tmp / f"net-{page_size}.ccam"
                with CCAMStore.build(network, path, page_size=page_size) as store:
                    rows.append(
                        [
                            page_size,
                            store.build_info["data_pages"],
                            store.build_info["clustering_quality"] * 100,
                            _mean_page_reads(store, queries),
                        ]
                    )
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        record_table(
            "ablation_ccam_pagesize",
            format_table(
                ["page size", "data pages", "intra-page edges %", "reads/query"],
                rows,
                title="E-A1: CCAM page size vs physical page reads "
                f"(cold cache, {len(queries)} singleFP queries)",
            ),
        )
        reads = {row[0]: row[3] for row in rows}
        assert reads[4096] < reads[512]

    def test_strategy_sweep(
        self, benchmark, network, queries, tmp_path_factory, record_table
    ):
        tmp = tmp_path_factory.mktemp("ccam-strategy")

        def sweep():
            rows = []
            for strategy in ("hilbert", "connectivity"):
                path = tmp / f"net-{strategy}.ccam"
                with CCAMStore.build(network, path, strategy=strategy) as store:
                    rows.append(
                        [
                            strategy,
                            store.build_info["clustering_quality"] * 100,
                            _mean_page_reads(store, queries),
                        ]
                    )
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        record_table(
            "ablation_ccam_strategy",
            format_table(
                ["packing", "intra-page edges %", "reads/query"],
                rows,
                title="E-A1: packing strategy vs physical page reads",
            ),
        )
        quality = {row[0]: row[1] for row in rows}
        assert quality["connectivity"] >= quality["hilbert"] - 5.0

    def test_buffer_pool_sweep(
        self, benchmark, network, queries, tmp_path_factory, record_table
    ):
        path = tmp_path_factory.mktemp("ccam-buffer") / "net.ccam"
        CCAMStore.build(network, path).close()

        def sweep():
            rows = []
            for buffer_pages in (8, 32, 256):
                with CCAMStore.open(path, buffer_pages=buffer_pages) as store:
                    rows.append(
                        [buffer_pages, _mean_page_reads(store, queries)]
                    )
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        record_table(
            "ablation_ccam_buffer",
            format_table(
                ["buffer pages", "reads/query"],
                rows,
                title="E-A1: buffer pool size vs physical page reads",
            ),
        )
        reads = {row[0]: row[1] for row in rows}
        assert reads[256] <= reads[8]
