"""Machine-readable benchmark artifacts — ``BENCH_<name>.json`` at repo root.

Both standalone benchmark drivers (``bench_kernel.py`` and the ``main()``
mode of ``bench_func_ops.py``) funnel their results through
:func:`emit_bench_json`, so every artifact shares one schema:

.. code-block:: json

    {
      "benchmark": "kernel",
      "schema_version": 1,
      "python": "3.11.7",
      "scale": "small",
      "quick": false,
      "meta": {"...": "free-form driver context"},
      "results": [
        {"name": "add", "ns_per_op": 12345.6, "...": "..."}
      ]
    }

Each entry of ``results`` must carry a ``name`` plus at least one numeric
metric; :func:`validate_payload` enforces this (and CI's smoke mode re-reads
the emitted file through it).
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path
from typing import Any, Mapping, Sequence

#: Repo root — the benchmark artifacts live next to README.md.
REPO_ROOT = Path(__file__).resolve().parent.parent

SCHEMA_VERSION = 1

#: The tracked benchmark trajectory: every driver that emits a
#: ``BENCH_<name>.json`` artifact at the repo root registers its name here,
#: so ``python benchmarks/emit_json.py`` (no arguments) validates the whole
#: set and CI catches a driver that silently stopped emitting.
KNOWN_BENCHMARKS = (
    "kernel",
    "func_ops",
    "serve",
    "precompute",
    "profile",
    "batch",
    "shard",
    "overlay",
    "updates",
)

_REQUIRED_TOP_KEYS = ("benchmark", "schema_version", "python", "results")


class BenchSchemaError(ValueError):
    """The payload does not match the BENCH_*.json schema."""


def validate_payload(payload: Mapping[str, Any]) -> None:
    """Raise :class:`BenchSchemaError` unless ``payload`` is a valid artifact."""
    for key in _REQUIRED_TOP_KEYS:
        if key not in payload:
            raise BenchSchemaError(f"missing top-level key {key!r}")
    if payload["schema_version"] != SCHEMA_VERSION:
        raise BenchSchemaError(
            f"schema_version {payload['schema_version']!r} != {SCHEMA_VERSION}"
        )
    results = payload["results"]
    if not isinstance(results, list) or not results:
        raise BenchSchemaError("results must be a non-empty list")
    for i, row in enumerate(results):
        if not isinstance(row, dict):
            raise BenchSchemaError(f"results[{i}] is not an object")
        name = row.get("name")
        if not isinstance(name, str) or not name:
            raise BenchSchemaError(f"results[{i}] has no non-empty 'name'")
        metrics = [
            k
            for k, v in row.items()
            if k != "name" and isinstance(v, (int, float)) and not isinstance(v, bool)
        ]
        if not metrics:
            raise BenchSchemaError(
                f"results[{i}] ({name!r}) carries no numeric metric"
            )


def emit_bench_json(
    name: str,
    results: Sequence[Mapping[str, Any]],
    *,
    scale: str | None = None,
    quick: bool = False,
    meta: Mapping[str, Any] | None = None,
) -> Path:
    """Validate and write ``BENCH_<name>.json`` at the repo root; return its path."""
    payload: dict[str, Any] = {
        "benchmark": name,
        "schema_version": SCHEMA_VERSION,
        "python": platform.python_version(),
        "quick": quick,
        "results": [dict(row) for row in results],
    }
    if scale is not None:
        payload["scale"] = scale
    if meta:
        payload["meta"] = dict(meta)
    validate_payload(payload)
    path = REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def check_file(path: Path) -> None:
    """Re-read an emitted artifact and validate it (CI smoke assertion)."""
    validate_payload(json.loads(path.read_text()))


def trajectory(root: Path = REPO_ROOT) -> dict[str, dict]:
    """Load every known ``BENCH_*.json`` present at ``root``, validated.

    Returns ``{benchmark_name: payload}`` for the artifacts that exist —
    the tracked benchmark trajectory in one structure.
    """
    found: dict[str, dict] = {}
    for name in KNOWN_BENCHMARKS:
        path = root / f"BENCH_{name}.json"
        if path.exists():
            payload = json.loads(path.read_text())
            validate_payload(payload)
            found[name] = payload
    return found


def main(argv: list[str]) -> int:
    if argv:
        for arg in argv:
            check_file(Path(arg))
            print(f"{arg}: ok")
        return 0
    found = trajectory()
    for name, payload in found.items():
        print(
            f"BENCH_{name}.json: ok "
            f"({len(payload['results'])} results, "
            f"quick={payload.get('quick', False)})"
        )
    missing = [n for n in KNOWN_BENCHMARKS if n not in found]
    if missing:
        print(f"missing artifacts: {', '.join(sorted(missing))}")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main(sys.argv[1:]))
