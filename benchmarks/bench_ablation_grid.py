"""E-A2 — ablation: boundary-estimator grid resolution.

The paper does not report the space-partitioning resolution behind its
boundary-node estimator.  This ablation sweeps the grid from 2×2 to 12×12
and reports (a) precomputation cost (number of boundary nodes — each cell
costs two multi-source Dijkstras), (b) mean estimate tightness relative to
the true travel time, and (c) mean expanded paths for singleFP queries.

Expected shape: finer grids give tighter bounds and fewer expansions, with
diminishing returns once cells shrink below typical query distances.
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro.analysis.experiments import bench_queries
from repro.analysis.report import format_table
from repro.core.astar import fixed_departure_query
from repro.core.engine import IntAllFastestPaths
from repro.estimators.boundary import BoundaryNodeEstimator
from repro.estimators.naive import NaiveEstimator
from repro.workloads.queries import distance_band_queries, morning_rush_interval

GRIDS = [2, 4, 6, 8, 12]


@pytest.fixture(scope="module")
def queries(medium_network):
    interval = morning_rush_interval(1.0)
    count = bench_queries(default=5)
    return distance_band_queries(
        medium_network, [(2.0, 4.0)], count, interval, seed=23
    )[(2.0, 4.0)]


def _tightness(network, estimator, queries) -> float:
    """Mean bound/actual ratio at the interval start (1.0 = perfect)."""
    ratios = []
    for q in queries:
        estimator.prepare(q.target)
        actual = fixed_departure_query(
            network, q.source, q.target, q.interval.start
        ).travel_time
        ratios.append(estimator.bound(q.source) / actual)
    return statistics.fmean(ratios)


class TestGridAblation:
    def test_grid_sweep(self, benchmark, medium_network, queries, record_table):
        def sweep():
            rows = []
            naive = NaiveEstimator(medium_network)
            rows.append(
                [
                    "naive",
                    0,
                    _tightness(medium_network, naive, queries),
                    _mean_expanded(medium_network, naive, queries),
                    0.0,
                ]
            )
            for g in GRIDS:
                start = time.perf_counter()
                est = BoundaryNodeEstimator(medium_network, g, g)
                precompute = time.perf_counter() - start
                boundary_nodes = sum(
                    len(c.boundary) for c in est.grid.cells()
                )
                rows.append(
                    [
                        f"{g}x{g}",
                        boundary_nodes,
                        _tightness(medium_network, est, queries),
                        _mean_expanded(medium_network, est, queries),
                        precompute,
                    ]
                )
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        record_table(
            "ablation_grid",
            format_table(
                [
                    "grid",
                    "boundary nodes",
                    "bound/actual",
                    "expanded/query",
                    "precompute (s)",
                ],
                rows,
                title=f"E-A2: boundary grid resolution ({len(queries)} "
                "singleFP queries, d_euc 2-4 mi)",
            ),
        )
        by_grid = {row[0]: row for row in rows}
        # Any boundary grid must beat or match the naive baseline, and the
        # tightness ratio can never exceed 1 (admissibility).
        for row in rows:
            assert row[2] <= 1.0 + 1e-9
        finest = by_grid[f"{GRIDS[-1]}x{GRIDS[-1]}"]
        assert finest[3] <= by_grid["naive"][3] * 1.10


def _mean_expanded(network, estimator, queries) -> float:
    engine = IntAllFastestPaths(network, estimator)
    return statistics.fmean(
        engine.single_fastest_path(
            q.source, q.target, q.interval
        ).stats.expanded_paths
        for q in queries
    )
