"""Shared infrastructure for the benchmark suite.

Every module regenerates one artifact of the paper's evaluation (see the
experiment index in DESIGN.md).  Paper-style tables are printed to stdout
(run with ``pytest benchmarks/ --benchmark-only -s`` to watch them live) and
written to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can cite them.

Scale knobs (environment variables):

* ``REPRO_BENCH_SCALE``  — ``small`` / ``medium`` (default) / ``paper``.
* ``REPRO_BENCH_QUERIES`` — queries per configuration (paper: 100).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def record_table():
    """Print a report table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        print(f"\n{text}\n", file=sys.stderr)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _record


@pytest.fixture(scope="session")
def medium_network():
    """The shared benchmark network at the active scale."""
    from repro.analysis.experiments import bench_network

    return bench_network()


@pytest.fixture(scope="session")
def constant_network():
    """Same topology, constant speed-limit patterns (Table 1 baseline)."""
    from repro.analysis.experiments import bench_network

    return bench_network(constant_speed=True)
