"""Estimator precompute benchmark — writes ``BENCH_precompute.json``.

Measures the three claims of the precompute subsystem on one seeded metro
network:

* **parallel fan-out** — wall-clock of the per-cell Dijkstra precompute:
  the legacy serial dict-of-dict implementation, the array-backed serial
  path, and the ``multiprocessing`` pool at several worker counts and grid
  sizes (speedups depend on the machine's core count, reported in meta);
* **snapshot warm-start** — cold estimator construction (full precompute)
  vs warm construction from a saved snapshot (fingerprint check + array
  reads only), plus the same comparison for a full ``AllFPService`` boot;
* **hot-path cost** — a ``bound()`` microbenchmark of the flat-array
  stores against the legacy dict-of-dict stores on identical queries.

Usage::

    PYTHONPATH=src python benchmarks/bench_precompute.py [--quick]
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from emit_json import emit_bench_json

from repro.estimators.boundary import BoundaryNodeEstimator
from repro.func import kernel
from repro.network.generator import MetroConfig, make_metro_network
from repro.serve import AllFPService


def time_construct(factory, repeat: int) -> float:
    """Best-of-``repeat`` wall-clock seconds to run ``factory()``."""
    best = float("inf")
    for _ in range(repeat):
        started = time.perf_counter()
        factory()
        best = min(best, time.perf_counter() - started)
    return best


def bench_bound(estimator, node_ids, targets, loops: int) -> float:
    """ns per ``bound()`` call over a fixed node/target sweep."""
    calls = 0
    started = time.perf_counter()
    for _ in range(loops):
        for target in targets:
            estimator.prepare(target)
            bound = estimator.bound
            for node in node_ids:
                bound(node)
            calls += len(node_ids)
    elapsed = time.perf_counter() - started
    return elapsed / calls * 1e9


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke sizing")
    args = parser.parse_args(argv)

    if args.quick:
        net_cfg = MetroConfig(width=12, height=12, seed=7)
        grids = (4,)
        worker_counts = (2,)
        repeat, bound_loops = 1, 3
    else:
        net_cfg = MetroConfig(width=24, height=24, seed=7)
        grids = (6, 8)
        worker_counts = (2, 4)
        repeat, bound_loops = 3, 10

    network = make_metro_network(net_cfg)
    print(
        f"network: {network.node_count} nodes, {network.edge_count} edges; "
        f"cpu_count={os.cpu_count()}"
    )

    results = []
    snap_tmp = tempfile.TemporaryDirectory(prefix="repro-bench-snap-")
    snap_dir = Path(snap_tmp.name)

    serial_by_grid: dict[int, float] = {}
    parallel_best: dict[int, float] = {}
    snapshot_speedups: list[float] = []
    for grid in grids:
        legacy_s = time_construct(
            lambda: BoundaryNodeEstimator(network, grid, grid, backend="dict"),
            repeat,
        )
        serial_s = time_construct(
            lambda: BoundaryNodeEstimator(network, grid, grid), repeat
        )
        serial_by_grid[grid] = serial_s
        results.append(
            {
                "name": f"precompute_legacy_dict_grid{grid}",
                "grid": grid,
                "seconds": legacy_s,
            }
        )
        results.append(
            {
                "name": f"precompute_array_serial_grid{grid}",
                "grid": grid,
                "seconds": serial_s,
                "speedup_vs_legacy": legacy_s / serial_s,
            }
        )
        print(
            f"  grid {grid}x{grid}: legacy {legacy_s*1e3:8.1f} ms  "
            f"array-serial {serial_s*1e3:8.1f} ms "
            f"({legacy_s/serial_s:.2f}x)"
        )
        for workers in worker_counts:
            par_s = time_construct(
                lambda: BoundaryNodeEstimator(
                    network, grid, grid, workers=workers
                ),
                repeat,
            )
            parallel_best[grid] = min(
                parallel_best.get(grid, float("inf")), par_s
            )
            results.append(
                {
                    "name": f"precompute_array_workers{workers}_grid{grid}",
                    "grid": grid,
                    "workers": workers,
                    "seconds": par_s,
                    "speedup_vs_serial": serial_s / par_s,
                }
            )
            print(
                f"    workers={workers}: {par_s*1e3:8.1f} ms "
                f"({serial_s/par_s:.2f}x vs serial)"
            )

        snap_path = snap_dir / f"bench_grid{grid}.est"
        BoundaryNodeEstimator(network, grid, grid).save_snapshot(snap_path)
        warm_s = time_construct(
            lambda: BoundaryNodeEstimator.from_snapshot(network, snap_path),
            repeat,
        )
        snapshot_speedups.append(serial_s / warm_s)
        results.append(
            {
                "name": f"snapshot_warm_construct_grid{grid}",
                "grid": grid,
                "seconds": warm_s,
                "speedup_vs_cold": serial_s / warm_s,
            }
        )
        print(
            f"    snapshot-warm construct: {warm_s*1e3:8.1f} ms "
            f"({serial_s/warm_s:.1f}x vs cold)"
        )

    # Cold vs snapshot-warm service boot (estimator build + AllFPService).
    boot_grid = grids[-1]
    boot_snap = snap_dir / f"bench_grid{boot_grid}.est"

    def boot(warm: bool) -> None:
        estimator = (
            BoundaryNodeEstimator.from_snapshot(network, boot_snap)
            if warm
            else BoundaryNodeEstimator(network, boot_grid, boot_grid)
        )
        AllFPService(network, estimator).close()

    boot_cold = time_construct(lambda: boot(False), repeat)
    boot_warm = time_construct(lambda: boot(True), repeat)
    results.append(
        {"name": "serve_boot_cold", "grid": boot_grid, "seconds": boot_cold}
    )
    results.append(
        {
            "name": "serve_boot_warm",
            "grid": boot_grid,
            "seconds": boot_warm,
            "speedup_vs_cold": boot_cold / boot_warm,
        }
    )
    print(
        f"  serve boot: cold {boot_cold*1e3:8.1f} ms  "
        f"warm {boot_warm*1e3:8.1f} ms ({boot_cold/boot_warm:.1f}x)"
    )

    # bound() hot-path microbenchmark: flat arrays vs legacy dicts.
    bound_grid = grids[-1]
    node_ids = list(network.node_ids())
    targets = node_ids[:: max(1, len(node_ids) // 8)][:8]
    array_est = BoundaryNodeEstimator(network, bound_grid, bound_grid)
    dict_est = BoundaryNodeEstimator(
        network, bound_grid, bound_grid, backend="dict"
    )
    ns_array = bench_bound(array_est, node_ids, targets, bound_loops)
    ns_dict = bench_bound(dict_est, node_ids, targets, bound_loops)
    results.append(
        {
            "name": "bound_array",
            "grid": bound_grid,
            "ns_per_call": ns_array,
            "speedup_vs_dict": ns_dict / ns_array,
        }
    )
    results.append(
        {"name": "bound_dict", "grid": bound_grid, "ns_per_call": ns_dict}
    )
    print(
        f"  bound(): array {ns_array:7.0f} ns/call  dict {ns_dict:7.0f} "
        f"ns/call ({ns_dict/ns_array:.2f}x)"
    )

    top_grid = grids[-1]
    meta = {
        "nodes": network.node_count,
        "edges": network.edge_count,
        "cpu_count": os.cpu_count() or 1,
        "grids": list(grids),
        "worker_counts": list(worker_counts),
        "speedup_parallel_vs_serial": serial_by_grid[top_grid]
        / parallel_best[top_grid],
        "speedup_snapshot_vs_cold": min(snapshot_speedups),
        "speedup_serve_boot_warm_vs_cold": boot_cold / boot_warm,
        "bound_speedup_array_vs_dict": ns_dict / ns_array,
        "kernel_backend": kernel.active_backend(),
    }
    path = emit_bench_json(
        "precompute",
        results,
        scale="quick" if args.quick else "small",
        quick=args.quick,
        meta=meta,
    )
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
