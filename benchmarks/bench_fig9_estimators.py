"""E-F9a / E-F9b — Figure 9: effect of the lower-bound estimator.

The paper poses 100 queries per configuration over a 3-hour morning-rush
leaving interval, varying the source/target Euclidean distance from 1 to 8
miles, and reports the number of expanded nodes for the naive estimator
(naiveLB) and the boundary-node estimator (bdLB), for both the singleFP (9a)
and the allFP (9b) query.

Expected shape (paper): bdLB expands fewer nodes than naiveLB at every
distance, and the gap widens as the distance grows.

Every test here uses the ``benchmark`` fixture so the whole module runs
under ``pytest benchmarks/ --benchmark-only``; the sweep tests time the full
experiment once and then assert the paper's qualitative shape and emit the
paper-style table.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    bench_queries,
    default_bands,
    fig9_experiment,
)
from repro.analysis.report import format_table
from repro.core.engine import IntAllFastestPaths
from repro.estimators.boundary import BoundaryNodeEstimator
from repro.estimators.naive import NaiveEstimator
from repro.workloads.queries import distance_band_queries, morning_rush_interval


@pytest.fixture(scope="module")
def estimators(medium_network):
    return {
        "naiveLB": NaiveEstimator(medium_network),
        "bdLB": BoundaryNodeEstimator(medium_network, 6, 6),
    }


def _report(rows, which, record_table):
    bands = sorted({r.band for r in rows})
    table_rows = []
    for band in bands:
        naive = next(r for r in rows if r.band == band and r.estimator == "naiveLB")
        bd = next(r for r in rows if r.band == band and r.estimator == "bdLB")
        table_rows.append(
            [
                f"{band[0]:g}-{band[1]:g}",
                naive.mean_expanded,
                bd.mean_expanded,
                naive.mean_expanded / bd.mean_expanded if bd.mean_expanded else 1.0,
            ]
        )
    record_table(
        f"fig9_{which}",
        format_table(
            ["d_euc (mi)", "naiveLB expanded", "bdLB expanded", "naive/bd"],
            table_rows,
            title=f"Figure 9 ({which}): mean expanded paths vs Euclidean distance "
            f"({rows[0].queries} queries/band, 3h rush interval)",
        ),
    )


def _assert_bd_never_worse(rows):
    for band in {r.band for r in rows}:
        naive = next(
            r for r in rows if r.band == band and r.estimator == "naiveLB"
        )
        bd = next(r for r in rows if r.band == band and r.estimator == "bdLB")
        # A tighter bound prunes the search; tiny reorder effects from the
        # changed pop order get 10% slack.
        assert bd.mean_expanded <= naive.mean_expanded * 1.10 + 1e-9


class TestFig9Sweeps:
    def test_fig9a_singlefp_sweep(
        self, benchmark, medium_network, estimators, record_table
    ):
        rows = benchmark.pedantic(
            lambda: fig9_experiment(
                medium_network,
                estimators,
                "singleFP",
                per_band=bench_queries(default=5),
            ),
            rounds=1,
            iterations=1,
        )
        _report(rows, "singleFP", record_table)
        _assert_bd_never_worse(rows)
        naive = sorted(
            (r for r in rows if r.estimator == "naiveLB"), key=lambda r: r.band
        )
        if naive[0].queries >= 5:
            # The growth-with-distance trend needs a non-trivial sample.
            assert naive[-1].mean_expanded > naive[0].mean_expanded

    def test_fig9b_allfp_sweep(
        self, benchmark, medium_network, estimators, record_table
    ):
        rows = benchmark.pedantic(
            lambda: fig9_experiment(
                medium_network,
                estimators,
                "allFP",
                per_band=bench_queries(default=5),
            ),
            rounds=1,
            iterations=1,
        )
        _report(rows, "allFP", record_table)
        _assert_bd_never_worse(rows)


class TestFig9Timing:
    """Per-query timing at a representative mid-distance band."""

    @pytest.fixture(scope="class")
    def query(self, medium_network):
        bands = default_bands()
        mid = bands[len(bands) // 2]
        interval = morning_rush_interval(3.0)
        return distance_band_queries(
            medium_network, [mid], 1, interval, seed=33
        )[mid][0]

    @pytest.mark.parametrize("estimator_name", ["naiveLB", "bdLB"])
    @pytest.mark.parametrize("mode", ["singleFP", "allFP"])
    def test_query_timing(
        self, benchmark, medium_network, estimators, query, estimator_name, mode
    ):
        engine = IntAllFastestPaths(medium_network, estimators[estimator_name])
        run = (
            engine.single_fastest_path
            if mode == "singleFP"
            else engine.all_fastest_paths
        )
        result = benchmark.pedantic(
            lambda: run(query.source, query.target, query.interval),
            rounds=3,
            iterations=1,
        )
        assert result.stats.expanded_paths > 0
