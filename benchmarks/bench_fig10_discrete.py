"""E-F10a / E-F10b — Figure 10: CapeCod vs the discrete-time model.

The paper poses 100 singleFP queries with a 2-hour rush-hour leaving
interval and source/target Euclidean distance around 7–8 miles, answers each
with the continuous (CapeCod) engine once and with the discrete-time model
at discretizations of 1 hour, 10 minutes, 1 minute, and 10 seconds, and
reports two ratios (discrete / CapeCod):

* Figure 10(a) — travel time (accuracy): ≈1.27 at 1 h, ≈1.21 at 10 min,
  approaching 1 as the grid refines.
* Figure 10(b) — query time (cost): below 1 at 1 h, ≈5 at 10 min, growing
  to ≈200 at 10 s.

Expected shape: the travel-time ratio is monotonically nonincreasing in the
refinement while the query-time ratio grows by orders of magnitude, crossing
1 between the 1-hour and 10-minute grids.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import bench_queries, bench_scale, fig10_experiment
from repro.analysis.report import format_table
from repro.core.discrete import DiscreteTimeModel
from repro.core.engine import IntAllFastestPaths
from repro.workloads.queries import distance_band_queries, morning_rush_interval

#: The paper's four discretization steps, in minutes.
PAPER_STEPS = [60.0, 10.0, 1.0, 1.0 / 6.0]


def _distance_band() -> tuple[float, float]:
    # The paper uses 7-8 miles; the small scale's map cannot hold that.
    return (2.0, 3.0) if bench_scale() == "small" else (7.0, 8.0)


class TestFig10Sweep:
    def test_fig10_sweep(self, benchmark, medium_network, record_table):
        lo, hi = _distance_band()
        rows = benchmark.pedantic(
            lambda: fig10_experiment(
                medium_network,
                steps_minutes=PAPER_STEPS,
                count=bench_queries(default=4),
                min_distance=lo,
                max_distance=hi,
            ),
            rounds=1,
            iterations=1,
        )
        record_table(
            "fig10",
            format_table(
                [
                    "step",
                    "travel ratio (10a)",
                    "query-time ratio (10b)",
                ],
                [
                    [
                        "1 hour" if r.step_minutes == 60
                        else "10 min" if r.step_minutes == 10
                        else "1 min" if r.step_minutes == 1
                        else "10 sec",
                        r.travel_time_ratio,
                        r.query_time_ratio,
                    ]
                    for r in rows
                ],
                title=(
                    "Figure 10: Discrete-time / CapeCod ratios "
                    f"({rows[0].queries} queries, [8:00, 9:55] rush window, "
                    f"d_euc {lo:g}-{hi:g} mi)"
                ),
            ),
        )
        # 10(a): discrete can never beat the exact optimum, and refining the
        # grid never hurts accuracy.
        for row in rows:
            assert row.travel_time_ratio >= 1.0 - 1e-9
        ratios = [r.travel_time_ratio for r in rows]
        assert all(a >= b - 1e-6 for a, b in zip(ratios, ratios[1:]))
        # 10(b): cost grows by orders of magnitude with refinement, and the
        # finest grid is dramatically slower than the continuous engine.
        costs = [r.query_time_ratio for r in rows]
        assert costs[-1] > costs[0]
        assert costs[-1] > 10.0


class TestFig10Timing:
    """Raw per-query timings underlying the 10(b) ratio."""

    @pytest.fixture(scope="class")
    def query(self, medium_network):
        band = _distance_band()
        interval = morning_rush_interval(2.0)
        return distance_band_queries(
            medium_network, [band], 1, interval, seed=44
        )[band][0]

    def test_capecod_singlefp(self, benchmark, medium_network, query):
        engine = IntAllFastestPaths(medium_network)
        benchmark.pedantic(
            lambda: engine.single_fastest_path(
                query.source, query.target, query.interval
            ),
            rounds=3,
            iterations=1,
        )

    @pytest.mark.parametrize("step", [60.0, 10.0, 1.0])
    def test_discrete_singlefp(self, benchmark, medium_network, query, step):
        model = DiscreteTimeModel(medium_network)
        result = benchmark.pedantic(
            lambda: model.single_fastest_path(
                query.source, query.target, query.interval, step
            ),
            rounds=1,
            iterations=1,
        )
        assert result.travel_time > 0
