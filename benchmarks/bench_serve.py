"""Service throughput/tail-latency benchmark — writes ``BENCH_serve.json``.

Replays one fixed fig9-style request stream (distance-banded random
queries over the morning-rush interval, each unique query repeated a few
times, seeded shuffle — popular queries repeat, as online traffic does)
against two service configurations:

* ``cold``    — result cache off, coalescing off, fresh edge cache: every
  request pays a full engine run (the single-flight-off baseline).
* ``warm``    — coalescing + result cache on, caches pre-warmed with one
  pass over the unique queries: repeats are served from the cache and
  concurrent duplicates share one computation.

Each configuration runs closed-loop at 1/4/16 concurrent clients and
reports throughput and p50/p95/p99 latency; ``meta.speedup_warm_vs_cold``
is the headline ratio at the highest client count.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py [--quick]
"""

from __future__ import annotations

import argparse
import random
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from emit_json import emit_bench_json

from repro.func import kernel
from repro.network.generator import MetroConfig, make_metro_network
from repro.serve import (
    AllFPService,
    InProcessClient,
    ServiceConfig,
    run_closed_loop,
)
from repro.workloads.queries import distance_band_queries, morning_rush_interval


def build_request_stream(network, bands, per_band, repeats, seed):
    """Unique fig9-band queries, each repeated ``repeats`` times, shuffled."""
    interval = morning_rush_interval(2.0)
    by_band = distance_band_queries(network, bands, per_band, interval, seed=seed)
    unique = [spec for specs in by_band.values() for spec in specs]
    stream = unique * repeats
    random.Random(seed + 1).shuffle(stream)
    return unique, stream


def run_config(network, stream, unique, clients, warm):
    config = ServiceConfig(
        workers=max(2, clients),
        max_pending=max(64, clients * 4),
        coalesce=warm,
        cache_results=warm,
        default_deadline=None,
    )
    service = AllFPService(network, config=config)
    client = InProcessClient(service)
    try:
        if warm:
            for spec in unique:  # one warmup pass fills both caches
                client.query(spec)
        report = run_closed_loop(lambda s: client.query(s), stream, clients)
        stats = service.stats()
        summary = report.as_dict()
        if summary["errors"]:
            raise RuntimeError(f"load run had errors: {summary['errors']}")
        return {
            "name": f"{'warm' if warm else 'cold'}_clients{clients}",
            "clients": clients,
            "requests": summary["requests"],
            "throughput_qps": summary["throughput_qps"],
            "p50_ms": summary["p50_ms"],
            "p95_ms": summary["p95_ms"],
            "p99_ms": summary["p99_ms"],
            "engine_runs": int(stats["engine_runs"]),
            "coalesced": stats["single_flight"]["coalesced"],
            "result_cache_hits": stats["result_cache"]["hits"],
            "edge_cache_hits": stats["edge_cache"]["hits"],
        }
    finally:
        service.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke sizing")
    args = parser.parse_args(argv)

    if args.quick:
        net_cfg = MetroConfig(width=12, height=12, seed=9)
        bands = [(0.5, 1.5)]
        per_band, repeats = 3, 3
        client_counts = (1, 4)
    else:
        net_cfg = MetroConfig(width=20, height=20, seed=9)
        bands = [(1.0, 2.0), (2.0, 3.0)]
        per_band, repeats = 5, 4
        client_counts = (1, 4, 16)

    network = make_metro_network(net_cfg)
    unique, stream = build_request_stream(network, bands, per_band, repeats, seed=42)
    print(
        f"network: {network.node_count} nodes; stream: {len(stream)} requests "
        f"({len(unique)} unique x {repeats})"
    )

    results = []
    for clients in client_counts:
        for warm in (False, True):
            row = run_config(network, stream, unique, clients, warm)
            results.append(row)
            print(
                f"  {row['name']:>16}: {row['throughput_qps']:8.1f} qps  "
                f"p50 {row['p50_ms']:7.2f} ms  p99 {row['p99_ms']:7.2f} ms  "
                f"engine runs {row['engine_runs']}"
            )

    top = client_counts[-1]
    cold = next(r for r in results if r["name"] == f"cold_clients{top}")
    warm = next(r for r in results if r["name"] == f"warm_clients{top}")
    speedup = warm["throughput_qps"] / cold["throughput_qps"]
    print(f"warm vs cold at {top} clients: {speedup:.1f}x throughput")

    path = emit_bench_json(
        "serve",
        results,
        scale="quick" if args.quick else "small",
        quick=args.quick,
        meta={
            "nodes": network.node_count,
            "unique_queries": len(unique),
            "stream_requests": len(stream),
            "repeats": repeats,
            "speedup_warm_vs_cold": speedup,
            "speedup_at_clients": top,
            "kernel_backend": kernel.active_backend(),
        },
    )
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
