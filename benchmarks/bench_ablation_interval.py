"""E-A3 — ablation: leaving-interval length vs query cost and answer size.

The time-interval dimension is the paper's core novelty, so this ablation
measures how the allFP query scales with it: interval lengths from 15
minutes to 6 hours (anchored at 7:00, spanning the whole morning rush at the
long end), reporting mean expanded paths, answer sub-intervals, and distinct
fastest paths.

Expected shape: longer intervals cross more speed-pattern breakpoints, so
both the search cost and the number of answer pieces grow; an interval fully
inside one constant-speed regime yields a single piece.
"""

from __future__ import annotations

import statistics

import pytest

from repro.analysis.experiments import bench_queries
from repro.analysis.report import format_table
from repro.core.engine import IntAllFastestPaths
from repro.timeutil import TimeInterval, hours, parse_clock
from repro.workloads.queries import distance_band_queries

LENGTHS_HOURS = [0.25, 1.0, 2.0, 3.0, 6.0]


@pytest.fixture(scope="module")
def endpoints(medium_network):
    interval = TimeInterval(parse_clock("7:00"), parse_clock("8:00"))
    count = bench_queries(default=5)
    return [
        (q.source, q.target)
        for q in distance_band_queries(
            medium_network, [(2.0, 4.0)], count, interval, seed=29
        )[(2.0, 4.0)]
    ]


class TestIntervalAblation:
    def test_interval_sweep(
        self, benchmark, medium_network, endpoints, record_table
    ):
        engine = IntAllFastestPaths(medium_network)

        def sweep():
            rows = []
            for length in LENGTHS_HOURS:
                interval = TimeInterval(
                    parse_clock("7:00"), parse_clock("7:00") + hours(length)
                )
                expanded, pieces, paths = [], [], []
                for source, target in endpoints:
                    result = engine.all_fastest_paths(source, target, interval)
                    expanded.append(result.stats.expanded_paths)
                    pieces.append(len(result.entries))
                    paths.append(len(result.distinct_paths))
                rows.append(
                    [
                        f"{length:g} h",
                        statistics.fmean(expanded),
                        statistics.fmean(pieces),
                        statistics.fmean(paths),
                    ]
                )
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        record_table(
            "ablation_interval",
            format_table(
                [
                    "interval",
                    "expanded/query",
                    "answer pieces",
                    "distinct paths",
                ],
                rows,
                title=f"E-A3: leaving-interval length ({len(endpoints)} allFP "
                "queries, anchored at 7:00)",
            ),
        )
        # Longer windows cannot shrink the answer or the work.
        assert rows[-1][1] >= rows[0][1] - 1e-9
        assert rows[-1][2] >= rows[0][2] - 1e-9

    def test_instant_interval_fast(self, benchmark, medium_network, endpoints):
        """Degenerate instant queries are the cheap special case."""
        engine = IntAllFastestPaths(medium_network)
        source, target = endpoints[0]
        instant = TimeInterval(parse_clock("7:30"), parse_clock("7:30"))
        result = benchmark.pedantic(
            lambda: engine.all_fastest_paths(source, target, instant),
            rounds=3,
            iterations=1,
        )
        assert len(result.entries) == 1
