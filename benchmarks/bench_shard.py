"""Sharded serve-tier benchmark — writes ``BENCH_shard.json``.

Replays one fixed fig9-style request stream (seeded distance-banded
queries, repeats, shuffle — same generator as ``bench_serve.py``) against
:class:`repro.shard.ShardedService` at 1, 2, and 4 shards, closed-loop
and open-loop (Poisson arrivals), all with the cold service configuration
(result cache off, coalescing off) so every request pays an engine run
and the shard count is the only variable.

Three guarantees are checked while measuring:

* **correctness** — every 2-shard answer equals the single-process
  ``AllFPService`` answer for the same query (canonical comparison from
  the chaos harness, which strips execution stats and rounds floats);
* **scaling** — on a multi-core host, cold throughput at 2+ shards must
  beat 1 shard.  On a single-core host (CI containers) the numbers are
  recorded honestly and the assertion is skipped — ``meta.cpu_count``
  says which regime produced the artifact;
* **memory** — booting 2 shards from one shared-memory segment must cost
  sub-linear private RSS versus 2 shards that each copy the estimator
  tables (``tables_rss_delta_kb`` per worker, from ``meminfo``).

Usage::

    PYTHONPATH=src python benchmarks/bench_shard.py [--quick]
"""

from __future__ import annotations

import argparse
import os
import random
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from emit_json import emit_bench_json

from repro.estimators.boundary import BoundaryNodeEstimator
from repro.func import kernel
from repro.network.generator import MetroConfig, make_metro_network
from repro.serve import AllFPService, InProcessClient, ServiceConfig
from repro.serve.chaos import _canonical
from repro.serve.client import run_closed_loop, run_open_loop
from repro.shard import ShardedService
from repro.workloads.queries import (
    distance_band_queries,
    morning_rush_interval,
    poisson_arrivals,
)


def build_request_stream(network, bands, per_band, repeats, seed):
    interval = morning_rush_interval(2.0)
    by_band = distance_band_queries(network, bands, per_band, interval, seed=seed)
    unique = [spec for specs in by_band.values() for spec in specs]
    stream = unique * repeats
    random.Random(seed + 1).shuffle(stream)
    return unique, stream


def cold_config(clients: int) -> ServiceConfig:
    return ServiceConfig(
        workers=max(2, clients),
        max_pending=max(64, clients * 4),
        coalesce=False,
        cache_results=False,
        default_deadline=None,
    )


def verify_parity(network, estimator, unique, shards=2) -> int:
    """Every sharded answer must equal the single-process answer."""
    single = AllFPService(network, estimator, config=cold_config(2))
    mismatches = 0
    try:
        with ShardedService(
            network, estimator, cold_config(2), shards=shards
        ) as tier:
            single_client = InProcessClient(single)
            tier_client = InProcessClient(tier)
            for spec in unique:
                a = _canonical(single_client.query(spec).result)
                b = _canonical(tier_client.query(spec).result)
                if a != b:
                    mismatches += 1
                    print(
                        f"  MISMATCH {spec.source}->{spec.target}", file=sys.stderr
                    )
    finally:
        single.close()
    return mismatches


def run_shard_config(network, estimator, stream, shards, clients, arrivals,
                     rate_qps, seed):
    """One closed- or open-loop run against an N-shard tier."""
    with ShardedService(
        network, estimator, cold_config(clients), shards=shards
    ) as tier:
        client = InProcessClient(tier)
        if arrivals == "closed":
            report = run_closed_loop(lambda s: client.query(s), stream, clients)
        else:
            duration = len(stream) / rate_qps
            offsets = poisson_arrivals(rate_qps, duration, seed=seed)
            report = run_open_loop(lambda s: client.query(s), stream, offsets)
        stats = tier.stats()
        summary = report.as_dict()
        if summary["errors"]:
            raise RuntimeError(f"load run had errors: {summary['errors']}")
        engine_runs = sum(
            int(s["engine_runs"])
            for s in stats["per_shard"].values()
            if s is not None
        )
        return {
            "name": f"{arrivals}_shards{shards}_clients{clients}",
            "shards": shards,
            "clients": clients,
            "arrivals": arrivals,
            "requests": summary["requests"],
            "throughput_qps": summary["throughput_qps"],
            "p50_ms": summary["p50_ms"],
            "p95_ms": summary["p95_ms"],
            "p99_ms": summary["p99_ms"],
            "engine_runs": engine_runs,
            "shards_alive": stats["alive"],
        }


def measure_rss(network, estimator, shards=2) -> dict:
    """Per-worker private RSS of adopting shared tables vs copying them.

    ``tables_rss_delta_kb`` is measured inside each worker around
    estimator construction: with the shared-memory transport the cell
    matrix stays in the shared segment, with ``copy_tables=True`` every
    worker materialises a private copy.  Sub-linear shared cost is the
    point of the zero-copy load path.
    """
    deltas = {}
    for mode, copy in (("shm", False), ("copy", True)):
        with ShardedService(
            network, estimator, cold_config(2), shards=shards, copy_tables=copy
        ) as tier:
            info = tier.meminfo()
            per_worker = [
                reply["tables_rss_delta_kb"]
                for reply in info.values()
                if reply is not None
            ]
            modes = sorted(
                {
                    reply["tables_mode"]
                    for reply in info.values()
                    if reply is not None
                }
            )
            deltas[mode] = {
                "tables_mode": "+".join(modes),
                "per_worker_kb": per_worker,
                "total_kb": sum(per_worker),
            }
    return deltas


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke sizing")
    args = parser.parse_args(argv)

    if args.quick:
        net_cfg = MetroConfig(width=12, height=12, seed=9)
        bands = [(0.5, 1.5)]
        per_band, repeats = 3, 2
        shard_counts = (1, 2)
        clients = 4
        grid = 8
    else:
        net_cfg = MetroConfig(width=20, height=20, seed=9)
        bands = [(1.0, 2.0), (2.0, 3.0)]
        per_band, repeats = 5, 3
        shard_counts = (1, 2, 4)
        clients = 8
        grid = 24

    network = make_metro_network(net_cfg)
    unique, stream = build_request_stream(network, bands, per_band, repeats, seed=42)
    estimator = BoundaryNodeEstimator(network, grid, grid)
    print(
        f"network: {network.node_count} nodes; stream: {len(stream)} requests "
        f"({len(unique)} unique x {repeats}); estimator tables "
        f"{estimator.tables.nbytes / 1e6:.2f} MB (grid {grid}x{grid})"
    )

    mismatches = verify_parity(network, estimator, unique)
    if mismatches:
        print(f"PARITY FAILURE: {mismatches} sharded answers differ", file=sys.stderr)
        return 1
    print(f"parity: all {len(unique)} unique queries match single-process answers")

    results = []
    rate_qps = 0.0
    for arrivals in ("closed", "open"):
        for shards in shard_counts:
            if arrivals == "open" and rate_qps <= 0:
                # pace the open-loop runs at ~70% of 1-shard closed capacity
                base = next(r for r in results if r["shards"] == 1)
                rate_qps = max(1.0, 0.7 * base["throughput_qps"])
            row = run_shard_config(
                network, estimator, stream, shards, clients, arrivals,
                rate_qps, seed=7,
            )
            results.append(row)
            print(
                f"  {row['name']:>24}: {row['throughput_qps']:8.1f} qps  "
                f"p50 {row['p50_ms']:7.2f} ms  p99 {row['p99_ms']:7.2f} ms  "
                f"engine runs {row['engine_runs']}"
            )

    rss = measure_rss(network, estimator)
    shared_kb = rss["shm"]["total_kb"]
    copied_kb = rss["copy"]["total_kb"]
    print(
        f"  tables RSS across 2 workers: shared={shared_kb} kB "
        f"({rss['shm']['tables_mode']}) vs copied={copied_kb} kB "
        f"({rss['copy']['tables_mode']})"
    )
    results.append(
        {
            "name": "rss_tables_shm_2workers",
            "shards": 2,
            "total_kb": shared_kb,
            "per_worker_kb": rss["shm"]["per_worker_kb"],
        }
    )
    results.append(
        {
            "name": "rss_tables_copy_2workers",
            "shards": 2,
            "total_kb": copied_kb,
            "per_worker_kb": rss["copy"]["per_worker_kb"],
        }
    )

    cpu_count = os.cpu_count() or 1
    one = next(r for r in results if r["name"] == f"closed_shards1_clients{clients}")
    top = next(
        r
        for r in results
        if r["name"] == f"closed_shards{shard_counts[-1]}_clients{clients}"
    )
    scaling = top["throughput_qps"] / one["throughput_qps"]
    print(
        f"closed-loop {shard_counts[-1]}-shard vs 1-shard: {scaling:.2f}x "
        f"(cpu_count={cpu_count})"
    )
    if cpu_count > 1 and scaling <= 1.0:
        print(
            "SCALING FAILURE: multi-shard cold throughput did not beat "
            "1 shard on a multi-core host",
            file=sys.stderr,
        )
        return 1
    # Only enforce the sub-linearity gate when the tables are big enough
    # for the copy cost to dominate allocator/interpreter RSS noise
    # (quick mode's ~40 kB tables are not; the full run's 2.7 MB are).
    if estimator.tables.nbytes >= 1 << 20 and shared_kb >= copied_kb:
        print(
            "RSS FAILURE: shared-memory tables cost at least as much "
            "private RSS as per-worker copies",
            file=sys.stderr,
        )
        return 1

    path = emit_bench_json(
        "shard",
        results,
        scale="quick" if args.quick else "small",
        quick=args.quick,
        meta={
            "nodes": network.node_count,
            "unique_queries": len(unique),
            "stream_requests": len(stream),
            "clients": clients,
            "shard_counts": list(shard_counts),
            "open_loop_rate_qps": rate_qps,
            "estimator_grid": grid,
            "tables_bytes": estimator.tables.nbytes,
            "parity_queries": len(unique),
            "scaling_vs_1shard": scaling,
            "cpu_count": cpu_count,
            "kernel_backend": kernel.active_backend(),
        },
    )
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
