"""Profile-search A/B benchmark — writes ``BENCH_profile.json``.

Measures the kernel-native one-to-all profile search (flat-array
``compose``/``merge_min`` per relaxation, functions materialised once at
the end) against the retained legacy object path (``compose_with`` /
``pointwise_minimum`` on function objects), on the two workloads that sit
on it:

* **profile sweep** — ``profile_search`` from several sources over a
  leaving-time interval (the allFP building block and the kNN substrate);
* **shortcut build** — the hierarchy's boundary-to-boundary profile
  searches (``HierarchicalIndex``), whose build time is dominated by the
  profile loop.

Before any timing is reported the two implementations' answers are
compared at sampled leaving instants — a speedup over a wrong answer is
worthless.  The emitted ``meta`` carries the headline speedups CI gates
on (>= 2x).

Usage::

    PYTHONPATH=src python benchmarks/bench_profile.py [--quick]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from emit_json import emit_bench_json

from repro.core.profile import profile_search
from repro.func import kernel
from repro.hierarchy.index import HierarchicalIndex
from repro.network.generator import MetroConfig, make_metro_network
from repro.timeutil import TimeInterval

#: Answers must agree to this absolute tolerance at every sampled instant.
TOL = 1e-6


def sample_points(interval: TimeInterval, n: int = 9) -> list[float]:
    span = interval.end - interval.start
    return [interval.start + span * i / (n - 1) for i in range(n)]


def timed(flag: bool, fn, repeat: int) -> float:
    """Best-of-``repeat`` seconds for ``fn()`` under the given kernel flag."""
    previous = kernel.set_kernel_enabled(flag)
    try:
        best = float("inf")
        for _ in range(repeat):
            started = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - started)
        return best
    finally:
        kernel.set_kernel_enabled(previous)


def check_profiles(fast: dict, slow: dict, points: list[float]) -> int:
    """Assert both answer sets agree at every sample; return checks done."""
    assert set(fast) == set(slow), (
        f"reachable sets differ: {len(fast)} vs {len(slow)} nodes"
    )
    checked = 0
    for node, fn in fast.items():
        other = slow[node]
        for t in points:
            a, b = fn(t), other(t)
            assert abs(a - b) <= TOL, (node, t, a, b)
            checked += 1
    return checked


def check_shortcuts(fast: HierarchicalIndex, slow: HierarchicalIndex, points) -> int:
    assert fast.stats.shortcuts == slow.stats.shortcuts
    checked = 0
    for node in fast.network.node_ids():
        fast_cuts = {s.target: s.profile for s in fast.shortcuts_from(node)}
        slow_cuts = {s.target: s.profile for s in slow.shortcuts_from(node)}
        assert set(fast_cuts) == set(slow_cuts)
        for target, fn in fast_cuts.items():
            other = slow_cuts[target]
            for t in points:
                a, b = fn(t), other(t)
                assert abs(a - b) <= TOL, (node, target, t, a, b)
                checked += 1
    return checked


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke sizing")
    args = parser.parse_args(argv)

    if args.quick:
        net_cfg = MetroConfig(width=10, height=10, seed=5)
        sources = (0, 44, 99)
        hier_cells = 2
        repeat = 1
    else:
        net_cfg = MetroConfig(width=16, height=16, seed=3)
        sources = (0, 85, 140, 255)
        hier_cells = 3
        repeat = 3

    network = make_metro_network(net_cfg)
    interval = TimeInterval.from_clock("7:00", "9:00")
    horizon = TimeInterval.from_clock("5:00", "14:00")
    print(
        f"network: {network.node_count} nodes, {network.edge_count} edges; "
        f"sources={list(sources)}, hierarchy {hier_cells}x{hier_cells}"
    )

    results = []

    # --- profile sweep: answers first, then timings -------------------
    points = sample_points(interval)
    checked = 0
    for source in sources:
        fast = _run_one(True, network, source, interval)
        slow = _run_one(False, network, source, interval)
        checked += check_profiles(fast, slow, points)
    print(f"profile answers identical: {checked} sampled values compared")

    def sweep() -> None:
        for source in sources:
            profile_search(network, source, interval)

    kernel_s = timed(True, sweep, repeat)
    legacy_s = timed(False, sweep, repeat)
    profile_speedup = legacy_s / kernel_s
    results.append(
        {
            "name": "profile_sweep_kernel",
            "sources": len(sources),
            "seconds": kernel_s,
            "speedup_vs_legacy": profile_speedup,
        }
    )
    results.append(
        {"name": "profile_sweep_legacy", "sources": len(sources), "seconds": legacy_s}
    )
    print(
        f"  profile sweep: kernel {kernel_s*1e3:8.1f} ms  "
        f"legacy {legacy_s*1e3:8.1f} ms ({profile_speedup:.2f}x)"
    )

    # --- hierarchy shortcut build -------------------------------------
    fast_index = _build_index(True, network, hier_cells, horizon)
    slow_index = _build_index(False, network, hier_cells, horizon)
    checked = check_shortcuts(fast_index, slow_index, sample_points(horizon, 7))
    print(
        f"shortcut answers identical: {fast_index.stats.shortcuts} shortcuts, "
        f"{checked} sampled values compared"
    )

    build_kernel_s = timed(
        True, lambda: HierarchicalIndex(network, hier_cells, hier_cells, horizon), repeat
    )
    build_legacy_s = timed(
        False, lambda: HierarchicalIndex(network, hier_cells, hier_cells, horizon), repeat
    )
    build_speedup = build_legacy_s / build_kernel_s
    results.append(
        {
            "name": "hierarchy_build_kernel",
            "cells": hier_cells,
            "shortcuts": fast_index.stats.shortcuts,
            "seconds": build_kernel_s,
            "speedup_vs_legacy": build_speedup,
        }
    )
    results.append(
        {"name": "hierarchy_build_legacy", "cells": hier_cells, "seconds": build_legacy_s}
    )
    print(
        f"  shortcut build: kernel {build_kernel_s*1e3:8.1f} ms  "
        f"legacy {build_legacy_s*1e3:8.1f} ms ({build_speedup:.2f}x)"
    )

    meta = {
        "nodes": network.node_count,
        "edges": network.edge_count,
        "interval_minutes": interval.end - interval.start,
        "speedup_profile_kernel_vs_legacy": profile_speedup,
        "speedup_hierarchy_build_kernel_vs_legacy": build_speedup,
        "answers_checked": True,
        "kernel_backend": kernel.active_backend(),
    }
    path = emit_bench_json(
        "profile",
        results,
        scale="quick" if args.quick else "small",
        quick=args.quick,
        meta=meta,
    )
    print(f"wrote {path}")
    return 0


def _run_one(flag: bool, network, source: int, interval: TimeInterval) -> dict:
    previous = kernel.set_kernel_enabled(flag)
    try:
        return dict(profile_search(network, source, interval).profiles)
    finally:
        kernel.set_kernel_enabled(previous)


def _build_index(flag, network, cells, horizon) -> HierarchicalIndex:
    previous = kernel.set_kernel_enabled(flag)
    try:
        return HierarchicalIndex(network, cells, cells, horizon)
    finally:
        kernel.set_kernel_enabled(previous)


if __name__ == "__main__":
    sys.exit(main())
