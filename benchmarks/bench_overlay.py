"""Metro-scale overlay benchmark — writes ``BENCH_overlay.json``.

Exercises the whole metro pipeline on one generated network: stream the
OSM-flavoured text through the importer, build a multi-level overlay,
answer allFP queries with the flat engine and the overlay engine
side-by-side, then persist a v2 snapshot and boot a warm service from the
``mmap``-ed overlay section.

Three guarantees are checked while measuring:

* **correctness** — overlay travel times equal the flat engine's at every
  sampled instant of every pair (1e-6), including the answer served from
  the mmapped snapshot;
* **speed** — in full mode the aggregate overlay-vs-flat query speedup
  across all pairs must reach 3x (quick mode sizes the network far too
  small for the hierarchy to pay off and records the numbers honestly
  without the gate);
* **warm boot** — mapping the overlay back from the snapshot must cost a
  small fraction of building it.

Usage::

    PYTHONPATH=src python benchmarks/bench_overlay.py [--quick]
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from emit_json import emit_bench_json

from repro.core.engine import IntAllFastestPaths
from repro.estimators import snapshot as snap
from repro.estimators.boundary import BoundaryNodeEstimator
from repro.estimators.naive import NaiveEstimator
from repro.func import kernel
from repro.hierarchy import MultiLevelOverlay, OverlayEngine
from repro.network.generator import MetroConfig, emit_metro_lines
from repro.network.importer import parse_lines
from repro.timeutil import TimeInterval
from repro.workloads.queries import morning_rush_interval

#: Fixed far/mid/near query mix on the full-size 145x140 network; quick
#: mode swaps in corners of its 12x12 grid.
FULL_PAIRS = [(0, 20299), (100, 20100), (5, 11000), (7000, 14500)]
QUICK_PAIRS = [(0, 143), (5, 100)]


def measure_pairs(network, overlay, pairs, interval, reps):
    """Flat vs overlay timings (best of ``reps``, shared warm engines)."""
    flat = IntAllFastestPaths(network, NaiveEstimator(network))
    fast = OverlayEngine(overlay, NaiveEstimator(network))
    rows = []
    answers_checked = 0
    worst_diff = 0.0
    total_flat = total_overlay = 0.0
    for source, target in pairs:
        best_flat = best_overlay = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            r_flat = flat.all_fastest_paths(source, target, interval)
            best_flat = min(best_flat, time.perf_counter() - t0)
            t0 = time.perf_counter()
            r_overlay = fast.all_fastest_paths(source, target, interval)
            best_overlay = min(best_overlay, time.perf_counter() - t0)
        for instant in interval.sample(25):
            diff = abs(
                r_overlay.travel_time_at(instant)
                - r_flat.travel_time_at(instant)
            )
            worst_diff = max(worst_diff, diff)
            if diff > 1e-6:
                raise SystemExit(
                    f"PARITY FAILURE {source}->{target} at t={instant}: "
                    f"overlay differs from flat by {diff}"
                )
            answers_checked += 1
        rows.append(
            {
                "name": f"allfp_{source}_{target}",
                "flat_ms": best_flat * 1e3,
                "overlay_ms": best_overlay * 1e3,
                "speedup": best_flat / best_overlay,
                "labels_flat": r_flat.stats.labels_generated,
                "labels_overlay": r_overlay.stats.labels_generated,
            }
        )
        total_flat += best_flat
        total_overlay += best_overlay
        print(
            f"  allfp {source}->{target}: flat {best_flat * 1e3:7.0f} ms  "
            f"overlay {best_overlay * 1e3:6.0f} ms  "
            f"speedup {best_flat / best_overlay:.2f}x"
        )
    return rows, total_flat / total_overlay, answers_checked, worst_diff


def snapshot_roundtrip(network, overlay, estimator_grid, pair, interval):
    """Persist a v2 snapshot, map it back, serve one warm allFP query."""
    from repro.serve import AllFPService, InProcessClient, ServiceConfig
    from repro.workloads.queries import QuerySpec

    estimator = BoundaryNodeEstimator(
        network, estimator_grid, estimator_grid
    )
    t0 = time.perf_counter()
    estimator.precompute()
    tables_seconds = time.perf_counter() - t0
    if estimator.tables is None:
        raise SystemExit("overlay snapshots require the array backend")
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "overlay.snap"
        t0 = time.perf_counter()
        snap.save_tables(
            estimator.tables,
            path,
            snap.network_fingerprint(network),
            overlay=overlay,
        )
        save_seconds = time.perf_counter() - t0
        size = path.stat().st_size
        t0 = time.perf_counter()
        mapped = snap.map_overlay(path, network)
        map_seconds = time.perf_counter() - t0

        config = ServiceConfig(
            workers=2, coalesce=False, cache_results=False
        )
        service = AllFPService(network, config=config, overlay=mapped)
        try:
            client = InProcessClient(service)
            spec = QuerySpec(pair[0], pair[1], interval, 0.0)
            t0 = time.perf_counter()
            served = client.query(spec).result
            serve_seconds = time.perf_counter() - t0
        finally:
            service.close()
    flat = IntAllFastestPaths(network, NaiveEstimator(network)).all_fastest_paths(
        pair[0], pair[1], interval
    )
    for instant in interval.sample(9):
        if abs(
            served.travel_time_at(instant) - flat.travel_time_at(instant)
        ) > 1e-6:
            raise SystemExit(
                f"PARITY FAILURE: warm-served answer at t={instant} "
                "differs from the flat engine"
            )
    return {
        "tables_seconds": tables_seconds,
        "save_seconds": save_seconds,
        "map_seconds": map_seconds,
        "snapshot_bytes": size,
        "warm_query_ms": serve_seconds * 1e3,
        "served_entries": len(served.entries),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke sizing")
    args = parser.parse_args(argv)

    if args.quick:
        net_cfg = MetroConfig(width=12, height=12, seed=9)
        pairs = QUICK_PAIRS
        levels, nx, reps = 2, 6, 1
        estimator_grid = 4
    else:
        net_cfg = MetroConfig(
            width=145, height=140, spacing=0.125, vertical_keep=0.17, seed=0
        )
        pairs = FULL_PAIRS
        levels, nx, reps = 2, 14, 2
        estimator_grid = 3

    horizon = TimeInterval(0.0, 1440.0)
    interval = morning_rush_interval(2.0)

    t0 = time.perf_counter()
    network, import_stats = parse_lines(emit_metro_lines(net_cfg))
    import_seconds = time.perf_counter() - t0
    print(
        f"import: {network.node_count} nodes, {network.edge_count} edges "
        f"in {import_seconds:.1f}s ({import_stats.ways} ways)"
    )

    t0 = time.perf_counter()
    overlay = MultiLevelOverlay.build(
        network, levels=levels, nx=nx, horizon=horizon
    )
    build_seconds = time.perf_counter() - t0
    shortcuts = sum(lv.shortcut_count for lv in overlay.levels)
    print(
        f"overlay: {levels} level(s), grid {nx}, {shortcuts} shortcuts "
        f"in {build_seconds:.1f}s"
    )

    rows, aggregate, answers_checked, worst_diff = measure_pairs(
        network, overlay, pairs, interval, reps
    )
    print(
        f"aggregate overlay-vs-flat speedup {aggregate:.2f}x "
        f"({answers_checked} answers checked, worst diff {worst_diff:.2e})"
    )
    if not args.quick and aggregate < 3.0:
        print(
            f"SPEEDUP FAILURE: aggregate overlay speedup {aggregate:.2f}x "
            "is below the 3x gate",
            file=sys.stderr,
        )
        return 1

    roundtrip = snapshot_roundtrip(
        network, overlay, estimator_grid, pairs[0], interval
    )
    print(
        f"snapshot: {roundtrip['snapshot_bytes']} bytes, save "
        f"{roundtrip['save_seconds'] * 1e3:.0f} ms, mmap "
        f"{roundtrip['map_seconds'] * 1e3:.1f} ms, warm serve query "
        f"{roundtrip['warm_query_ms']:.0f} ms"
    )

    results = [
        {"name": "import", "seconds": import_seconds},
        {"name": "overlay_build", "seconds": build_seconds},
        *rows,
        {"name": "snapshot_save", "seconds": roundtrip["save_seconds"]},
        {"name": "overlay_mmap_load", "seconds": roundtrip["map_seconds"]},
        {"name": "warm_serve_query", "ms": roundtrip["warm_query_ms"]},
    ]
    path = emit_bench_json(
        "overlay",
        results,
        scale="quick" if args.quick else "metro",
        quick=args.quick,
        meta={
            "nodes": network.node_count,
            "edges": network.edge_count,
            "levels": levels,
            "overlay_grid": nx,
            "shortcuts": shortcuts,
            "horizon_minutes": horizon.end - horizon.start,
            "interval": [interval.start, interval.end],
            "pairs": len(pairs),
            "answers_checked": answers_checked,
            "parity_max_abs_diff": worst_diff,
            "speedup_overlay_vs_flat": aggregate,
            "min_pair_speedup": min(r["speedup"] for r in rows),
            "build_seconds": build_seconds,
            "snapshot_bytes": roundtrip["snapshot_bytes"],
            "warm_query_ms": roundtrip["warm_query_ms"],
            "cpu_count": os.cpu_count() or 1,
            "kernel_backend": kernel.active_backend(),
        },
    )
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
