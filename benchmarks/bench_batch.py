"""Batch one-to-many benchmark — writes ``BENCH_batch.json``.

The Figure 9-style sweep, batched: one source queried against targets in
every Euclidean-distance band, answered two ways —

* **batched** — one :func:`repro.core.batch.batch_one_to_many` call: a
  single profile search answers every target, and all groups share one
  ``SearchContext``/edge-function cache;
* **individual** — one ``IntAllFastestPaths.all_fastest_paths`` call per
  O-D pair, the way a client without the batch API would issue them.

Before any timing is reported the batched optima are compared against the
per-pair allFP border minima — a speedup over a wrong answer is
worthless.  The emitted ``meta`` carries ``speedup_batch_vs_individual``,
which CI gates at >= 3x, and the active kernel backend.

Usage::

    PYTHONPATH=src python benchmarks/bench_batch.py [--quick]
"""

from __future__ import annotations

import argparse
import math
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from emit_json import emit_bench_json

from repro.core.batch import batch_one_to_many
from repro.core.engine import IntAllFastestPaths
from repro.core.runtime import SearchContext
from repro.func import kernel
from repro.network.generator import MetroConfig, make_metro_network
from repro.workloads.queries import morning_rush_interval

#: Batched and individual optima must agree to this absolute tolerance.
TOL = 1e-6

#: Euclidean-distance bands, as fractions of the network diameter.
BANDS = 4


def banded_targets(network, source: int, per_band: int) -> list[int]:
    """``per_band`` targets per distance band from ``source`` (Figure 9)."""
    origin = network.location(source)
    by_distance = sorted(
        (math.dist(origin, network.location(node)), node)
        for node in network.node_ids()
        if node != source
    )
    diameter = by_distance[-1][0]
    targets: list[int] = []
    for band in range(BANDS):
        lo = band * diameter / BANDS
        hi = (band + 1) * diameter / BANDS
        in_band = [n for d, n in by_distance if lo <= d < hi]
        stride = max(1, len(in_band) // per_band)
        targets.extend(in_band[::stride][:per_band])
    return targets


def best_of(fn, repeat: int) -> float:
    best = float("inf")
    for _ in range(repeat):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller sweep")
    args = parser.parse_args(argv)

    width = 12 if args.quick else 20
    per_band = 8 if args.quick else 12
    repeat = 2 if args.quick else 3

    network = make_metro_network(
        MetroConfig(width=width, height=width, seed=7)
    )
    interval = morning_rush_interval(1.0)
    source = min(network.node_ids())
    targets = banded_targets(network, source, per_band)
    print(
        f"network {width}x{width} ({network.node_count} nodes), "
        f"{len(targets)} targets in {BANDS} bands"
    )

    # Answers first: batched optimum == per-pair allFP border minimum.
    batch_result = batch_one_to_many(
        network, source, targets, interval, context=SearchContext(network)
    )
    engine = IntAllFastestPaths(network)
    answers_checked = 0
    for item in batch_result.items:
        assert item.reachable, f"target {item.target} unreachable"
        allfp = engine.all_fastest_paths(source, item.target, interval)
        drift = abs(item.optimal_travel_time - allfp.border.min_value())
        assert drift <= TOL, (
            f"batch vs allFP mismatch at target {item.target}: {drift}"
        )
        answers_checked += 1
    print(f"answers checked: {answers_checked} (tol {TOL})")

    batch_s = best_of(
        lambda: batch_one_to_many(
            network, source, targets, interval, context=SearchContext(network)
        ),
        repeat,
    )

    def individual():
        per_pair = IntAllFastestPaths(network)
        for target in targets:
            per_pair.all_fastest_paths(source, target, interval)

    individual_s = best_of(individual, repeat)
    speedup = individual_s / batch_s
    per_query_ms = individual_s / len(targets) * 1e3
    batched_ms = batch_s / len(targets) * 1e3
    print(
        f"batched  {batch_s * 1e3:8.1f} ms  ({batched_ms:.3f} ms/target)\n"
        f"per-pair {individual_s * 1e3:8.1f} ms  ({per_query_ms:.3f} ms/target)\n"
        f"speedup  {speedup:.2f}x"
    )

    results = [
        {
            "name": "batch_one_to_many",
            "targets": len(targets),
            "seconds": batch_s,
            "ms_per_target": batched_ms,
        },
        {
            "name": "individual_allfp",
            "targets": len(targets),
            "seconds": individual_s,
            "ms_per_target": per_query_ms,
        },
    ]
    meta = {
        "nodes": network.node_count,
        "bands": BANDS,
        "targets": len(targets),
        "interval_minutes": interval.end - interval.start,
        "speedup_batch_vs_individual": speedup,
        "answers_checked": answers_checked,
        "kernel_backend": kernel.active_backend(),
    }
    path = emit_bench_json(
        "batch",
        results,
        scale="quick" if args.quick else "small",
        quick=args.quick,
        meta=meta,
    )
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
