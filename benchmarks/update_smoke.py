"""CI smoke test for the live-update stream and bounded staleness.

Replays the bundled incident trace (``benchmarks/data/incident_trace.jsonl``,
pinned to the 10x10 seed-23 metro network) against a 2-shard server and
holds the whole update contract:

1. **CLI replay** — ``repro-allfp replay-updates`` (a subprocess, the real
   verb) replays the trace over HTTP; every batch lands, the network
   version advances monotonically to the trace length;
2. **staleness surface** — ``/healthz`` carries the
   ``network_version``/``staleness_seconds``/``pending_updates`` triple,
   ``/metrics`` the per-shard ``network_applied_version`` gauges;
3. **versioned answers** — a post-replay query response carries the
   final network version and byte-matches a from-scratch single-process
   service on the mutated network;
4. **typed rejections** — an unknown edge is HTTP 404
   (``EdgeNotFoundError``) and leaves the version alone; a malformed
   batch and a negative ``max_staleness`` are HTTP 400;
5. **chaos under mutation** — :func:`repro.serve.chaos.run_mutation_chaos`
   replays queries concurrent with the trace, faults off and on
   (``default_fault_plan``): every non-stale answer must byte-match a
   fault-free re-execution at the network version it claims.

Exits non-zero on the first failed assertion.

Usage::

    PYTHONPATH=src python benchmarks/update_smoke.py
"""

from __future__ import annotations

import copy
import json
import os
import subprocess
import sys
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.network.generator import MetroConfig, make_metro_network
from repro.serve import AllFPService, HTTPClient, ServiceConfig, make_server, start_in_thread
from repro.serve.chaos import _canonical, default_fault_plan, run_mutation_chaos
from repro.serve.service import QueryRequest
from repro.serve.updates import TraceEvent, apply_batch, load_trace
from repro.shard import ShardedService
from repro.timeutil import TimeInterval
from repro.workloads.queries import QuerySpec

TRACE_PATH = REPO_ROOT / "benchmarks" / "data" / "incident_trace.jsonl"
INTERVAL = TimeInterval(7 * 60.0, 8 * 60.0)


def fresh_network():
    return make_metro_network(MetroConfig(width=10, height=10, seed=23))


def check_http_replay(events) -> None:
    tier = ShardedService(
        fresh_network(),
        config=ServiceConfig(workers=2, cache_results=False, coalesce=False),
        shards=2,
    )
    server = make_server(tier, port=0, quiet=True)
    host, port = server.server_address[:2]
    url = f"http://{host}:{port}"
    start_in_thread(server)
    try:
        # 1. The real CLI verb, as a subprocess, against the live server.
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "replay-updates",
                "--url",
                url,
                "--trace",
                str(TRACE_PATH),
                "--speed",
                "50",
            ],
            capture_output=True,
            text=True,
            timeout=300,
            env=env,
            cwd=REPO_ROOT,
        )
        assert proc.returncode == 0, proc.stderr or proc.stdout
        assert f"network version {len(events)}" in proc.stdout, proc.stdout
        print(f"replay-updates CLI: {len(events)} batch(es) applied over HTTP")

        # 2. Staleness surface on /healthz and /metrics.
        health = json.loads(urllib.request.urlopen(f"{url}/healthz").read())
        assert health["network_version"] == len(events), health
        assert health["pending_updates"] == 0, health
        assert health["staleness_seconds"] == 0.0, health
        metrics = urllib.request.urlopen(f"{url}/metrics").read().decode()
        applied_lines = [
            line
            for line in metrics.splitlines()
            if "network_applied_version" in line and not line.startswith("#")
        ]
        # Router aggregate plus one series per shard, all at the final version.
        assert len(applied_lines) == 3, applied_lines
        assert all(line.endswith(f" {len(events)}") for line in applied_lines), (
            applied_lines
        )
        for gauge in ("update_staleness_seconds", "updates_pending"):
            assert gauge in metrics, gauge
        print("staleness surface: healthz triple + per-shard gauges ok")

        # 3. Versioned answer parity with a from-scratch service.
        mutated = fresh_network()
        for event in events:
            apply_batch(mutated, event.batch)
        reference = AllFPService(
            mutated, config=ServiceConfig(workers=2, cache_results=False)
        )
        client = HTTPClient(url)
        try:
            first = events[0].batch.mutations[0]
            for source, target in ((first.source, first.target), (0, 99)):
                status, body = client.query(source, target, INTERVAL)
                assert status == 200, body
                assert body["version"] == len(events), body
                fresh = reference.query(
                    QueryRequest(source, target, INTERVAL)
                )
                assert _canonical_doc(body["result"]) == _canonical(
                    fresh.result
                ), f"answer diverges on {source}->{target}"
        finally:
            reference.close()
        print("versioned answers: byte-match a from-scratch mutated service")

        # 4. Typed rejections, version untouched.
        status, body = client.updates(
            {
                "mutations": [
                    {
                        "source": 0,
                        "target": 999999,
                        "pattern": events[0].batch.mutations[0].to_wire()[
                            "pattern"
                        ],
                    }
                ]
            }
        )
        assert status == 404 and body["error"] == "EdgeNotFoundError", body
        status, body = client.updates({"mutations": []})
        assert status == 400 and body["error"] == "QueryError", body
        status, body = client.post(
            "/v1/allfp",
            {
                "source": 0,
                "target": 99,
                "start": INTERVAL.start,
                "end": INTERVAL.end,
                "max_staleness": -1.0,
            },
        )
        assert status == 400, body
        health = json.loads(urllib.request.urlopen(f"{url}/healthz").read())
        assert health["network_version"] == len(events), health
        print("typed rejections: 404 unknown edge, 400 malformed, version intact")
    finally:
        server.shutdown()
        tier.close()


def _canonical_doc(doc: dict) -> str:
    from repro.serve.chaos import _round_floats

    doc = dict(doc)
    doc.pop("stats", None)
    doc.pop("entries", None)
    return json.dumps(_round_floats(doc), sort_keys=True)


def check_mutation_chaos(events, plan=None) -> None:
    label = "faults on" if plan is not None else "faults off"
    network = fresh_network()
    edges = list(network.edges())
    queries = [
        QuerySpec(edges[0].source, edges[0].target, INTERVAL, 0.0),
        QuerySpec(0, network.node_count - 1, INTERVAL, 0.0),
        QuerySpec(edges[10].source, edges[25].target, INTERVAL, 0.0),
    ]
    # Compress the bundled offsets so the smoke stays fast.
    trace = [TraceEvent(e.at / 5.0, e.batch) for e in events]
    service = AllFPService(network, config=ServiceConfig(workers=2))
    try:
        report = run_mutation_chaos(
            service, queries, trace, plan=plan, clients=3
        )
    finally:
        service.close()
    assert report.passed(), report.violations
    assert report.versions == len(events), report.versions
    assert report.requests > 0
    print(
        f"mutation chaos ({label}): {report.requests} requests across "
        f"{report.versions + 1} versions, invariant held"
    )


def main() -> int:
    events = load_trace(TRACE_PATH)
    print(
        f"trace: {len(events)} batch(es), "
        f"{sum(len(e.batch) for e in events)} mutation(s) from {TRACE_PATH.name}"
    )
    check_http_replay(events)
    check_mutation_chaos(events)
    check_mutation_chaos(events, plan=default_fault_plan(seed=7))
    print("update smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
