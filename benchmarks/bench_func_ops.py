"""Micro-benchmarks of the function-algebra primitives.

Every IntAllFastestPaths expansion performs one monotone composition, one
dominance check and possibly one envelope fold, so these primitives bound
the engine's per-expansion cost.  Tracked here so regressions in the
algebra show up independently of workload effects.

Two entry points:

* pytest-benchmark classes (``pytest benchmarks/bench_func_ops.py``) for
  statistical timing,
* a standalone ``main()`` (``python benchmarks/bench_func_ops.py [--quick]``)
  that times the same operations and writes ``BENCH_func_ops.json`` at the
  repo root via :mod:`emit_json`.
"""

from __future__ import annotations

if __name__ == "__main__":
    # Allow `python benchmarks/bench_func_ops.py` without PYTHONPATH=src.
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import pytest

from repro.core.dominance import DominanceStore
from repro.func.envelope import AnnotatedEnvelope
from repro.func.monotone import MonotonePiecewiseLinear
from repro.func.piecewise import PiecewiseLinearFunction, pointwise_minimum
from repro.patterns.categories import Calendar
from repro.patterns.speed import CapeCodPattern, DailySpeedPattern
from repro.patterns.travel_time import edge_arrival_function


def _sawtooth(lo: float, hi: float, pieces: int, base: float) -> list[tuple[float, float]]:
    step = (hi - lo) / pieces
    return [
        (lo + i * step, base + (i % 3) * 0.7 + i * 0.01)
        for i in range(pieces + 1)
    ]


@pytest.fixture(scope="module")
def monotone_pair():
    inner = MonotonePiecewiseLinear(
        [(x, x + 5.0 + (i % 4) * 0.2) for i, x in enumerate(range(0, 200, 10))]
    )
    lo, hi = inner.value_range
    outer = MonotonePiecewiseLinear(
        [
            (lo - 1 + i * (hi - lo + 2) / 20, lo - 1 + i * (hi - lo + 2) / 18)
            for i in range(21)
        ]
    )
    return outer, inner


class TestComposition:
    def test_compose(self, benchmark, monotone_pair):
        outer, inner = monotone_pair
        result = benchmark(lambda: outer.compose(inner))
        assert result.x_min == inner.x_min

    def test_inverse(self, benchmark, monotone_pair):
        outer, _ = monotone_pair
        result = benchmark(outer.inverse)
        assert result is not None


class TestEnvelope:
    def test_envelope_fold_20_functions(self, benchmark):
        fns = [
            PiecewiseLinearFunction(_sawtooth(0.0, 100.0, 12, 5.0 + k * 0.1))
            for k in range(20)
        ]

        def fold():
            env = AnnotatedEnvelope(0.0, 100.0)
            for k, fn in enumerate(fns):
                env.add(fn, tag=k)
            return env

        env = benchmark(fold)
        assert not env.is_empty

    def test_pointwise_minimum(self, benchmark):
        a = PiecewiseLinearFunction(_sawtooth(0.0, 100.0, 15, 5.0))
        b = PiecewiseLinearFunction(_sawtooth(0.0, 100.0, 11, 5.3))
        result = benchmark(lambda: pointwise_minimum(a, b))
        assert result.min_value() <= a.min_value()


class TestDominance:
    def test_dominance_check(self, benchmark):
        store = DominanceStore(0.0, 100.0)
        for k in range(8):
            store.add(
                1,
                MonotonePiecewiseLinear(
                    [(x, x + 6.0 + k * 0.05 + (x % 17) * 0.01) for x in range(0, 101, 5)]
                ),
            )
        probe = MonotonePiecewiseLinear(
            [(x, x + 6.2) for x in range(0, 101, 10)]
        )
        result = benchmark(lambda: store.is_dominated(1, probe))
        assert isinstance(result, bool)


class TestEdgeFunctions:
    def test_edge_arrival_function_build(self, benchmark):
        cal = Calendar.single_category("d")
        pattern = CapeCodPattern(
            {
                "d": DailySpeedPattern(
                    [(0.0, 1.0), (420.0, 0.33), (540.0, 1.0), (960.0, 0.5), (1140.0, 1.0)]
                )
            }
        )
        result = benchmark(
            lambda: edge_arrival_function(3.0, pattern, cal, 360.0, 720.0)
        )
        assert result.x_min <= 360.0


# ----------------------------------------------------------------------
# Standalone mode: write BENCH_func_ops.json at the repo root.
# ----------------------------------------------------------------------

#: Breakpoint counts the standalone sweep reports — per-op cost scaling
#: with function size, not one opaque default.
SIZES = (8, 32, 128)


def _standalone_ops(n: int) -> dict:
    """The pytest-class operations as plain callables at ``n`` breakpoints."""
    inner = MonotonePiecewiseLinear(
        [
            (i * 200.0 / (n - 1), i * 200.0 / (n - 1) + 5.0 + (i % 4) * 0.2)
            for i in range(n)
        ]
    )
    lo, hi = inner.value_range
    outer = MonotonePiecewiseLinear(
        [
            (
                lo - 1 + i * (hi - lo + 2) / (n - 1),
                lo - 1 + i * (hi - lo + 2) / (n - 1) * 0.9,
            )
            for i in range(n)
        ]
    )
    env_fns = [
        PiecewiseLinearFunction(_sawtooth(0.0, 100.0, n - 1, 5.0 + k * 0.1))
        for k in range(20)
    ]

    def fold():
        env = AnnotatedEnvelope(0.0, 100.0)
        for k, fn in enumerate(env_fns):
            env.add(fn, tag=k)
        return env

    a = PiecewiseLinearFunction(_sawtooth(0.0, 100.0, n - 1, 5.0))
    b = PiecewiseLinearFunction(
        _sawtooth(0.0, 100.0, max(2, n - 5), 5.3)
    )
    store = DominanceStore(0.0, 100.0)
    for k in range(8):
        store.add(
            1,
            MonotonePiecewiseLinear(
                [
                    (
                        i * 100.0 / (n - 1),
                        i * 100.0 / (n - 1)
                        + 6.0
                        + k * 0.05
                        + (i % 17) * 0.01,
                    )
                    for i in range(n)
                ]
            ),
        )
    probe = MonotonePiecewiseLinear(
        [(i * 100.0 / (n - 1), i * 100.0 / (n - 1) + 6.2) for i in range(n)]
    )
    return {
        "compose": lambda: outer.compose(inner),
        "inverse": outer.inverse,
        "envelope_fold_20": fold,
        "pointwise_minimum": lambda: pointwise_minimum(a, b),
        "dominance_check": lambda: store.is_dominated(1, probe),
    }


def _edge_arrival_op():
    """Edge-function build: pattern-driven, so sized by the pattern alone."""
    cal = Calendar.single_category("d")
    pattern = CapeCodPattern(
        {
            "d": DailySpeedPattern(
                [
                    (0.0, 1.0),
                    (420.0, 0.33),
                    (540.0, 1.0),
                    (960.0, 0.5),
                    (1140.0, 1.0),
                ]
            )
        }
    )
    return lambda: edge_arrival_function(3.0, pattern, cal, 360.0, 720.0)


def main(argv: list | None = None) -> int:
    import argparse
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from bench_kernel import time_op
    from emit_json import emit_bench_json

    from repro.func import kernel

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="few reps")
    args = parser.parse_args(argv)
    reps = 20 if args.quick else 300

    rows = []
    for n in SIZES:
        for name, op in _standalone_ops(n).items():
            ns = time_op(op, reps)
            rows.append(
                {"name": f"{name}/n{n}", "breakpoints": n, "ns_per_op": round(ns, 1)}
            )
            print(f"{name + '/n' + str(n):<26} {ns:>12.0f} ns/op")
    ns = time_op(_edge_arrival_op(), reps)
    rows.append({"name": "edge_arrival_build", "ns_per_op": round(ns, 1)})
    print(f"{'edge_arrival_build':<26} {ns:>12.0f} ns/op")
    path = emit_bench_json(
        "func_ops",
        rows,
        quick=args.quick,
        meta={
            "sizes": list(SIZES),
            "kernel_backend": kernel.active_backend(),
        },
    )
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
