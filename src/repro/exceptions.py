"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch one base class.  The concrete
subclasses mirror the subsystems described in ``DESIGN.md``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class FunctionDomainError(ReproError):
    """An operation referenced a point or interval outside a function's domain."""


class FunctionShapeError(ReproError):
    """A piecewise function was constructed from malformed breakpoints."""


class NotMonotoneError(FunctionShapeError):
    """A function required to be (strictly) nondecreasing is not."""


class PatternError(ReproError):
    """A CapeCod speed pattern or day-category set is malformed."""


class NetworkError(ReproError):
    """A road network is malformed or an operation referenced a missing element."""


class NodeNotFoundError(NetworkError, KeyError):
    """A node id was not present in the network or storage layer."""

    def __init__(self, node_id: int) -> None:
        super().__init__(f"node {node_id} not found")
        self.node_id = node_id


class EdgeNotFoundError(NetworkError, KeyError):
    """An edge (u, v) was not present in the network."""

    def __init__(self, source: int, target: int) -> None:
        super().__init__(f"edge {source}->{target} not found")
        self.source = source
        self.target = target


class NoPathError(ReproError):
    """No path exists from the source to the destination node.

    ``stats`` (when the raising engine provides it) carries the finalized
    :class:`~repro.core.results.SearchStats` of the exhausted search, so
    callers can report how much work proving the absence took.
    """

    def __init__(self, source: int, target: int, stats=None) -> None:
        super().__init__(f"no path from node {source} to node {target}")
        self.source = source
        self.target = target
        self.stats = stats


class QueryError(ReproError):
    """A fastest-path query was malformed (bad interval, equal endpoints, ...)."""


class StorageError(ReproError):
    """The CCAM storage layer detected corruption or misuse."""


class PageOverflowError(StorageError):
    """A record does not fit into a single CCAM page."""


class EstimatorError(ReproError):
    """A lower-bound estimator was queried before being built, or misconfigured."""


class ServiceError(ReproError):
    """The query service (:mod:`repro.serve`) rejected or failed a request."""


class ServiceOverloaded(ServiceError):
    """Admission control rejected a request: the pending-queue is full.

    Maps to HTTP 503; ``retry_after`` is a coarse client backoff hint in
    seconds.
    """

    def __init__(self, pending: int, max_pending: int, retry_after: float = 0.05):
        super().__init__(
            f"service overloaded: {pending} requests pending "
            f"(max_pending={max_pending})"
        )
        self.pending = pending
        self.max_pending = max_pending
        self.retry_after = retry_after


class ServiceClosed(ServiceError):
    """A request arrived after the service was shut down."""


class WorkerCrashed(ServiceError):
    """A worker task died with an unexpected error and its bounded retries
    were exhausted.  The crashed worker's engine has already been replaced;
    the failure is surfaced as this typed error instead of a raw traceback.
    """

    def __init__(self, attempts: int, cause: str) -> None:
        super().__init__(
            f"worker task crashed {attempts} time(s) (last: {cause}); "
            "worker replaced"
        )
        self.attempts = attempts


class ShardUnavailable(ServiceError):
    """A shard worker process died, hung past its grace window, or was
    skipped by its circuit breaker, and no ring successor could answer
    either.  The router raises this only after walking the whole
    preference list; a single dead shard normally surfaces as a
    ``degraded_shard``-flagged answer from the next ring node instead.
    """

    def __init__(self, shard_id: int, reason: str = "worker unavailable"):
        super().__init__(f"shard {shard_id}: {reason}")
        self.shard_id = shard_id


class StalenessExceeded(ServiceError):
    """A query opted into ``max_staleness`` and the service's applied
    network version is older than the caller tolerates (accepted
    mutations are still pending).  Maps to HTTP 503 with a Retry-After
    hint; the client may retry, relax the bound, or drop it.
    """

    def __init__(self, staleness: float, max_staleness: float):
        super().__init__(
            f"service is {staleness:.3f}s stale "
            f"(max_staleness={max_staleness:.3f}s)"
        )
        self.staleness = staleness
        self.max_staleness = max_staleness


class ServeClientError(ServiceError):
    """An HTTP client call failed after exhausting its retries.

    Wraps the transport-level causes (:class:`urllib.error.URLError`,
    ``ConnectionRefusedError``, timeouts, malformed response bodies) so CLI
    and library callers handle one typed error instead of raw urllib
    internals.
    """

    def __init__(self, message: str, *, url: str | None = None, attempts: int = 1):
        detail = f"{message} (url={url}, attempts={attempts})" if url else message
        super().__init__(detail)
        self.url = url
        self.attempts = attempts


class InjectedFault(ReproError):
    """An error deliberately raised by the fault-injection framework
    (:mod:`repro.reliability`); only ever seen under an installed FaultPlan.
    """
