"""Hierarchical query execution over the hybrid query graph.

For a query (s, e, I) the hybrid graph keeps the source and target fragments
at street level and represents every other fragment by its boundary nodes,
its crossing edges, and the index's precomputed shortcut functions.  The
ordinary IntAllFastestPaths engine runs unchanged on this graph — the
paper's "apply our algorithm … once at the top level" — because the graph
is exposed through the same accessor surface as a real network.
"""

from __future__ import annotations

from ..core.astar import fixed_departure_query
from ..core.engine import IntAllFastestPaths
from ..core.results import AllFPResult, SingleFPResult
from ..core.runtime import DEFAULT_EDGE_CACHE_SIZE, EdgeFunctionCache
from ..estimators.base import LowerBoundEstimator
from ..estimators.naive import NaiveEstimator
from ..exceptions import NetworkError, QueryError
from ..network.model import CapeCodNetwork, Edge
from ..timeutil import TimeInterval
from .index import HierarchicalIndex, ShortcutEdge


class _HybridQueryGraph:
    """Accessor-surface view: full detail near s and e, overlay elsewhere."""

    def __init__(
        self, index: HierarchicalIndex, source: int, target: int
    ) -> None:
        self._index = index
        self._network = index.network
        self._full_cells = {index.cell_of(source), index.cell_of(target)}

    @property
    def calendar(self):
        return self._network.calendar

    def location(self, node: int) -> tuple[float, float]:
        return self._network.location(node)

    def max_speed(self) -> float:
        return self._network.max_speed()

    def outgoing(self, node: int):
        cell = self._index.cell_of(node)
        if cell in self._full_cells:
            # Street level: all original edges; crossing edges land on
            # boundary nodes of neighbouring fragments, which the overlay
            # branch below then handles.
            return self._network.outgoing(node)
        edges: list[Edge | ShortcutEdge] = [
            e
            for e in self._network.outgoing(node)
            if self._index.cell_of(e.target) != cell
        ]
        edges.extend(self._index.shortcuts_from(node))
        return edges


class _FragmentView:
    """The subgraph induced by one fragment (for path re-expansion)."""

    def __init__(self, network: CapeCodNetwork, members: frozenset[int]) -> None:
        self._network = network
        self._members = members

    @property
    def calendar(self):
        return self._network.calendar

    def location(self, node: int) -> tuple[float, float]:
        if node not in self._members:
            raise NetworkError(f"node {node} outside fragment")
        return self._network.location(node)

    def outgoing(self, node: int):
        return [
            e
            for e in self._network.outgoing(node)
            if e.target in self._members
        ]


class HierarchicalEngine:
    """Two-level allFP/singleFP queries over a :class:`HierarchicalIndex`.

    Travel times equal the flat engine's exactly; reported paths may take
    shortcut hops between boundary nodes of intermediate fragments — use
    :meth:`expand_path` to materialise street-level hops for a departure
    instant.
    """

    def __init__(
        self,
        index: HierarchicalIndex,
        estimator: LowerBoundEstimator | None = None,
        prune: bool = True,
        *,
        max_pops: int | None = None,
        deadline: float | None = None,
        edge_cache_size: int = DEFAULT_EDGE_CACHE_SIZE,
    ) -> None:
        self._index = index
        self._estimator = estimator
        self._prune = prune
        self._max_pops = max_pops
        self._deadline = deadline
        # Street-edge arrival functions depend only on the edge and the
        # calendar, never on the per-query hybrid view, so one cache stays
        # warm across every query this engine answers.  (Shortcut edges
        # bypass it via their arrival_function provider.)
        self._edge_cache = EdgeFunctionCache(
            index.network.calendar, edge_cache_size
        )

    @property
    def edge_cache(self) -> EdgeFunctionCache:
        return self._edge_cache

    # ------------------------------------------------------------------
    def _engine_for(self, source: int, target: int) -> IntAllFastestPaths:
        graph = _HybridQueryGraph(self._index, source, target)
        estimator = self._estimator or NaiveEstimator(graph)
        return IntAllFastestPaths(
            graph,
            estimator,
            prune=self._prune,
            max_pops=self._max_pops,
            deadline=self._deadline,
            edge_cache=self._edge_cache,
        )

    def _check_horizon(self, interval: TimeInterval) -> None:
        horizon = self._index.horizon
        if interval.start < horizon.start or interval.end > horizon.end:
            raise QueryError(
                f"query interval {interval} outside the index horizon "
                f"{horizon}; rebuild the HierarchicalIndex accordingly"
            )

    def all_fastest_paths(
        self,
        source: int,
        target: int,
        interval: TimeInterval,
        deadline: float | None = None,
    ) -> AllFPResult:
        """allFP over the hybrid graph (paths may contain shortcut hops)."""
        self._check_horizon(interval)
        return self._engine_for(source, target).all_fastest_paths(
            source, target, interval, deadline=deadline
        )

    def single_fastest_path(
        self,
        source: int,
        target: int,
        interval: TimeInterval,
        deadline: float | None = None,
    ) -> SingleFPResult:
        """singleFP over the hybrid graph."""
        self._check_horizon(interval)
        return self._engine_for(source, target).single_fastest_path(
            source, target, interval, deadline=deadline
        )

    # ------------------------------------------------------------------
    def expand_path(
        self, path: tuple[int, ...], depart: float
    ) -> tuple[int, ...]:
        """Replace shortcut hops with street-level hops for one departure.

        Each consecutive pair that is not an original edge is re-expanded by
        a fixed-departure search *within its fragment*, evaluated at the
        time the hierarchical plan reaches that hop — so the expansion is
        exactly the path whose arrival function the shortcut stored.
        """
        network = self._index.network
        result: list[int] = [path[0]]
        clock = depart
        for u, v in zip(path, path[1:]):
            if network.has_edge(u, v):
                edge = network.find_edge(u, v)
                from ..patterns.travel_time import traverse

                clock = traverse(
                    edge.distance, edge.pattern, network.calendar, clock
                )
                result.append(v)
                continue
            cell = self._index.cell_of(u)
            if self._index.cell_of(v) != cell:
                raise QueryError(
                    f"hop {u}->{v} is neither an edge nor an intra-fragment "
                    "shortcut"
                )
            view = _FragmentView(
                network, self._index.fragment_members(cell)
            )
            leg = fixed_departure_query(view, u, v, clock)
            result.extend(leg.path[1:])
            clock = leg.arrival
        return tuple(result)
