"""Hierarchical query execution over the hybrid query graph.

For a query (s, e, I) the hybrid graph keeps the source and target fragments
at street level and represents every other fragment by its boundary nodes,
its crossing edges, and the index's precomputed shortcut functions.  The
ordinary IntAllFastestPaths engine runs unchanged on this graph — the
paper's "apply our algorithm … once at the top level" — because the graph
is exposed through the same accessor surface as a real network.
"""

from __future__ import annotations

from ..core.astar import fixed_departure_query
from ..core.engine import IntAllFastestPaths
from ..core.results import AllFPResult, SingleFPResult
from ..core.runtime import (
    DEFAULT_EDGE_CACHE_SIZE,
    EdgeFunctionCache,
    SearchContext,
)
from ..estimators.base import LowerBoundEstimator
from ..estimators.naive import NaiveEstimator
from ..exceptions import NetworkError, QueryError
from ..network.model import CapeCodNetwork, Edge
from ..timeutil import TimeInterval
from .index import HierarchicalIndex, ShortcutEdge
from .overlay import MultiLevelOverlay


class _HybridQueryGraph:
    """Accessor-surface view: full detail near s and e, overlay elsewhere."""

    def __init__(
        self, index: HierarchicalIndex, source: int, target: int
    ) -> None:
        self._index = index
        self._network = index.network
        self._full_cells = {index.cell_of(source), index.cell_of(target)}

    @property
    def calendar(self):
        return self._network.calendar

    def location(self, node: int) -> tuple[float, float]:
        return self._network.location(node)

    def max_speed(self) -> float:
        return self._network.max_speed()

    def outgoing(self, node: int):
        return self.outgoing_from(node, None)

    def outgoing_from(self, node: int, prev: int | None):
        """Edges leaving ``node`` for a label that arrived from ``prev``.

        When the label entered this fragment over a shortcut (``prev`` in
        the same non-endpoint fragment — the only intra-fragment move the
        hybrid graph exposes there), its same-fragment shortcuts are
        suppressed: two chained exact intra-fragment functions are
        pointwise >= the direct shortcut the fragment's entry node already
        relaxed, so the chained labels can never improve any answer.
        """
        cell = self._index.cell_of(node)
        if cell in self._full_cells:
            # Street level: all original edges; crossing edges land on
            # boundary nodes of neighbouring fragments, which the overlay
            # branch below then handles.
            return self._network.outgoing(node)
        edges: list[Edge | ShortcutEdge] = [
            e
            for e in self._network.outgoing(node)
            if self._index.cell_of(e.target) != cell
        ]
        if prev is None or self._index.cell_of(prev) != cell:
            edges.extend(self._index.shortcuts_from(node))
        return edges


class _FragmentView:
    """The subgraph induced by one fragment (for path re-expansion)."""

    def __init__(self, network: CapeCodNetwork, members: frozenset[int]) -> None:
        self._network = network
        self._members = members

    @property
    def calendar(self):
        return self._network.calendar

    def location(self, node: int) -> tuple[float, float]:
        if node not in self._members:
            raise NetworkError(f"node {node} outside fragment")
        return self._network.location(node)

    def outgoing(self, node: int):
        return [
            e
            for e in self._network.outgoing(node)
            if e.target in self._members
        ]


class HierarchicalEngine:
    """Two-level allFP/singleFP queries over a :class:`HierarchicalIndex`.

    Travel times equal the flat engine's exactly; reported paths may take
    shortcut hops between boundary nodes of intermediate fragments — use
    :meth:`expand_path` to materialise street-level hops for a departure
    instant.
    """

    def __init__(
        self,
        index: HierarchicalIndex,
        estimator: LowerBoundEstimator | None = None,
        prune: bool = True,
        *,
        max_pops: int | None = None,
        deadline: float | None = None,
        edge_cache_size: int = DEFAULT_EDGE_CACHE_SIZE,
    ) -> None:
        self._index = index
        self._estimator = estimator
        self._prune = prune
        self._max_pops = max_pops
        self._deadline = deadline
        # Street-edge arrival functions depend only on the edge and the
        # calendar, never on the per-query hybrid view, so one cache stays
        # warm across every query this engine answers.  (Shortcut edges
        # bypass it via their arrival_function provider.)
        self._edge_cache = EdgeFunctionCache(
            index.network.calendar, edge_cache_size
        )

    @property
    def edge_cache(self) -> EdgeFunctionCache:
        return self._edge_cache

    # ------------------------------------------------------------------
    def _engine_for(self, source: int, target: int) -> IntAllFastestPaths:
        graph = _HybridQueryGraph(self._index, source, target)
        estimator = self._estimator or NaiveEstimator(graph)
        return IntAllFastestPaths(
            graph,
            estimator,
            prune=self._prune,
            max_pops=self._max_pops,
            deadline=self._deadline,
            edge_cache=self._edge_cache,
        )

    def _check_horizon(self, interval: TimeInterval) -> None:
        horizon = self._index.horizon
        if interval.start < horizon.start or interval.end > horizon.end:
            raise QueryError(
                f"query interval {interval} outside the index horizon "
                f"{horizon}; rebuild the HierarchicalIndex accordingly"
            )

    def all_fastest_paths(
        self,
        source: int,
        target: int,
        interval: TimeInterval,
        deadline: float | None = None,
    ) -> AllFPResult:
        """allFP over the hybrid graph (paths may contain shortcut hops)."""
        self._check_horizon(interval)
        return self._engine_for(source, target).all_fastest_paths(
            source, target, interval, deadline=deadline
        )

    def single_fastest_path(
        self,
        source: int,
        target: int,
        interval: TimeInterval,
        deadline: float | None = None,
    ) -> SingleFPResult:
        """singleFP over the hybrid graph."""
        self._check_horizon(interval)
        return self._engine_for(source, target).single_fastest_path(
            source, target, interval, deadline=deadline
        )

    # ------------------------------------------------------------------
    def expand_path(
        self, path: tuple[int, ...], depart: float
    ) -> tuple[int, ...]:
        """Replace shortcut hops with street-level hops for one departure.

        Each consecutive pair that is not an original edge is re-expanded by
        a fixed-departure search *within its fragment*, evaluated at the
        time the hierarchical plan reaches that hop — so the expansion is
        exactly the path whose arrival function the shortcut stored.
        """
        network = self._index.network
        result: list[int] = [path[0]]
        clock = depart
        for u, v in zip(path, path[1:]):
            if network.has_edge(u, v):
                edge = network.find_edge(u, v)
                from ..patterns.travel_time import traverse

                clock = traverse(
                    edge.distance, edge.pattern, network.calendar, clock
                )
                result.append(v)
                continue
            cell = self._index.cell_of(u)
            if self._index.cell_of(v) != cell:
                raise QueryError(
                    f"hop {u}->{v} is neither an edge nor an intra-fragment "
                    "shortcut"
                )
            view = _FragmentView(
                network, self._index.fragment_members(cell)
            )
            leg = fixed_departure_query(view, u, v, clock)
            result.extend(leg.path[1:])
            clock = leg.arrival
        return tuple(result)


class _OverlayQueryGraph:
    """Multi-level hybrid view: the search climbs to the coarsest level
    whose cell contains neither endpoint.

    A node in the source or target *base* cell exposes all its street
    edges.  Any other node is seen at its *effective level* — the highest
    level ``k`` whose cell around the node contains neither the source nor
    the target — and exposes exactly its street edges that cross the
    level-``k`` cell border plus its level-``k`` shortcuts.  Nesting makes
    this exact: every node the search reaches at effective level ``k`` got
    there over an edge crossing a level-``k`` border (or a level-``k``
    shortcut), hence is a level-``k`` boundary node and has shortcuts.
    """

    __slots__ = ("_overlay", "_network", "_endpoint_cells")

    def __init__(
        self, overlay: MultiLevelOverlay, source: int, target: int
    ) -> None:
        self._overlay = overlay
        self._network = overlay.network
        self._endpoint_cells = [
            {overlay.cell_at(source, k), overlay.cell_at(target, k)}
            for k in range(overlay.level_count)
        ]

    @property
    def calendar(self):
        return self._network.calendar

    @property
    def node_count(self) -> int:
        return self._network.node_count

    def location(self, node: int) -> tuple[float, float]:
        return self._network.location(node)

    def max_speed(self) -> float:
        return self._network.max_speed()

    def outgoing(self, node: int):
        return self.outgoing_from(node, None)

    def outgoing_from(self, node: int, prev: int | None):
        """Edges leaving ``node`` for a label that arrived from ``prev``.

        Suppresses the level-``k`` clique when the label entered the
        level-``k`` cell over one of its shortcuts — detected as ``prev``
        sharing the cell, since crossing street edges by construction
        leave it (and nodes of an endpoint cell never share a
        non-endpoint effective-level cell).  Exactness: chaining two
        exact intra-cell earliest-arrival functions is pointwise >= the
        direct shortcut, which the cell's entry node relaxed when it was
        expanded, so every suppressed label is dominated by a generated
        one.
        """
        overlay = self._overlay
        cells = self._endpoint_cells
        if overlay.cell_at(node, 0) in cells[0]:
            return self._network.outgoing(node)
        level = 0
        for k in range(overlay.level_count - 1, 0, -1):
            if overlay.cell_at(node, k) not in cells[k]:
                level = k
                break
        cell = overlay.cell_at(node, level)
        edges: list[Edge | ShortcutEdge] = [
            e
            for e in self._network.outgoing(node)
            if overlay.cell_at(e.target, level) != cell
        ]
        if prev is None or overlay.cell_at(prev, level) != cell:
            edges.extend(overlay.shortcuts_from(node, level))
        return edges


class OverlayEngine:
    """allFP/singleFP queries climbing a :class:`MultiLevelOverlay`.

    Travel times equal the flat engine's exactly (see the exactness
    argument in ``overlay.py``); reported paths may take shortcut hops —
    :meth:`expand_path` materialises street-level hops for a departure
    instant.  Pass a service's :class:`~repro.core.runtime.SearchContext`
    to share its warm street-edge cache and default budgets (shortcut
    edges bypass the cache via their ``arrival_function`` provider, so
    sharing one cache across hybrid views is sound).
    """

    def __init__(
        self,
        overlay: MultiLevelOverlay,
        estimator: LowerBoundEstimator | None = None,
        prune: bool = True,
        *,
        max_pops: int | None = None,
        deadline: float | None = None,
        edge_cache_size: int = DEFAULT_EDGE_CACHE_SIZE,
        context: SearchContext | None = None,
    ) -> None:
        self._overlay = overlay
        self._estimator = estimator
        self._prune = prune
        self._max_pops = (
            max_pops
            if max_pops is not None
            else (context.max_pops if context is not None else None)
        )
        self._deadline = (
            deadline
            if deadline is not None
            else (context.deadline if context is not None else None)
        )
        self._edge_cache = (
            context.edge_cache
            if context is not None
            else EdgeFunctionCache(
                overlay.network.calendar, edge_cache_size
            )
        )

    @property
    def overlay(self) -> MultiLevelOverlay:
        return self._overlay

    @property
    def edge_cache(self) -> EdgeFunctionCache:
        return self._edge_cache

    # ------------------------------------------------------------------
    def _engine_for(self, source: int, target: int) -> IntAllFastestPaths:
        graph = _OverlayQueryGraph(self._overlay, source, target)
        estimator = self._estimator or NaiveEstimator(graph)
        return IntAllFastestPaths(
            graph,
            estimator,
            prune=self._prune,
            max_pops=self._max_pops,
            deadline=self._deadline,
            edge_cache=self._edge_cache,
        )

    def _check_horizon(self, interval: TimeInterval) -> None:
        horizon = self._overlay.horizon
        if interval.start < horizon.start or interval.end > horizon.end:
            raise QueryError(
                f"query interval {interval} outside the overlay horizon "
                f"{horizon}; rebuild the overlay accordingly"
            )

    def all_fastest_paths(
        self,
        source: int,
        target: int,
        interval: TimeInterval,
        deadline: float | None = None,
    ) -> AllFPResult:
        """allFP over the overlay (paths may contain shortcut hops)."""
        self._check_horizon(interval)
        return self._engine_for(source, target).all_fastest_paths(
            source, target, interval, deadline=deadline
        )

    def single_fastest_path(
        self,
        source: int,
        target: int,
        interval: TimeInterval,
        deadline: float | None = None,
    ) -> SingleFPResult:
        """singleFP over the overlay."""
        self._check_horizon(interval)
        return self._engine_for(source, target).single_fastest_path(
            source, target, interval, deadline=deadline
        )

    # ------------------------------------------------------------------
    def _shortcut_level(self, u: int, v: int) -> int | None:
        """The lowest level storing a shortcut ``u -> v``, or ``None``."""
        for k in range(self._overlay.level_count):
            for sc in self._overlay.shortcuts_from(u, k):
                if sc.target == v:
                    return k
        return None

    def expand_path(
        self, path: tuple[int, ...], depart: float
    ) -> tuple[int, ...]:
        """Replace shortcut hops with street-level hops for one departure.

        A level-``k`` shortcut's function is the exact street-level
        earliest arrival between its endpoints within the level-``k``
        cell, so re-running a fixed-departure search over the street
        subgraph of that cell (at the instant the plan reaches the hop)
        reproduces the path the shortcut summarised.
        """
        network = self._overlay.network
        result: list[int] = [path[0]]
        clock = depart
        for u, v in zip(path, path[1:]):
            if network.has_edge(u, v):
                edge = network.find_edge(u, v)
                from ..patterns.travel_time import traverse

                clock = traverse(
                    edge.distance, edge.pattern, network.calendar, clock
                )
                result.append(v)
                continue
            level = self._shortcut_level(u, v)
            if level is None:
                raise QueryError(
                    f"hop {u}->{v} is neither an edge nor a stored "
                    "overlay shortcut"
                )
            view = _FragmentView(
                network, self._overlay.members_at(u, level)
            )
            leg = fixed_departure_query(view, u, v, clock)
            result.extend(leg.path[1:])
            clock = leg.arrival
        return tuple(result)
