"""Multi-level time-dependent overlays with flat-array shortcut storage.

The single-level :class:`~repro.hierarchy.index.HierarchicalIndex` keeps one
``ShortcutEdge`` object per boundary pair; at metro scale that is millions of
Python objects before the first query runs.  :class:`MultiLevelOverlay`
replaces it with the customisable-route-planning layout (Strasser's
"Intriguingly Simple and Efficient Time-Dependent Routing", PAPERS.md):

* the base grid partition is coarsened recursively — ``fanout × fanout``
  cells merge into one super-cell per level — giving nested partitions where
  every level-``k`` cell border is also a level-``j`` border for all
  ``j <= k``;
* per level, exact boundary-to-boundary earliest-arrival *functions* are
  built bottom-up: level 0 searches the raw street graph inside each base
  cell, level ``k`` searches the level-``k-1`` overlay graph (previous
  shortcuts plus edges crossing level-``k-1`` borders) inside each
  super-cell, so each level's work shrinks with the boundary count instead
  of the street count;
* shortcut functions live in five flat ``array`` stores per level
  (``src``/``dst``/breakpoint offsets/``xs``/``ys``) — snapshot-friendly,
  ``mmap``-able, and materialised into edge objects lazily per queried node;
* per-cell profile searches fan out across the same fork-preferring process
  pool as the estimator precompute, with a serial fallback that produces
  bitwise-identical arrays.

Exactness argument (used by the engine's level rule, see ``engine.py``):
within one level-``k`` cell, any street path between two level-``k``
boundary nodes decomposes at level-``k-1`` borders; every intra-cell segment
is dominated by a level-``k-1`` shortcut and every border crossing is an
original edge, both present in the level-``k-1`` overlay graph — so the
level-``k`` profile search returns the true street-level minimum.
"""

from __future__ import annotations

import time
from array import array
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..core.profile import profile_search
from ..core.runtime import QueryTimeout, SearchBudgetExceeded, SearchContext
from ..core.results import SearchStats
from ..estimators.grid import GridPartition
from ..exceptions import QueryError
from ..func.monotone import MonotonePiecewiseLinear
from ..timeutil import TimeInterval, days
from .index import ShortcutEdge

#: array typecodes of the flat shortcut stores (shared with the snapshot
#: format: node ids and offsets are signed 64-bit, breakpoints are f64).
NODE_TYPECODE = "q"
OFFSET_TYPECODE = "q"
VALUE_TYPECODE = "d"


@dataclass
class LevelStats:
    """Size/effort summary of one overlay level's build."""

    level: int = 0
    nx: int = 0
    ny: int = 0
    cells: int = 0
    boundary_nodes: int = 0
    shortcuts: int = 0
    breakpoints: int = 0
    profile_searches: int = 0
    expanded_paths: int = 0
    build_seconds: float = 0.0


@dataclass
class OverlayStats:
    """Whole-build summary (one entry per level plus totals)."""

    levels: list[LevelStats] = field(default_factory=list)
    workers_used: int = 1
    build_seconds: float = 0.0

    @property
    def shortcuts(self) -> int:
        return sum(lv.shortcuts for lv in self.levels)

    @property
    def breakpoints(self) -> int:
        return sum(lv.breakpoints for lv in self.levels)


class OverlayLevel:
    """One level's shortcuts in five flat arrays.

    ``src``/``dst`` hold one row per shortcut, grouped by source node (each
    node belongs to exactly one cell, and the build appends whole cells, so
    grouping is contiguous by construction).  ``off[i]:off[i+1]`` indexes the
    row's breakpoints in ``xs``/``ys``.  The stores may be ``array`` objects
    or read-only memoryviews over an ``mmap``'ed snapshot; either way,
    :meth:`shortcuts_from` materialises (and memoises) per-node
    :class:`~repro.hierarchy.index.ShortcutEdge` tuples on demand, so cold
    levels cost no objects.
    """

    __slots__ = (
        "level",
        "nx",
        "ny",
        "src",
        "dst",
        "off",
        "xs",
        "ys",
        "stats",
        "_rows",
        "_edges",
    )

    def __init__(
        self,
        level: int,
        nx: int,
        ny: int,
        src,
        dst,
        off,
        xs,
        ys,
        stats: LevelStats | None = None,
    ) -> None:
        if len(src) != len(dst) or len(off) != len(src) + 1:
            raise QueryError(
                f"overlay level {level}: shortcut arrays disagree "
                f"({len(src)} src, {len(dst)} dst, {len(off)} offsets)"
            )
        self.level = level
        self.nx = nx
        self.ny = ny
        self.src = src
        self.dst = dst
        self.off = off
        self.xs = xs
        self.ys = ys
        self.stats = stats or LevelStats(level=level, nx=nx, ny=ny)
        # source node -> (first_row, past_last_row); rows are grouped by
        # source, so one range per node suffices.
        rows: dict[int, tuple[int, int]] = {}
        current = None
        start = 0
        for i, s in enumerate(src):
            if s != current:
                if current is not None:
                    rows[current] = (start, i)
                if s in rows:
                    raise QueryError(
                        f"overlay level {level}: shortcut rows for node {s} "
                        "are not contiguous"
                    )
                current, start = s, i
        if current is not None:
            rows[current] = (start, len(src))
        self._rows = rows
        self._edges: dict[int, tuple[ShortcutEdge, ...]] = {}

    @property
    def shortcut_count(self) -> int:
        return len(self.src)

    @property
    def breakpoint_count(self) -> int:
        return len(self.xs)

    def shortcuts_from(self, node: int) -> tuple[ShortcutEdge, ...]:
        """Shortcut edges leaving ``node`` (empty for non-boundary nodes)."""
        cached = self._edges.get(node)
        if cached is not None:
            return cached
        span = self._rows.get(node)
        if span is None:
            return ()
        lo, hi = span
        edges = []
        for row in range(lo, hi):
            a, b = self.off[row], self.off[row + 1]
            # The validating constructor keeps a corrupt snapshot from
            # silently serving a non-monotone arrival function.
            fn = MonotonePiecewiseLinear(
                list(zip(self.xs[a:b], self.ys[a:b]))
            )
            edges.append(ShortcutEdge(node, self.dst[row], fn))
        result = tuple(edges)
        self._edges[node] = result
        return result

    def rows(self) -> Iterable[tuple[int, int, tuple, tuple]]:
        """Raw ``(src, dst, xs, ys)`` rows — for tests and diagnostics."""
        for row in range(len(self.src)):
            a, b = self.off[row], self.off[row + 1]
            yield (
                self.src[row],
                self.dst[row],
                tuple(self.xs[a:b]),
                tuple(self.ys[a:b]),
            )


class _LevelBuildGraph:
    """The overlay graph of level ``k-1``, used to build level ``k``.

    ``outgoing`` of a level-``k-1`` boundary node is its original edges that
    cross a level-``k-1`` border plus its level-``k-1`` shortcuts; for
    ``k == 0`` it is simply the street graph.  Exposes the accessor surface
    ``profile_search`` needs.
    """

    __slots__ = ("_network", "_overlay", "_below")

    def __init__(self, network, overlay: "MultiLevelOverlay", level: int) -> None:
        self._network = network
        self._overlay = overlay if level > 0 else None
        self._below = level - 1

    @property
    def calendar(self):
        return self._network.calendar

    @property
    def node_count(self) -> int:
        return self._network.node_count

    def location(self, node: int) -> tuple[float, float]:
        return self._network.location(node)

    def max_speed(self) -> float:
        return self._network.max_speed()

    def outgoing(self, node: int):
        if self._overlay is None:
            return self._network.outgoing(node)
        overlay = self._overlay
        below = self._below
        cell = overlay.cell_at(node, below)
        edges = [
            e
            for e in self._network.outgoing(node)
            if overlay.cell_at(e.target, below) != cell
        ]
        edges.extend(overlay.levels[below].shortcuts_from(node))
        return edges


# ----------------------------------------------------------------------
# Parallel build plumbing (mirrors repro.estimators.precompute)
# ----------------------------------------------------------------------
_WORKER_STATE: dict | None = None


def _init_worker(state: dict) -> None:  # pragma: no cover - worker process
    global _WORKER_STATE
    _WORKER_STATE = state


def _cell_job(state: dict, cell_index: int, boundary: Sequence[int]):
    """All boundary profile searches of one cell.

    Returns ``("ok", rows, searches, expanded)`` with deterministic row
    order (sorted boundary sources, sorted targets), or a typed failure
    marker — budget/timeout errors carry unpicklable partial stats, so they
    cross the pool as tuples and are re-raised in the parent.
    """
    overlay: MultiLevelOverlay = state["overlay"]
    level: int = state["level"]
    graph = _LevelBuildGraph(overlay.network, overlay, level)
    context: SearchContext = state.setdefault(
        "context", SearchContext(graph, max_pops=state["max_pops"])
    )
    horizon: TimeInterval = state["horizon"]
    deadline_at = state["deadline_at"]
    in_cell = (
        lambda n, c=cell_index, k=level, ov=overlay: ov.cell_at(n, k) == c
    )
    targets = frozenset(boundary)
    rows: list[tuple[int, int, tuple, tuple]] = []
    searches = 0
    expanded = 0
    try:
        for b in boundary:
            budget = (
                {}
                if deadline_at is None
                else {"deadline": max(deadline_at - time.monotonic(), 0.0)}
            )
            result = profile_search(
                graph,
                b,
                horizon,
                node_filter=in_cell,
                targets=targets,
                context=context,
                **budget,
            )
            searches += 1
            expanded += result.stats.expanded_paths
            for other in sorted(result.profiles):
                if other == b:
                    continue
                fn = result.profiles[other]
                points = fn.breakpoints
                rows.append(
                    (
                        b,
                        other,
                        tuple(p[0] for p in points),
                        tuple(p[1] for p in points),
                    )
                )
    except QueryTimeout as exc:
        return ("timeout", exc.deadline, searches, expanded)
    except SearchBudgetExceeded as exc:
        return ("budget", exc.budget, exc.what, searches)
    return ("ok", rows, searches, expanded)


def _cell_task(args):  # pragma: no cover - executed in worker processes
    cell_index, boundary = args
    assert _WORKER_STATE is not None, "pool initializer did not run"
    return _cell_job(_WORKER_STATE, cell_index, boundary)


def _make_pool(workers: int, state: dict):
    """A fork-preferring multiprocessing pool, or ``None`` when unavailable."""
    try:
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else methods[0]
        )
        return ctx.Pool(
            processes=workers, initializer=_init_worker, initargs=(state,)
        )
    except Exception:
        return None


class MultiLevelOverlay:
    """Nested partitions plus per-level flat-array shortcut functions.

    Build with :meth:`build`; persist inside an RPRESNAP v2 snapshot via
    :func:`repro.estimators.snapshot.save_tables` and re-attach with
    ``load_overlay``/``map_overlay``.  Queries go through
    :class:`~repro.hierarchy.engine.OverlayEngine`.
    """

    def __init__(
        self,
        network,
        grid: GridPartition,
        fanout: int,
        horizon: TimeInterval,
        levels: list[OverlayLevel],
        stats: OverlayStats | None = None,
        horizon_pad: float = 720.0,
    ) -> None:
        self._network = network
        self._grid = grid
        self._fanout = fanout
        self._horizon = horizon
        self._horizon_pad = horizon_pad
        self.levels = levels
        self.stats = stats or OverlayStats(
            levels=[lv.stats for lv in levels]
        )
        nx0, ny0 = grid.shape
        # Per-level divisors: base cell (cx, cy) -> super-cell (cx//f^k, cy//f^k).
        self._divisors = [fanout**k for k in range(len(levels))]
        self._dims = [_level_dims(nx0, ny0, fanout, k) for k in range(len(levels))]

    # ------------------------------------------------------------------
    @property
    def network(self):
        return self._network

    @property
    def grid(self) -> GridPartition:
        return self._grid

    @property
    def fanout(self) -> int:
        return self._fanout

    @property
    def horizon(self) -> TimeInterval:
        return self._horizon

    @property
    def level_count(self) -> int:
        return len(self.levels)

    def level_dims(self, level: int) -> tuple[int, int]:
        return self._dims[level]

    def cell_at(self, node: int, level: int) -> int:
        """The node's cell index at ``level`` (level 0 = the base grid)."""
        base = self._grid.cell_of_node(node)
        if level == 0:
            return base
        nx0 = self._grid.shape[0]
        div = self._divisors[level]
        return (base // nx0 // div) * self._dims[level][0] + (base % nx0) // div

    def shortcuts_from(self, node: int, level: int) -> tuple[ShortcutEdge, ...]:
        return self.levels[level].shortcuts_from(node)

    def members_at(self, node: int, level: int) -> frozenset[int]:
        """Every node sharing ``node``'s level-``level`` cell (path expansion)."""
        cell = self.cell_at(node, level)
        return frozenset(
            n for n in self._network.node_ids() if self.cell_at(n, level) == cell
        )

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        network,
        levels: int = 2,
        nx: int = 8,
        ny: int | None = None,
        fanout: int = 2,
        horizon: TimeInterval | None = None,
        *,
        workers: int = 1,
        max_pops: int | None = None,
        deadline: float | None = None,
        horizon_pad: float = 720.0,
    ) -> "MultiLevelOverlay":
        """Build a ``levels``-deep overlay bottom-up.

        Parameters mirror :class:`~repro.hierarchy.index.HierarchicalIndex`:
        ``max_pops`` bounds each boundary profile search, ``deadline`` is a
        wall-clock budget **for the whole build** (each search gets the
        remaining time; both are enforced through ``SearchContext`` in the
        serial and the parallel path).  ``workers > 1`` fans the per-cell
        searches across a fork-preferring process pool, one pool per level
        (levels are sequential by construction); results are bitwise
        identical to the serial build.

        ``horizon_pad`` (minutes) widens lower levels' departure windows:
        level ``k`` is built over ``[start, end + pad·(levels-1-k)]``
        because the level-``k+1`` search composes level-``k`` functions at
        departures up to its own horizon end **plus intra-super-cell
        travel**.  The default allows 12 h of travel inside one cell; a
        build whose cells are slower than that fails with the shortcut
        window error, naming the fix.
        """
        if levels < 1:
            raise QueryError(f"overlay needs levels >= 1, got {levels}")
        if fanout < 2:
            raise QueryError(f"overlay needs fanout >= 2, got {fanout}")
        ny = nx if ny is None else ny
        started = time.monotonic()
        deadline_at = None if deadline is None else started + deadline
        grid = GridPartition(network, nx, ny)
        horizon = horizon or TimeInterval(0.0, days(2))
        overlay = cls(
            network, grid, fanout, horizon, [], OverlayStats(), horizon_pad
        )
        overlay.stats.workers_used = max(1, workers)

        boundaries = _boundaries_by_level(network, grid, fanout, levels)
        for level in range(levels):
            level_started = time.monotonic()
            lnx, lny = _level_dims(nx, ny, fanout, level)
            # Register the (still empty) level so cell_at works for it.
            placeholder = OverlayLevel(
                level,
                lnx,
                lny,
                array(NODE_TYPECODE),
                array(NODE_TYPECODE),
                array(OFFSET_TYPECODE, [0]),
                array(VALUE_TYPECODE),
                array(VALUE_TYPECODE),
            )
            overlay.levels.append(placeholder)
            overlay._divisors.append(fanout**level)
            overlay._dims.append((lnx, lny))

            tasks = [
                (cell, tuple(sorted(nodes)))
                for cell, nodes in sorted(boundaries[level].items())
                if nodes
            ]
            level_horizon = TimeInterval(
                horizon.start,
                horizon.end + horizon_pad * (levels - 1 - level),
            )
            state = {
                "overlay": overlay,
                "level": level,
                "horizon": level_horizon,
                "max_pops": max_pops,
                "deadline_at": deadline_at,
            }
            results = _run_level(tasks, state, workers)

            src = array(NODE_TYPECODE)
            dst = array(NODE_TYPECODE)
            off = array(OFFSET_TYPECODE, [0])
            xs = array(VALUE_TYPECODE)
            ys = array(VALUE_TYPECODE)
            stats = LevelStats(
                level=level,
                nx=lnx,
                ny=lny,
                cells=len(tasks),
                boundary_nodes=sum(len(t[1]) for t in tasks),
            )
            for outcome in results:
                kind = outcome[0]
                if kind == "timeout":
                    raise QueryTimeout(
                        outcome[1], SearchStats(timed_out=True)
                    )
                if kind == "budget":
                    raise SearchBudgetExceeded(
                        outcome[1], SearchStats(), what=outcome[2]
                    )
                _, rows, searches, expanded = outcome
                stats.profile_searches += searches
                stats.expanded_paths += expanded
                for s, t, row_xs, row_ys in rows:
                    src.append(s)
                    dst.append(t)
                    xs.extend(row_xs)
                    ys.extend(row_ys)
                    off.append(len(xs))
            stats.shortcuts = len(src)
            stats.breakpoints = len(xs)
            stats.build_seconds = time.monotonic() - level_started
            overlay.levels[level] = OverlayLevel(
                level, lnx, lny, src, dst, off, xs, ys, stats
            )
            overlay.stats.levels.append(stats)
        overlay.stats.build_seconds = time.monotonic() - started
        # Drop the duplicated divisor/dim entries from the placeholder loop.
        overlay._divisors = [fanout**k for k in range(levels)]
        overlay._dims = [_level_dims(nx, ny, fanout, k) for k in range(levels)]
        return overlay

    # ------------------------------------------------------------------
    def refresh_delta(
        self,
        mutations,
        *,
        workers: int = 1,
        max_pops: int | None = None,
        deadline: float | None = None,
    ) -> int:
        """Re-customize only the cells an edge-pattern mutation can reach.

        ``mutations`` is any sequence of objects with ``source``/``target``
        attributes (``AppliedMutation`` records from the live-update path).
        Because the profile search of a cell skips every edge whose target
        lies outside the cell, a mutated edge ``(u, v)`` influences a
        level-``k`` cell's shortcut rows **iff** both endpoints share that
        cell — and nested partitions make the set of touched cells per
        level exactly ``{cell_k(u) : cell_k(u) == cell_k(v)}``, which also
        covers the lift of every touched lower-level cell.  Touched cells
        are recomputed bottom-up against the already-refreshed lower level
        with the same per-level horizon arithmetic as :meth:`build`, then
        their rows are spliced into fresh flat arrays (cells are contiguous
        in sorted order by construction), so the result is byte-identical
        to a from-scratch rebuild.  Returns the number of recomputed cells.

        Topology must be unchanged — only speed patterns may differ from
        the build-time network — so grids and boundary sets stay valid.
        """
        levels = len(self.levels)
        if levels == 0:
            return 0
        started = time.monotonic()
        deadline_at = None if deadline is None else started + deadline
        touched: list[set[int]] = [set() for _ in range(levels)]
        for m in mutations:
            for k in range(levels):
                cu = self.cell_at(m.source, k)
                if cu == self.cell_at(m.target, k):
                    touched[k].add(cu)
        if not any(touched):
            return 0
        boundaries = _boundaries_by_level(
            self._network, self._grid, self._fanout, levels
        )
        recomputed = 0
        for level in range(levels):
            if not touched[level]:
                continue
            level_started = time.monotonic()
            tasks = [
                (cell, tuple(sorted(boundaries[level].get(cell, ()))))
                for cell in sorted(touched[level])
            ]
            tasks = [(cell, nodes) for cell, nodes in tasks if nodes]
            if not tasks:
                continue
            level_horizon = TimeInterval(
                self._horizon.start,
                self._horizon.end + self._horizon_pad * (levels - 1 - level),
            )
            state = {
                "overlay": self,
                "level": level,
                "horizon": level_horizon,
                "max_pops": max_pops,
                "deadline_at": deadline_at,
            }
            results = _run_level(tasks, state, workers)
            fresh_rows: dict[int, list] = {}
            searches = 0
            expanded = 0
            for (cell, _), outcome in zip(tasks, results):
                kind = outcome[0]
                if kind == "timeout":
                    raise QueryTimeout(outcome[1], SearchStats(timed_out=True))
                if kind == "budget":
                    raise SearchBudgetExceeded(
                        outcome[1], SearchStats(), what=outcome[2]
                    )
                _, rows, cell_searches, cell_expanded = outcome
                fresh_rows[cell] = rows
                searches += cell_searches
                expanded += cell_expanded
            # Swapping ``levels[level]`` in place is visible to every live
            # _LevelBuildGraph / query graph holding this overlay, and the
            # next iteration's level builds against the refreshed rows.
            self.levels[level] = self._splice_level(
                self.levels[level],
                level,
                touched[level],
                fresh_rows,
                searches,
                expanded,
                time.monotonic() - level_started,
            )
            if level < len(self.stats.levels):
                self.stats.levels[level] = self.levels[level].stats
            recomputed += len(tasks)
        self.stats.build_seconds += time.monotonic() - started
        return recomputed

    def _splice_level(
        self,
        old: OverlayLevel,
        level: int,
        touched: set[int],
        fresh_rows: dict[int, list],
        searches: int,
        expanded: int,
        elapsed: float,
    ) -> OverlayLevel:
        """A new :class:`OverlayLevel` with touched cells' rows replaced.

        Works for ``array`` and ``mmap``-backed stores alike: untouched
        cells' rows are copied out of the old views, touched cells get the
        freshly computed rows, offsets are rebuilt as the splice runs.
        """
        cell_of = lambda node: self.cell_at(node, level)  # noqa: E731
        old_spans: dict[int, tuple[int, int]] = {}
        current: int | None = None
        start = 0
        for i in range(len(old.src)):
            cell = cell_of(old.src[i])
            if cell != current:
                if current is not None:
                    old_spans[current] = (start, i)
                if cell in old_spans:
                    raise QueryError(
                        f"overlay level {level}: rows of cell {cell} are not "
                        "contiguous; cannot splice a delta refresh"
                    )
                current, start = cell, i
        if current is not None:
            old_spans[current] = (start, len(old.src))

        src = array(NODE_TYPECODE)
        dst = array(NODE_TYPECODE)
        off = array(OFFSET_TYPECODE, [0])
        xs = array(VALUE_TYPECODE)
        ys = array(VALUE_TYPECODE)
        for cell in sorted(set(old_spans) | set(fresh_rows)):
            if cell in touched:
                for s, t, row_xs, row_ys in fresh_rows.get(cell, ()):
                    src.append(s)
                    dst.append(t)
                    xs.extend(row_xs)
                    ys.extend(row_ys)
                    off.append(len(xs))
            else:
                lo, hi = old_spans[cell]
                src.extend(old.src[lo:hi])
                dst.extend(old.dst[lo:hi])
                for row in range(lo, hi):
                    a, b = old.off[row], old.off[row + 1]
                    xs.extend(old.xs[a:b])
                    ys.extend(old.ys[a:b])
                    off.append(len(xs))

        stats = LevelStats(
            level=level,
            nx=old.nx,
            ny=old.ny,
            cells=old.stats.cells,
            boundary_nodes=old.stats.boundary_nodes,
            shortcuts=len(src),
            breakpoints=len(xs),
            profile_searches=old.stats.profile_searches + searches,
            expanded_paths=old.stats.expanded_paths + expanded,
            build_seconds=old.stats.build_seconds + elapsed,
        )
        return OverlayLevel(
            level, old.nx, old.ny, src, dst, off, xs, ys, stats
        )

    # ------------------------------------------------------------------
    def fingerprint_grid(self) -> tuple[int, int]:
        return self._grid.shape


def _level_dims(nx: int, ny: int, fanout: int, level: int) -> tuple[int, int]:
    div = fanout**level
    return (max(1, -(-nx // div)), max(1, -(-ny // div)))


def _boundaries_by_level(
    network, grid: GridPartition, fanout: int, levels: int
) -> list[dict[int, set[int]]]:
    """Per level, ``{cell_index: boundary node set}`` in one edge pass.

    A node is level-``k`` boundary when one of its edges crosses a level-``k``
    cell border; nesting means every level-``k`` boundary node is also
    boundary at every level below.
    """
    nx0, ny0 = grid.shape
    dims = [_level_dims(nx0, ny0, fanout, k) for k in range(levels)]
    divisors = [fanout**k for k in range(levels)]
    cell_of = grid.cell_of_node

    def lift(base: int, k: int) -> int:
        return ((base // nx0) // divisors[k]) * dims[k][0] + (
            base % nx0
        ) // divisors[k]

    out: list[dict[int, set[int]]] = [{} for _ in range(levels)]
    for edge in network.edges():
        cu = cell_of(edge.source)
        cv = cell_of(edge.target)
        if cu == cv:
            continue
        for k in range(levels):
            ku = lift(cu, k) if k else cu
            kv = lift(cv, k) if k else cv
            if ku == kv:
                # Nested partitions: once two nodes share a cell they share
                # every coarser cell too.
                break
            out[k].setdefault(ku, set()).add(edge.source)
            out[k].setdefault(kv, set()).add(edge.target)
    return out


def _run_level(tasks, state: dict, workers: int) -> list:
    """Run one level's cell jobs, in order, serially or across a pool."""
    if workers <= 1 or len(tasks) <= 1:
        return [_cell_job(state, cell, boundary) for cell, boundary in tasks]
    pool = _make_pool(min(workers, len(tasks)), state)
    if pool is None:
        return [_cell_job(state, cell, boundary) for cell, boundary in tasks]
    try:
        chunk = max(1, len(tasks) // (4 * workers))
        return pool.map(_cell_task, tasks, chunksize=chunk)
    finally:
        pool.terminate()
        pool.join()
