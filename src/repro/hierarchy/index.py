"""Fragment partitioning and shortcut materialisation.

A :class:`HierarchicalIndex` is the query-independent precomputation: grid
fragments plus, per fragment, exact boundary-to-boundary earliest-arrival
functions over a configurable time horizon.  Building it costs one profile
search per boundary node (each restricted to its small fragment); the paper
sizes fragments "equal to the size of the network explored in our
experiments".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core.profile import profile_search
from ..core.runtime import SearchContext
from ..estimators.grid import GridPartition
from ..exceptions import QueryError
from ..func.monotone import MonotonePiecewiseLinear
from ..network.model import CapeCodNetwork
from ..timeutil import TimeInterval, days


@dataclass(frozen=True)
class ShortcutEdge:
    """A boundary-to-boundary overlay edge carrying an arrival function.

    Duck-types the parts of :class:`~repro.network.model.Edge` the query
    engine touches (``source``, ``target``) and supplies its arrival
    function directly instead of via a speed pattern.
    """

    source: int
    target: int
    profile: MonotonePiecewiseLinear
    #: Distinguishes shortcut functions from pattern-derived ones in the
    #: engine's edge-function cache.
    cache_tag: int = 1
    #: Fastest-ever traversal, precomputed so the engine's pre-compose
    #: bound prune pays a field read instead of a function allocation.
    min_tt: float = field(init=False)

    def __post_init__(self) -> None:
        profile = self.profile
        object.__setattr__(
            self,
            "min_tt",
            min(y - x for x, y in zip(profile._xs, profile._ys)),
        )

    def arrival_function(
        self, lo: float, hi: float
    ) -> MonotonePiecewiseLinear:
        """The stored profile, after checking it covers ``[lo, hi]``.

        The profile spans the whole build horizon (days) while a label's
        window is minutes, but returning it unclipped is free: ``compose``
        seeks to the inner window with a bisect, so downstream cost scales
        with the window's breakpoints, not the horizon's.
        """
        profile = self.profile
        if lo < profile.x_min - 1e-6 or hi > profile.x_max + 1e-6:
            raise QueryError(
                f"shortcut {self.source}->{self.target} only covers "
                f"departures in [{profile.x_min}, {profile.x_max}]; "
                f"requested [{lo}, {hi}] — rebuild the HierarchicalIndex "
                "with a wider horizon"
            )
        return profile

    @property
    def min_travel_time(self) -> float:
        """Fastest-ever traversal of the shortcut (used for diagnostics)."""
        return self.min_tt


@dataclass
class IndexStats:
    """Size/effort summary of one build."""

    fragments: int = 0
    boundary_nodes: int = 0
    shortcuts: int = 0
    profile_searches: int = 0
    total_breakpoints: int = 0
    #: Aggregated over all boundary profile searches of the build.
    expanded_paths: int = 0
    build_seconds: float = 0.0


class HierarchicalIndex:
    """Fragments + shortcut functions for a network.

    Parameters
    ----------
    network:
        The full in-memory network (building needs whole-graph access).
    nx, ny:
        Fragment grid resolution.
    horizon:
        Departure-time horizon the shortcuts must cover.  Defaults to two
        days from time 0, which accommodates any same-week query; queries
        whose expansions leave the horizon raise a descriptive error.
    max_pops:
        Per-boundary-search pop budget; exceeded aborts the build with
        :class:`~repro.core.runtime.SearchBudgetExceeded`.
    deadline:
        Wall-clock budget **in seconds for the whole build**; each boundary
        search gets the remaining time, so exceeding it aborts with
        :class:`~repro.core.runtime.QueryTimeout` carrying partial stats.
    context:
        An existing :class:`~repro.core.runtime.SearchContext` to build on;
        all boundary searches share its warm edge-function cache.
    """

    def __init__(
        self,
        network: CapeCodNetwork,
        nx: int = 4,
        ny: int = 4,
        horizon: TimeInterval | None = None,
        *,
        max_pops: int | None = None,
        deadline: float | None = None,
        context: SearchContext | None = None,
    ) -> None:
        self._network = network
        self._grid = GridPartition(network, nx, ny)
        self._horizon = horizon or TimeInterval(0.0, days(2))
        self._shortcuts_by_source: dict[int, list[ShortcutEdge]] = {}
        self._context = context or SearchContext(network, max_pops=max_pops)
        self._deadline = deadline
        self.stats = IndexStats(fragments=len(self._grid.non_empty_cells()))
        self._build()

    def _build(self) -> None:
        started = time.monotonic()
        deadline_at = (
            None if self._deadline is None else started + self._deadline
        )
        for cell in self._grid.non_empty_cells():
            members = cell.members
            in_fragment = members.__contains__
            self.stats.boundary_nodes += len(cell.boundary)
            for b in cell.boundary:
                budget = (
                    {}
                    if deadline_at is None
                    else {
                        "deadline": max(deadline_at - time.monotonic(), 0.0)
                    }
                )
                result = profile_search(
                    self._network,
                    b,
                    self._horizon,
                    node_filter=in_fragment,
                    targets=cell.boundary,
                    context=self._context,
                    **budget,
                )
                profiles = result.profiles
                self.stats.profile_searches += 1
                self.stats.expanded_paths += result.stats.expanded_paths
                for other, fn in profiles.items():
                    if other == b:
                        continue
                    shortcut = ShortcutEdge(b, other, fn)
                    self._shortcuts_by_source.setdefault(b, []).append(
                        shortcut
                    )
                    self.stats.shortcuts += 1
                    self.stats.total_breakpoints += len(fn)
        self.stats.build_seconds = time.monotonic() - started

    # ------------------------------------------------------------------
    # Persistence: the build is the expensive part, so indexes can be
    # saved and re-attached to the same network later.
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Write the index (grid shape, horizon, shortcut functions) as JSON."""
        import json

        doc = {
            "format": "repro-hierarchical-index",
            "version": 1,
            "grid": list(self._grid.shape),
            "horizon": [self._horizon.start, self._horizon.end],
            "network_fingerprint": self._fingerprint(),
            "shortcuts": [
                [s.source, s.target, [list(p) for p in s.profile.breakpoints]]
                for edges in self._shortcuts_by_source.values()
                for s in edges
            ],
        }
        from pathlib import Path

        Path(path).write_text(json.dumps(doc))

    @classmethod
    def load(cls, network: CapeCodNetwork, path) -> "HierarchicalIndex":
        """Re-attach a saved index to the (identical) network it was built on."""
        import json
        from pathlib import Path

        doc = json.loads(Path(path).read_text())
        if doc.get("format") != "repro-hierarchical-index":
            raise QueryError(f"{path}: not a hierarchical index file")
        if doc.get("version") != 1:
            raise QueryError(f"{path}: unsupported index version")
        index = object.__new__(cls)
        index._network = network
        index._context = SearchContext(network)
        index._deadline = None
        nx, ny = doc["grid"]
        index._grid = GridPartition(network, nx, ny)
        index._horizon = TimeInterval(*doc["horizon"])
        index._shortcuts_by_source = {}
        index.stats = IndexStats(
            fragments=len(index._grid.non_empty_cells())
        )
        if doc["network_fingerprint"] != index._fingerprint():
            raise QueryError(
                f"{path}: index was built for a different network"
            )
        for source, target, points in doc["shortcuts"]:
            shortcut = ShortcutEdge(
                source,
                target,
                MonotonePiecewiseLinear([tuple(p) for p in points]),
            )
            index._shortcuts_by_source.setdefault(source, []).append(shortcut)
            index.stats.shortcuts += 1
            index.stats.total_breakpoints += len(shortcut.profile)
        index.stats.boundary_nodes = sum(
            len(c.boundary) for c in index._grid.non_empty_cells()
        )
        return index

    def _fingerprint(self) -> list:
        """Cheap identity check binding an index to its network."""
        bbox = self._network.bounding_box()
        return [
            self._network.node_count,
            self._network.edge_count,
            [round(v, 9) for v in bbox],
        ]

    # ------------------------------------------------------------------
    @property
    def network(self) -> CapeCodNetwork:
        return self._network

    @property
    def grid(self) -> GridPartition:
        return self._grid

    @property
    def horizon(self) -> TimeInterval:
        return self._horizon

    def shortcuts_from(self, node: int) -> list[ShortcutEdge]:
        """Shortcut edges leaving a boundary node (empty for interior nodes)."""
        return self._shortcuts_by_source.get(node, [])

    def cell_of(self, node: int) -> int:
        return self._grid.cell_of_node(node)

    def fragment_members(self, cell_index: int) -> frozenset[int]:
        return self._grid.cell(cell_index).members
