"""Hierarchical fastest-path computation (system S15 in DESIGN.md).

§6.1 of the paper argues its algorithm "can easily scale in larger networks
by employing hierarchical network partitioning [9, 7, 8, 16] … applying our
algorithm few more times (twice at each level of the hierarchy and once at
the top level)".  This package implements that two-level scheme:

* the network is partitioned into spatial *fragments* (the same grid
  machinery as the boundary-node estimator),
* for every fragment, exact earliest-arrival **shortcut functions** between
  its boundary nodes are precomputed with profile search
  (:func:`~repro.core.profile.arrival_profile`) restricted to the fragment,
* a query runs the ordinary IntAllFastestPaths engine over a *hybrid query
  graph*: the source and target fragments at full detail, everything else
  collapsed to boundary nodes connected by crossing edges and shortcuts.

Travel times are exact (each shortcut is the pointwise minimum over all
intra-fragment paths); reported paths contain shortcut hops, which
:meth:`HierarchicalEngine.expand_path` re-expands to concrete road segments
for any departure instant.

The single-level scheme scales to metro-size networks via
:class:`MultiLevelOverlay` (``overlay.py``): nested grid partitions with
per-level boundary-to-boundary shortcut functions built bottom-up and kept
in flat arrays, queried by :class:`OverlayEngine` which climbs levels
instead of flooding the flat graph.
"""

from .index import HierarchicalIndex, ShortcutEdge
from .overlay import MultiLevelOverlay, OverlayLevel, OverlayStats
from .engine import HierarchicalEngine, OverlayEngine

__all__ = [
    "HierarchicalIndex",
    "ShortcutEdge",
    "HierarchicalEngine",
    "MultiLevelOverlay",
    "OverlayLevel",
    "OverlayStats",
    "OverlayEngine",
]
