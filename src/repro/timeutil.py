"""Time representation used across the library.

Time instants are floating-point **minutes since midnight of day 0**.  The
paper works in minutes (speeds are quoted in miles per minute), so minutes are
the natural unit; a full day is :data:`MINUTES_PER_DAY` = 1440.

The helpers here parse and format clock strings such as ``"7:45"`` or
``"6:58:30"`` and provide :class:`TimeInterval`, the closed interval type used
for query leaving-time windows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .exceptions import QueryError

MINUTES_PER_HOUR = 60.0
MINUTES_PER_DAY = 24.0 * MINUTES_PER_HOUR

#: Numeric tolerance used when comparing time instants or travel times.
EPS = 1e-9


def hours(value: float) -> float:
    """Convert hours to minutes: ``hours(2) == 120.0``."""
    return value * MINUTES_PER_HOUR


def days(value: float) -> float:
    """Convert whole/fractional days to minutes: ``days(1) == 1440.0``."""
    return value * MINUTES_PER_DAY


def mph_to_mpm(speed_mph: float) -> float:
    """Convert miles-per-hour to miles-per-minute (the paper's unit)."""
    return speed_mph / MINUTES_PER_HOUR


def parse_clock(text: str, day: int = 0) -> float:
    """Parse ``"H:MM"`` or ``"H:MM:SS"`` into minutes since day-0 midnight.

    ``day`` shifts the result by whole days, e.g. ``parse_clock("7:00", day=1)``
    is 7am on the second day.

    >>> parse_clock("6:58:30")
    418.5
    """
    parts = text.strip().split(":")
    if len(parts) not in (2, 3):
        raise ValueError(f"cannot parse clock string {text!r}")
    try:
        h = int(parts[0])
        m = int(parts[1])
        s = float(parts[2]) if len(parts) == 3 else 0.0
    except ValueError as exc:
        raise ValueError(f"cannot parse clock string {text!r}") from exc
    if not (0 <= m < 60 and 0 <= s < 60):
        raise ValueError(f"minutes/seconds out of range in {text!r}")
    return day * MINUTES_PER_DAY + h * MINUTES_PER_HOUR + m + s / 60.0


def format_clock(minutes: float, with_seconds: bool = True) -> str:
    """Format minutes-since-day-0-midnight as ``[day+]H:MM[:SS]``.

    >>> format_clock(418.5)
    '6:58:30'
    >>> format_clock(1440 + 60, with_seconds=False)
    'd1+1:00'
    """
    day, rem = divmod(minutes, MINUTES_PER_DAY)
    total_seconds = int(round(rem * 60.0))
    if total_seconds >= 24 * 3600:  # rounding pushed us past midnight
        total_seconds -= 24 * 3600
        day += 1
    h, rem_s = divmod(total_seconds, 3600)
    m, s = divmod(rem_s, 60)
    prefix = f"d{int(day)}+" if day else ""
    if with_seconds and s:
        return f"{prefix}{h}:{m:02d}:{s:02d}"
    return f"{prefix}{h}:{m:02d}"


def format_duration(minutes: float) -> str:
    """Format a duration in minutes as a human string, e.g. ``'1h 05m 30s'``."""
    if minutes < 0:
        return "-" + format_duration(-minutes)
    total_seconds = int(round(minutes * 60.0))
    h, rem = divmod(total_seconds, 3600)
    m, s = divmod(rem, 60)
    if h:
        return f"{h}h {m:02d}m {s:02d}s" if s else f"{h}h {m:02d}m"
    if m:
        return f"{m}m {s:02d}s" if s else f"{m}m"
    return f"{s}s"


def time_of_day(minutes: float) -> float:
    """Reduce an absolute time instant to its offset within its day."""
    return math.fmod(minutes, MINUTES_PER_DAY)


def day_index(minutes: float) -> int:
    """Return which day (0-based) an absolute time instant falls in."""
    return int(math.floor(minutes / MINUTES_PER_DAY))


@dataclass(frozen=True)
class TimeInterval:
    """A closed time interval ``[start, end]`` in absolute minutes.

    Used for query leaving-time windows and for the sub-intervals of the
    allFP answer partition.  ``start == end`` (a single instant) is allowed:
    it is the degenerate case the paper notes reduces to the classical
    shortest-path problem.
    """

    start: float
    end: float

    def __post_init__(self) -> None:
        if not (math.isfinite(self.start) and math.isfinite(self.end)):
            raise QueryError("interval endpoints must be finite")
        if self.end < self.start - EPS:
            raise QueryError(
                f"interval end {self.end} precedes start {self.start}"
            )

    @classmethod
    def from_clock(cls, start: str, end: str, day: int = 0) -> "TimeInterval":
        """Build an interval from clock strings, e.g. ``("6:50", "7:05")``."""
        return cls(parse_clock(start, day), parse_clock(end, day))

    @property
    def length(self) -> float:
        """Interval length in minutes."""
        return self.end - self.start

    @property
    def is_instant(self) -> bool:
        """True when the interval is a single time instant."""
        return self.end - self.start <= EPS

    def contains(self, t: float, tol: float = EPS) -> bool:
        """True when instant ``t`` lies inside the closed interval."""
        return self.start - tol <= t <= self.end + tol

    def clamp(self, t: float) -> float:
        """Project instant ``t`` onto the interval."""
        return min(max(t, self.start), self.end)

    def intersect(self, other: "TimeInterval") -> "TimeInterval | None":
        """Intersection with another interval, or None when disjoint."""
        lo = max(self.start, other.start)
        hi = min(self.end, other.end)
        if hi < lo - EPS:
            return None
        return TimeInterval(lo, min(hi, max(lo, hi)))

    def sample(self, count: int) -> list[float]:
        """Return ``count`` evenly spaced instants covering the interval."""
        if count < 1:
            raise ValueError("count must be >= 1")
        if count == 1 or self.is_instant:
            return [self.start]
        step = self.length / (count - 1)
        return [self.start + i * step for i in range(count)]

    def __str__(self) -> str:
        return f"[{format_clock(self.start)}, {format_clock(self.end)}]"
