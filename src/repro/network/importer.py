"""Streaming importer for an OSM-flavored node/way text format.

Real metro extracts (OSM, TIGER/Line) arrive as node lists plus *ways* —
ordered node chains tagged with a highway class.  :func:`import_network`
builds a :class:`~repro.network.model.CapeCodNetwork` from that shape in
one pass with O(edges) memory: lines are consumed from an iterator (never
buffered), every way segment becomes directed edges immediately, and the
only auxiliary state is the node table the network keeps anyway.

Format (one record per line, ``#`` starts a comment)::

    node <id> <x> <y>
    way <oneway|twoway> <highway-tag> <n1> <n2> ... <nk>

Nodes must precede the first way — the importer derives the CBD centroid
and city radius from the node bounding box before classifying any edge.
Highway tags map onto the paper's Table 1 road classes: ``motorway``,
``trunk``, ``primary`` (and their ``_link`` variants) become
INBOUND/OUTBOUND_HIGHWAY per segment by whether the segment heads toward
the centroid; every other tag is LOCAL_CITY when the segment midpoint
falls inside the city radius, LOCAL_OUTSIDE beyond it.  Edge length is the
Euclidean node distance; duplicate segments and self-loops are skipped and
counted rather than fatal (real extracts contain both).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from ..exceptions import NetworkError, NodeNotFoundError
from ..patterns.categories import Calendar, workweek_calendar
from ..patterns.schema import RoadClass, table1_schema
from ..patterns.speed import CapeCodPattern
from .model import CapeCodNetwork

#: OSM highway tags treated as highway corridors (classified per segment
#: as inbound/outbound); every other tag is a local street.
HIGHWAY_TAGS = frozenset(
    {
        "motorway",
        "trunk",
        "primary",
        "motorway_link",
        "trunk_link",
        "primary_link",
    }
)


@dataclass
class ImportStats:
    """What one import pass saw (returned alongside the network)."""

    lines: int = 0
    nodes: int = 0
    ways: int = 0
    edges: int = 0
    highway_edges: int = 0
    local_edges: int = 0
    skipped_duplicates: int = 0
    skipped_self_loops: int = 0


def _error(line_no: int, message: str) -> NetworkError:
    return NetworkError(f"line {line_no}: {message}")


def parse_lines(
    lines: Iterable[str],
    schema: dict[RoadClass, CapeCodPattern] | None = None,
    calendar: Calendar | None = None,
) -> tuple[CapeCodNetwork, ImportStats]:
    """Build a network from an iterator of importer-format lines.

    The iterator is consumed exactly once and never materialised; memory is
    the network under construction plus one line.
    """
    patterns = schema or table1_schema()
    net = CapeCodNetwork(calendar or workweek_calendar())
    stats = ImportStats()

    # Filled when the first way is seen; ways before nodes are an error
    # because classification needs the finished bounding box.
    center: tuple[float, float] | None = None
    city_radius = 0.0
    min_x = min_y = math.inf
    max_x = max_y = -math.inf

    def finalize_geometry(line_no: int) -> None:
        nonlocal center, city_radius
        if stats.nodes == 0:
            raise _error(line_no, "way before any node")
        cx = (min_x + max_x) / 2.0
        cy = (min_y + max_y) / 2.0
        center = (cx, cy)
        city_radius = max(max_x - cx, max_y - cy, 1e-12) / 3.0

    def classify(a: int, b: int, tag: str) -> RoadClass:
        ax, ay = net.location(a)
        bx, by = net.location(b)
        assert center is not None
        if tag in HIGHWAY_TAGS:
            da = math.hypot(ax - center[0], ay - center[1])
            db = math.hypot(bx - center[0], by - center[1])
            return (
                RoadClass.INBOUND_HIGHWAY
                if db < da
                else RoadClass.OUTBOUND_HIGHWAY
            )
        mx, my = (ax + bx) / 2.0, (ay + by) / 2.0
        in_city = math.hypot(mx - center[0], my - center[1]) <= city_radius
        return RoadClass.LOCAL_CITY if in_city else RoadClass.LOCAL_OUTSIDE

    def add_segment(a: int, b: int, tag: str, line_no: int) -> None:
        if a == b:
            stats.skipped_self_loops += 1
            return
        if net.has_edge(a, b):
            stats.skipped_duplicates += 1
            return
        cls = classify(a, b, tag)
        net.add_edge(a, b, net.euclidean(a, b), patterns[cls], cls)
        stats.edges += 1
        if cls.is_highway:
            stats.highway_edges += 1
        else:
            stats.local_edges += 1

    for line_no, raw in enumerate(lines, start=1):
        stats.lines = line_no
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        kind = fields[0]
        if kind == "node":
            if center is not None:
                raise _error(line_no, "node after the first way")
            if len(fields) != 4:
                raise _error(
                    line_no, f"node needs 'node <id> <x> <y>', got {line!r}"
                )
            try:
                node_id = int(fields[1])
                x, y = float(fields[2]), float(fields[3])
            except ValueError:
                raise _error(
                    line_no, f"malformed node record {line!r}"
                ) from None
            net.add_node(node_id, x, y)
            stats.nodes += 1
            min_x, max_x = min(min_x, x), max(max_x, x)
            min_y, max_y = min(min_y, y), max(max_y, y)
        elif kind == "way":
            if center is None:
                finalize_geometry(line_no)
            if len(fields) < 5:
                raise _error(
                    line_no,
                    "way needs 'way <oneway|twoway> <tag> <n1> <n2> ...', "
                    f"got {line!r}",
                )
            direction, tag = fields[1], fields[2]
            if direction not in ("oneway", "twoway"):
                raise _error(
                    line_no,
                    f"way direction must be oneway or twoway, got "
                    f"{direction!r}",
                )
            try:
                chain = [int(f) for f in fields[3:]]
            except ValueError:
                raise _error(
                    line_no, f"malformed way node list {line!r}"
                ) from None
            for node in chain:
                try:
                    net.location(node)
                except NodeNotFoundError:
                    raise _error(
                        line_no, f"way references unknown node {node}"
                    ) from None
            stats.ways += 1
            for a, b in zip(chain, chain[1:]):
                add_segment(a, b, tag, line_no)
                if direction == "twoway":
                    add_segment(b, a, tag, line_no)
        else:
            raise _error(
                line_no, f"unknown record type {kind!r} (want node or way)"
            )
    return net, stats


def import_network(
    path,
    schema: dict[RoadClass, CapeCodPattern] | None = None,
    calendar: Calendar | None = None,
) -> tuple[CapeCodNetwork, ImportStats]:
    """Import a network from an importer-format text file (streaming)."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return parse_lines(handle, schema=schema, calendar=calendar)


def write_lines(network: CapeCodNetwork) -> Iterator[str]:
    """The importer-format lines describing ``network`` (for round-trips).

    Each directed edge becomes its own one-segment ``oneway`` way; road
    classes map back to representative tags (highways to ``motorway``,
    locals to ``residential``).  Re-importing reproduces the topology and
    the class mix, not byte-identical distances (the importer recomputes
    Euclidean lengths).
    """
    for node in network.nodes():
        yield f"node {node.id} {node.x!r} {node.y!r}"
    for edge in network.edges():
        road_class = edge.road_class
        tag = (
            "motorway"
            if road_class is not None and road_class.is_highway
            else "residential"
        )
        yield f"way oneway {tag} {edge.source} {edge.target}"
