"""Synthetic metro-area road networks (substitution for Suffolk County data).

The paper evaluates on a TIGER/Line extract of Suffolk County, MA — a
metro-area road network whose key features are (i) a dense, largely one-way
local street grid around a central business district, (ii) radial highway
corridors that are fast off-peak and congested inbound during the morning
rush / outbound during the evening rush, and (iii) ~14.5 k nodes with ~1.4
directed edges per node.

:func:`make_metro_network` generates a deterministic synthetic network with
those features: a jittered grid of local streets (alternating one-way rows,
like downtown Boston), a configurable subset of two-way vertical streets,
and horizontal/vertical highway corridors through the center whose edges are
classified inbound (toward the CBD) or outbound (away from it) and assigned
the Table 1 CapeCod patterns.  Strong connectivity is guaranteed by
construction (first and last columns are always two-way).

``MetroConfig.paper_scale()`` matches the paper's node count.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from ..exceptions import NetworkError
from ..patterns.categories import Calendar, workweek_calendar
from ..patterns.schema import RoadClass, table1_schema
from ..patterns.speed import CapeCodPattern, DailySpeedPattern
from ..timeutil import parse_clock
from .model import CapeCodNetwork


@dataclass(frozen=True)
class MetroConfig:
    """Parameters of the synthetic metro-area generator.

    Attributes
    ----------
    width, height:
        Grid dimensions in intersections.
    spacing:
        Block size in miles (0.125 ≈ a downtown Boston block... roughly).
    jitter:
        Node position noise as a fraction of ``spacing``.
    detour:
        Road length = Euclidean length × (1 + U(0, detour)) — streets bend.
    vertical_keep:
        Probability a non-corridor vertical street exists (thins the grid
        toward the paper's ~1.4 directed edges per node).
    oneway_local:
        Alternate the direction of local one-way rows (even rows eastbound).
    highway_rows, highway_cols:
        Grid rows / columns that carry a two-way highway corridor.  ``None``
        auto-places corridors through the center (plus quarter lines on
        large grids).
    city_radius:
        Radius (miles) of the central business district; local edges inside
        it are class LOCAL_CITY, outside LOCAL_OUTSIDE.  ``None`` = one third
        of the map half-extent.
    seed:
        Seed for the deterministic PRNG.
    """

    width: int = 24
    height: int = 24
    spacing: float = 0.25
    jitter: float = 0.15
    detour: float = 0.10
    vertical_keep: float = 0.35
    oneway_local: bool = True
    highway_rows: tuple[int, ...] | None = None
    highway_cols: tuple[int, ...] | None = None
    city_radius: float | None = None
    seed: int = 0

    @classmethod
    def paper_scale(cls, seed: int = 0) -> "MetroConfig":
        """A configuration matching the paper's network size.

        121 × 120 = 14,520 nodes (paper: 14,456) with ``vertical_keep``
        tuned so the directed edge count lands near the paper's 20,461.
        """
        return cls(
            width=121,
            height=120,
            spacing=0.125,
            vertical_keep=0.17,
            seed=seed,
        )

    @classmethod
    def metro_scale(cls, seed: int = 0) -> "MetroConfig":
        """A 100k+-node configuration (ROADMAP item 2's target scale).

        320 × 320 = 102,400 nodes.  Intended for
        :func:`emit_metro_lines` + the streaming importer rather than
        :func:`make_metro_network` — the emitter never materialises the
        grid, so generation is O(1) memory on top of the output.
        """
        return cls(
            width=320,
            height=320,
            spacing=0.125,
            vertical_keep=0.17,
            seed=seed,
        )

    def _auto_rows(self) -> tuple[int, ...]:
        if self.highway_rows is not None:
            return self.highway_rows
        rows = [self.height // 2]
        if self.height >= 40:
            rows += [self.height // 4, (3 * self.height) // 4]
        return tuple(sorted(set(rows)))

    def _auto_cols(self) -> tuple[int, ...]:
        if self.highway_cols is not None:
            return self.highway_cols
        cols = [self.width // 2]
        if self.width >= 40:
            cols += [self.width // 4, (3 * self.width) // 4]
        return tuple(sorted(set(cols)))


def make_metro_network(
    config: MetroConfig | None = None,
    schema: dict[RoadClass, CapeCodPattern] | None = None,
    calendar: Calendar | None = None,
) -> CapeCodNetwork:
    """Generate the synthetic metro network described in :class:`MetroConfig`."""
    cfg = config or MetroConfig()
    if cfg.width < 2 or cfg.height < 2:
        raise NetworkError("metro grid needs width >= 2 and height >= 2")
    patterns = schema or table1_schema()
    net = CapeCodNetwork(calendar or workweek_calendar())
    rng = random.Random(cfg.seed)

    half_w = (cfg.width - 1) * cfg.spacing / 2.0
    half_h = (cfg.height - 1) * cfg.spacing / 2.0
    center = (half_w, half_h)
    city_radius = (
        cfg.city_radius
        if cfg.city_radius is not None
        else max(half_w, half_h) / 3.0
    )
    hw_rows = set(cfg._auto_rows())
    hw_cols = set(cfg._auto_cols())

    def node_id(row: int, col: int) -> int:
        return row * cfg.width + col

    # --- nodes: jittered grid -----------------------------------------
    for row in range(cfg.height):
        for col in range(cfg.width):
            jx = rng.uniform(-cfg.jitter, cfg.jitter) * cfg.spacing
            jy = rng.uniform(-cfg.jitter, cfg.jitter) * cfg.spacing
            net.add_node(
                node_id(row, col), col * cfg.spacing + jx, row * cfg.spacing + jy
            )

    def road_length(a: int, b: int) -> float:
        base = net.euclidean(a, b)
        return base * (1.0 + rng.uniform(0.0, cfg.detour))

    def local_class(a: int, b: int) -> RoadClass:
        ax, ay = net.location(a)
        bx, by = net.location(b)
        mid = ((ax + bx) / 2.0, (ay + by) / 2.0)
        in_city = math.hypot(mid[0] - center[0], mid[1] - center[1]) <= city_radius
        return RoadClass.LOCAL_CITY if in_city else RoadClass.LOCAL_OUTSIDE

    def add_local(a: int, b: int, bidirectional: bool) -> None:
        cls_ab = local_class(a, b)
        dist = road_length(a, b)
        net.add_edge(a, b, dist, patterns[cls_ab], cls_ab)
        if bidirectional:
            net.add_edge(b, a, dist, patterns[cls_ab], cls_ab)

    def add_highway(a: int, b: int, toward_center_first: bool) -> None:
        """Two-way highway; the direction toward the CBD is inbound."""
        dist = road_length(a, b)
        first = RoadClass.INBOUND_HIGHWAY if toward_center_first else RoadClass.OUTBOUND_HIGHWAY
        second = RoadClass.OUTBOUND_HIGHWAY if toward_center_first else RoadClass.INBOUND_HIGHWAY
        net.add_edge(a, b, dist, patterns[first], first)
        net.add_edge(b, a, dist, patterns[second], second)

    def heads_toward_center(a: int, b: int) -> bool:
        ax, ay = net.location(a)
        bx, by = net.location(b)
        da = math.hypot(ax - center[0], ay - center[1])
        db = math.hypot(bx - center[0], by - center[1])
        return db < da

    # --- horizontal streets -------------------------------------------
    for row in range(cfg.height):
        eastbound = (row % 2 == 0) or not cfg.oneway_local
        for col in range(cfg.width - 1):
            a, b = node_id(row, col), node_id(row, col + 1)
            if row in hw_rows:
                add_highway(a, b, heads_toward_center(a, b))
            elif not cfg.oneway_local:
                add_local(a, b, bidirectional=True)
            elif eastbound:
                add_local(a, b, bidirectional=False)
            else:
                add_local(b, a, bidirectional=False)

    # --- vertical streets ----------------------------------------------
    for col in range(cfg.width):
        always = col in (0, cfg.width - 1)  # connectivity backbone
        for row in range(cfg.height - 1):
            a, b = node_id(row, col), node_id(row + 1, col)
            if col in hw_cols:
                add_highway(a, b, heads_toward_center(a, b))
            elif always or rng.random() < cfg.vertical_keep:
                add_local(a, b, bidirectional=True)

    return net


def _hash01(seed: int, *keys: int) -> float:
    """A deterministic value in [0, 1) from (seed, keys) — splitmix64 mix.

    The streaming emitter uses per-coordinate hashes instead of a
    sequential PRNG so any node's position is recomputable in O(1) while
    ways are being emitted — no grid of positions is ever materialised.
    """
    z = (seed & 0xFFFFFFFFFFFFFFFF) ^ 0x9E3779B97F4A7C15
    for key in keys:
        z = (z + (key & 0xFFFFFFFFFFFFFFFF) + 0x9E3779B97F4A7C15) & (
            0xFFFFFFFFFFFFFFFF
        )
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
        z ^= z >> 31
    return z / 2**64


def emit_metro_lines(config: MetroConfig | None = None):
    """Stream a seeded metro-size network in importer text format.

    Yields ``node``/``way`` lines for :mod:`repro.network.importer` —
    jittered grid streets (alternating one-way rows), thinned two-way
    vertical streets, and highway corridors tagged ``motorway`` (the
    importer classifies each corridor segment inbound/outbound and local
    streets city/outside from the geometry it accumulates).  Unlike
    :func:`make_metro_network` this never builds Python node/edge objects:
    jitter comes from per-node hashes of ``config.seed``, so memory stays
    O(1) regardless of ``MetroConfig.metro_scale()``-sized grids.
    """
    cfg = config or MetroConfig()
    if cfg.width < 2 or cfg.height < 2:
        raise NetworkError("metro grid needs width >= 2 and height >= 2")
    hw_rows = set(cfg._auto_rows())
    hw_cols = set(cfg._auto_cols())

    def node_id(row: int, col: int) -> int:
        return row * cfg.width + col

    def position(row: int, col: int) -> tuple[float, float]:
        jx = (2.0 * _hash01(cfg.seed, 1, row, col) - 1.0) * cfg.jitter
        jy = (2.0 * _hash01(cfg.seed, 2, row, col) - 1.0) * cfg.jitter
        return (
            (col + jx) * cfg.spacing,
            (row + jy) * cfg.spacing,
        )

    for row in range(cfg.height):
        for col in range(cfg.width):
            x, y = position(row, col)
            yield f"node {node_id(row, col)} {x!r} {y!r}"

    # Horizontal streets: one way per row keeps the file O(rows + kept
    # verticals) lines instead of O(edges).
    for row in range(cfg.height):
        chain = [node_id(row, col) for col in range(cfg.width)]
        if row in hw_rows:
            yield "way twoway motorway " + " ".join(map(str, chain))
        elif not cfg.oneway_local:
            yield "way twoway residential " + " ".join(map(str, chain))
        elif (row % 2 == 0):
            yield "way oneway residential " + " ".join(map(str, chain))
        else:
            yield "way oneway residential " + " ".join(
                map(str, reversed(chain))
            )

    # Vertical streets: corridors and the two backbone columns are full
    # chains; other columns keep individual segments by hash.
    for col in range(cfg.width):
        chain = [node_id(row, col) for row in range(cfg.height)]
        if col in hw_cols:
            yield "way twoway motorway " + " ".join(map(str, chain))
        elif col in (0, cfg.width - 1):  # connectivity backbone
            yield "way twoway residential " + " ".join(map(str, chain))
        else:
            for row in range(cfg.height - 1):
                if _hash01(cfg.seed, 3, row, col) < cfg.vertical_keep:
                    yield (
                        f"way twoway residential "
                        f"{node_id(row, col)} {node_id(row + 1, col)}"
                    )


def make_grid_network(
    width: int = 8,
    height: int = 8,
    spacing: float = 1.0,
    pattern: CapeCodPattern | None = None,
    calendar: Calendar | None = None,
) -> CapeCodNetwork:
    """A plain two-way grid, one pattern everywhere — a simple test substrate."""
    if width < 2 or height < 2:
        raise NetworkError("grid needs width >= 2 and height >= 2")
    cal = calendar or Calendar.single_category()
    pat = pattern or CapeCodPattern.constant(
        1.0, cal.categories.names
    )
    net = CapeCodNetwork(cal)
    for row in range(height):
        for col in range(width):
            net.add_node(row * width + col, col * spacing, row * spacing)
    for row in range(height):
        for col in range(width):
            nid = row * width + col
            if col + 1 < width:
                net.add_bidirectional(nid, nid + 1, spacing, pat)
            if row + 1 < height:
                net.add_bidirectional(nid, nid + width, spacing, pat)
    return net


#: Node ids of the paper's Figure 2 running-example network.
EXAMPLE_S, EXAMPLE_N, EXAMPLE_E = 0, 1, 2


def paper_example_network() -> CapeCodNetwork:
    """The three-node network of the paper's running example (Fig. 2–7).

    Nodes: ``s`` (id 0) at (0, 0), ``n`` (id 1) at (1, 0), ``e`` (id 2) at
    (2, 0).  Edges (reverse-engineered from the travel-time functions the
    paper derives in §4.3–4.4):

    * ``s -> e``: 6 miles at a constant 1 mpm — 6 minutes at any time.
    * ``s -> n``: 2 miles at 1/3 mpm before 7:00, 1 mpm after, giving the
      paper's T(l) = 6 on [6:50, 6:54), (2/3)(7:00−l)+2 on [6:54, 7:00),
      2 on [7:00, 7:05].
    * ``n -> e``: 1 mile at 1/3 mpm before 7:08, 0.1 mpm after, giving
      T(l) = 3 on [6:56, 7:05) and 10 − (7/3)(7:08−l) on [7:05, 7:07].

    The network's maximum speed is 1 mpm, so the naive estimate from ``n``
    is d_euc(n, e)/v_max = 1 minute, as in the paper's Figure 3.
    """
    cal = Calendar.single_category()
    cat = cal.categories.names
    const_1 = CapeCodPattern.constant(1.0, cat)
    slow_until_7 = CapeCodPattern(
        {cat[0]: DailySpeedPattern([(0.0, 1.0 / 3.0), (parse_clock("7:00"), 1.0)])}
    )
    jam_after_708 = CapeCodPattern(
        {cat[0]: DailySpeedPattern([(0.0, 1.0 / 3.0), (parse_clock("7:08"), 0.1)])}
    )
    net = CapeCodNetwork(cal)
    net.add_node(EXAMPLE_S, 0.0, 0.0)
    net.add_node(EXAMPLE_N, 1.0, 0.0)
    net.add_node(EXAMPLE_E, 2.0, 0.0)
    net.add_edge(EXAMPLE_S, EXAMPLE_E, 6.0, const_1)
    net.add_edge(EXAMPLE_S, EXAMPLE_N, 2.0, slow_until_7)
    net.add_edge(EXAMPLE_N, EXAMPLE_E, 1.0, jam_after_708)
    return net
