"""The CapeCod network model (Definition 3 of the paper).

A :class:`CapeCodNetwork` is a directed graph ``G(N, E)`` where each node has
a spatial location and each edge ``n_i -> n_j`` carries a road distance
``d_ij`` (miles) and a CapeCod speed pattern ``pat_ij``.  A single
:class:`~repro.patterns.categories.Calendar` maps days to categories for the
whole network.

The query engines never iterate the whole graph; they access it through the
small *accessor* surface (``location``, ``outgoing``, ``find_edge``) that the
CCAM disk store also implements, so the same engine runs against memory or
disk.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator

from ..exceptions import EdgeNotFoundError, NetworkError, NodeNotFoundError
from ..patterns.categories import Calendar
from ..patterns.schema import RoadClass
from ..patterns.speed import CapeCodPattern


@dataclass(frozen=True)
class Node:
    """A road intersection or road endpoint with its planar location (miles)."""

    id: int
    x: float
    y: float

    @property
    def location(self) -> tuple[float, float]:
        return (self.x, self.y)

    def distance_to(self, other: "Node") -> float:
        """Euclidean distance in miles."""
        return math.hypot(self.x - other.x, self.y - other.y)


@dataclass(frozen=True)
class Edge:
    """A directed road segment with its length and speed pattern."""

    source: int
    target: int
    distance: float
    pattern: CapeCodPattern
    road_class: RoadClass | None = None

    def __post_init__(self) -> None:
        if self.distance < 0:
            raise NetworkError(
                f"edge {self.source}->{self.target} has negative length"
            )


class CapeCodNetwork:
    """A directed road network with CapeCod speed patterns on its edges."""

    def __init__(self, calendar: Calendar) -> None:
        self._calendar = calendar
        self._nodes: dict[int, Node] = {}
        self._out: dict[int, list[Edge]] = {}
        self._in: dict[int, list[Edge]] = {}
        self._max_speed: float | None = None
        self._min_speed: float | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node_id: int, x: float, y: float) -> Node:
        """Add a node; re-adding an id with the same location is a no-op."""
        existing = self._nodes.get(node_id)
        node = Node(node_id, float(x), float(y))
        if existing is not None:
            if existing != node:
                raise NetworkError(
                    f"node {node_id} already exists at {existing.location}"
                )
            return existing
        self._nodes[node_id] = node
        self._out[node_id] = []
        self._in[node_id] = []
        return node

    def add_edge(
        self,
        source: int,
        target: int,
        distance: float,
        pattern: CapeCodPattern,
        road_class: RoadClass | None = None,
    ) -> Edge:
        """Add a directed edge; both endpoints must already exist."""
        if source not in self._nodes:
            raise NodeNotFoundError(source)
        if target not in self._nodes:
            raise NodeNotFoundError(target)
        if source == target:
            raise NetworkError(f"self-loop at node {source} not allowed")
        if any(e.target == target for e in self._out[source]):
            raise NetworkError(f"duplicate edge {source}->{target}")
        edge = Edge(source, target, float(distance), pattern, road_class)
        self._out[source].append(edge)
        self._in[target].append(edge)
        self._max_speed = None
        self._min_speed = None
        return edge

    def add_bidirectional(
        self,
        a: int,
        b: int,
        distance: float,
        pattern: CapeCodPattern,
        road_class: RoadClass | None = None,
        reverse_pattern: CapeCodPattern | None = None,
        reverse_class: RoadClass | None = None,
    ) -> tuple[Edge, Edge]:
        """Add both directions of a two-way road."""
        fwd = self.add_edge(a, b, distance, pattern, road_class)
        bwd = self.add_edge(
            b,
            a,
            distance,
            reverse_pattern if reverse_pattern is not None else pattern,
            reverse_class if reverse_class is not None else road_class,
        )
        return fwd, bwd

    # ------------------------------------------------------------------
    # Accessor surface shared with the CCAM store
    # ------------------------------------------------------------------
    @property
    def calendar(self) -> Calendar:
        return self._calendar

    def node(self, node_id: int) -> Node:
        """The node with the given id."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise NodeNotFoundError(node_id) from None

    def location(self, node_id: int) -> tuple[float, float]:
        """The node's planar location (miles)."""
        return self.node(node_id).location

    def outgoing(self, node_id: int) -> list[Edge]:
        """Outgoing edges of a node — the paper's ``GetSuccessor``."""
        if node_id not in self._out:
            raise NodeNotFoundError(node_id)
        return list(self._out[node_id])

    def incoming(self, node_id: int) -> list[Edge]:
        """Incoming edges of a node."""
        if node_id not in self._in:
            raise NodeNotFoundError(node_id)
        return list(self._in[node_id])

    def find_edge(self, source: int, target: int) -> Edge:
        """The edge ``source -> target``."""
        for edge in self.outgoing(source):
            if edge.target == target:
                return edge
        raise EdgeNotFoundError(source, target)

    def has_edge(self, source: int, target: int) -> bool:
        return any(e.target == target for e in self._out.get(source, ()))

    def update_edge_pattern(
        self, source: int, target: int, pattern: CapeCodPattern
    ) -> Edge:
        """Replace the speed pattern of an existing edge (§2.2 update op).

        Topology (endpoints, distance, road class) is untouched, so grid
        partitions and boundary-node sets stay valid; only the travel-time
        functions change.  Raises :class:`EdgeNotFoundError` when the edge
        is absent; validation happens before any mutation.
        """
        if source not in self._nodes:
            raise NodeNotFoundError(source)
        if target not in self._nodes:
            raise NodeNotFoundError(target)
        old = self.find_edge(source, target)
        new = Edge(source, target, old.distance, pattern, old.road_class)
        self._out[source] = [
            new if e.target == target else e for e in self._out[source]
        ]
        self._in[target] = [
            new if e.source == source else e for e in self._in[target]
        ]
        self._max_speed = None
        self._min_speed = None
        return new

    def max_speed(self) -> float:
        """Fastest speed anywhere, ever — ``v_max`` of the naive estimator."""
        if self._max_speed is None:
            if not any(self._out.values()):
                raise NetworkError("network has no edges")
            self._max_speed = max(
                e.pattern.max_speed() for edges in self._out.values() for e in edges
            )
        return self._max_speed

    def min_speed(self) -> float:
        """Slowest speed anywhere, ever."""
        if self._min_speed is None:
            if not any(self._out.values()):
                raise NetworkError("network has no edges")
            self._min_speed = min(
                e.pattern.min_speed() for edges in self._out.values() for e in edges
            )
        return self._min_speed

    # ------------------------------------------------------------------
    # Whole-graph views (used by generators, estimator precomputation, IO)
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        return sum(len(edges) for edges in self._out.values())

    def node_ids(self) -> Iterator[int]:
        return iter(self._nodes)

    def nodes(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def edges(self) -> Iterator[Edge]:
        for edges in self._out.values():
            yield from edges

    def euclidean(self, a: int, b: int) -> float:
        """Euclidean distance between two nodes (miles)."""
        return self.node(a).distance_to(self.node(b))

    def bounding_box(self) -> tuple[float, float, float, float]:
        """``(min_x, min_y, max_x, max_y)`` over all node locations."""
        if not self._nodes:
            raise NetworkError("network has no nodes")
        xs = [n.x for n in self._nodes.values()]
        ys = [n.y for n in self._nodes.values()]
        return (min(xs), min(ys), max(xs), max(ys))

    def degree_histogram(self) -> dict[int, int]:
        """Out-degree histogram — a quick sanity check for generators."""
        hist: dict[int, int] = {}
        for node_id in self._nodes:
            d = len(self._out[node_id])
            hist[d] = hist.get(d, 0) + 1
        return hist

    def is_strongly_connected(self) -> bool:
        """True when every node reaches every other (BFS both directions)."""
        if not self._nodes:
            return True
        start = next(iter(self._nodes))
        return (
            len(self._reachable(start, self._out, forward=True)) == len(self._nodes)
            and len(self._reachable(start, self._in, forward=False))
            == len(self._nodes)
        )

    def _reachable(
        self, start: int, adjacency: dict[int, list[Edge]], forward: bool
    ) -> set[int]:
        seen = {start}
        frontier = [start]
        while frontier:
            nxt: list[int] = []
            for u in frontier:
                for e in adjacency[u]:
                    v = e.target if forward else e.source
                    if v not in seen:
                        seen.add(v)
                        nxt.append(v)
            frontier = nxt
        return seen

    def reversed_copy(self) -> "CapeCodNetwork":
        """The transpose graph (used by arrival-interval queries)."""
        rev = CapeCodNetwork(self._calendar)
        for node in self._nodes.values():
            rev.add_node(node.id, node.x, node.y)
        for edge in self.edges():
            rev.add_edge(
                edge.target, edge.source, edge.distance, edge.pattern, edge.road_class
            )
        return rev

    def to_networkx(self):
        """Export to a :class:`networkx.DiGraph` (analysis convenience)."""
        import networkx as nx

        g = nx.DiGraph()
        for node in self._nodes.values():
            g.add_node(node.id, x=node.x, y=node.y)
        for edge in self.edges():
            g.add_edge(
                edge.source,
                edge.target,
                distance=edge.distance,
                road_class=edge.road_class,
            )
        return g

    @classmethod
    def from_elements(
        cls,
        calendar: Calendar,
        nodes: Iterable[tuple[int, float, float]],
        edges: Iterable[tuple[int, int, float, CapeCodPattern]],
    ) -> "CapeCodNetwork":
        """Build a network from plain tuples (testing convenience)."""
        net = cls(calendar)
        for node_id, x, y in nodes:
            net.add_node(node_id, x, y)
        for source, target, distance, pattern in edges:
            net.add_edge(source, target, distance, pattern)
        return net
