"""JSON serialization of CapeCod networks.

The format deduplicates speed patterns (a metro network has thousands of
edges but only a handful of distinct patterns) and records the calendar as a
periodic category sequence, which covers every calendar this library
constructs.  Round-tripping is exact for all float values (JSON carries full
double precision).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..exceptions import NetworkError
from ..patterns.categories import Calendar, DayCategorySet
from ..patterns.schema import RoadClass
from ..patterns.speed import CapeCodPattern, DailySpeedPattern
from .model import CapeCodNetwork

FORMAT_NAME = "repro-capecod-network"
FORMAT_VERSION = 1

#: How many days of the calendar to sample when serialising (one year covers
#: every periodic calendar used in practice).
_CALENDAR_SAMPLE_DAYS = 366


def _pattern_to_json(pattern: CapeCodPattern) -> dict[str, Any]:
    return {
        category: list(pattern.daily(category).pieces)
        for category in pattern.categories
    }


def _pattern_from_json(data: dict[str, Any]) -> CapeCodPattern:
    return CapeCodPattern(
        {
            category: DailySpeedPattern([tuple(p) for p in pieces])
            for category, pieces in data.items()
        }
    )


def save_network(net: CapeCodNetwork, path: str | Path) -> None:
    """Write the network to ``path`` as JSON."""
    patterns: list[CapeCodPattern] = []
    pattern_index: dict[CapeCodPattern, int] = {}
    edges = []
    for edge in net.edges():
        idx = pattern_index.get(edge.pattern)
        if idx is None:
            idx = len(patterns)
            pattern_index[edge.pattern] = idx
            patterns.append(edge.pattern)
        edges.append(
            [
                edge.source,
                edge.target,
                edge.distance,
                idx,
                edge.road_class.value if edge.road_class else None,
            ]
        )
    calendar = net.calendar
    day_categories = [
        calendar.category_for_day(d) for d in range(_CALENDAR_SAMPLE_DAYS)
    ]
    doc = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "categories": list(calendar.categories.names),
        "calendar_days": day_categories,
        "nodes": [[n.id, n.x, n.y] for n in net.nodes()],
        "patterns": [_pattern_to_json(p) for p in patterns],
        "edges": edges,
    }
    Path(path).write_text(json.dumps(doc))


def load_network(path: str | Path) -> CapeCodNetwork:
    """Read a network previously written by :func:`save_network`."""
    doc = json.loads(Path(path).read_text())
    if doc.get("format") != FORMAT_NAME:
        raise NetworkError(f"{path}: not a {FORMAT_NAME} file")
    if doc.get("version") != FORMAT_VERSION:
        raise NetworkError(
            f"{path}: unsupported format version {doc.get('version')}"
        )
    categories = DayCategorySet(doc["categories"])
    calendar = Calendar.periodic(categories, doc["calendar_days"])
    net = CapeCodNetwork(calendar)
    for node_id, x, y in doc["nodes"]:
        net.add_node(int(node_id), x, y)
    patterns = [_pattern_from_json(p) for p in doc["patterns"]]
    for source, target, distance, pattern_idx, road_class in doc["edges"]:
        net.add_edge(
            int(source),
            int(target),
            distance,
            patterns[pattern_idx],
            RoadClass(road_class) if road_class else None,
        )
    return net
