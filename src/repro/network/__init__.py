"""CapeCod road networks (systems S4–S5 in DESIGN.md).

The network model of Definition 3 — a directed spatial graph whose edges
carry a length and a CapeCod speed pattern — plus a deterministic synthetic
metro-area generator standing in for the paper's Suffolk County TIGER/Line
extract (see the substitution table in DESIGN.md §3), and JSON serialization.
"""

from .model import Node, Edge, CapeCodNetwork
from .generator import (
    MetroConfig,
    emit_metro_lines,
    make_metro_network,
    make_grid_network,
    paper_example_network,
)
from .importer import ImportStats, import_network, parse_lines, write_lines
from .io import save_network, load_network
from .stats import network_stats, NetworkStats, ClassStats

__all__ = [
    "Node",
    "Edge",
    "CapeCodNetwork",
    "MetroConfig",
    "emit_metro_lines",
    "make_metro_network",
    "make_grid_network",
    "paper_example_network",
    "ImportStats",
    "import_network",
    "parse_lines",
    "write_lines",
    "save_network",
    "load_network",
    "network_stats",
    "NetworkStats",
    "ClassStats",
]
