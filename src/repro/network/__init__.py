"""CapeCod road networks (systems S4–S5 in DESIGN.md).

The network model of Definition 3 — a directed spatial graph whose edges
carry a length and a CapeCod speed pattern — plus a deterministic synthetic
metro-area generator standing in for the paper's Suffolk County TIGER/Line
extract (see the substitution table in DESIGN.md §3), and JSON serialization.
"""

from .model import Node, Edge, CapeCodNetwork
from .generator import (
    MetroConfig,
    make_metro_network,
    make_grid_network,
    paper_example_network,
)
from .io import save_network, load_network
from .stats import network_stats, NetworkStats, ClassStats

__all__ = [
    "Node",
    "Edge",
    "CapeCodNetwork",
    "MetroConfig",
    "make_metro_network",
    "make_grid_network",
    "paper_example_network",
    "save_network",
    "load_network",
    "network_stats",
    "NetworkStats",
    "ClassStats",
]
