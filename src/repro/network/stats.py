"""Descriptive statistics of a CapeCod network.

Used by ``repro-allfp info``, the examples, and tests to sanity-check
generated or loaded networks: size, degree distribution, road-class
mileage, pattern census, and rush-hour speed summaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..patterns.schema import RoadClass
from ..patterns.speed import CapeCodPattern
from .model import CapeCodNetwork


@dataclass(frozen=True)
class ClassStats:
    """Aggregate statistics for one road class."""

    edge_count: int
    total_miles: float
    min_speed: float
    max_speed: float


@dataclass(frozen=True)
class NetworkStats:
    """A full statistical snapshot of a network."""

    node_count: int
    edge_count: int
    total_miles: float
    mean_out_degree: float
    degree_histogram: dict[int, int]
    by_class: dict[RoadClass | None, ClassStats]
    distinct_patterns: int
    time_dependent_edges: int
    bounding_box: tuple[float, float, float, float]
    strongly_connected: bool

    @property
    def time_dependent_fraction(self) -> float:
        """Share of edges whose speed actually varies over time."""
        if self.edge_count == 0:
            return 0.0
        return self.time_dependent_edges / self.edge_count

    def summary_lines(self) -> list[str]:
        """Human-readable report lines (used by the CLI)."""
        min_x, min_y, max_x, max_y = self.bounding_box
        lines = [
            f"nodes: {self.node_count}",
            f"directed edges: {self.edge_count} "
            f"({self.total_miles:.1f} road-miles, "
            f"mean out-degree {self.mean_out_degree:.2f})",
            f"extent: {max_x - min_x:.1f} x {max_y - min_y:.1f} miles",
            f"strongly connected: {self.strongly_connected}",
            f"distinct speed patterns: {self.distinct_patterns} "
            f"({self.time_dependent_fraction:.0%} of edges time-dependent)",
        ]
        for road_class, stats in sorted(
            self.by_class.items(),
            key=lambda item: item[0].value if item[0] else "~",
        ):
            name = road_class.value if road_class else "(unclassified)"
            lines.append(
                f"  {name}: {stats.edge_count} edges, "
                f"{stats.total_miles:.1f} mi, speeds "
                f"{stats.min_speed * 60:.0f}-{stats.max_speed * 60:.0f} MPH"
            )
        return lines


def network_stats(network: CapeCodNetwork) -> NetworkStats:
    """Compute a :class:`NetworkStats` snapshot (one pass over the edges)."""
    total_miles = 0.0
    patterns: set[CapeCodPattern] = set()
    time_dependent = 0
    per_class: dict[RoadClass | None, list] = {}
    for edge in network.edges():
        total_miles += edge.distance
        patterns.add(edge.pattern)
        if not edge.pattern.is_constant():
            time_dependent += 1
        bucket = per_class.setdefault(
            edge.road_class, [0, 0.0, float("inf"), 0.0]
        )
        bucket[0] += 1
        bucket[1] += edge.distance
        bucket[2] = min(bucket[2], edge.pattern.min_speed())
        bucket[3] = max(bucket[3], edge.pattern.max_speed())

    by_class = {
        cls: ClassStats(count, miles, lo, hi)
        for cls, (count, miles, lo, hi) in per_class.items()
    }
    node_count = network.node_count
    edge_count = network.edge_count
    return NetworkStats(
        node_count=node_count,
        edge_count=edge_count,
        total_miles=total_miles,
        mean_out_degree=edge_count / node_count if node_count else 0.0,
        degree_histogram=network.degree_histogram(),
        by_class=by_class,
        distinct_patterns=len(patterns),
        time_dependent_edges=time_dependent,
        bounding_box=network.bounding_box(),
        strongly_connected=network.is_strongly_connected(),
    )
