"""repro — time-interval fastest paths on road networks with speed patterns.

A from-scratch Python implementation of *"Finding Fastest Paths on A Road
Network with Speed Patterns"* (Kanoulas, Du, Xia, Zhang — ICDE 2006):

* **CapeCod patterns** — categorized piecewise-constant speeds per road
  segment (:mod:`repro.patterns`),
* **allFP / singleFP queries** — all fastest paths over a leaving-time
  interval, answered by the IntAllFastestPaths extension of A*
  (:mod:`repro.core`),
* **lower-bound estimators** — naive and boundary-node
  (:mod:`repro.estimators`),
* **CCAM** — the disk-based network store (:mod:`repro.storage`),
* plus network generators, workloads, and the experiment harness that
  regenerates every figure and table of the paper's evaluation.

Quickstart::

    from repro import (
        IntAllFastestPaths, TimeInterval, make_metro_network,
    )

    network = make_metro_network()
    engine = IntAllFastestPaths(network)
    result = engine.all_fastest_paths(
        source=0, target=500, interval=TimeInterval.from_clock("7:00", "9:00")
    )
    for entry in result:
        print(entry)

See ``examples/`` for runnable scenarios and ``DESIGN.md`` for the system
inventory.
"""

from .timeutil import (
    TimeInterval,
    parse_clock,
    format_clock,
    format_duration,
    hours,
)
from .exceptions import (
    ReproError,
    NoPathError,
    QueryError,
    NetworkError,
    PatternError,
    StorageError,
    EstimatorError,
    InjectedFault,
    ServeClientError,
    WorkerCrashed,
)
from .reliability import CircuitBreaker, FaultInjector, FaultPlan, FaultSpec
from .func import (
    PiecewiseLinearFunction,
    MonotonePiecewiseLinear,
    AnnotatedEnvelope,
)
from .patterns import (
    DayCategorySet,
    Calendar,
    WORKWEEK,
    workweek_calendar,
    DailySpeedPattern,
    CapeCodPattern,
    RoadClass,
    table1_schema,
    constant_speed_schema,
)
from .network import (
    Node,
    Edge,
    CapeCodNetwork,
    MetroConfig,
    make_metro_network,
    make_grid_network,
    paper_example_network,
    save_network,
    load_network,
)
from .estimators import (
    LowerBoundEstimator,
    NaiveEstimator,
    ZeroEstimator,
    BoundaryNodeEstimator,
)
from .core import (
    IntAllFastestPaths,
    ArrivalIntAllFastestPaths,
    reverse_boundary_estimator,
    fixed_departure_query,
    DiscreteTimeModel,
    SingleFPResult,
    AllFPResult,
    AllFPEntry,
    FixedPathResult,
    SearchStats,
)
from .core.profile import ProfileResult, arrival_profile, profile_search
from .core.knn import interval_knn, nearest_partition
from .core.runtime import (
    QueryTimeout,
    SearchBudgetExceeded,
    SearchContext,
)
from .hierarchy import HierarchicalIndex, HierarchicalEngine, ShortcutEdge
from .storage import CCAMStore
from .workloads import (
    QuerySpec,
    morning_rush_interval,
    evening_rush_interval,
    random_queries,
    distance_band_queries,
    poisson_arrivals,
)
from .serve import AllFPService, ServiceConfig, QueryRequest, QueryResponse

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # time
    "TimeInterval",
    "parse_clock",
    "format_clock",
    "format_duration",
    "hours",
    # errors
    "ReproError",
    "NoPathError",
    "QueryError",
    "NetworkError",
    "PatternError",
    "StorageError",
    "EstimatorError",
    "InjectedFault",
    "ServeClientError",
    "WorkerCrashed",
    # reliability
    "CircuitBreaker",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    # functions
    "PiecewiseLinearFunction",
    "MonotonePiecewiseLinear",
    "AnnotatedEnvelope",
    # patterns
    "DayCategorySet",
    "Calendar",
    "WORKWEEK",
    "workweek_calendar",
    "DailySpeedPattern",
    "CapeCodPattern",
    "RoadClass",
    "table1_schema",
    "constant_speed_schema",
    # network
    "Node",
    "Edge",
    "CapeCodNetwork",
    "MetroConfig",
    "make_metro_network",
    "make_grid_network",
    "paper_example_network",
    "save_network",
    "load_network",
    # estimators
    "LowerBoundEstimator",
    "NaiveEstimator",
    "ZeroEstimator",
    "BoundaryNodeEstimator",
    # engines
    "IntAllFastestPaths",
    "ArrivalIntAllFastestPaths",
    "reverse_boundary_estimator",
    "fixed_departure_query",
    "DiscreteTimeModel",
    "SingleFPResult",
    "AllFPResult",
    "AllFPEntry",
    "FixedPathResult",
    "SearchStats",
    # hierarchy & profiles
    "arrival_profile",
    "profile_search",
    "ProfileResult",
    "SearchContext",
    "SearchBudgetExceeded",
    "QueryTimeout",
    "interval_knn",
    "nearest_partition",
    "HierarchicalIndex",
    "HierarchicalEngine",
    "ShortcutEdge",
    # storage
    "CCAMStore",
    # workloads
    "QuerySpec",
    "morning_rush_interval",
    "evening_rush_interval",
    "random_queries",
    "distance_band_queries",
    "poisson_arrivals",
    # service
    "AllFPService",
    "ServiceConfig",
    "QueryRequest",
    "QueryResponse",
]
