"""Shared search runtime — one :class:`SearchContext` under every engine.

Historically each query engine hand-rolled its own loop plumbing:
``IntAllFastestPaths`` had the LRU edge-function cache, ``max_pops``
budgets, wall-clock deadlines, and kernel-counter bookkeeping, while the
A* oracle, the discrete baseline, the profile search, kNN, and the
hierarchy shortcut builder each kept private caches and reported partial
(or no) :class:`~repro.core.results.SearchStats`.  This module extracts
that plumbing so all engines share it:

* :class:`EdgeFunctionCache` — the LRU-bounded per-edge memo of arrival
  functions over a growing window (lifted out of ``engine.py``; the old
  import paths still work).
* :class:`SearchContext` — the long-lived bundle an engine (or a service)
  owns: the edge cache plus default ``max_pops``/``deadline`` policy.
  Contexts are cheap to share; every engine built over the same context
  warms the same cache.
* :class:`SearchRun` — one query execution: a fresh
  :class:`~repro.core.results.SearchStats`, counter snapshots taken at
  start (kernel work, cache hits, CCAM page reads), uniform budget and
  deadline enforcement in :meth:`SearchRun.tick`, and idempotent
  :meth:`SearchRun.finalize` that every exit path — success, no-path,
  budget, timeout — goes through, so partial stats are always populated.

Budget and deadline failures raise :class:`SearchBudgetExceeded` /
:class:`QueryTimeout` (also lifted from ``engine.py``) carrying the
finalized partial stats.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable

from ..exceptions import QueryError
from ..func import kernel
from ..func.monotone import MonotonePiecewiseLinear
from ..patterns.travel_time import edge_arrival_function
from .results import SearchStats

#: Extra minutes of slack when materialising an edge's arrival function, so
#: small window growth across labels reuses the cached function.
_CACHE_SLACK = 180.0

#: Default ceiling on cached edge functions; bounds memory across queries.
DEFAULT_EDGE_CACHE_SIZE = 4096


class SearchBudgetExceeded(QueryError):
    """Raised when a query exceeds its work budget (see the pruning ablation).

    ``stats`` carries the partial counters of the cut-short search.
    ``what`` names the budgeted unit — ``"max_pops"`` for the pop-count
    budget every engine honours, ``"relaxations"`` for the profile
    search's FIFO safety valve.
    """

    def __init__(
        self, budget: int, stats: SearchStats, what: str = "max_pops"
    ) -> None:
        super().__init__(f"search exceeded {what}={budget}")
        self.budget = budget
        self.stats = stats
        self.what = what

    @property
    def max_pops(self) -> int:
        """Backwards-compatible alias for ``budget``."""
        return self.budget


class QueryTimeout(QueryError):
    """Raised when a query exceeds its wall-clock ``deadline``.

    The deadline is checked on the same branch as the ``max_pops`` pop
    counter, so enabling it adds one clock read per expansion and nothing
    on any other path.  ``stats`` carries the partial counters (with
    ``timed_out`` set) so callers can report how far the search got.
    """

    def __init__(self, deadline: float, stats: SearchStats) -> None:
        super().__init__(
            f"query exceeded deadline of {deadline:.3f}s "
            f"after {stats.expanded_paths} expansions"
        )
        self.deadline = deadline
        self.stats = stats


class EdgeFunctionCache:
    """Per-edge memo of arrival functions over a growing time window.

    Edge arrival functions depend only on the edge and the departure window,
    not on the query, so repeated expansions (and repeated queries against
    the same engine) reuse them.  Keyed by ``(source, target)`` because the
    disk-backed accessor materialises fresh ``Edge`` objects per call.

    The cache is LRU-bounded: cross-query reuse keeps hot edges resident
    while cold edges are evicted once ``max_entries`` is reached, so a
    long-lived engine's memory stays proportional to its working set rather
    than to every edge it has ever touched.  ``hits`` / ``misses`` feed the
    ``edge_cache_*`` fields of :class:`~repro.core.results.SearchStats`.
    """

    __slots__ = ("_calendar", "_cache", "_max_entries", "hits", "misses")

    def __init__(
        self, calendar, max_entries: int = DEFAULT_EDGE_CACHE_SIZE
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._calendar = calendar
        self._cache: OrderedDict[
            tuple[int, int], MonotonePiecewiseLinear
        ] = OrderedDict()
        self._max_entries = max_entries
        self.hits = 0
        self.misses = 0

    def arrival(self, edge, lo: float, hi: float) -> MonotonePiecewiseLinear:
        provider = getattr(edge, "arrival_function", None)
        if provider is not None:
            # Overlay/shortcut edges supply their function directly (already
            # materialised over the index horizon) — nothing to cache.
            return provider(lo, hi)
        key = (edge.source, edge.target)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            if cached.x_min <= lo and cached.x_max >= hi:
                self.hits += 1
                return cached
        self.misses += 1
        new_lo = min(lo, cached.x_min) if cached is not None else lo
        new_hi = max(hi, cached.x_max) if cached is not None else hi
        # Grow geometrically (capped at a day) so a sequence of slightly
        # wider requests costs few rebuilds instead of one per request.
        slack = min(max(_CACHE_SLACK, new_hi - new_lo), 1440.0)
        fn = edge_arrival_function(
            edge.distance,
            edge.pattern,
            self._calendar,
            new_lo,
            new_hi + slack,
        )
        self._cache[key] = fn
        self._cache.move_to_end(key)
        while len(self._cache) > self._max_entries:
            self._cache.popitem(last=False)
        return fn

    def __len__(self) -> int:
        return len(self._cache)

    def clear(self) -> int:
        """Drop every memoised function (call after an edge-pattern update:
        entries are keyed by ``(source, target)``, so a mutated edge would
        otherwise keep serving its pre-update arrival function)."""
        dropped = len(self._cache)
        self._cache.clear()
        return dropped

    def snapshot(self) -> dict[str, int]:
        """A point-in-time view of the cache counters (for services/metrics)."""
        return {
            "entries": len(self._cache),
            "max_entries": self._max_entries,
            "hits": self.hits,
            "misses": self.misses,
        }


#: Sentinel distinguishing "not passed" from an explicit ``None`` override.
_UNSET = object()


class SearchContext:
    """Long-lived runtime shared by query executions over one network.

    Bundles what used to be per-engine plumbing: the warm
    :class:`EdgeFunctionCache` and the default ``max_pops``/``deadline``
    policy.  One context can back many engines (all five query engines plus
    the hierarchy shortcut builder accept one), and a service shares a
    single lock-wrapped cache across its worker pool by handing every
    worker the same context.

    Parameters
    ----------
    network:
        Anything with the accessor surface (``calendar``, ``location``,
        ``outgoing``) — an in-memory network or a CCAM store.
    edge_cache:
        An existing cache to share; overrides ``edge_cache_size``.
    edge_cache_size:
        LRU bound when the context builds its own cache.
    max_pops:
        Default per-query pop budget (``None`` = unlimited).
    deadline:
        Default per-query wall-clock budget in seconds (``None`` = none).
    """

    __slots__ = ("network", "edge_cache", "max_pops", "deadline")

    def __init__(
        self,
        network,
        *,
        edge_cache: EdgeFunctionCache | None = None,
        edge_cache_size: int = DEFAULT_EDGE_CACHE_SIZE,
        max_pops: int | None = None,
        deadline: float | None = None,
    ) -> None:
        self.network = network
        self.edge_cache = (
            edge_cache
            if edge_cache is not None
            else EdgeFunctionCache(network.calendar, edge_cache_size)
        )
        self.max_pops = max_pops
        self.deadline = deadline

    def begin(self, max_pops=_UNSET, deadline=_UNSET) -> "SearchRun":
        """Start one query execution, resolving per-call overrides.

        Passing ``None`` explicitly disables the context default; omitting
        the argument inherits it.
        """
        return SearchRun(
            self,
            self.max_pops if max_pops is _UNSET else max_pops,
            self.deadline if deadline is _UNSET else deadline,
        )


class SearchRun:
    """One query execution: stats, budget/deadline enforcement, finalize.

    Engines drive it with three calls:

    * :meth:`edge_arrival` — cached edge-function lookup (counted),
    * :meth:`tick` — once per queue pop, *after* incrementing
      ``stats.expanded_paths``; raises :class:`SearchBudgetExceeded` /
      :class:`QueryTimeout` with finalized partial stats,
    * :meth:`finalize` — on every exit; captures elapsed wall-clock,
      kernel-counter deltas, edge-cache hit/miss deltas, and CCAM page
      reads.  Idempotent, so raising paths and success paths can both
      call it.

    An engine with loop-private counters (distinct nodes, queue high-water
    mark) registers an ``exit_hook(stats)`` so those are filled in on
    *every* exit, including ones raised from inside :meth:`tick`.
    """

    __slots__ = (
        "context",
        "stats",
        "max_pops",
        "exit_hook",
        "_deadline",
        "_deadline_at",
        "_started",
        "_io_before",
        "_kernel_before",
        "_cache_hits_before",
        "_cache_misses_before",
        "_finalized",
    )

    def __init__(
        self,
        context: SearchContext,
        max_pops: int | None,
        deadline: float | None,
    ) -> None:
        self.context = context
        self.stats = SearchStats()
        self.max_pops = max_pops
        self.exit_hook: Callable[[SearchStats], None] | None = None
        cache = context.edge_cache
        self._io_before = getattr(context.network, "page_reads", 0)
        self._kernel_before = kernel.COUNTERS.snapshot()
        self._cache_hits_before = cache.hits
        self._cache_misses_before = cache.misses
        self._started = time.monotonic()
        self._deadline = deadline
        self._deadline_at = (
            None if deadline is None else self._started + max(deadline, 0.0)
        )
        self._finalized = False

    # ------------------------------------------------------------------
    @property
    def deadline(self) -> float | None:
        """The resolved wall-clock budget in seconds (``None`` = none)."""
        return self._deadline

    def remaining(self) -> float | None:
        """Seconds left before the deadline (``None`` when none set)."""
        if self._deadline_at is None:
            return None
        return self._deadline_at - time.monotonic()

    def edge_arrival(self, edge, lo: float, hi: float) -> MonotonePiecewiseLinear:
        """The edge's arrival function over ``[lo, hi]``, via the shared cache."""
        return self.context.edge_cache.arrival(edge, lo, hi)

    def tick(self) -> None:
        """Enforce the pop budget and the deadline; call once per pop.

        Expects ``stats.expanded_paths`` to already count the current pop.
        Costs one comparison when no budget is set and one extra clock read
        when a deadline is set — nothing on any other path.
        """
        stats = self.stats
        if self.max_pops is not None and stats.expanded_paths > self.max_pops:
            raise SearchBudgetExceeded(self.max_pops, self.finalize())
        if (
            self._deadline_at is not None
            and time.monotonic() >= self._deadline_at
        ):
            stats.timed_out = True
            raise QueryTimeout(self._deadline, self.finalize())

    def over_budget(self, budget: int, what: str) -> SearchBudgetExceeded:
        """A typed budget error for engine-specific budgets (e.g. relaxations)."""
        return SearchBudgetExceeded(budget, self.finalize(), what=what)

    def finalize(self) -> SearchStats:
        """Capture the end-of-run counter deltas into ``stats`` (idempotent)."""
        stats = self.stats
        if self._finalized:
            return stats
        self._finalized = True
        if self.exit_hook is not None:
            self.exit_hook(stats)
        bp, merges = kernel.COUNTERS.delta(self._kernel_before)
        stats.breakpoints_allocated = bp
        stats.envelope_merges = merges
        cache = self.context.edge_cache
        stats.edge_cache_hits = cache.hits - self._cache_hits_before
        stats.edge_cache_misses = cache.misses - self._cache_misses_before
        stats.page_reads = (
            getattr(self.context.network, "page_reads", 0) - self._io_before
        )
        stats.elapsed_seconds = time.monotonic() - self._started
        return stats
