"""Result and statistics types returned by the query engines."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..func import kernel
from ..func.piecewise import PiecewiseLinearFunction
from ..timeutil import TimeInterval, format_clock, format_duration


@dataclass
class SearchStats:
    """Counters describing one query execution.

    ``expanded_paths`` is the paper's "number of expanded nodes" metric: the
    number of priority-queue pops whose entry was expanded (each pop expands
    one node's adjacency list).  ``distinct_nodes`` counts how many different
    nodes those expansions touched.

    The kernel counters describe function-algebra work done by the query:
    ``breakpoints_allocated`` (output breakpoints written by kernel
    operators), ``envelope_merges`` (fused envelope/dominance folds), and
    ``edge_cache_hits`` / ``edge_cache_misses`` for the engine's cross-query
    edge-function cache.  All four stay 0 when the kernel is disabled.

    ``bound_evaluations`` counts calls into the estimator's ``bound()``
    (the engines memoize per node, so this equals the number of distinct
    nodes the estimator was consulted for).

    ``elapsed_seconds`` is the wall-clock time the search took;
    ``timed_out`` is set when the search was cut short by a query deadline
    (see :class:`~repro.core.engine.QueryTimeout`).

    ``kernel_backend`` names the function-algebra backend the query ran on
    (``array``, ``numpy``, or ``legacy``), stamped at construction so
    trajectories across backends stay distinguishable.
    """

    expanded_paths: int = 0
    distinct_nodes: int = 0
    labels_generated: int = 0
    pruned_dominated: int = 0
    pruned_bound: int = 0
    max_queue_size: int = 0
    page_reads: int = 0
    breakpoints_allocated: int = 0
    envelope_merges: int = 0
    edge_cache_hits: int = 0
    edge_cache_misses: int = 0
    bound_evaluations: int = 0
    elapsed_seconds: float = 0.0
    timed_out: bool = False
    kernel_backend: str = field(default_factory=kernel.active_backend)

    def as_dict(self) -> dict[str, int | float | bool]:
        return {
            "expanded_paths": self.expanded_paths,
            "distinct_nodes": self.distinct_nodes,
            "labels_generated": self.labels_generated,
            "pruned_dominated": self.pruned_dominated,
            "pruned_bound": self.pruned_bound,
            "max_queue_size": self.max_queue_size,
            "page_reads": self.page_reads,
            "breakpoints_allocated": self.breakpoints_allocated,
            "envelope_merges": self.envelope_merges,
            "edge_cache_hits": self.edge_cache_hits,
            "edge_cache_misses": self.edge_cache_misses,
            "bound_evaluations": self.bound_evaluations,
            "elapsed_seconds": self.elapsed_seconds,
            "timed_out": self.timed_out,
            "kernel_backend": self.kernel_backend,
        }


@dataclass(frozen=True)
class FixedPathResult:
    """Answer to the degenerate single-leaving-instant query."""

    source: int
    target: int
    depart: float
    path: tuple[int, ...]
    arrival: float
    stats: SearchStats

    @property
    def travel_time(self) -> float:
        """Travel time in minutes."""
        return self.arrival - self.depart

    def __str__(self) -> str:
        hops = " -> ".join(str(n) for n in self.path)
        return (
            f"leave {format_clock(self.depart)}: {hops} "
            f"({format_duration(self.travel_time)})"
        )


@dataclass(frozen=True)
class SingleFPResult:
    """Answer to the singleFP query (§2.1).

    ``optimal_intervals`` lists the maximal sub-intervals of the query
    interval over which leaving achieves the minimum travel time — the paper
    reports e.g. "any time instant in [7:00, 7:03] is an optimal leaving
    time".
    """

    source: int
    target: int
    interval: TimeInterval
    path: tuple[int, ...]
    travel_time_function: PiecewiseLinearFunction
    optimal_travel_time: float
    optimal_intervals: tuple[tuple[float, float], ...]
    stats: SearchStats

    @property
    def best_leaving_time(self) -> float:
        """One optimal leaving instant (leftmost)."""
        return self.optimal_intervals[0][0]

    def __str__(self) -> str:
        hops = " -> ".join(str(n) for n in self.path)
        windows = ", ".join(
            f"[{format_clock(a)}, {format_clock(b)}]"
            for a, b in self.optimal_intervals
        )
        return (
            f"singleFP {self.source}->{self.target} during {self.interval}: "
            f"{hops}, {format_duration(self.optimal_travel_time)} "
            f"when leaving within {windows}"
        )

    def as_dict(self) -> dict:
        """A JSON-serialisable view of the answer (for APIs / logs)."""
        return {
            "source": self.source,
            "target": self.target,
            "interval": [self.interval.start, self.interval.end],
            "path": list(self.path),
            "optimal_travel_time": self.optimal_travel_time,
            "optimal_intervals": [list(w) for w in self.optimal_intervals],
            "travel_time_function": [
                list(p) for p in self.travel_time_function.breakpoints
            ],
            "stats": self.stats.as_dict(),
        }


@dataclass(frozen=True)
class AllFPEntry:
    """One piece of the allFP answer: a sub-interval and its fastest path."""

    interval: TimeInterval
    path: tuple[int, ...]

    def __str__(self) -> str:
        hops = " -> ".join(str(n) for n in self.path)
        return f"{self.interval}: {hops}"


@dataclass(frozen=True)
class AllFPResult:
    """Answer to the allFP query: a full partition of the leaving interval.

    ``entries`` are the maximal sub-intervals, in chronological order, each
    with the path that is fastest throughout it.  ``border`` is the lower
    border function (§4.6): the travel time achieved by the per-interval
    fastest paths, as a function of the leaving time.
    """

    source: int
    target: int
    interval: TimeInterval
    entries: tuple[AllFPEntry, ...]
    border: PiecewiseLinearFunction
    stats: SearchStats

    def __iter__(self):
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def distinct_paths(self) -> tuple[tuple[int, ...], ...]:
        """The different fastest paths, in order of first appearance."""
        seen: list[tuple[int, ...]] = []
        for entry in self.entries:
            if entry.path not in seen:
                seen.append(entry.path)
        return tuple(seen)

    def path_at(self, leaving_time: float) -> tuple[int, ...]:
        """The fastest path when leaving at the given instant."""
        for entry in self.entries:
            if entry.interval.contains(leaving_time):
                return entry.path
        raise ValueError(
            f"leaving time {leaving_time} outside query interval {self.interval}"
        )

    def travel_time_at(self, leaving_time: float) -> float:
        """Optimal travel time (minutes) when leaving at the given instant."""
        return self.border(self.interval.clamp(leaving_time))

    def best(self) -> tuple[float, float]:
        """``(best_leaving_time, best_travel_time)`` over the whole interval."""
        fn = self.border
        return (fn.argmin(), fn.min_value())

    def __str__(self) -> str:
        lines = [
            f"allFP {self.source}->{self.target} during {self.interval}: "
            f"{len(self.entries)} sub-interval(s)"
        ]
        lines.extend(f"  {entry}" for entry in self.entries)
        return "\n".join(lines)

    def as_dict(self) -> dict:
        """A JSON-serialisable view of the answer (for APIs / logs)."""
        return {
            "source": self.source,
            "target": self.target,
            "interval": [self.interval.start, self.interval.end],
            "entries": [
                {
                    "interval": [e.interval.start, e.interval.end],
                    "path": list(e.path),
                }
                for e in self.entries
            ],
            "border": [list(p) for p in self.border.breakpoints],
            "stats": self.stats.as_dict(),
        }


def merge_adjacent_entries(entries: list[AllFPEntry]) -> tuple[AllFPEntry, ...]:
    """Merge chronologically adjacent entries that share the same path."""
    merged: list[AllFPEntry] = []
    for entry in entries:
        if merged and merged[-1].path == entry.path:
            merged[-1] = AllFPEntry(
                TimeInterval(merged[-1].interval.start, entry.interval.end),
                entry.path,
            )
        else:
            merged.append(entry)
    return tuple(merged)
