"""One-to-many and many-pair batch fastest-path queries.

A batch is a list of ``(source, target)`` pairs answered together.  The
engine groups the pairs by source and runs **one** profile search per
distinct source (:func:`~repro.core.profile.profile_search` with
``targets=`` early termination), so a one-to-many batch of N targets costs
a single search instead of N allFP runs, and every group shares the same
:class:`~repro.core.runtime.SearchContext` — edge arrival functions
materialised for the first group are cache hits for every later one.

Per-item semantics under failure: a deadline or budget exhausted mid-batch
does not discard the answers already computed.  The failing group's items
(and, for a deadline, every remaining group's items) are returned with
``reachable=False`` and an ``error`` string; completed items keep their
answers.  The aggregated :class:`~repro.core.results.SearchStats` sums the
per-group counters so the batch reports its total work.

Used by ``AllFPService`` mode ``"batch"``, the ``/v1/batch`` HTTP endpoint,
and the ``repro-allfp batch`` CLI verb.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..exceptions import NetworkError, QueryError
from ..func.monotone import MonotonePiecewiseLinear
from ..timeutil import TimeInterval
from .results import SearchStats
from .profile import profile_search
from .runtime import QueryTimeout, SearchBudgetExceeded, SearchContext


@dataclass(frozen=True)
class BatchItemResult:
    """Answer for one ``(source, target)`` pair of a batch query.

    ``reachable`` is False when the target has no path from the source
    within the interval *or* when the pair's group failed (deadline,
    budget, unknown node) — ``error`` distinguishes the two: it is None
    for a genuinely unreachable target and a ``"Type: detail"`` string
    for a failed group.
    """

    source: int
    target: int
    reachable: bool
    optimal_travel_time: float | None = None
    optimal_intervals: tuple[tuple[float, float], ...] = ()
    travel_time_function: MonotonePiecewiseLinear | None = None
    error: str | None = None

    def as_dict(self) -> dict:
        """JSON-ready view (used by the ``/v1/batch`` endpoint)."""
        return {
            "source": self.source,
            "target": self.target,
            "reachable": self.reachable,
            "optimal_travel_time": self.optimal_travel_time,
            "optimal_intervals": [list(w) for w in self.optimal_intervals],
            "travel_time_function": None
            if self.travel_time_function is None
            else [list(p) for p in self.travel_time_function.breakpoints],
            "error": self.error,
        }


@dataclass(frozen=True)
class BatchResult:
    """Answer to a batch query: one item per input pair, in input order.

    ``groups`` is the number of distinct sources, i.e. the number of
    profile searches the batch actually ran; comparing it against
    ``len(items)`` shows the amortisation the batch achieved.
    """

    interval: TimeInterval
    items: tuple[BatchItemResult, ...]
    groups: int
    stats: SearchStats

    def __iter__(self):
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    @property
    def errors(self) -> tuple[BatchItemResult, ...]:
        """The items that failed (deadline/budget/unknown node)."""
        return tuple(item for item in self.items if item.error is not None)

    def __str__(self) -> str:
        ok = sum(1 for i in self.items if i.error is None)
        return (
            f"batch during {self.interval}: {len(self.items)} pair(s) in "
            f"{self.groups} group(s), {ok} answered"
        )

    def as_dict(self) -> dict:
        """JSON-ready view (used by the ``/v1/batch`` endpoint)."""
        return {
            "interval": [self.interval.start, self.interval.end],
            "groups": self.groups,
            "items": [item.as_dict() for item in self.items],
            "stats": self.stats.as_dict(),
        }


#: SearchStats counter fields summed across the batch's profile searches.
_SUMMED_COUNTERS = (
    "expanded_paths",
    "distinct_nodes",
    "labels_generated",
    "pruned_dominated",
    "pruned_bound",
    "page_reads",
    "breakpoints_allocated",
    "envelope_merges",
    "edge_cache_hits",
    "edge_cache_misses",
    "bound_evaluations",
)


def _merge_stats(agg: SearchStats, stats: SearchStats) -> None:
    for name in _SUMMED_COUNTERS:
        setattr(agg, name, getattr(agg, name) + getattr(stats, name))
    agg.max_queue_size = max(agg.max_queue_size, stats.max_queue_size)
    agg.timed_out = agg.timed_out or stats.timed_out


def _failed_items(
    members: Sequence[tuple[int, int]], source: int, error: str
) -> Iterable[tuple[int, BatchItemResult]]:
    for index, target in members:
        yield index, BatchItemResult(
            source=source, target=target, reachable=False, error=error
        )


def batch_fastest_times(
    network,
    pairs: Iterable[tuple[int, int]],
    interval: TimeInterval,
    *,
    context: SearchContext | None = None,
    max_pops: int | None = None,
    deadline: float | None = None,
) -> BatchResult:
    """Answer a batch of ``(source, target)`` fastest-time queries.

    Parameters
    ----------
    pairs:
        The queries, answered in input order.  Duplicate pairs are each
        answered (cheaply — the group's search runs once).  A one-to-many
        query is simply ``[(s, t) for t in targets]``.
    context:
        An existing :class:`~repro.core.runtime.SearchContext` to run every
        group on — this is what lets a service share its edge-function
        cache with the batch.  A private context is created when omitted.
    max_pops:
        Per-group pop budget; a group that exceeds it yields error items
        and the batch moves on to the next group.
    deadline:
        Wall-clock budget in seconds for the *whole batch*.  The remaining
        time is re-measured before each group; groups past the deadline
        yield error items without searching.
    """
    pair_list: list[tuple[int, int]] = []
    for pair in pairs:
        source, target = pair
        pair_list.append((int(source), int(target)))
    if not pair_list:
        raise QueryError("batch requires at least one (source, target) pair")

    ctx = context if context is not None else SearchContext(network)

    # Group pair indices by source, preserving first-appearance order.
    groups: dict[int, list[tuple[int, int]]] = {}
    for index, (source, target) in enumerate(pair_list):
        groups.setdefault(source, []).append((index, target))

    out: list[BatchItemResult | None] = [None] * len(pair_list)
    agg = SearchStats()
    started = time.monotonic()

    for source, members in groups.items():
        targets = sorted({target for _index, target in members})
        remaining: float | None = None
        if deadline is not None:
            remaining = deadline - (time.monotonic() - started)
            if remaining <= 0.0:
                agg.timed_out = True
                error = (
                    "QueryTimeout: batch deadline of "
                    f"{deadline:.3f}s exhausted before this group"
                )
                for index, item in _failed_items(members, source, error):
                    out[index] = item
                continue
        try:
            result = profile_search(
                network,
                source,
                interval,
                targets=targets,
                context=ctx,
                max_pops=max_pops,
                deadline=remaining,
            )
        except QueryTimeout as exc:
            agg.timed_out = True
            _merge_stats(agg, exc.stats)
            error = f"QueryTimeout: {exc}"
            for index, item in _failed_items(members, source, error):
                out[index] = item
            continue
        except SearchBudgetExceeded as exc:
            _merge_stats(agg, exc.stats)
            error = f"SearchBudgetExceeded: {exc}"
            for index, item in _failed_items(members, source, error):
                out[index] = item
            continue
        except NetworkError as exc:
            error = f"{type(exc).__name__}: {exc}"
            for index, item in _failed_items(members, source, error):
                out[index] = item
            continue
        _merge_stats(agg, result.stats)
        for index, target in members:
            arrival = result.profiles.get(target)
            if arrival is None:
                out[index] = BatchItemResult(
                    source=source, target=target, reachable=False
                )
                continue
            travel = arrival.minus_identity()
            out[index] = BatchItemResult(
                source=source,
                target=target,
                reachable=True,
                optimal_travel_time=travel.min_value(),
                optimal_intervals=tuple(travel.argmin_intervals()),
                travel_time_function=travel,
            )

    agg.elapsed_seconds = time.monotonic() - started
    return BatchResult(
        interval=interval,
        items=tuple(out),  # type: ignore[arg-type]
        groups=len(groups),
        stats=agg,
    )


def batch_one_to_many(
    network,
    source: int,
    targets: Iterable[int],
    interval: TimeInterval,
    **kwargs,
) -> BatchResult:
    """One-to-many convenience wrapper: one source, many targets."""
    return batch_fastest_times(
        network, [(source, target) for target in targets], interval, **kwargs
    )
