"""Fastest-path query engines (systems S7, S9, S10 in DESIGN.md).

* :class:`~repro.core.engine.IntAllFastestPaths` — the paper's algorithm:
  answers both the allFP query (a partition of the leaving-time interval
  into sub-intervals, each with its fastest path) and the singleFP query
  (the globally best leaving instant and its path).
* :func:`~repro.core.astar.fixed_departure_query` — classical time-dependent
  A* for a single leaving instant (the degenerate case; also the test
  oracle).
* :class:`~repro.core.discrete.DiscreteTimeModel` — the §3/§6.3 baseline:
  one fixed-departure query per discretized instant.
"""

from .results import (
    SearchStats,
    FixedPathResult,
    SingleFPResult,
    AllFPEntry,
    AllFPResult,
)
from .astar import fixed_departure_query
from .engine import IntAllFastestPaths
from .discrete import DiscreteTimeModel, DiscreteQueryResult
from .arrival import (
    ArrivalIntAllFastestPaths,
    ArrivalAllFPResult,
    reverse_boundary_estimator,
)
from .profile import ProfileResult, arrival_profile, profile_search, travel_time_profile
from .batch import BatchItemResult, BatchResult, batch_fastest_times, batch_one_to_many
from .knn import interval_knn, nearest_partition, KnnResult, KnnNeighbor, NearestEntry
from .runtime import (
    DEFAULT_EDGE_CACHE_SIZE,
    EdgeFunctionCache,
    QueryTimeout,
    SearchBudgetExceeded,
    SearchContext,
)

__all__ = [
    "SearchContext",
    "EdgeFunctionCache",
    "SearchBudgetExceeded",
    "QueryTimeout",
    "DEFAULT_EDGE_CACHE_SIZE",
    "ProfileResult",
    "profile_search",
    "BatchItemResult",
    "BatchResult",
    "batch_fastest_times",
    "batch_one_to_many",
    "SearchStats",
    "FixedPathResult",
    "SingleFPResult",
    "AllFPEntry",
    "AllFPResult",
    "fixed_departure_query",
    "IntAllFastestPaths",
    "DiscreteTimeModel",
    "DiscreteQueryResult",
    "ArrivalIntAllFastestPaths",
    "ArrivalAllFPResult",
    "reverse_boundary_estimator",
    "arrival_profile",
    "travel_time_profile",
    "interval_knn",
    "nearest_partition",
    "KnnResult",
    "KnnNeighbor",
    "NearestEntry",
]
