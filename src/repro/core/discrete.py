"""The discrete-time baseline (§3, §6.3 of the paper).

The straightforward way to approximate a time-interval query: discretize the
leaving-time interval into instants every ``step`` minutes and run one
fixed-departure A* per instant.

* For singleFP, report the best (path, instant) over all runs.  Accuracy is
  limited by the discretization: the true optimum may fall between instants,
  which is exactly the effect Figure 10(a) measures.
* For allFP, label each instant with its fastest path and merge consecutive
  instants sharing a path — again only an approximation of the true
  partition boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..estimators.base import LowerBoundEstimator
from ..exceptions import QueryError
from ..timeutil import EPS, TimeInterval
from .astar import fixed_departure_query
from .results import AllFPEntry, FixedPathResult, SearchStats, merge_adjacent_entries


@dataclass(frozen=True)
class DiscreteQueryResult:
    """Outcome of a discrete-time singleFP approximation."""

    source: int
    target: int
    interval: TimeInterval
    step: float
    best: FixedPathResult
    instants: int
    stats: SearchStats

    @property
    def travel_time(self) -> float:
        return self.best.travel_time

    @property
    def path(self) -> tuple[int, ...]:
        return self.best.path


class DiscreteTimeModel:
    """Answers interval queries by repeated fixed-departure A* runs.

    Parameters
    ----------
    network:
        Accessor-surface network (in-memory or CCAM store).
    estimator:
        Optional lower-bound estimator for the inner A* runs (the paper
        uses "the original A* algorithm [15]", i.e. the naive bound).
    """

    def __init__(
        self, network, estimator: LowerBoundEstimator | None = None
    ) -> None:
        self._network = network
        self._estimator = estimator

    def _instants(self, interval: TimeInterval, step: float) -> list[float]:
        if step <= 0:
            raise QueryError(f"discretization step must be positive, got {step}")
        instants: list[float] = []
        t = interval.start
        while t <= interval.end + EPS:
            instants.append(min(t, interval.end))
            t += step
        return instants

    def _heuristic(self, target: int):
        if self._estimator is None:
            return None
        self._estimator.prepare(target)
        return self._estimator.bound

    def single_fastest_path(
        self,
        source: int,
        target: int,
        interval: TimeInterval,
        step: float,
    ) -> DiscreteQueryResult:
        """Discrete-time singleFP: best result over one A* per instant."""
        heuristic = self._heuristic(target)
        totals = SearchStats()
        best: FixedPathResult | None = None
        instants = self._instants(interval, step)
        for depart in instants:
            result = fixed_departure_query(
                self._network, source, target, depart, heuristic
            )
            self._accumulate(totals, result.stats)
            if best is None or result.travel_time < best.travel_time - EPS:
                best = result
        assert best is not None
        return DiscreteQueryResult(
            source, target, interval, step, best, len(instants), totals
        )

    def all_fastest_paths(
        self,
        source: int,
        target: int,
        interval: TimeInterval,
        step: float,
    ) -> tuple[tuple[AllFPEntry, ...], SearchStats]:
        """Discrete-time allFP: per-instant fastest paths, merged into runs.

        Sub-interval boundaries are snapped to the discretization grid —
        the inaccuracy the continuous method avoids.
        """
        heuristic = self._heuristic(target)
        totals = SearchStats()
        instants = self._instants(interval, step)
        entries: list[AllFPEntry] = []
        for i, depart in enumerate(instants):
            result = fixed_departure_query(
                self._network, source, target, depart, heuristic
            )
            self._accumulate(totals, result.stats)
            end = instants[i + 1] if i + 1 < len(instants) else interval.end
            entries.append(
                AllFPEntry(TimeInterval(depart, min(end, interval.end)), result.path)
            )
        return merge_adjacent_entries(entries), totals

    @staticmethod
    def _accumulate(totals: SearchStats, run: SearchStats) -> None:
        totals.expanded_paths += run.expanded_paths
        totals.distinct_nodes += run.distinct_nodes
        totals.labels_generated += run.labels_generated
        totals.max_queue_size = max(totals.max_queue_size, run.max_queue_size)
        totals.page_reads += run.page_reads
