"""The discrete-time baseline (§3, §6.3 of the paper).

The straightforward way to approximate a time-interval query: discretize the
leaving-time interval into instants every ``step`` minutes and run one
fixed-departure A* per instant.

* For singleFP, report the best (path, instant) over all runs.  Accuracy is
  limited by the discretization: the true optimum may fall between instants,
  which is exactly the effect Figure 10(a) measures.
* For allFP, label each instant with its fastest path and merge consecutive
  instants sharing a path — again only an approximation of the true
  partition boundaries.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..estimators.base import LowerBoundEstimator
from ..exceptions import QueryError
from ..timeutil import EPS, TimeInterval
from .astar import fixed_departure_query
from .results import AllFPEntry, FixedPathResult, SearchStats, merge_adjacent_entries
from .runtime import QueryTimeout, SearchBudgetExceeded, SearchContext


@dataclass(frozen=True)
class DiscreteQueryResult:
    """Outcome of a discrete-time singleFP approximation."""

    source: int
    target: int
    interval: TimeInterval
    step: float
    best: FixedPathResult
    instants: int
    stats: SearchStats

    @property
    def travel_time(self) -> float:
        return self.best.travel_time

    @property
    def path(self) -> tuple[int, ...]:
        return self.best.path


class DiscreteTimeModel:
    """Answers interval queries by repeated fixed-departure A* runs.

    Parameters
    ----------
    network:
        Accessor-surface network (in-memory or CCAM store).
    estimator:
        Optional lower-bound estimator for the inner A* runs (the paper
        uses "the original A* algorithm [15]", i.e. the naive bound).
    """

    def __init__(
        self,
        network,
        estimator: LowerBoundEstimator | None = None,
        *,
        context: SearchContext | None = None,
        max_pops: int | None = None,
        deadline: float | None = None,
    ) -> None:
        self._network = network
        self._estimator = estimator
        self._context = context or SearchContext(
            network, max_pops=max_pops, deadline=deadline
        )

    @property
    def context(self) -> SearchContext:
        return self._context

    def _instants(self, interval: TimeInterval, step: float) -> list[float]:
        if step <= 0:
            raise QueryError(f"discretization step must be positive, got {step}")
        instants: list[float] = []
        t = interval.start
        while t <= interval.end + EPS:
            instants.append(min(t, interval.end))
            t += step
        return instants

    def _heuristic(self, target: int):
        if self._estimator is None:
            return None
        self._estimator.prepare(target)
        return self._estimator.bound

    def single_fastest_path(
        self,
        source: int,
        target: int,
        interval: TimeInterval,
        step: float,
    ) -> DiscreteQueryResult:
        """Discrete-time singleFP: best result over one A* per instant."""
        instants = self._instants(interval, step)
        best: FixedPathResult | None = None

        def keep(_i: int, result: FixedPathResult) -> None:
            nonlocal best
            if best is None or result.travel_time < best.travel_time - EPS:
                best = result

        totals = self._run_instants(source, target, instants, keep)
        assert best is not None
        return DiscreteQueryResult(
            source, target, interval, step, best, len(instants), totals
        )

    def all_fastest_paths(
        self,
        source: int,
        target: int,
        interval: TimeInterval,
        step: float,
    ) -> tuple[tuple[AllFPEntry, ...], SearchStats]:
        """Discrete-time allFP: per-instant fastest paths, merged into runs.

        Sub-interval boundaries are snapped to the discretization grid —
        the inaccuracy the continuous method avoids.
        """
        instants = self._instants(interval, step)
        entries: list[AllFPEntry] = []

        def keep(i: int, result: FixedPathResult) -> None:
            end = instants[i + 1] if i + 1 < len(instants) else interval.end
            entries.append(
                AllFPEntry(
                    TimeInterval(result.depart, min(end, interval.end)),
                    result.path,
                )
            )

        totals = self._run_instants(source, target, instants, keep)
        return merge_adjacent_entries(entries), totals

    def _run_instants(
        self,
        source: int,
        target: int,
        instants: list[float],
        keep,
    ) -> SearchStats:
        """One A* per instant, with the context's budgets applied in total.

        ``max_pops`` is a budget on the *sum* of expansions across all
        instants; ``deadline`` is a wall-clock budget on the whole batch
        (each inner run gets the remaining time).  A budget failure
        re-raises with the aggregated partial stats.
        """
        heuristic = self._heuristic(target)
        totals = SearchStats()
        max_pops = self._context.max_pops
        deadline = self._context.deadline
        started = time.monotonic()
        deadline_at = None if deadline is None else started + deadline
        remaining_pops = max_pops
        for i, depart in enumerate(instants):
            inner: dict[str, float | int] = {}
            if remaining_pops is not None:
                inner["max_pops"] = max(remaining_pops, 0)
            if deadline_at is not None:
                inner["deadline"] = max(deadline_at - time.monotonic(), 0.0)
            try:
                result = fixed_departure_query(
                    self._network, source, target, depart, heuristic, **inner
                )
            except QueryTimeout as exc:
                self._accumulate(totals, exc.stats)
                totals.elapsed_seconds = time.monotonic() - started
                totals.timed_out = True
                raise QueryTimeout(deadline, totals) from exc
            except SearchBudgetExceeded as exc:
                self._accumulate(totals, exc.stats)
                totals.elapsed_seconds = time.monotonic() - started
                raise SearchBudgetExceeded(max_pops, totals) from exc
            self._accumulate(totals, result.stats)
            if remaining_pops is not None:
                remaining_pops -= result.stats.expanded_paths
            keep(i, result)
        totals.elapsed_seconds = time.monotonic() - started
        return totals

    @staticmethod
    def _accumulate(totals: SearchStats, run: SearchStats) -> None:
        totals.expanded_paths += run.expanded_paths
        totals.distinct_nodes += run.distinct_nodes
        totals.labels_generated += run.labels_generated
        totals.max_queue_size = max(totals.max_queue_size, run.max_queue_size)
        totals.page_reads += run.page_reads
