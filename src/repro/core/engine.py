"""IntAllFastestPaths — the paper's algorithm (§4.2–§4.6).

The engine keeps a priority queue of expanded paths, each carrying a
piecewise-linear arrival function over the query's leaving-time interval.
Per iteration it pops the path whose ranking function ``T(l) + T_est`` has
the smallest minimum, and either

* folds it into the *lower border function* when it already ends at the
  destination (the running pointwise minimum that becomes the allFP answer),
  or
* expands it along every outgoing edge, composing the path's arrival
  function with the edge's (§4.4's combine step).

It stops when the queue is exhausted or the cheapest queued entry can no
longer improve the border anywhere — the paper's termination test: popped
minima only grow while the border's maximum only shrinks.

The first destination-ending path popped answers the singleFP query; the
completed border answers the allFP query.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable

from ..estimators.base import LowerBoundEstimator
from ..estimators.naive import NaiveEstimator
from ..exceptions import NoPathError, QueryError
from ..func import kernel
from ..func.envelope import AnnotatedEnvelope
from ..func.monotone import MonotonePiecewiseLinear, identity
from ..patterns.travel_time import edge_arrival_function
from ..timeutil import EPS, TimeInterval
from .dominance import DominanceStore
from .labels import LabelQueue, PathLabel
from .results import (
    AllFPEntry,
    AllFPResult,
    SearchStats,
    SingleFPResult,
    merge_adjacent_entries,
)

#: Extra minutes of slack when materialising an edge's arrival function, so
#: small window growth across labels reuses the cached function.
_CACHE_SLACK = 180.0

#: Default ceiling on cached edge functions; bounds memory across queries.
DEFAULT_EDGE_CACHE_SIZE = 4096


class SearchBudgetExceeded(QueryError):
    """Raised when a query exceeds ``max_pops`` (see the pruning ablation)."""

    def __init__(self, max_pops: int, stats: SearchStats) -> None:
        super().__init__(f"search exceeded max_pops={max_pops}")
        self.stats = stats


class QueryTimeout(QueryError):
    """Raised when a query exceeds its wall-clock ``deadline``.

    The deadline is checked on the same branch as the ``max_pops`` pop
    counter, so enabling it adds one clock read per expansion and nothing
    on any other path.  ``stats`` carries the partial counters (with
    ``timed_out`` set) so callers can report how far the search got.
    """

    def __init__(self, deadline: float, stats: SearchStats) -> None:
        super().__init__(
            f"query exceeded deadline of {deadline:.3f}s "
            f"after {stats.expanded_paths} expansions"
        )
        self.deadline = deadline
        self.stats = stats


class _EdgeFunctionCache:
    """Per-edge memo of arrival functions over a growing time window.

    Edge arrival functions depend only on the edge and the departure window,
    not on the query, so repeated expansions (and repeated queries against
    the same engine) reuse them.  Keyed by ``(source, target)`` because the
    disk-backed accessor materialises fresh ``Edge`` objects per call.

    The cache is LRU-bounded: cross-query reuse keeps hot edges resident
    while cold edges are evicted once ``max_entries`` is reached, so a
    long-lived engine's memory stays proportional to its working set rather
    than to every edge it has ever touched.  ``hits`` / ``misses`` feed the
    ``edge_cache_*`` fields of :class:`~repro.core.results.SearchStats`.
    """

    __slots__ = ("_calendar", "_cache", "_max_entries", "hits", "misses")

    def __init__(
        self, calendar, max_entries: int = DEFAULT_EDGE_CACHE_SIZE
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._calendar = calendar
        self._cache: OrderedDict[
            tuple[int, int], MonotonePiecewiseLinear
        ] = OrderedDict()
        self._max_entries = max_entries
        self.hits = 0
        self.misses = 0

    def arrival(self, edge, lo: float, hi: float) -> MonotonePiecewiseLinear:
        provider = getattr(edge, "arrival_function", None)
        if provider is not None:
            # Overlay/shortcut edges supply their function directly (already
            # materialised over the index horizon) — nothing to cache.
            return provider(lo, hi)
        key = (edge.source, edge.target)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            if cached.x_min <= lo and cached.x_max >= hi:
                self.hits += 1
                return cached
        self.misses += 1
        new_lo = min(lo, cached.x_min) if cached is not None else lo
        new_hi = max(hi, cached.x_max) if cached is not None else hi
        # Grow geometrically (capped at a day) so a sequence of slightly
        # wider requests costs few rebuilds instead of one per request.
        slack = min(max(_CACHE_SLACK, new_hi - new_lo), 1440.0)
        fn = edge_arrival_function(
            edge.distance,
            edge.pattern,
            self._calendar,
            new_lo,
            new_hi + slack,
        )
        self._cache[key] = fn
        self._cache.move_to_end(key)
        while len(self._cache) > self._max_entries:
            self._cache.popitem(last=False)
        return fn

    def __len__(self) -> int:
        return len(self._cache)

    def snapshot(self) -> dict[str, int]:
        """A point-in-time view of the cache counters (for services/metrics)."""
        return {
            "entries": len(self._cache),
            "max_entries": self._max_entries,
            "hits": self.hits,
            "misses": self.misses,
        }


#: Public alias — long-lived callers (e.g. :mod:`repro.serve`) build one
#: shared warm cache and hand it to every engine they construct.
EdgeFunctionCache = _EdgeFunctionCache


class IntAllFastestPaths:
    """The paper's query engine for allFP and singleFP queries.

    Parameters
    ----------
    network:
        Anything with the accessor surface (``calendar``, ``location``,
        ``outgoing``) — an in-memory network or a CCAM store.
    estimator:
        A prepared-per-query :class:`~repro.estimators.base.LowerBoundEstimator`;
        defaults to the naive Euclidean/v_max bound.
    prune:
        Enable per-node dominance pruning (see DESIGN.md; ``False`` runs the
        paper's literal algorithm, which can blow up combinatorially).
    max_pops:
        Safety budget on queue pops; exceeded raises
        :class:`SearchBudgetExceeded`.
    edge_cache_size:
        Maximum number of edge arrival functions kept in the LRU-bounded
        cross-query cache.
    edge_cache:
        An existing :class:`EdgeFunctionCache` to share (e.g. one warm
        process-wide cache across a service's worker engines); overrides
        ``edge_cache_size``.
    deadline:
        Default wall-clock budget **in seconds** applied to every query;
        exceeded raises :class:`QueryTimeout`.  Each query method also
        accepts a per-call ``deadline`` override.
    """

    def __init__(
        self,
        network,
        estimator: LowerBoundEstimator | None = None,
        prune: bool = True,
        max_pops: int | None = None,
        edge_cache_size: int = DEFAULT_EDGE_CACHE_SIZE,
        edge_cache: _EdgeFunctionCache | None = None,
        deadline: float | None = None,
    ) -> None:
        self._network = network
        self._estimator = estimator or NaiveEstimator(network)
        self._prune = prune
        self._max_pops = max_pops
        self._edge_cache = (
            edge_cache
            if edge_cache is not None
            else _EdgeFunctionCache(network.calendar, edge_cache_size)
        )
        self._deadline = deadline

    @property
    def estimator(self) -> LowerBoundEstimator:
        return self._estimator

    @property
    def edge_cache(self) -> _EdgeFunctionCache:
        return self._edge_cache

    # ------------------------------------------------------------------
    def all_fastest_paths(
        self,
        source: int,
        target: int,
        interval: TimeInterval,
        deadline: float | None = None,
    ) -> AllFPResult:
        """Answer the allFP query: every fastest path, one per sub-interval."""
        _single, all_fp = self._run(
            source, target, interval, single_only=False, deadline=deadline
        )
        assert all_fp is not None
        return all_fp

    def single_fastest_path(
        self,
        source: int,
        target: int,
        interval: TimeInterval,
        deadline: float | None = None,
    ) -> SingleFPResult:
        """Answer the singleFP query: the best leaving instant and its path."""
        single, _all = self._run(
            source, target, interval, single_only=True, deadline=deadline
        )
        return single

    # ------------------------------------------------------------------
    def _run(
        self,
        source: int,
        target: int,
        interval: TimeInterval,
        single_only: bool,
        deadline: float | None = None,
    ) -> tuple[SingleFPResult, AllFPResult | None]:
        self._network.location(source)
        self._network.location(target)
        if source == target:
            raise QueryError("source and target must differ")

        estimator = self._estimator
        estimator.prepare(target)
        bounds: dict[int, float] = {}

        def est(node: int) -> float:
            cached = bounds.get(node)
            if cached is None:
                cached = estimator.bound(node)
                bounds[node] = cached
                stats.bound_evaluations += 1
            return cached

        lo, hi = interval.start, interval.end
        stats = SearchStats()
        io_before = getattr(self._network, "page_reads", 0)
        kernel_before = kernel.COUNTERS.snapshot()
        cache_hits_before = self._edge_cache.hits
        cache_misses_before = self._edge_cache.misses
        if deadline is None:
            deadline = self._deadline
        started = time.monotonic()
        deadline_at = None if deadline is None else started + max(deadline, 0.0)

        def finalize_counters() -> None:
            bp, merges = kernel.COUNTERS.delta(kernel_before)
            stats.breakpoints_allocated = bp
            stats.envelope_merges = merges
            stats.edge_cache_hits = self._edge_cache.hits - cache_hits_before
            stats.edge_cache_misses = (
                self._edge_cache.misses - cache_misses_before
            )
            stats.elapsed_seconds = time.monotonic() - started

        queue = LabelQueue()
        dominance = DominanceStore(lo, hi)
        border = AnnotatedEnvelope(lo, hi)
        expanded_nodes: set[int] = set()
        first_target_label: PathLabel | None = None

        queue.push(PathLabel.make((source,), identity(lo, hi), est(source)))
        stats.labels_generated += 1

        while queue:
            label = queue.pop()
            if label.f_min >= border.max_value() - EPS:
                break  # §4.6 termination: nothing queued can improve the border
            if label.end == target:
                if first_target_label is None:
                    first_target_label = label
                    if single_only:
                        break
                border.add(label.travel_time_function(), tag=label.path)
                continue
            if self._prune and dominance.is_dominated(label.end, label.arrival):
                stats.pruned_dominated += 1
                continue
            if self._prune:
                dominance.add(label.end, label.arrival)

            stats.expanded_paths += 1
            expanded_nodes.add(label.end)
            if self._max_pops is not None and stats.expanded_paths > self._max_pops:
                stats.distinct_nodes = len(expanded_nodes)
                stats.max_queue_size = queue.max_size
                finalize_counters()
                raise SearchBudgetExceeded(self._max_pops, stats)
            if deadline_at is not None and time.monotonic() >= deadline_at:
                stats.distinct_nodes = len(expanded_nodes)
                stats.max_queue_size = queue.max_size
                stats.timed_out = True
                finalize_counters()
                raise QueryTimeout(deadline, stats)

            arr_lo, arr_hi = label.arrival.value_range
            for edge in self._network.outgoing(label.end):
                if edge.target in label.path:
                    continue  # FIFO makes non-simple paths never faster
                stats.labels_generated += 1
                edge_fn = self._edge_cache.arrival(edge, arr_lo, arr_hi)
                new_arrival = edge_fn.compose(label.arrival).simplify()
                if self._prune and dominance.is_dominated(
                    edge.target, new_arrival
                ):
                    stats.pruned_dominated += 1
                    continue
                new_label = PathLabel.make(
                    label.path + (edge.target,), new_arrival, est(edge.target)
                )
                if new_label.f_min >= border.max_value() - EPS:
                    stats.pruned_bound += 1
                    continue
                queue.push(new_label)

        stats.distinct_nodes = len(expanded_nodes)
        stats.max_queue_size = queue.max_size
        stats.page_reads = getattr(self._network, "page_reads", 0) - io_before
        finalize_counters()

        if first_target_label is None:
            raise NoPathError(source, target)

        single = self._build_single(
            source, target, interval, first_target_label, stats
        )
        if single_only:
            return (single, None)
        return (single, self._build_all(source, target, interval, border, stats))

    # ------------------------------------------------------------------
    @staticmethod
    def _build_single(
        source: int,
        target: int,
        interval: TimeInterval,
        label: PathLabel,
        stats: SearchStats,
    ) -> SingleFPResult:
        travel = label.travel_time_function()
        return SingleFPResult(
            source=source,
            target=target,
            interval=interval,
            path=label.path,
            travel_time_function=travel,
            optimal_travel_time=travel.min_value(),
            optimal_intervals=tuple(travel.argmin_intervals()),
            stats=stats,
        )

    @staticmethod
    def _build_all(
        source: int,
        target: int,
        interval: TimeInterval,
        border: AnnotatedEnvelope,
        stats: SearchStats,
    ) -> AllFPResult:
        entries = [
            AllFPEntry(TimeInterval(start, end), path)
            for start, end, path in border.partition()
        ]
        return AllFPResult(
            source=source,
            target=target,
            interval=interval,
            entries=merge_adjacent_entries(entries),
            border=border.as_function(),
            stats=stats,
        )
