"""IntAllFastestPaths — the paper's algorithm (§4.2–§4.6).

The engine keeps a priority queue of expanded paths, each carrying a
piecewise-linear arrival function over the query's leaving-time interval.
Per iteration it pops the path whose ranking function ``T(l) + T_est`` has
the smallest minimum, and either

* folds it into the *lower border function* when it already ends at the
  destination (the running pointwise minimum that becomes the allFP answer),
  or
* expands it along every outgoing edge, composing the path's arrival
  function with the edge's (§4.4's combine step).

It stops when the queue is exhausted or the cheapest queued entry can no
longer improve the border anywhere — the paper's termination test: popped
minima only grow while the border's maximum only shrinks.

The first destination-ending path popped answers the singleFP query; the
completed border answers the allFP query.

Loop plumbing (edge-function cache, stats, budgets, deadlines) lives in
:mod:`repro.core.runtime`; this module re-exports the names it used to own
(``EdgeFunctionCache``, ``SearchBudgetExceeded``, ``QueryTimeout``, …) so
existing imports keep working.
"""

from __future__ import annotations

from ..estimators.base import LowerBoundEstimator
from ..estimators.naive import NaiveEstimator
from ..exceptions import NoPathError, QueryError
from ..func.envelope import AnnotatedEnvelope
from ..func.monotone import identity
from ..timeutil import EPS, TimeInterval
from .dominance import _DOM_TOL, DominanceStore
from .labels import LabelQueue, PathLabel
from .results import (
    AllFPEntry,
    AllFPResult,
    SearchStats,
    SingleFPResult,
    merge_adjacent_entries,
)
from .runtime import (
    _CACHE_SLACK,
    DEFAULT_EDGE_CACHE_SIZE,
    EdgeFunctionCache,
    QueryTimeout,
    SearchBudgetExceeded,
    SearchContext,
)

#: Backwards-compatible private alias (pre-runtime callers referenced it).
_EdgeFunctionCache = EdgeFunctionCache

__all__ = [
    "IntAllFastestPaths",
    "EdgeFunctionCache",
    "SearchBudgetExceeded",
    "QueryTimeout",
    "SearchContext",
    "DEFAULT_EDGE_CACHE_SIZE",
]


class IntAllFastestPaths:
    """The paper's query engine for allFP and singleFP queries.

    Parameters
    ----------
    network:
        Anything with the accessor surface (``calendar``, ``location``,
        ``outgoing``) — an in-memory network or a CCAM store.
    estimator:
        A prepared-per-query :class:`~repro.estimators.base.LowerBoundEstimator`;
        defaults to the naive Euclidean/v_max bound.
    prune:
        Enable per-node dominance pruning (see DESIGN.md; ``False`` runs the
        paper's literal algorithm, which can blow up combinatorially).
    max_pops:
        Safety budget on queue pops; exceeded raises
        :class:`~repro.core.runtime.SearchBudgetExceeded`.
    edge_cache_size:
        Maximum number of edge arrival functions kept in the LRU-bounded
        cross-query cache.
    edge_cache:
        An existing :class:`~repro.core.runtime.EdgeFunctionCache` to share
        (e.g. one warm process-wide cache across a service's worker
        engines); overrides ``edge_cache_size``.
    deadline:
        Default wall-clock budget **in seconds** applied to every query;
        exceeded raises :class:`~repro.core.runtime.QueryTimeout`.  Each
        query method also accepts a per-call ``deadline`` override.
    context:
        An existing :class:`~repro.core.runtime.SearchContext` to run on;
        overrides ``edge_cache``/``edge_cache_size``/``max_pops``/
        ``deadline``.
    """

    def __init__(
        self,
        network,
        estimator: LowerBoundEstimator | None = None,
        prune: bool = True,
        max_pops: int | None = None,
        edge_cache_size: int = DEFAULT_EDGE_CACHE_SIZE,
        edge_cache: EdgeFunctionCache | None = None,
        deadline: float | None = None,
        context: SearchContext | None = None,
    ) -> None:
        self._network = network
        self._estimator = estimator or NaiveEstimator(network)
        self._prune = prune
        self._context = context or SearchContext(
            network,
            edge_cache=edge_cache,
            edge_cache_size=edge_cache_size,
            max_pops=max_pops,
            deadline=deadline,
        )

    @property
    def estimator(self) -> LowerBoundEstimator:
        return self._estimator

    @property
    def context(self) -> SearchContext:
        return self._context

    @property
    def edge_cache(self) -> EdgeFunctionCache:
        return self._context.edge_cache

    # ------------------------------------------------------------------
    def all_fastest_paths(
        self,
        source: int,
        target: int,
        interval: TimeInterval,
        deadline: float | None = None,
    ) -> AllFPResult:
        """Answer the allFP query: every fastest path, one per sub-interval."""
        _single, all_fp = self._run(
            source, target, interval, single_only=False, deadline=deadline
        )
        assert all_fp is not None
        return all_fp

    def single_fastest_path(
        self,
        source: int,
        target: int,
        interval: TimeInterval,
        deadline: float | None = None,
    ) -> SingleFPResult:
        """Answer the singleFP query: the best leaving instant and its path."""
        single, _all = self._run(
            source, target, interval, single_only=True, deadline=deadline
        )
        return single

    # ------------------------------------------------------------------
    def _run(
        self,
        source: int,
        target: int,
        interval: TimeInterval,
        single_only: bool,
        deadline: float | None = None,
    ) -> tuple[SingleFPResult, AllFPResult | None]:
        self._network.location(source)
        self._network.location(target)
        if source == target:
            raise QueryError("source and target must differ")

        estimator = self._estimator
        estimator.prepare(target)
        bounds: dict[int, float] = {}

        run = (
            self._context.begin()
            if deadline is None
            else self._context.begin(deadline=deadline)
        )
        stats = run.stats

        def est(node: int) -> float:
            cached = bounds.get(node)
            if cached is None:
                cached = estimator.bound(node)
                bounds[node] = cached
                stats.bound_evaluations += 1
            return cached

        lo, hi = interval.start, interval.end
        queue = LabelQueue()
        dominance = DominanceStore(lo, hi)
        border = AnnotatedEnvelope(lo, hi)
        expanded_nodes: set[int] = set()
        first_target_label: PathLabel | None = None

        def exit_hook(s: SearchStats) -> None:
            s.distinct_nodes = len(expanded_nodes)
            s.max_queue_size = queue.max_size

        run.exit_hook = exit_hook

        queue.push(PathLabel.make((source,), identity(lo, hi), est(source)))
        stats.labels_generated += 1

        # Hierarchical query graphs can trim a label's out-edges using the
        # node it arrived from (e.g. suppressing chained same-cell
        # shortcuts); plain networks just ignore the predecessor.
        outgoing_from = getattr(self._network, "outgoing_from", None)
        outgoing = self._network.outgoing

        while queue:
            label = queue.pop()
            if label.f_min >= border.max_value() - EPS:
                break  # §4.6 termination: nothing queued can improve the border
            if label.end == target:
                if first_target_label is None:
                    first_target_label = label
                    if single_only:
                        break
                border.add(label.travel_time_function(), tag=label.path)
                continue
            if self._prune and dominance.is_dominated(label.end, label.arrival):
                stats.pruned_dominated += 1
                continue
            if self._prune:
                dominance.add(label.end, label.arrival)

            stats.expanded_paths += 1
            expanded_nodes.add(label.end)
            run.tick()

            arr_lo, arr_hi = label.arrival.value_range
            travel_lb = label.f_min - label.estimate
            path = label.path
            edges = (
                outgoing(label.end)
                if outgoing_from is None
                else outgoing_from(
                    label.end, path[-2] if len(path) > 1 else None
                )
            )
            for edge in edges:
                if edge.target in label.path:
                    continue  # FIFO makes non-simple paths never faster
                stats.labels_generated += 1
                # Overlay shortcuts carry a precomputed fastest traversal;
                # a label that cannot beat the border even at that speed
                # skips the compose entirely (a lower bound on the full
                # f_min check below, so exactness is untouched).
                mtt = getattr(edge, "min_tt", None)
                if (
                    mtt is not None
                    and travel_lb + mtt + est(edge.target)
                    >= border.max_value() - EPS
                ):
                    stats.pruned_bound += 1
                    continue
                # Scalar dominance pre-test: the composed arrival will be
                # everywhere >= arr_lo + (the edge's fastest traversal), so
                # when the target's envelope never exceeds that the label is
                # dominated before it exists — no compose, no allocation.
                if self._prune and arr_lo + (mtt or 0.0) >= dominance.max_at(
                    edge.target
                ) - _DOM_TOL:
                    stats.pruned_dominated += 1
                    continue
                edge_fn = run.edge_arrival(edge, arr_lo, arr_hi)
                new_arrival = edge_fn.compose(label.arrival).simplify()
                if self._prune and dominance.is_dominated(
                    edge.target, new_arrival
                ):
                    stats.pruned_dominated += 1
                    continue
                new_label = PathLabel.make(
                    label.path + (edge.target,), new_arrival, est(edge.target)
                )
                if new_label.f_min >= border.max_value() - EPS:
                    stats.pruned_bound += 1
                    continue
                queue.push(new_label)

        run.finalize()

        if first_target_label is None:
            raise NoPathError(source, target, stats=stats)

        single = self._build_single(
            source, target, interval, first_target_label, stats
        )
        if single_only:
            return (single, None)
        return (single, self._build_all(source, target, interval, border, stats))

    # ------------------------------------------------------------------
    @staticmethod
    def _build_single(
        source: int,
        target: int,
        interval: TimeInterval,
        label: PathLabel,
        stats: SearchStats,
    ) -> SingleFPResult:
        travel = label.travel_time_function()
        return SingleFPResult(
            source=source,
            target=target,
            interval=interval,
            path=label.path,
            travel_time_function=travel,
            optimal_travel_time=travel.min_value(),
            optimal_intervals=tuple(travel.argmin_intervals()),
            stats=stats,
        )

    @staticmethod
    def _build_all(
        source: int,
        target: int,
        interval: TimeInterval,
        border: AnnotatedEnvelope,
        stats: SearchStats,
    ) -> AllFPResult:
        entries = [
            AllFPEntry(TimeInterval(start, end), path)
            for start, end, path in border.partition()
        ]
        return AllFPResult(
            source=source,
            target=target,
            interval=interval,
            entries=merge_adjacent_entries(entries),
            border=border.as_function(),
            stats=stats,
        )
