"""Time-interval k-nearest-neighbour queries under fastest travel time.

The paper closes with: "Most existing work on spatial queries (kNN, …)
considers either the Euclidean distance or the shortest network distance.
It is interesting to study the impact on these work if we consider the
fastest travel time instead." (§7).  This module implements that extension
for kNN:

* :func:`interval_knn` — given a source, a set of candidate nodes (e.g.
  restaurants) and a leaving-time interval, rank candidates by their
  *minimum* fastest travel time over the interval and return the best k,
  each with its full travel-time function and optimal leaving windows.
* :func:`nearest_partition` — the allFP flavour: partition the interval by
  *which* candidate is nearest, time-dependently (at 7:40 the diner across
  the highway may lose to the cafe downtown).

Implementation: one one-to-all profile search from the source yields every
candidate's earliest-arrival function; ranking and the nearest-partition
are then pure function algebra (minima and an annotated lower envelope).
Exactness follows from the profile search's (FIFO networks only).

Both queries run on the shared :mod:`repro.core.runtime` via
:func:`~repro.core.profile.profile_search`: pass ``context`` to share a
warm edge-function cache, ``max_pops``/``deadline`` to budget the
underlying search, and read ``result.stats`` for the usual counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..exceptions import QueryError
from ..func.envelope import AnnotatedEnvelope
from ..func.piecewise import PiecewiseLinearFunction
from ..timeutil import TimeInterval
from .profile import profile_search
from .results import SearchStats
from .runtime import SearchContext


@dataclass(frozen=True)
class KnnNeighbor:
    """One ranked neighbour of a time-interval kNN answer."""

    node: int
    rank: int
    min_travel_time: float
    travel_time_function: PiecewiseLinearFunction
    optimal_intervals: tuple[tuple[float, float], ...]

    def as_dict(self) -> dict:
        return {
            "node": self.node,
            "rank": self.rank,
            "min_travel_time": self.min_travel_time,
            "travel_time_function": [
                [x, y] for x, y in self.travel_time_function.breakpoints
            ],
            "optimal_intervals": [list(iv) for iv in self.optimal_intervals],
        }


@dataclass(frozen=True)
class KnnResult:
    """Answer to a time-interval kNN query."""

    source: int
    interval: TimeInterval
    k: int
    neighbors: tuple[KnnNeighbor, ...]
    reachable_candidates: int
    stats: SearchStats | None = None

    def __iter__(self):
        return iter(self.neighbors)

    def node_ids(self) -> tuple[int, ...]:
        return tuple(n.node for n in self.neighbors)

    def as_dict(self) -> dict:
        """JSON-ready view (used by the ``/v1/knn`` service endpoint)."""
        return {
            "source": self.source,
            "interval": [self.interval.start, self.interval.end],
            "k": self.k,
            "neighbors": [n.as_dict() for n in self.neighbors],
            "reachable_candidates": self.reachable_candidates,
            "stats": None if self.stats is None else self.stats.as_dict(),
        }


def interval_knn(
    network,
    source: int,
    candidates: Iterable[int],
    k: int,
    interval: TimeInterval,
    *,
    context: SearchContext | None = None,
    max_pops: int | None = None,
    deadline: float | None = None,
) -> KnnResult:
    """The k candidates fastest to reach at some instant in ``interval``.

    Candidates unreachable from the source are skipped; ties in minimum
    travel time break by node id for determinism.
    """
    candidate_list = sorted(set(candidates))
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    if not candidate_list:
        raise QueryError("no candidates given")
    if source in candidate_list:
        raise QueryError("source cannot be its own candidate")
    result = profile_search(
        network,
        source,
        interval,
        targets=candidate_list,
        context=context,
        max_pops=max_pops,
        deadline=deadline,
    )
    profiles = result.profiles
    scored: list[tuple[float, int, PiecewiseLinearFunction]] = []
    for node in candidate_list:
        arrival = profiles.get(node)
        if arrival is None:
            continue
        travel = arrival.minus_identity()
        scored.append((travel.min_value(), node, travel))
    scored.sort(key=lambda item: (item[0], item[1]))
    neighbors = tuple(
        KnnNeighbor(
            node=node,
            rank=rank + 1,
            min_travel_time=best,
            travel_time_function=travel,
            optimal_intervals=tuple(travel.argmin_intervals()),
        )
        for rank, (best, node, travel) in enumerate(scored[:k])
    )
    return KnnResult(
        source=source,
        interval=interval,
        k=k,
        neighbors=neighbors,
        reachable_candidates=len(scored),
        stats=result.stats,
    )


@dataclass(frozen=True)
class NearestEntry:
    """One piece of the time-dependent nearest-candidate partition."""

    interval: TimeInterval
    node: int


def nearest_partition(
    network,
    source: int,
    candidates: Sequence[int],
    interval: TimeInterval,
    *,
    context: SearchContext | None = None,
    max_pops: int | None = None,
    deadline: float | None = None,
) -> tuple[tuple[NearestEntry, ...], PiecewiseLinearFunction]:
    """Partition the leaving interval by the nearest candidate.

    Returns ``(entries, border)`` where each entry names the candidate that
    is fastest to reach throughout its sub-interval and ``border`` is the
    travel time to the nearest candidate as a function of leaving time —
    the kNN analogue of the paper's lower border function.
    """
    candidate_list = sorted(set(candidates))
    if not candidate_list:
        raise QueryError("no candidates given")
    profiles = profile_search(
        network,
        source,
        interval,
        targets=candidate_list,
        context=context,
        max_pops=max_pops,
        deadline=deadline,
    ).profiles
    if not profiles:
        raise QueryError("no candidate reachable from the source")
    envelope = AnnotatedEnvelope(interval.start, interval.end)
    for node in candidate_list:
        arrival = profiles.get(node)
        if arrival is None:
            continue
        envelope.add(arrival.minus_identity(), tag=node)
    entries = tuple(
        NearestEntry(TimeInterval(start, end), node)
        for start, end, node in envelope.partition()
    )
    return entries, envelope.as_function()
