"""Arrival-interval allFP queries — the paper's "(or e)" variant.

The problem statement (§1, §2.1) allows the user to constrain either the
*leaving* time at ``s`` or the *arrival* time at ``e``.  The paper develops
the leaving-interval case; this module implements the arrival-interval case
with the same machinery run backwards.

Given an arrival window ``A`` at ``e``, for each arrival instant ``a ∈ A``
we want the fastest path that reaches ``e`` exactly at ``a``.  Under FIFO
"fastest" coincides with "departing latest": the minimum travel time ending
at ``a`` is ``a − L(a)`` where ``L(a)`` is the latest departure from ``s``
that still arrives by ``a``.

The search therefore grows paths *backwards* from ``e``.  A label for a
path ``u ⇒ e`` carries the monotone piecewise-linear **departure function**
``D(a)`` — leave ``u`` at ``D(a)`` to arrive ``e`` exactly at ``a``.
Extending the path with an edge ``w → u`` composes with the *inverse* of
the edge's arrival function:

    ``D'(a) = A_{w→u}⁻¹(D(a))``

which mirrors the forward §4.4 combine step.  The queue ranks labels by the
minimum of ``(a − D(a)) + est(u)`` where ``est(u)`` lower-bounds the travel
time of the missing prefix ``s ⇒ u``; the lower border of ``a − D(a)``
functions of paths that reached ``s`` yields the answer partition of ``A``.

Estimator note: the missing prefix runs *from* the query source, so the
estimator must bound ``travel(s → u)``.  The naive bound is symmetric and
works as-is (prepared with ``target=s``); a boundary-node estimator must be
built on the **reversed network** for its bound (prepared on ``s``) to be
directionally correct — see :func:`reverse_boundary_estimator`.
"""

from __future__ import annotations

from typing import Hashable

from ..estimators.base import LowerBoundEstimator
from ..estimators.boundary import BoundaryNodeEstimator, Metric
from ..estimators.naive import NaiveEstimator
from ..exceptions import NoPathError, QueryError
from ..func import kernel
from ..func.envelope import AnnotatedEnvelope
from ..func.monotone import MonotonePiecewiseLinear, identity
from ..func.piecewise import XTOL, PiecewiseLinearFunction
from ..patterns.travel_time import edge_arrival_function
from ..timeutil import EPS, TimeInterval
from .labels import LabelQueue, PathLabel
from .results import AllFPEntry, AllFPResult, SearchStats, SingleFPResult, merge_adjacent_entries
from .runtime import SearchContext


def reverse_boundary_estimator(
    network, nx: int = 4, ny: int = 4, metric: Metric = "time"
) -> BoundaryNodeEstimator:
    """A §5 estimator valid for backward searches.

    Built over the transpose graph, so after ``prepare(s)`` its ``bound(u)``
    lower-bounds the *forward* travel time ``s → u``.
    """
    return BoundaryNodeEstimator(network.reversed_copy(), nx, ny, metric)


class _LatestDepartureStore:
    """Per-node dominance for backward labels.

    A backward label at ``u`` is dominated when an already-expanded label at
    ``u`` departs *no earlier* at every arrival instant (a later departure
    with the same arrival can only help any prefix).  Stored as raw
    breakpoint arrays of the lower envelope of the *negated* departure
    functions (the lower envelope of ``−D`` is the upper envelope of ``D``),
    maintained with the kernel's fused min-merge like the forward
    :class:`~repro.core.dominance.DominanceStore`.
    """

    __slots__ = ("_lo", "_hi", "_envelopes")

    def __init__(self, lo: float, hi: float) -> None:
        self._lo = lo
        self._hi = hi
        # node -> (xs, ys) arrays of the lower envelope of −D.
        self._envelopes: dict[int, tuple[list[float], list[float]]] = {}

    def _negated(
        self, departure: PiecewiseLinearFunction
    ) -> tuple[list[float], list[float]]:
        xs, ys = departure._xs, departure._ys
        neg = [-y for y in ys]
        if xs[0] < self._lo - XTOL or xs[-1] > self._hi + XTOL:
            return kernel.restrict(
                xs, neg, max(xs[0], self._lo), min(xs[-1], self._hi)
            )
        return list(xs), neg

    def is_dominated(self, node: int, departure: PiecewiseLinearFunction) -> bool:
        env = self._envelopes.get(node)
        if env is None:
            return False
        xs, neg = self._negated(departure)
        # Strictly later departure somewhere (−D below envelope) => survives.
        return not kernel.lt_somewhere(xs, neg, env[0], env[1], 1e-9)

    def add(self, node: int, departure: PiecewiseLinearFunction) -> None:
        xs, neg = self._negated(departure)
        env = self._envelopes.get(node)
        if env is None:
            self._envelopes[node] = (xs, neg)
        else:
            kernel.COUNTERS.envelope_merges += 1
            self._envelopes[node] = kernel.merge_min(env[0], env[1], xs, neg)


class ArrivalIntAllFastestPaths:
    """allFP / singleFP queries constrained by an *arrival* interval at ``e``.

    Parameters mirror :class:`~repro.core.engine.IntAllFastestPaths`;
    ``estimator.bound(u)`` (after ``prepare(source)``) must lower-bound the
    forward travel time ``source → u`` — the default naive bound does.
    """

    def __init__(
        self,
        network,
        estimator: LowerBoundEstimator | None = None,
        prune: bool = True,
        max_pops: int | None = None,
        deadline: float | None = None,
        context: SearchContext | None = None,
    ) -> None:
        self._network = network
        self._estimator = estimator or NaiveEstimator(network)
        self._prune = prune
        self._context = context or SearchContext(
            network, max_pops=max_pops, deadline=deadline
        )
        self._incoming_cache: dict[int, list] = {}

    @property
    def context(self) -> SearchContext:
        return self._context

    # ------------------------------------------------------------------
    def _incoming(self, node: int) -> list:
        """Incoming edges of a node (memoised; CCAM stores only index
        outgoing adjacency, so for them we build a transpose index once)."""
        cached = self._incoming_cache.get(node)
        if cached is not None:
            return cached
        incoming_fn = getattr(self._network, "incoming", None)
        if incoming_fn is not None:
            edges = incoming_fn(node)
        else:
            self._build_transpose_index()
            edges = self._incoming_cache.get(node, [])
        self._incoming_cache[node] = edges
        return edges

    def _build_transpose_index(self) -> None:
        for nid in self._network.node_ids():
            for edge in self._network.outgoing(nid):
                self._incoming_cache.setdefault(edge.target, []).append(edge)

    def _edge_departure(self, edge, arrive_lo: float, arrive_hi: float):
        """The inverse arrival function of ``edge`` covering the window."""
        max_travel = edge.distance / edge.pattern.min_speed()
        dep_lo = arrive_lo - max_travel - 1.0
        dep_hi = arrive_hi
        forward = edge_arrival_function(
            edge.distance, edge.pattern, self._network.calendar, dep_lo, dep_hi
        )
        return forward.inverse()

    # ------------------------------------------------------------------
    def all_fastest_paths(
        self,
        source: int,
        target: int,
        arrival_interval: TimeInterval,
        deadline: float | None = None,
    ) -> "ArrivalAllFPResult":
        """Every fastest path, one per sub-interval of the arrival window."""
        _single, result = self._run(
            source, target, arrival_interval, False, deadline=deadline
        )
        assert result is not None
        return result

    def single_fastest_path(
        self,
        source: int,
        target: int,
        arrival_interval: TimeInterval,
        deadline: float | None = None,
    ) -> SingleFPResult:
        """The best arrival instant in the window and its fastest path."""
        single, _result = self._run(
            source, target, arrival_interval, True, deadline=deadline
        )
        return single

    # ------------------------------------------------------------------
    def _run(
        self,
        source: int,
        target: int,
        arrival_interval: TimeInterval,
        single_only: bool,
        deadline: float | None = None,
    ):
        self._network.location(source)
        self._network.location(target)
        if source == target:
            raise QueryError("source and target must differ")
        estimator = self._estimator
        estimator.prepare(source)
        bounds: dict[int, float] = {}

        def est(node: int) -> float:
            value = bounds.get(node)
            if value is None:
                value = estimator.bound(node)
                bounds[node] = value
                stats.bound_evaluations += 1
            return value

        lo, hi = arrival_interval.start, arrival_interval.end
        run = (
            self._context.begin()
            if deadline is None
            else self._context.begin(deadline=deadline)
        )
        stats = run.stats
        queue = LabelQueue()
        dominance = _LatestDepartureStore(lo, hi)
        border = AnnotatedEnvelope(lo, hi)
        departures: dict[Hashable, PiecewiseLinearFunction] = {}
        expanded_nodes: set[int] = set()
        first_source_label: PathLabel | None = None

        def exit_hook(s: SearchStats) -> None:
            s.distinct_nodes = len(expanded_nodes)
            s.max_queue_size = queue.max_size

        run.exit_hook = exit_hook

        # A backward label reuses PathLabel with ``arrival`` holding the
        # departure function D(a): travel = a − D(a) = −(D − identity), so
        # minus_identity() . scale(−1) gives the travel function.
        def make_label(path, departure_fn, estimate):
            if kernel.KERNEL_ENABLED:
                # Lazy ranking: travel = a − D(a) shares D's breakpoints, so
                # its minimum is read directly off the arrays.
                t_min = min(
                    x - y for x, y in zip(departure_fn._xs, departure_fn._ys)
                )
                return PathLabel(path, departure_fn, estimate, t_min + estimate)
            travel = departure_fn.minus_identity().scale(-1.0)
            return PathLabel(path, departure_fn, estimate, travel.min_value() + estimate)

        queue.push(make_label((target,), identity(lo, hi), est(target)))
        stats.labels_generated += 1

        while queue:
            label = queue.pop()
            if label.f_min >= border.max_value() - EPS:
                break
            head = label.path[0]
            if head == source:
                if first_source_label is None:
                    first_source_label = label
                    if single_only:
                        break
                travel_fn = label.arrival.minus_identity().scale(-1.0)
                border.add(travel_fn, tag=label.path)
                departures.setdefault(label.path, label.arrival)
                continue
            if self._prune and dominance.is_dominated(head, label.arrival):
                stats.pruned_dominated += 1
                continue
            if self._prune:
                dominance.add(head, label.arrival)

            stats.expanded_paths += 1
            expanded_nodes.add(head)
            run.tick()
            dep_lo, dep_hi = label.arrival.y_min, label.arrival.y_max
            for edge in self._incoming(head):
                if edge.source in label.path:
                    continue
                stats.labels_generated += 1
                inverse = self._edge_departure(edge, dep_lo, dep_hi)
                new_departure = inverse.compose(label.arrival).simplify()
                if self._prune and dominance.is_dominated(
                    edge.source, new_departure
                ):
                    stats.pruned_dominated += 1
                    continue
                new_label = make_label(
                    (edge.source,) + label.path, new_departure, est(edge.source)
                )
                if new_label.f_min >= border.max_value() - EPS:
                    stats.pruned_bound += 1
                    continue
                queue.push(new_label)

        run.finalize()

        if first_source_label is None:
            raise NoPathError(source, target, stats=stats)

        travel_fn = first_source_label.arrival.minus_identity().scale(-1.0)
        single = SingleFPResult(
            source=source,
            target=target,
            interval=arrival_interval,
            path=first_source_label.path,
            travel_time_function=travel_fn,
            optimal_travel_time=travel_fn.min_value(),
            optimal_intervals=tuple(travel_fn.argmin_intervals()),
            stats=stats,
        )
        if single_only:
            return (single, None)

        entries = [
            AllFPEntry(TimeInterval(start, end), path)
            for start, end, path in border.partition()
        ]
        result = ArrivalAllFPResult(
            source=source,
            target=target,
            interval=arrival_interval,
            entries=merge_adjacent_entries(entries),
            border=border.as_function(),
            stats=stats,
            departures=dict(departures),
        )
        return (single, result)


class ArrivalAllFPResult(AllFPResult):
    """allFP answer keyed by *arrival* time, plus departure functions.

    ``interval`` / ``entries`` / ``border`` are indexed by the arrival
    instant at the target; :meth:`departure_at` recovers the leaving time
    the plan requires.
    """

    def __init__(self, *, departures, **kwargs) -> None:
        object.__setattr__(self, "_departures", departures)
        super().__init__(**kwargs)

    def departure_at(self, arrival_time: float) -> float:
        """Latest departure from the source to arrive exactly then."""
        path = self.path_at(arrival_time)
        departure_fn = self._departures[path]
        return departure_fn(self.interval.clamp(arrival_time))
