"""Time-dependent A* for a single leaving instant (system S9).

This is the special case the paper notes is "trivial": once the leaving time
at a node is fixed, the arrival time over each outgoing edge is fixed, so the
classical A* of [15] applies with the time-dependent edge delays evaluated
on the fly.  FIFO (guaranteed by the flow-speed model) makes the
label-setting expansion exact: delaying departure from a node never yields an
earlier arrival, so the first settle of a node is optimal.

Roles in this repository:

* the inner loop of the discrete-time baseline (§6.3),
* the independent test oracle that IntAllFastestPaths is validated against,
* the engine behind the constant-speed "commercial navigation" comparison.

The search runs on the shared :mod:`repro.core.runtime`: stats are
finalized on **every** exit (success, no-path, budget, timeout), and
``max_pops``/``deadline`` behave exactly as on the interval engines.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from ..exceptions import NoPathError, QueryError
from ..patterns.travel_time import traverse
from .results import FixedPathResult, SearchStats
from .runtime import SearchContext


def fixed_departure_query(
    network,
    source: int,
    target: int,
    depart: float,
    heuristic: Callable[[int], float] | None = None,
    *,
    max_pops: int | None = None,
    deadline: float | None = None,
    context: SearchContext | None = None,
) -> FixedPathResult:
    """Fastest path for one leaving instant, via time-dependent A*.

    Parameters
    ----------
    network:
        Anything with the network accessor surface (``calendar``,
        ``outgoing``, ``location``) — an in-memory
        :class:`~repro.network.model.CapeCodNetwork` or a CCAM store.
    heuristic:
        Admissible lower bound (minutes) from a node to ``target``; ``None``
        degrades A* to time-dependent Dijkstra.  Pass
        ``estimator.bound`` after ``estimator.prepare(target)``.
    max_pops:
        Budget on settled-node expansions; exceeded raises
        :class:`~repro.core.runtime.SearchBudgetExceeded` with partial stats.
    deadline:
        Wall-clock budget in seconds; exceeded raises
        :class:`~repro.core.runtime.QueryTimeout` with partial stats.
    context:
        An existing :class:`~repro.core.runtime.SearchContext` supplying the
        defaults for both (per-call arguments override it).
    """
    network.location(source)
    network.location(target)
    if source == target:
        raise QueryError("source and target must differ")
    calendar = network.calendar
    h = heuristic if heuristic is not None else (lambda _node: 0.0)

    ctx = context or SearchContext(network)
    run = ctx.begin(
        **({} if max_pops is None else {"max_pops": max_pops}),
        **({} if deadline is None else {"deadline": deadline}),
    )
    stats = run.stats
    counter = itertools.count()
    best_arrival: dict[int, float] = {source: depart}
    parent: dict[int, int] = {}
    settled: set[int] = set()
    run.exit_hook = lambda s: setattr(s, "distinct_nodes", len(settled))
    heap: list[tuple[float, int, float, int]] = [
        (depart + h(source), next(counter), depart, source)
    ]
    stats.labels_generated += 1

    while heap:
        stats.max_queue_size = max(stats.max_queue_size, len(heap))
        _f, _tie, arrival, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        if node == target:
            path = _reconstruct(parent, source, target)
            run.finalize()
            return FixedPathResult(
                source, target, depart, path, arrival, stats
            )
        stats.expanded_paths += 1
        run.tick()
        for edge in network.outgoing(node):
            if edge.target in settled:
                continue
            stats.labels_generated += 1
            new_arrival = traverse(
                edge.distance, edge.pattern, calendar, arrival
            )
            if new_arrival < best_arrival.get(edge.target, float("inf")) - 1e-12:
                best_arrival[edge.target] = new_arrival
                parent[edge.target] = node
                heapq.heappush(
                    heap,
                    (
                        new_arrival + h(edge.target),
                        next(counter),
                        new_arrival,
                        edge.target,
                    ),
                )
    # Queue exhausted without settling the target: finalize the partial
    # stats and attach them to the error so the work is still observable.
    raise NoPathError(source, target, stats=run.finalize())


def _reconstruct(
    parent: dict[int, int], source: int, target: int
) -> tuple[int, ...]:
    path = [target]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return tuple(path)


def path_arrival_time(
    network, path: tuple[int, ...], depart: float
) -> float:
    """Arrival time of driving ``path`` leaving its first node at ``depart``.

    Utility used to score paths chosen by approximate methods (the
    discrete-time baseline) at exact leaving instants.
    """
    calendar = network.calendar
    t = depart
    for u, v in zip(path, path[1:]):
        edge = network.find_edge(u, v)
        t = traverse(edge.distance, edge.pattern, calendar, t)
    return t


def path_travel_time(network, path: tuple[int, ...], depart: float) -> float:
    """Travel time (minutes) of driving ``path`` leaving at ``depart``."""
    return path_arrival_time(network, path, depart) - depart
