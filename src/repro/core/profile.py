"""One-to-all earliest-arrival profile search.

``arrival_profile`` computes, for every node reachable from a source, the
*earliest-arrival function* over a departure window — the pointwise minimum
of the arrival functions of all paths from the source.  This is the
label-correcting "profile search" of the time-dependent routing literature,
built from the same two primitives as IntAllFastestPaths: monotone function
composition (extend a profile along an edge) and pointwise minimum (merge
alternative paths into one profile per node).

Used by the hierarchical subsystem (S15 in DESIGN.md) to materialise
boundary-to-boundary shortcut functions inside a network fragment, and by
the time-interval kNN feature.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable

from ..exceptions import QueryError
from ..func.monotone import MonotonePiecewiseLinear, identity
from ..func.piecewise import pointwise_minimum
from ..patterns.travel_time import edge_arrival_function
from ..timeutil import TimeInterval

#: Safety valve against non-terminating relaxation (cannot trigger on FIFO
#: networks, where every relaxation strictly lowers a finite envelope).
_MAX_RELAXATIONS_FACTOR = 2000


def arrival_profile(
    network,
    source: int,
    interval: TimeInterval,
    node_filter: Callable[[int], bool] | None = None,
    targets: Iterable[int] | None = None,
) -> dict[int, MonotonePiecewiseLinear]:
    """Earliest-arrival functions from ``source`` over a departure window.

    Parameters
    ----------
    network:
        Accessor-surface network (in-memory or CCAM store).
    interval:
        Departure window at the source.
    node_filter:
        Optional predicate restricting the search to a subgraph (e.g. one
        fragment): only nodes satisfying it are entered.  The source is
        always allowed.
    targets:
        Optional convenience: when given, the returned mapping is restricted
        to these nodes (the computation itself is unaffected).

    Returns
    -------
    dict node id -> monotone arrival function on ``interval``.  Unreachable
    nodes are absent.
    """
    network.location(source)
    calendar = network.calendar
    lo, hi = interval.start, interval.end
    profiles: dict[int, MonotonePiecewiseLinear] = {
        source: identity(lo, hi)
    }
    queue: deque[int] = deque([source])
    queued = {source}
    relaxations = 0
    budget = _MAX_RELAXATIONS_FACTOR * max(
        1, getattr(network, "node_count", 1000)
    )
    edge_fn_cache: dict[tuple[int, int], MonotonePiecewiseLinear] = {}

    while queue:
        u = queue.popleft()
        queued.discard(u)
        profile_u = profiles[u]
        arr_lo, arr_hi = profile_u.value_range
        for edge in network.outgoing(u):
            v = edge.target
            if node_filter is not None and v != source and not node_filter(v):
                continue
            relaxations += 1
            if relaxations > budget:
                raise QueryError(
                    "profile search exceeded its relaxation budget; "
                    "is the network FIFO?"
                )
            key = (u, v)
            edge_fn = edge_fn_cache.get(key)
            if edge_fn is None or edge_fn.x_min > arr_lo or edge_fn.x_max < arr_hi:
                edge_fn = edge_arrival_function(
                    edge.distance, edge.pattern, calendar, arr_lo, arr_hi
                )
                edge_fn_cache[key] = edge_fn
            candidate = edge_fn.compose(profile_u).simplify()
            incumbent = profiles.get(v)
            if incumbent is None:
                profiles[v] = candidate
            else:
                improved = False
                # Quick reject: candidate nowhere better at its breakpoints.
                merged = pointwise_minimum(incumbent, candidate)
                if not incumbent.equals_approx(merged, tol=1e-9):
                    profiles[v] = MonotonePiecewiseLinear(
                        merged.breakpoints
                    ).simplify()
                    improved = True
                if not improved:
                    continue
            if v not in queued:
                queue.append(v)
                queued.add(v)

    if targets is not None:
        wanted = set(targets)
        return {n: fn for n, fn in profiles.items() if n in wanted}
    return profiles


def travel_time_profile(
    network, source: int, interval: TimeInterval, node: int
) -> MonotonePiecewiseLinear | None:
    """Convenience: the earliest-arrival function to one node, or None."""
    return arrival_profile(network, source, interval, targets=[node]).get(node)
