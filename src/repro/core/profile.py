"""One-to-all earliest-arrival profile search.

:func:`profile_search` computes, for every node reachable from a source, the
*earliest-arrival function* over a departure window — the pointwise minimum
of the arrival functions of all paths from the source.  This is the
label-correcting "profile search" of the time-dependent routing literature,
built from the same two primitives as IntAllFastestPaths: monotone function
composition (extend a profile along an edge) and pointwise minimum (merge
alternative paths into one profile per node).

Used by the hierarchical subsystem (S15 in DESIGN.md) to materialise
boundary-to-boundary shortcut functions inside a network fragment, by the
time-interval kNN feature, and by the ``/v1/profile`` service endpoint.

Two implementations share the loop structure:

* the **kernel-native** path (default): per-node profiles are kept as raw
  breakpoint arrays and updated with the fused flat-array operators of
  :mod:`repro.func.kernel` — ``compose`` to extend along an edge,
  ``lt_somewhere`` as an O(n) improvement test that skips the merge
  entirely when a candidate is nowhere better, and ``merge_min`` +
  ``simplify`` when it is.  Function objects are only materialised once at
  the end, via ``MonotonePiecewiseLinear._trusted_monotone``.
* the **legacy object** path (``REPRO_FUNC_KERNEL=0``): the original
  per-update ``pointwise_minimum`` over function objects, retained as the
  parity oracle and benchmark baseline.

Both run on the shared :mod:`repro.core.runtime`: edge arrival functions
come from the context's LRU :class:`~repro.core.runtime.EdgeFunctionCache`
(shared with every other engine on the same context, and provider-aware for
hierarchy shortcut edges), ``max_pops``/``deadline`` are enforced per node
pop, and a finalized :class:`~repro.core.results.SearchStats` is attached
to every exit.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from ..func import kernel
from ..func.monotone import MonotonePiecewiseLinear, identity
from ..func.piecewise import pointwise_minimum
from ..timeutil import TimeInterval
from .results import SearchStats
from .runtime import SearchContext

#: Safety valve against non-terminating relaxation (cannot trigger on FIFO
#: networks, where every relaxation strictly lowers a finite envelope).
_MAX_RELAXATIONS_FACTOR = 2000

#: Tolerance below which a candidate profile is not considered an improvement.
_IMPROVE_TOL = 1e-9


@dataclass(frozen=True)
class ProfileResult:
    """Answer to a one-to-all (or one-to-many) profile search.

    ``profiles`` maps node id to its earliest-arrival function over the
    query interval; unreachable nodes are absent.  ``stats`` is the
    finalized per-run counter set shared with every other engine.
    """

    source: int
    interval: TimeInterval
    profiles: Mapping[int, MonotonePiecewiseLinear]
    stats: SearchStats

    def travel_time(self, node: int):
        """Travel-time function to ``node`` (arrival minus leave), or None."""
        arrival = self.profiles.get(node)
        return None if arrival is None else arrival.minus_identity()

    def as_dict(self) -> dict:
        """JSON-ready view (used by the ``/v1/profile`` service endpoint)."""
        return {
            "source": self.source,
            "interval": [self.interval.start, self.interval.end],
            "profiles": {
                str(node): [[x, y] for x, y in fn.breakpoints]
                for node, fn in sorted(self.profiles.items())
            },
            "stats": self.stats.as_dict(),
        }


def profile_search(
    network,
    source: int,
    interval: TimeInterval,
    node_filter: Callable[[int], bool] | None = None,
    targets: Iterable[int] | None = None,
    *,
    context: SearchContext | None = None,
    max_pops: int | None = None,
    deadline: float | None = None,
) -> ProfileResult:
    """Earliest-arrival functions from ``source`` over a departure window.

    Parameters
    ----------
    network:
        Accessor-surface network (in-memory or CCAM store).
    interval:
        Departure window at the source.
    node_filter:
        Optional predicate restricting the search to a subgraph (e.g. one
        fragment): only nodes satisfying it are entered.  The source is
        always allowed.
    targets:
        Optional convenience: when given, the returned mapping is restricted
        to these nodes (the computation itself is unaffected).
    context:
        An existing :class:`~repro.core.runtime.SearchContext` to run on —
        shares its warm edge-function cache and default budgets.
    max_pops:
        Budget on node pops; exceeded raises
        :class:`~repro.core.runtime.SearchBudgetExceeded` with partial stats.
    deadline:
        Wall-clock budget in seconds; exceeded raises
        :class:`~repro.core.runtime.QueryTimeout` with partial stats.
    """
    network.location(source)
    lo, hi = interval.start, interval.end
    ctx = context or SearchContext(network)
    run = ctx.begin(
        **({} if max_pops is None else {"max_pops": max_pops}),
        **({} if deadline is None else {"deadline": deadline}),
    )
    stats = run.stats
    budget = _MAX_RELAXATIONS_FACTOR * max(
        1, getattr(network, "node_count", 1000)
    )

    if kernel.KERNEL_ENABLED:
        profiles = _search_kernel(
            network, source, lo, hi, node_filter, run, budget
        )
    else:
        profiles = _search_legacy(
            network, source, lo, hi, node_filter, run, budget
        )
    run.finalize()

    if targets is not None:
        wanted = set(targets)
        profiles = {n: fn for n, fn in profiles.items() if n in wanted}
    return ProfileResult(source, interval, profiles, stats)


def _search_kernel(
    network, source, lo, hi, node_filter, run, budget
) -> dict[int, MonotonePiecewiseLinear]:
    """Flat-array loop: profiles live as (xs, ys) arrays until the end."""
    seed = identity(lo, hi)
    prof: dict[int, tuple[list[float], list[float]]] = {
        source: (list(seed._xs), list(seed._ys))
    }
    run.exit_hook = lambda s: setattr(s, "distinct_nodes", len(prof))
    stats = run.stats
    queue: deque[int] = deque([source])
    queued = {source}
    relaxations = 0

    while queue:
        stats.max_queue_size = max(stats.max_queue_size, len(queue))
        u = queue.popleft()
        queued.discard(u)
        u_xs, u_ys = prof[u]
        arr_lo, arr_hi = u_ys[0], u_ys[-1]
        stats.expanded_paths += 1
        run.tick()
        for edge in network.outgoing(u):
            v = edge.target
            if node_filter is not None and v != source and not node_filter(v):
                continue
            relaxations += 1
            if relaxations > budget:
                raise run.over_budget(budget, "relaxations")
            stats.labels_generated += 1
            edge_fn = run.edge_arrival(edge, arr_lo, arr_hi)
            cxs, cys = kernel.compose(edge_fn._xs, edge_fn._ys, u_xs, u_ys)
            cxs, cys = kernel.simplify(cxs, cys, _IMPROVE_TOL)
            incumbent = prof.get(v)
            if incumbent is None:
                prof[v] = (cxs, cys)
            else:
                inc_xs, inc_ys = incumbent
                if not kernel.lt_somewhere(
                    cxs, cys, inc_xs, inc_ys, _IMPROVE_TOL
                ):
                    continue  # candidate nowhere better: skip the merge
                mxs, mys = kernel.merge_min(inc_xs, inc_ys, cxs, cys)
                prof[v] = kernel.simplify(mxs, mys, _IMPROVE_TOL)
            if v not in queued:
                queue.append(v)
                queued.add(v)

    return {
        n: MonotonePiecewiseLinear._trusted_monotone(list(xs), list(ys))
        for n, (xs, ys) in prof.items()
    }


def _search_legacy(
    network, source, lo, hi, node_filter, run, budget
) -> dict[int, MonotonePiecewiseLinear]:
    """Object-path loop (``REPRO_FUNC_KERNEL=0``): the parity oracle."""
    profiles: dict[int, MonotonePiecewiseLinear] = {source: identity(lo, hi)}
    run.exit_hook = lambda s: setattr(s, "distinct_nodes", len(profiles))
    stats = run.stats
    queue: deque[int] = deque([source])
    queued = {source}
    relaxations = 0

    while queue:
        stats.max_queue_size = max(stats.max_queue_size, len(queue))
        u = queue.popleft()
        queued.discard(u)
        profile_u = profiles[u]
        arr_lo, arr_hi = profile_u.value_range
        stats.expanded_paths += 1
        run.tick()
        for edge in network.outgoing(u):
            v = edge.target
            if node_filter is not None and v != source and not node_filter(v):
                continue
            relaxations += 1
            if relaxations > budget:
                raise run.over_budget(budget, "relaxations")
            stats.labels_generated += 1
            edge_fn = run.edge_arrival(edge, arr_lo, arr_hi)
            candidate = edge_fn.compose(profile_u).simplify()
            incumbent = profiles.get(v)
            if incumbent is None:
                profiles[v] = candidate
            else:
                merged = pointwise_minimum(incumbent, candidate)
                if incumbent.equals_approx(merged, tol=_IMPROVE_TOL):
                    continue
                profiles[v] = MonotonePiecewiseLinear(
                    merged.breakpoints
                ).simplify()
            if v not in queued:
                queue.append(v)
                queued.add(v)

    return profiles


def arrival_profile(
    network,
    source: int,
    interval: TimeInterval,
    node_filter: Callable[[int], bool] | None = None,
    targets: Iterable[int] | None = None,
    *,
    context: SearchContext | None = None,
    max_pops: int | None = None,
    deadline: float | None = None,
) -> dict[int, MonotonePiecewiseLinear]:
    """Back-compat wrapper: :func:`profile_search`'s ``profiles`` mapping.

    Returns
    -------
    dict node id -> monotone arrival function on ``interval``.  Unreachable
    nodes are absent.
    """
    return dict(
        profile_search(
            network,
            source,
            interval,
            node_filter,
            targets,
            context=context,
            max_pops=max_pops,
            deadline=deadline,
        ).profiles
    )


def travel_time_profile(
    network, source: int, interval: TimeInterval, node: int
) -> MonotonePiecewiseLinear | None:
    """Convenience: the earliest-arrival function to one node, or None."""
    return arrival_profile(network, source, interval, targets=[node]).get(node)
