"""Per-node label dominance pruning (the documented deviation in DESIGN.md).

The paper bounds the search with the lower-border termination test alone,
which in the worst case lets exponentially many paths into the queue before
the border closes.  Standard practice for time-dependent label-correcting
search is to prune a new path to node ``n`` when paths already *expanded* at
``n`` arrive no later at every departure time.

Correctness under FIFO: fix any leaving time ``l``.  If the stored envelope
satisfies ``env(l) <= A_new(l)`` then some already-expanded prefix reaches
``n`` at time ``env(l) <= A_new(l)``; by FIFO every continuation of the new
path is matched or beaten by the same continuation of that prefix.  So a
label whose arrival function is everywhere >= the envelope can never supply
a strictly faster path for any ``l`` and may be dropped.  (It could at most
tie — the allFP answer keeps one fastest path per sub-interval, so ties are
free to break.)

The per-node envelope needs no piece provenance, so it is stored as raw
breakpoint arrays and maintained with the kernel's fused min-merge
(:func:`repro.func.kernel.merge_min`) — one merge sweep per fold instead of
the annotated-envelope rebuild.  Both checks are exact: the stored envelope
carries the crossing breakpoints ``merge_min`` inserts, so the difference
``arrival - env`` is linear between union abscissae and
:func:`repro.func.kernel.lt_somewhere` deciding at those abscissae decides
the whole interval.

Pruning is on by default and applied to *both* estimators in the Figure 9
experiments, keeping the naiveLB/bdLB comparison like-for-like.  Pass
``prune=False`` to :class:`~repro.core.engine.IntAllFastestPaths` for the
paper's literal algorithm (see the E-A4 ablation for the cost).
"""

from __future__ import annotations

from ..func import kernel
from ..func.monotone import MonotonePiecewiseLinear
from ..func.piecewise import XTOL

#: A new label must beat the envelope by more than this anywhere to survive.
_DOM_TOL = 1e-9


class DominanceStore:
    """Per-node lower envelopes of the arrival functions expanded so far."""

    __slots__ = ("_lo", "_hi", "_envelopes")

    def __init__(self, lo: float, hi: float) -> None:
        self._lo = lo
        self._hi = hi
        # node -> (xs, ys) breakpoint arrays of the node's lower envelope.
        self._envelopes: dict[int, tuple[list[float], list[float]]] = {}

    def _clamped(
        self, arrival: MonotonePiecewiseLinear
    ) -> tuple[list[float] | tuple[float, ...], list[float] | tuple[float, ...]]:
        """Arrival breakpoints restricted to the store's domain."""
        xs, ys = arrival._xs, arrival._ys
        if xs[0] < self._lo - XTOL or xs[-1] > self._hi + XTOL:
            return kernel.restrict(
                xs,
                ys,
                max(xs[0], self._lo),
                min(xs[-1], self._hi),
            )
        return xs, ys

    def max_at(self, node: int) -> float:
        """Largest value of the node's envelope (``inf`` when empty).

        Envelopes are pointwise minima of non-decreasing arrival functions,
        hence non-decreasing themselves: the maximum is the last ordinate.
        A candidate label whose arrival is everywhere at or above this value
        is dominated without comparing functions — the engine uses it as a
        scalar pre-test before composing a new arrival at all.
        """
        env = self._envelopes.get(node)
        return float("inf") if env is None else env[1][-1]

    def is_dominated(self, node: int, arrival: MonotonePiecewiseLinear) -> bool:
        """True when ``arrival`` is nowhere strictly below the node's envelope."""
        env = self._envelopes.get(node)
        if env is None:
            return False
        xs, ys = self._clamped(arrival)
        return not kernel.lt_somewhere(xs, ys, env[0], env[1], _DOM_TOL)

    def add(self, node: int, arrival: MonotonePiecewiseLinear) -> None:
        """Fold an expanded label's arrival function into the node's envelope."""
        xs, ys = self._clamped(arrival)
        env = self._envelopes.get(node)
        if env is None:
            self._envelopes[node] = (list(xs), list(ys))
        else:
            kernel.COUNTERS.envelope_merges += 1
            self._envelopes[node] = kernel.merge_min(env[0], env[1], xs, ys)

    def __len__(self) -> int:
        return len(self._envelopes)
