"""Per-node label dominance pruning (the documented deviation in DESIGN.md).

The paper bounds the search with the lower-border termination test alone,
which in the worst case lets exponentially many paths into the queue before
the border closes.  Standard practice for time-dependent label-correcting
search is to prune a new path to node ``n`` when paths already *expanded* at
``n`` arrive no later at every departure time.

Correctness under FIFO: fix any leaving time ``l``.  If the stored envelope
satisfies ``env(l) <= A_new(l)`` then some already-expanded prefix reaches
``n`` at time ``env(l) <= A_new(l)``; by FIFO every continuation of the new
path is matched or beaten by the same continuation of that prefix.  So a
label whose arrival function is everywhere >= the envelope can never supply
a strictly faster path for any ``l`` and may be dropped.  (It could at most
tie — the allFP answer keeps one fastest path per sub-interval, so ties are
free to break.)

Pruning is on by default and applied to *both* estimators in the Figure 9
experiments, keeping the naiveLB/bdLB comparison like-for-like.  Pass
``prune=False`` to :class:`~repro.core.engine.IntAllFastestPaths` for the
paper's literal algorithm (see the E-A4 ablation for the cost).
"""

from __future__ import annotations

from ..func.envelope import AnnotatedEnvelope
from ..func.monotone import MonotonePiecewiseLinear
from ..func.piecewise import XTOL

#: A new label must beat the envelope by more than this anywhere to survive.
_DOM_TOL = 1e-9


class DominanceStore:
    """Per-node lower envelopes of the arrival functions expanded so far."""

    __slots__ = ("_lo", "_hi", "_envelopes")

    def __init__(self, lo: float, hi: float) -> None:
        self._lo = lo
        self._hi = hi
        self._envelopes: dict[int, AnnotatedEnvelope] = {}

    def is_dominated(self, node: int, arrival: MonotonePiecewiseLinear) -> bool:
        """True when ``arrival`` is nowhere strictly below the node's envelope."""
        env = self._envelopes.get(node)
        if env is None or env.is_empty:
            return False
        # Both the envelope and the arrival function are piecewise linear on
        # the same domain, so "strictly below somewhere" can be decided at
        # the union of their breakpoints.
        xs = {self._lo, self._hi}
        for piece in env.pieces():
            xs.add(piece.x_start)
            xs.add(piece.x_end)
        for x, _y in arrival.breakpoints:
            if self._lo - XTOL <= x <= self._hi + XTOL:
                xs.add(min(max(x, self._lo), self._hi))
        for x in xs:
            if arrival(min(max(x, arrival.x_min), arrival.x_max)) < (
                env.value_at(x) - _DOM_TOL
            ):
                return False
        return True

    def add(self, node: int, arrival: MonotonePiecewiseLinear) -> None:
        """Fold an expanded label's arrival function into the node's envelope."""
        env = self._envelopes.get(node)
        if env is None:
            env = AnnotatedEnvelope(self._lo, self._hi)
            self._envelopes[node] = env
        env.add(arrival, tag=None)

    def __len__(self) -> int:
        return len(self._envelopes)
