"""Priority-queue entries of IntAllFastestPaths.

Each entry (a *label*) is an expanded path ``s ⇒ n_i`` carrying the
piecewise-linear arrival function ``A(l)`` for leaving times ``l`` in the
query interval, plus the cached minimum of the ranking function
``T(l) + T_est`` = ``(A(l) − l) + est(n_i)`` that orders the queue (step 1–2
of the paper's algorithm overview, §4.2).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from ..func import kernel
from ..func.monotone import MonotonePiecewiseLinear
from ..func.piecewise import PiecewiseLinearFunction


@dataclass(frozen=True)
class PathLabel:
    """An expanded path with its arrival function over the query interval."""

    path: tuple[int, ...]
    arrival: MonotonePiecewiseLinear
    estimate: float
    f_min: float

    @property
    def end(self) -> int:
        """The path's last node — the one a pop expands."""
        return self.path[-1]

    @property
    def hops(self) -> int:
        return len(self.path) - 1

    def travel_time_function(self) -> PiecewiseLinearFunction:
        """``T(l) = A(l) − l`` over the query interval."""
        return self.arrival.minus_identity()

    @classmethod
    def make(
        cls,
        path: tuple[int, ...],
        arrival: MonotonePiecewiseLinear,
        estimate: float,
    ) -> "PathLabel":
        """Build a label, computing the cached ranking minimum.

        For a monotone arrival function the minimum of ``A(l) − l + c`` over
        the breakpoint abscissae is exact, since ``A(l) − l`` is piecewise
        linear with the same breakpoints.
        """
        if kernel.KERNEL_ENABLED:
            # Lazy ranking: min(A(l) − l) read straight off the breakpoint
            # arrays — no travel-time function object is allocated.
            f_min = kernel.min_travel(arrival._xs, arrival._ys) + estimate
            return cls(path, arrival, estimate, f_min)
        travel = arrival.minus_identity()
        return cls(path, arrival, estimate, travel.min_value() + estimate)


class LabelQueue:
    """A min-heap of labels ordered by ``f_min`` (ties: fewer hops first)."""

    __slots__ = ("_heap", "_counter", "_max_size")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, PathLabel]] = []
        self._counter = itertools.count()
        self._max_size = 0

    def push(self, label: PathLabel) -> None:
        heapq.heappush(
            self._heap, (label.f_min, label.hops, next(self._counter), label)
        )
        self._max_size = max(self._max_size, len(self._heap))

    def pop(self) -> PathLabel:
        return heapq.heappop(self._heap)[3]

    def peek_f_min(self) -> float:
        """Smallest ranking value currently queued (``inf`` when empty)."""
        return self._heap[0][0] if self._heap else float("inf")

    @property
    def max_size(self) -> int:
        """High-water mark of the queue length."""
        return self._max_size

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
