"""Command-line interface: generate networks, build CCAM databases, query, serve.

Installed as ``repro-allfp``::

    repro-allfp generate --out metro.json --width 48 --height 48
    repro-allfp build-ccam --network metro.json --out metro.ccam
    repro-allfp precompute --network metro.json --out metro.est --workers 4
    repro-allfp query --network metro.json --source 0 --target 2303 \\
        --from 7:00 --to 9:00 --mode allfp \\
        --estimator boundary --estimator-cache metro.est
    repro-allfp profile --network metro.json --source 0 --targets 3,4,5 \\
        --from 7:00 --to 9:00
    repro-allfp knn --network metro.json --source 0 --candidates 3,4,5 \\
        --k 2 --from 7:00 --to 9:00
    repro-allfp info --network metro.json
    repro-allfp serve --network metro.json --port 8080 \\
        --estimator boundary --estimator-cache metro.est
    repro-allfp replay-updates --url http://127.0.0.1:8080 \\
        --trace incident.jsonl --speed 10
    repro-allfp bench-load --network metro.json --clients 4 --queries 50
    repro-allfp chaos --network metro.json --estimator boundary --queries 40

Deliberate failures (missing files, unknown nodes, malformed clock strings)
exit non-zero with one clean ``error:`` line on stderr — never a traceback.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from .core.arrival import ArrivalIntAllFastestPaths, reverse_boundary_estimator
from .core.engine import IntAllFastestPaths
from .estimators.boundary import BoundaryNodeEstimator
from .estimators.naive import NaiveEstimator
from .exceptions import ReproError
from .network.generator import MetroConfig, make_metro_network
from .network.io import load_network, save_network
from .storage.ccam import CCAMStore
from .timeutil import TimeInterval, format_duration, parse_clock


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.metro_scale and args.paper_scale:
        raise ReproError("--metro-scale and --paper-scale are mutually exclusive")
    if args.metro_scale:
        config = MetroConfig.metro_scale(seed=args.seed)
    elif args.paper_scale:
        config = MetroConfig.paper_scale(seed=args.seed)
    else:
        config = MetroConfig(
            width=args.width, height=args.height, spacing=args.spacing, seed=args.seed
        )
    if args.format == "osm-text":
        # Stream straight to disk: metro-scale graphs never materialize
        # as Python objects on this path.
        from .network.generator import emit_metro_lines

        nodes = ways = 0
        with open(args.out, "w", encoding="utf-8") as handle:
            for line in emit_metro_lines(config):
                handle.write(line + "\n")
                if line.startswith("node "):
                    nodes += 1
                elif line.startswith("way "):
                    ways += 1
        print(f"wrote {args.out}: {nodes} nodes, {ways} ways (importer text)")
        return 0
    if args.metro_scale:
        # The object-graph generator would allocate ~100k node/edge objects
        # twice over; go through the streaming importer instead.
        from .network.generator import emit_metro_lines
        from .network.importer import parse_lines

        network, _ = parse_lines(emit_metro_lines(config))
    else:
        network = make_metro_network(config)
    save_network(network, args.out)
    print(
        f"wrote {args.out}: {network.node_count} nodes, "
        f"{network.edge_count} directed edges"
    )
    return 0


def _cmd_import(args: argparse.Namespace) -> int:
    from .network.importer import import_network

    network, stats = import_network(args.input)
    if Path(args.out).suffix == ".ccam":
        store = CCAMStore.build(network, args.out)
        store.close()
    else:
        save_network(network, args.out)
    print(
        f"imported {args.input}: {stats.nodes} nodes, {stats.ways} ways, "
        f"{stats.edges} directed edges "
        f"({stats.highway_edges} highway, {stats.local_edges} local)"
    )
    if stats.skipped_duplicates or stats.skipped_self_loops:
        print(
            f"skipped: {stats.skipped_duplicates} duplicate edge(s), "
            f"{stats.skipped_self_loops} self-loop(s)"
        )
    print(f"wrote {args.out}")
    return 0


def _cmd_build_ccam(args: argparse.Namespace) -> int:
    network = load_network(args.network)
    store = CCAMStore.build(
        network, args.out, page_size=args.page_size, strategy=args.strategy
    )
    info = store.build_info
    print(
        f"wrote {args.out}: {info['data_pages']} data pages, "
        f"{info['tree_pages']} index pages, "
        f"clustering quality {info['clustering_quality']:.1%}"
    )
    store.close()
    return 0


def _open_network(path: str):
    if Path(path).suffix == ".ccam":
        return CCAMStore.open(path)
    return load_network(path)


def _boundary_estimator(network, args: argparse.Namespace):
    """Build the §5 estimator, honoring ``--estimator-cache`` when given.

    * cache file exists  → warm-start from it (a fingerprint mismatch is a
      hard :class:`~repro.exceptions.EstimatorError` → exit 2, one line);
    * cache file missing → precompute (``--precompute-workers`` processes)
      and write the snapshot for the next boot.
    """
    cache = getattr(args, "estimator_cache", None)
    workers = getattr(args, "precompute_workers", 1)
    grid = args.grid
    if cache and Path(cache).exists():
        estimator = BoundaryNodeEstimator.from_snapshot(network, cache)
        print(
            f"estimator cache hit: {cache} "
            f"({estimator.grid.shape[0]}x{estimator.grid.shape[1]} grid, "
            f"{estimator.metric} metric)",
            file=sys.stderr,
        )
        return estimator
    estimator = BoundaryNodeEstimator(network, grid, grid, workers=workers)
    if cache:
        estimator.save_snapshot(cache)
        print(
            f"estimator cache miss: precomputed in "
            f"{estimator.precompute_seconds:.2f}s and wrote {cache}",
            file=sys.stderr,
        )
    return estimator


def _cmd_precompute(args: argparse.Namespace) -> int:
    network = _open_network(args.network)
    if isinstance(network, CCAMStore):
        raise ReproError(
            "boundary estimator precomputation needs the full graph; "
            "pass the .json network instead of a .ccam database"
        )
    estimator = BoundaryNodeEstimator(
        network,
        args.grid,
        args.grid,
        metric=args.metric,
        workers=args.workers,
    )
    path = estimator.save_snapshot(args.out)
    size = path.stat().st_size
    print(
        f"wrote {path}: {args.grid}x{args.grid} grid, {args.metric} metric, "
        f"{network.node_count} nodes, {size} bytes "
        f"(precompute {estimator.precompute_seconds:.2f}s, "
        f"{args.workers} worker(s))"
    )
    return 0


def _cmd_build_overlay(args: argparse.Namespace) -> int:
    """Build the multi-level overlay + boundary tables, write one v2 snapshot.

    The output file serves double duty: ``--estimator-cache`` readers see the
    ordinary boundary tables, ``--overlay-cache`` readers ``mmap`` the
    appended overlay section.
    """
    from .estimators import snapshot as snap
    from .hierarchy import MultiLevelOverlay

    network = _open_network(args.network)
    if isinstance(network, CCAMStore):
        raise ReproError(
            "overlay construction needs the full graph; "
            "pass the .json network instead of a .ccam database"
        )
    horizon = TimeInterval(0.0, args.horizon_hours * 60.0)
    estimator = BoundaryNodeEstimator(
        network, args.grid, args.grid, workers=args.workers
    )
    estimator.precompute()
    tables = estimator.tables
    if tables is None:
        raise ReproError("overlay snapshots require the 'array' precompute backend")
    overlay = MultiLevelOverlay.build(
        network,
        levels=args.levels,
        nx=args.overlay_grid,
        fanout=args.fanout,
        horizon=horizon,
        workers=args.workers,
    )
    snap.save_tables(
        tables, args.out, snap.network_fingerprint(network), overlay=overlay
    )
    size = Path(args.out).stat().st_size
    print(
        f"wrote {args.out}: RPRESNAP v2, {size} bytes "
        f"(estimator {args.grid}x{args.grid}, overlay below)"
    )
    for level in overlay.levels:
        nx, ny = overlay.level_dims(level.level)
        print(
            f"level {level.level}: {nx}x{ny} cells, "
            f"{level.shortcut_count} shortcuts, "
            f"{level.breakpoint_count} breakpoints"
        )
    print(
        f"build: {overlay.stats.build_seconds:.2f}s "
        f"({args.workers} worker(s), "
        f"{sum(lv.profile_searches for lv in overlay.stats.levels)} "
        f"profile searches)"
    )
    return 0


def _overlay_for(network, args: argparse.Namespace, estimator=None):
    """Honor ``--overlay-levels``/``--overlay-cache`` (None = overlay off).

    Mirrors :func:`_boundary_estimator`'s cache semantics: an existing cache
    file is mapped (fingerprint-checked, zero-copy); a missing one with
    ``--overlay-levels N`` triggers an in-process build, persisted as a
    combined v2 snapshot when a cache path was given.
    """
    cache = getattr(args, "overlay_cache", None)
    levels = getattr(args, "overlay_levels", 0)
    if not cache and levels <= 0:
        return None
    from .estimators import snapshot as snap

    if cache and Path(cache).exists():
        overlay = snap.map_overlay(cache, network)
        print(
            f"overlay cache hit: {cache} ({overlay.level_count} level(s), "
            f"{sum(lv.shortcut_count for lv in overlay.levels)} shortcuts)",
            file=sys.stderr,
        )
        return overlay
    if levels <= 0:
        raise ReproError(
            f"overlay cache {cache} does not exist; pass --overlay-levels N "
            "to build it (or repro-allfp build-overlay)"
        )
    from .hierarchy import MultiLevelOverlay

    overlay = MultiLevelOverlay.build(
        network, levels=levels, workers=getattr(args, "precompute_workers", 1)
    )
    if cache:
        tables = getattr(estimator, "tables", None)
        if tables is None:
            # A v2 snapshot always carries estimator tables in front of the
            # overlay section; build the boundary tables if the query ran
            # on another estimator.
            helper = BoundaryNodeEstimator(network, args.grid, args.grid)
            helper.precompute()
            tables = helper.tables
        snap.save_tables(
            tables, cache, snap.network_fingerprint(network), overlay=overlay
        )
        print(
            f"overlay cache miss: built {overlay.level_count} level(s) in "
            f"{overlay.stats.build_seconds:.2f}s and wrote {cache}",
            file=sys.stderr,
        )
    else:
        print(
            f"overlay: built {overlay.level_count} level(s) in "
            f"{overlay.stats.build_seconds:.2f}s",
            file=sys.stderr,
        )
    return overlay


def _cmd_query(args: argparse.Namespace) -> int:
    network = _open_network(args.network)
    interval = TimeInterval(
        parse_clock(args.leave_from, args.day), parse_clock(args.leave_to, args.day)
    )
    backward = args.constraint == "arrival"
    if args.estimator == "boundary":
        if isinstance(network, CCAMStore):
            print(
                "note: boundary estimator precomputation needs the full graph; "
                "falling back to naive on a .ccam input",
                file=sys.stderr,
            )
            estimator = NaiveEstimator(network)
        elif backward:
            if args.estimator_cache:
                print(
                    "note: --estimator-cache is ignored with "
                    "--constraint arrival (the backward estimator is built "
                    "on the reversed network)",
                    file=sys.stderr,
                )
            estimator = reverse_boundary_estimator(network, args.grid, args.grid)
        else:
            estimator = _boundary_estimator(network, args)
    else:
        estimator = NaiveEstimator(network)
    overlay = None
    if backward:
        if getattr(args, "overlay_cache", None) or getattr(
            args, "overlay_levels", 0
        ):
            print(
                "note: the overlay is ignored with --constraint arrival "
                "(shortcuts store forward arrival functions)",
                file=sys.stderr,
            )
    else:
        overlay = _overlay_for(network, args, estimator)
    if backward:
        engine = ArrivalIntAllFastestPaths(network, estimator)
    elif overlay is not None:
        from .hierarchy.engine import OverlayEngine

        engine = OverlayEngine(overlay, estimator)
    else:
        engine = IntAllFastestPaths(network, estimator)
    if args.mode == "singlefp":
        single = engine.single_fastest_path(args.source, args.target, interval)
        print(single)
        print(
            f"expanded paths: {single.stats.expanded_paths}, "
            f"page reads: {single.stats.page_reads}"
        )
        _print_kernel_stats(single.stats)
    else:
        result = engine.all_fastest_paths(args.source, args.target, interval)
        print(result)
        best_leave, best_time = result.best()
        print(
            f"best: leave at minute {best_leave:.1f} for "
            f"{format_duration(best_time)}; expanded paths: "
            f"{result.stats.expanded_paths}, page reads: {result.stats.page_reads}"
        )
        _print_kernel_stats(result.stats)
    return 0


def _parse_node_list(raw: str, flag: str) -> list[int]:
    try:
        nodes = [int(part) for part in raw.split(",") if part.strip() != ""]
    except ValueError as exc:
        raise ReproError(
            f"{flag} must be a comma-separated list of node ids: {exc}"
        ) from exc
    if not nodes:
        raise ReproError(f"{flag} must name at least one node")
    return nodes


def _cmd_profile(args: argparse.Namespace) -> int:
    from .core.profile import profile_search

    network = _open_network(args.network)
    interval = TimeInterval(
        parse_clock(args.leave_from, args.day), parse_clock(args.leave_to, args.day)
    )
    targets = (
        None if args.targets is None else _parse_node_list(args.targets, "--targets")
    )
    result = profile_search(network, args.source, interval, targets=targets)
    for node in sorted(result.profiles):
        fn = result.profiles[node]
        travel = fn.minus_identity()
        print(
            f"node {node}: best {format_duration(travel.min_value())}, "
            f"worst {format_duration(travel.max_value())}, "
            f"{len(fn)} breakpoints"
        )
    stats = result.stats
    print(
        f"reachable nodes: {len(result.profiles)}; expanded: "
        f"{stats.expanded_paths}; elapsed: {stats.elapsed_seconds * 1e3:.1f}ms"
    )
    _print_kernel_stats(stats)
    return 0


def _cmd_knn(args: argparse.Namespace) -> int:
    from .core.knn import interval_knn

    network = _open_network(args.network)
    interval = TimeInterval(
        parse_clock(args.leave_from, args.day), parse_clock(args.leave_to, args.day)
    )
    candidates = _parse_node_list(args.candidates, "--candidates")
    result = interval_knn(network, args.source, candidates, args.k, interval)
    for neighbor in result.neighbors:
        windows = ", ".join(
            f"[{lo:.1f}, {hi:.1f}]" for lo, hi in neighbor.optimal_intervals
        )
        print(
            f"#{neighbor.rank} node {neighbor.node}: "
            f"{format_duration(neighbor.min_travel_time)} at {windows}"
        )
    stats = result.stats
    print(
        f"reachable candidates: {result.reachable_candidates}/{len(set(candidates))}; "
        f"expanded: {stats.expanded_paths}; "
        f"elapsed: {stats.elapsed_seconds * 1e3:.1f}ms"
    )
    _print_kernel_stats(stats)
    return 0


def _parse_pair_list(raw: str, flag: str) -> list[tuple[int, int]]:
    pairs: list[tuple[int, int]] = []
    for part in raw.split(","):
        if part.strip() == "":
            continue
        bits = part.split(":")
        if len(bits) != 2:
            raise ReproError(
                f"{flag} entries must look like SOURCE:TARGET, got {part!r}"
            )
        try:
            pairs.append((int(bits[0]), int(bits[1])))
        except ValueError as exc:
            raise ReproError(
                f"{flag} entries must be integer node ids: {exc}"
            ) from exc
    if not pairs:
        raise ReproError(f"{flag} must name at least one SOURCE:TARGET pair")
    return pairs


def _cmd_batch(args: argparse.Namespace) -> int:
    from .core.batch import batch_fastest_times

    if (args.pairs is None) == (args.targets is None):
        raise ReproError(
            "supply exactly one of --pairs SOURCE:TARGET,... or "
            "--source with --targets"
        )
    if args.targets is not None and args.source is None:
        raise ReproError("--targets requires --source")
    network = _open_network(args.network)
    interval = TimeInterval(
        parse_clock(args.leave_from, args.day), parse_clock(args.leave_to, args.day)
    )
    if args.pairs is not None:
        pairs = _parse_pair_list(args.pairs, "--pairs")
    else:
        pairs = [
            (args.source, target)
            for target in _parse_node_list(args.targets, "--targets")
        ]
    result = batch_fastest_times(
        network, pairs, interval, deadline=args.deadline
    )
    for item in result.items:
        if item.error is not None:
            print(f"{item.source} -> {item.target}: error ({item.error})")
        elif not item.reachable:
            print(f"{item.source} -> {item.target}: unreachable")
        else:
            windows = ", ".join(
                f"[{lo:.1f}, {hi:.1f}]" for lo, hi in item.optimal_intervals
            )
            print(
                f"{item.source} -> {item.target}: best "
                f"{format_duration(item.optimal_travel_time)} at {windows}"
            )
    stats = result.stats
    print(
        f"{len(result.items)} pair(s) in {result.groups} profile search(es); "
        f"expanded: {stats.expanded_paths}; "
        f"elapsed: {stats.elapsed_seconds * 1e3:.1f}ms"
    )
    _print_kernel_stats(stats)
    return 0


def _print_kernel_stats(stats) -> None:
    """One line of kernel-work counters (silent when the kernel was off)."""
    lookups = stats.edge_cache_hits + stats.edge_cache_misses
    if stats.breakpoints_allocated == 0 and lookups == 0:
        return
    hit_rate = stats.edge_cache_hits / lookups if lookups else 0.0
    print(
        f"kernel: {stats.breakpoints_allocated} breakpoints allocated, "
        f"{stats.envelope_merges} envelope merges, "
        f"edge cache {stats.edge_cache_hits}/{lookups} hits "
        f"({hit_rate:.0%})"
    )


def _build_service(args: argparse.Namespace):
    """Shared by ``serve``/``bench-load``/``chaos``: network + estimator + service.

    With ``--shards N`` (N >= 1) the result is a
    :class:`~repro.shard.tier.ShardedService` instead of a single
    :class:`~repro.serve.AllFPService`; the estimator snapshot, when one
    exists on disk, travels to the workers by ``mmap`` (zero-copy), a
    parent-built estimator by shared memory, and the network itself by
    fork (re-opened per worker for .ccam stores).
    """
    from .serve import AllFPService, ServiceConfig

    shards = getattr(args, "shards", 0)
    network = _open_network(args.network)
    estimator = None
    snapshot_path = None
    overlay = None
    overlay_path = None
    degraded = False
    if args.estimator == "boundary":
        if isinstance(network, CCAMStore):
            print(
                "note: boundary estimator precomputation needs the full graph; "
                "falling back to naive on a .ccam input",
                file=sys.stderr,
            )
        else:
            cache = getattr(args, "estimator_cache", None)
            if shards > 0 and cache and Path(cache).exists():
                # Let every worker mmap the snapshot file directly —
                # the fingerprint check happens at attach time, per worker.
                snapshot_path = cache
            else:
                try:
                    estimator = _boundary_estimator(network, args)
                except ReproError as exc:
                    # A broken snapshot must not keep the service down: boot
                    # on the (admissible) naive bound and flag every answer
                    # degraded until an estimator refresh succeeds.
                    print(
                        f"warning: boundary estimator unavailable ({exc}); "
                        "serving degraded on the naive bound",
                        file=sys.stderr,
                    )
                    degraded = True
    overlay_cache = getattr(args, "overlay_cache", None)
    overlay_levels = getattr(args, "overlay_levels", 0)
    if shards > 0 and (overlay_cache or overlay_levels > 0):
        if overlay_cache and not Path(overlay_cache).exists():
            # Build it now so every worker can mmap the same file.
            _overlay_for(network, args, estimator)
        if overlay_cache and Path(overlay_cache).exists():
            overlay_path = overlay_cache
        else:
            print(
                "note: --overlay-levels with --shards needs --overlay-cache "
                "(workers mmap the snapshot); running without the overlay",
                file=sys.stderr,
            )
    elif shards == 0:
        overlay = _overlay_for(network, args, estimator)
    config = ServiceConfig(
        workers=args.workers,
        max_pending=args.max_pending,
        default_deadline=args.deadline if args.deadline > 0 else None,
        coalesce=not args.no_coalesce,
        cache_results=not args.no_result_cache,
        result_cache_size=args.result_cache_size,
        result_cache_ttl=args.result_cache_ttl,
        task_retries=args.task_retries,
        serve_stale=args.serve_stale,
    )
    if shards > 0:
        from .shard import ShardedService

        return ShardedService(
            network,
            estimator,
            config,
            shards=shards,
            network_path=args.network,
            snapshot_path=snapshot_path,
            overlay_path=overlay_path,
            grid=args.grid,
            degraded=degraded,
        )
    return AllFPService(
        network, estimator, config, degraded=degraded, overlay=overlay
    )


def _service_counters(service) -> dict:
    """Engine/cache/coalescing counters, summed across shards when the
    service is a tier (dead shards contribute nothing)."""
    stats = service.stats()
    if "per_shard" not in stats:
        return {
            "engine_runs": stats["engine_runs"],
            "result_cache_hits": stats["result_cache"]["hits"],
            "result_cache_misses": stats["result_cache"]["misses"],
            "coalesced": stats["single_flight"]["coalesced"],
        }
    totals = {
        "engine_runs": 0,
        "result_cache_hits": 0,
        "result_cache_misses": 0,
        "coalesced": 0,
    }
    for shard_stats in stats["per_shard"].values():
        if shard_stats is None:
            continue
        totals["engine_runs"] += shard_stats["engine_runs"]
        totals["result_cache_hits"] += shard_stats["result_cache"]["hits"]
        totals["result_cache_misses"] += shard_stats["result_cache"]["misses"]
        totals["coalesced"] += shard_stats["single_flight"]["coalesced"]
    return totals


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import make_server

    service = _build_service(args)
    server = make_server(service, args.host, args.port, quiet=args.quiet)
    host, port = server.server_address[:2]
    print(f"repro-allfp serving on http://{host}:{port}")
    if getattr(args, "shards", 0) > 0:
        print(
            f"sharded: {args.shards} worker process(es) behind the "
            "consistent-hash router"
        )
    print(
        "endpoints: POST /v1/allfp, POST /v1/singlefp, POST /v1/profile, "
        "POST /v1/knn, POST /v1/updates, GET /healthz, GET /metrics"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.shutdown()
        service.close()
    return 0


def _cmd_bench_load(args: argparse.Namespace) -> int:
    from .serve import InProcessClient, run_closed_loop, run_open_loop
    from .workloads.queries import (
        morning_rush_interval,
        poisson_arrivals,
        random_queries,
    )

    service = _build_service(args)
    interval = morning_rush_interval(args.interval_hours)
    queries = random_queries(
        service.network,
        args.queries,
        interval,
        seed=args.seed,
        min_distance=args.min_distance,
        max_distance=args.max_distance,
    )
    client = InProcessClient(service)
    query_fn = lambda spec: client.query(spec, mode=args.mode)  # noqa: E731
    applier = None
    if getattr(args, "updates_trace", None):
        import threading
        import time as _time

        from .serve.updates import load_trace

        trace = load_trace(args.updates_trace)
        speed = args.updates_speed
        if speed <= 0:
            raise ReproError(f"--updates-speed must be > 0, got {speed:g}")
        print(
            f"live updates: {len(trace)} batch(es), "
            f"{sum(len(e.batch) for e in trace)} mutation(s) from "
            f"{args.updates_trace} at {speed:g}x"
        )

        def _apply_trace() -> None:
            t0 = _time.monotonic()
            for event in trace:
                delay = event.at / speed - (_time.monotonic() - t0)
                if delay > 0:
                    _time.sleep(delay)
                try:
                    service.apply_updates(event.batch)
                except ReproError as exc:
                    print(
                        f"warning: update batch at t={event.at:g}s failed: "
                        f"{exc}",
                        file=sys.stderr,
                    )

        applier = threading.Thread(
            target=_apply_trace, name="bench-load-updates", daemon=True
        )
        applier.start()
    if args.arrivals == "poisson":
        schedule = poisson_arrivals(args.rate, args.duration, seed=args.seed)
        print(
            f"open-loop: {len(schedule)} arrivals at {args.rate:g} qps "
            f"over {args.duration:g}s"
        )
        report = run_open_loop(query_fn, queries, schedule)
    else:
        print(f"closed-loop: {len(queries)} queries, {args.clients} client(s)")
        report = run_closed_loop(query_fn, queries, clients=args.clients)
    if applier is not None:
        applier.join(timeout=120.0)
        if applier.is_alive():
            print(
                "warning: update applier still running after 120s; "
                "meta counts what landed so far",
                file=sys.stderr,
            )
    counters = _service_counters(service)  # before close: shards must be up
    update_stats = service.stats().get("updates") or {}
    service.close()
    summary = report.as_dict()
    print(
        f"requests: {summary['requests']}  ok: {summary['successes']}  "
        f"errors: {summary['errors'] or 'none'}"
    )
    print(
        f"throughput: {summary['throughput_qps']:.1f} qps over "
        f"{summary['wall_seconds']:.2f}s"
    )
    if report.latencies_s:
        print(
            f"latency ms: p50={summary['p50_ms']:.2f} "
            f"p95={summary['p95_ms']:.2f} p99={summary['p99_ms']:.2f}"
        )
    print(
        f"engine runs: {counters['engine_runs']:.0f}  "
        f"result cache: {counters['result_cache_hits']} hits / "
        f"{counters['result_cache_misses']} misses  "
        f"coalesced: {counters['coalesced']}"
    )
    if update_stats.get("batches_applied"):
        print(
            f"updates: {update_stats['batches_applied']} batch(es), "
            f"{update_stats['mutations_applied']} mutation(s) applied, "
            f"max staleness "
            f"{update_stats['max_staleness_seconds'] * 1e3:.1f}ms"
        )
    if args.json:
        from .func import kernel

        shards = getattr(args, "shards", 0)
        payload = {
            **summary,
            "counters": counters,
            "meta": {
                # the same identity labels /metrics carries on every sample
                "kernel_backend": kernel.active_backend(),
                "shard_count": shards if shards > 0 else None,
                "cpu_count": os.cpu_count(),
                "mode": args.mode,
                "arrivals": args.arrivals,
                "applied_mutations": update_stats.get("mutations_applied", 0),
                "max_staleness_seconds": update_stats.get(
                    "max_staleness_seconds", 0.0
                ),
            },
        }
        Path(args.json).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
        print(f"wrote {args.json}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Run the chaos harness against an in-process service (see
    ``docs/reliability.md``): baseline the workload fault-free, replay it
    under the fault plan, and exit non-zero on any invariant violation."""
    from . import reliability
    from .serve.chaos import default_fault_plan, run_chaos, run_shard_chaos
    from .workloads.queries import morning_rush_interval, random_queries

    if args.faults:
        text = args.faults.strip()
        if not text.startswith("{"):
            text = Path(text).read_text(encoding="utf-8")
        plan = reliability.FaultPlan.from_json(text)
    else:
        plan = default_fault_plan(seed=args.fault_seed)
    if reliability.is_active():
        # REPRO_FAULTS would also poison the baseline phase; the harness
        # owns installation for the chaos phase only.
        reliability.uninstall()
        print(
            "note: removed the REPRO_FAULTS injector; the chaos verb "
            "installs its plan after the fault-free baseline",
            file=sys.stderr,
        )
    service = _build_service(args)
    interval = morning_rush_interval(args.interval_hours)
    queries = random_queries(
        service.network,
        args.queries,
        interval,
        seed=args.seed,
        min_distance=args.min_distance,
        max_distance=args.max_distance,
    )
    shards = getattr(args, "shards", 0)
    print(
        f"chaos: {len(queries)} queries, {args.clients} client(s), "
        f"{len(plan.specs)} fault spec(s), seed {plan.seed}"
        + (f", {shards} shard(s) with one mid-run kill" if shards > 0 else "")
    )
    try:
        if shards > 0:
            report = run_shard_chaos(
                service,
                queries,
                plan,
                clients=args.clients,
                kill_shard=args.kill_shard,
            )
        else:
            report = run_chaos(service, queries, plan, clients=args.clients)
    finally:
        service.close()
    for line in report.summary_lines():
        print(line)
    return 0 if report.passed() else 1


def _cmd_replay_updates(args: argparse.Namespace) -> int:
    """Replay a timestamped incident trace against a running server.

    Each trace line is POSTed to ``/v1/updates`` at its recorded offset
    (compressed by ``--speed``); a rejected batch — validation error,
    unknown edge, overload past the client's retry budget — stops the
    replay with one ``error:`` line and exit code 2.
    """
    import time as _time

    from .serve.client import HTTPClient
    from .serve.updates import load_trace

    if args.speed <= 0:
        raise ReproError(f"--speed must be > 0, got {args.speed:g}")
    events = load_trace(args.trace)
    client = HTTPClient(args.url, timeout=args.timeout)
    print(
        f"replaying {args.trace}: {len(events)} batch(es), "
        f"{sum(len(e.batch) for e in events)} mutation(s) "
        f"against {args.url}"
        + (f" at {args.speed:g}x" if args.speed != 1.0 else "")
    )
    started = _time.monotonic()
    version = None
    for event in events:
        delay = event.at / args.speed - (_time.monotonic() - started)
        if delay > 0:
            _time.sleep(delay)
        status, body = client.updates(event.batch)
        if status != 200:
            detail = body.get("error") or body
            raise ReproError(
                f"update batch at t={event.at:g}s rejected: "
                f"HTTP {status}: {detail}"
            )
        version = body.get("version")
        print(
            f"t={event.at:g}s: applied {body.get('applied', len(event.batch))} "
            f"mutation(s) -> network version {version} "
            f"(staleness {body.get('staleness_seconds', 0.0):.3f}s)"
        )
    print(
        f"replay complete: network version {version} "
        f"after {_time.monotonic() - started:.2f}s"
    )
    return 0


def _cmd_snapshot_info(args: argparse.Namespace) -> int:
    """Describe an RPRESNAP estimator snapshot without loading its arrays.

    Corruption (bad magic, truncation, inconsistent counts) surfaces as an
    :class:`~repro.exceptions.EstimatorError`, which ``main`` turns into a
    one-line ``error:`` message and exit code 2.
    """
    from .estimators.snapshot import read_header

    import time as _time

    header = read_header(args.snapshot)
    print(f"snapshot: {args.snapshot}")
    print(f"format: RPRESNAP v{header['version']} ({header['byteorder']}-endian)")
    print(f"network fingerprint: {header['fingerprint']}")
    mtime = Path(args.snapshot).stat().st_mtime
    age_minutes = max(0.0, _time.time() - mtime) / 60.0
    print(
        "built: "
        f"{_time.strftime('%Y-%m-%d %H:%M:%S', _time.gmtime(mtime))} UTC "
        f"({format_duration(age_minutes)} ago)"
    )
    print(
        "network version: base 0 at this fingerprint "
        "(live updates advance network_applied_version on /metrics)"
    )
    if getattr(args, "network", None):
        from .estimators.snapshot import network_fingerprint

        network = _open_network(args.network)
        if isinstance(network, CCAMStore):
            raise ReproError(
                "fingerprint cross-check needs the full graph; "
                "pass the .json network instead of a .ccam database"
            )
        actual = network_fingerprint(network).hex()
        if actual != header["fingerprint"]:
            raise ReproError(
                f"fingerprint MISMATCH: {args.network} hashes to {actual}, "
                f"snapshot pins {header['fingerprint']} — rebuild the "
                "snapshot or pass the network it was built from"
            )
        print(f"network check: {args.network} matches the pinned fingerprint")
    print(f"metric: {header['metric']}")
    print(
        f"grid: {header['nx']}x{header['ny']} "
        f"({header['cell_count']} cells)"
    )
    print(f"nodes: {header['node_count']}")
    print(f"arrays: {header['arrays']}")
    print(f"precompute: {header['precompute_seconds']:.2f}s")
    print(f"size: {header['file_bytes']} bytes")
    overlay = header.get("overlay")
    if overlay is not None:
        base_nx, base_ny = overlay["base_grid"]
        lo, hi = overlay["horizon"]
        print(
            f"overlay: {overlay['levels']} level(s), base grid "
            f"{base_nx}x{base_ny}, fanout {overlay['fanout']}, "
            f"horizon [{lo:.1f}, {hi:.1f}] min, "
            f"build {overlay['build_seconds']:.2f}s"
        )
        for level in overlay["level_details"]:
            print(
                f"  level {level['level']}: {level['nx']}x{level['ny']} "
                f"({level['cells']} cells), "
                f"{level['boundary_nodes']} boundary nodes, "
                f"{level['shortcuts']} shortcuts, "
                f"{level['breakpoints']} breakpoints, "
                f"{level['profile_searches']} profile searches, "
                f"{level['build_seconds']:.2f}s"
            )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    network = _open_network(args.network)
    if isinstance(network, CCAMStore):
        print(f"nodes: {network.node_count}")
        print(f"directed edges: {network.edge_count}")
        print(f"max speed: {network.max_speed():.3f} mpm")
        print(f"page size: {network.page_size}")
        print(f"build: {network.build_info}")
        return 0
    from .network.stats import network_stats

    for line in network_stats(network).summary_lines():
        print(line)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-allfp",
        description="Time-interval fastest paths with CapeCod speed patterns "
        "(ICDE 2006 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic metro network")
    gen.add_argument("--out", required=True, help="output .json path")
    gen.add_argument("--width", type=int, default=48)
    gen.add_argument("--height", type=int, default=48)
    gen.add_argument("--spacing", type=float, default=0.25, help="block miles")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper-matching 14.5k-node configuration",
    )
    gen.add_argument(
        "--metro-scale",
        action="store_true",
        help="emit the 100k+-node metro configuration through the "
        "streaming generator",
    )
    gen.add_argument(
        "--format",
        choices=("json", "osm-text"),
        default="json",
        help="output format: .json network or importer node/way text",
    )
    gen.set_defaults(func=_cmd_generate)

    imp = sub.add_parser(
        "import",
        help="stream an OSM-flavored node/way text file into a network",
    )
    imp.add_argument("input", help="node/way text file (see docs/hierarchy.md)")
    imp.add_argument(
        "--out",
        required=True,
        help="output path: .ccam builds a disk database, anything else "
        "writes the .json network",
    )
    imp.set_defaults(func=_cmd_import)

    build = sub.add_parser("build-ccam", help="build a CCAM disk database")
    build.add_argument("--network", required=True, help="input .json network")
    build.add_argument("--out", required=True, help="output .ccam path")
    build.add_argument("--page-size", type=int, default=2048)
    build.add_argument(
        "--strategy", choices=("hilbert", "connectivity"), default="connectivity"
    )
    build.set_defaults(func=_cmd_build_ccam)

    def add_estimator_cache_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--estimator-cache",
            default=None,
            metavar="PATH",
            help="boundary-estimator snapshot: load it when present "
            "(fingerprint-checked), precompute and write it when missing",
        )
        p.add_argument(
            "--precompute-workers",
            type=int,
            default=1,
            help="process count for the boundary-estimator precompute",
        )

    prep = sub.add_parser(
        "precompute",
        help="precompute the boundary estimator and write a snapshot",
    )
    prep.add_argument("--network", required=True, help="input .json network")
    prep.add_argument("--out", required=True, help="output snapshot path")
    prep.add_argument("--grid", type=int, default=6, help="boundary grid size")
    prep.add_argument("--metric", choices=("time", "distance"), default="time")
    prep.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process count for the per-cell Dijkstra fan-out",
    )
    prep.set_defaults(func=_cmd_precompute)

    def add_overlay_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--overlay-levels",
            type=int,
            default=0,
            metavar="N",
            help="answer through an N-level overlay hierarchy (0 = off)",
        )
        p.add_argument(
            "--overlay-cache",
            default=None,
            metavar="PATH",
            help="v2 snapshot with an overlay section: mmap it when "
            "present (fingerprint-checked), build and write it when "
            "missing and --overlay-levels > 0",
        )

    build_ov = sub.add_parser(
        "build-overlay",
        help="build a multi-level overlay and write a v2 snapshot "
        "(estimator tables + overlay in one file)",
    )
    build_ov.add_argument("--network", required=True, help="input .json network")
    build_ov.add_argument("--out", required=True, help="output snapshot path")
    build_ov.add_argument(
        "--levels", type=int, default=2, help="overlay level count"
    )
    build_ov.add_argument(
        "--grid", type=int, default=6, help="boundary-estimator grid size"
    )
    build_ov.add_argument(
        "--overlay-grid",
        type=int,
        default=8,
        help="base partition size for level 0 (coarsened by --fanout per level)",
    )
    build_ov.add_argument(
        "--fanout",
        type=int,
        default=2,
        help="cells merged per axis at each level",
    )
    build_ov.add_argument(
        "--horizon-hours",
        type=float,
        default=48.0,
        help="departure-time coverage of the shortcut functions",
    )
    build_ov.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process count for the per-cell profile-search fan-out",
    )
    build_ov.set_defaults(func=_cmd_build_overlay)

    query = sub.add_parser("query", help="run an allFP or singleFP query")
    query.add_argument("--network", required=True, help=".json or .ccam input")
    query.add_argument("--source", type=int, required=True)
    query.add_argument("--target", type=int, required=True)
    query.add_argument("--from", dest="leave_from", default="7:00")
    query.add_argument("--to", dest="leave_to", default="9:00")
    query.add_argument(
        "--constraint",
        choices=("leaving", "arrival"),
        default="leaving",
        help="whether --from/--to constrain the leaving time at the source "
        "or the arrival time at the target",
    )
    query.add_argument("--day", type=int, default=0, help="0 = Monday")
    query.add_argument("--mode", choices=("allfp", "singlefp"), default="allfp")
    query.add_argument(
        "--estimator", choices=("naive", "boundary"), default="naive"
    )
    query.add_argument("--grid", type=int, default=6, help="boundary grid size")
    add_estimator_cache_flags(query)
    add_overlay_flags(query)
    query.set_defaults(func=_cmd_query)

    profile = sub.add_parser(
        "profile",
        help="one-to-all earliest-arrival profile search from a source",
    )
    profile.add_argument("--network", required=True, help=".json or .ccam input")
    profile.add_argument("--source", type=int, required=True)
    profile.add_argument(
        "--targets",
        default=None,
        help="comma-separated node ids to report (default: every reachable node)",
    )
    profile.add_argument("--from", dest="leave_from", default="7:00")
    profile.add_argument("--to", dest="leave_to", default="9:00")
    profile.add_argument("--day", type=int, default=0, help="0 = Monday")
    profile.set_defaults(func=_cmd_profile)

    knn = sub.add_parser(
        "knn", help="time-interval k-nearest-neighbour query"
    )
    knn.add_argument("--network", required=True, help=".json or .ccam input")
    knn.add_argument("--source", type=int, required=True)
    knn.add_argument(
        "--candidates",
        required=True,
        help="comma-separated candidate node ids",
    )
    knn.add_argument("--k", type=int, default=1)
    knn.add_argument("--from", dest="leave_from", default="7:00")
    knn.add_argument("--to", dest="leave_to", default="9:00")
    knn.add_argument("--day", type=int, default=0, help="0 = Monday")
    knn.set_defaults(func=_cmd_knn)

    batch = sub.add_parser(
        "batch",
        help="answer many (source, target) fastest-time queries together",
    )
    batch.add_argument("--network", required=True, help=".json or .ccam input")
    batch.add_argument(
        "--pairs",
        default=None,
        help="comma-separated SOURCE:TARGET pairs, e.g. 0:9,3:7",
    )
    batch.add_argument(
        "--source", type=int, default=None, help="one-to-many source node"
    )
    batch.add_argument(
        "--targets",
        default=None,
        help="comma-separated target node ids (one-to-many, with --source)",
    )
    batch.add_argument("--from", dest="leave_from", default="7:00")
    batch.add_argument("--to", dest="leave_to", default="9:00")
    batch.add_argument("--day", type=int, default=0, help="0 = Monday")
    batch.add_argument(
        "--deadline", type=float, default=None,
        help="wall-clock budget in seconds for the whole batch",
    )
    batch.set_defaults(func=_cmd_batch)

    def add_service_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--network", required=True, help=".json or .ccam input")
        p.add_argument(
            "--estimator", choices=("naive", "boundary"), default="naive"
        )
        p.add_argument("--grid", type=int, default=6, help="boundary grid size")
        add_estimator_cache_flags(p)
        add_overlay_flags(p)
        p.add_argument("--workers", type=int, default=4)
        p.add_argument(
            "--max-pending",
            type=int,
            default=64,
            help="admission limit before 503 fast-fail",
        )
        p.add_argument(
            "--deadline",
            type=float,
            default=30.0,
            help="per-query wall-clock budget in seconds (0 disables)",
        )
        p.add_argument(
            "--no-coalesce",
            action="store_true",
            help="disable single-flight deduplication of identical in-flight queries",
        )
        p.add_argument(
            "--no-result-cache",
            action="store_true",
            help="disable the TTL+LRU result cache",
        )
        p.add_argument("--result-cache-size", type=int, default=1024)
        p.add_argument(
            "--result-cache-ttl", type=float, default=300.0, help="seconds"
        )
        p.add_argument(
            "--task-retries",
            type=int,
            default=1,
            help="retries for worker tasks that crash with an unexpected error",
        )
        p.add_argument(
            "--serve-stale",
            action="store_true",
            help="answer from the last good (stale) result when a deadline trips",
        )
        p.add_argument(
            "--shards",
            type=int,
            default=0,
            help="run N worker processes behind the consistent-hash router "
            "(0 = single-process, the default)",
        )

    serve = sub.add_parser("serve", help="run the HTTP query service")
    add_service_flags(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080, help="0 auto-assigns")
    serve.add_argument(
        "--quiet", action="store_true", help="suppress per-request access logs"
    )
    serve.set_defaults(func=_cmd_serve)

    bench = sub.add_parser(
        "bench-load", help="load-generate against an in-process service"
    )
    add_service_flags(bench)
    bench.add_argument(
        "--arrivals",
        choices=("closed", "poisson"),
        default="closed",
        help="closed-loop clients or an open-loop Poisson schedule",
    )
    bench.add_argument("--clients", type=int, default=4, help="closed-loop only")
    bench.add_argument(
        "--rate", type=float, default=50.0, help="poisson arrivals per second"
    )
    bench.add_argument(
        "--duration", type=float, default=2.0, help="poisson schedule seconds"
    )
    bench.add_argument("--queries", type=int, default=50)
    bench.add_argument("--mode", choices=("allfp", "singlefp"), default="allfp")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--min-distance", type=float, default=0.0)
    bench.add_argument("--max-distance", type=float, default=float("inf"))
    bench.add_argument("--interval-hours", type=float, default=3.0)
    bench.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the report (with kernel/shard/cpu meta) as JSON",
    )
    bench.add_argument(
        "--updates-trace",
        default=None,
        metavar="PATH",
        help="replay this incident trace (JSONL) against the service while "
        "the load runs; the JSON meta records applied mutations and max "
        "observed staleness",
    )
    bench.add_argument(
        "--updates-speed",
        type=float,
        default=1.0,
        help="time compression for --updates-trace offsets",
    )
    bench.set_defaults(func=_cmd_bench_load)

    chaos = sub.add_parser(
        "chaos",
        help="replay a workload under injected faults and check the "
        "correct-typed-or-degraded invariant",
    )
    add_service_flags(chaos)
    chaos.add_argument(
        "--faults",
        default=None,
        help="fault plan: inline JSON or a path to a JSON file "
        "(default: a representative built-in plan)",
    )
    chaos.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for the built-in plan (ignored with --faults)",
    )
    chaos.add_argument("--queries", type=int, default=40)
    chaos.add_argument("--clients", type=int, default=4)
    chaos.add_argument("--seed", type=int, default=0, help="workload seed")
    chaos.add_argument("--min-distance", type=float, default=0.0)
    chaos.add_argument("--max-distance", type=float, default=float("inf"))
    chaos.add_argument("--interval-hours", type=float, default=3.0)
    chaos.add_argument(
        "--kill-shard",
        type=int,
        default=None,
        help="with --shards: which worker to hard-kill mid-run "
        "(default: the shard owning the most workload keys)",
    )
    chaos.set_defaults(func=_cmd_chaos)

    info = sub.add_parser("info", help="describe a network or database file")
    info.add_argument("--network", required=True)
    info.set_defaults(func=_cmd_info)

    snap_info = sub.add_parser(
        "snapshot-info",
        help="describe an RPRESNAP estimator snapshot (exit 2 if corrupt)",
    )
    snap_info.add_argument("--snapshot", required=True, help="RPRESNAP file")
    snap_info.add_argument(
        "--network",
        default=None,
        help="cross-check the snapshot's pinned fingerprint against this "
        ".json network (exit 2 on mismatch)",
    )
    snap_info.set_defaults(func=_cmd_snapshot_info)

    replay = sub.add_parser(
        "replay-updates",
        help="replay a timestamped incident trace against a running server",
    )
    replay.add_argument(
        "--url", required=True, help="server base URL, e.g. http://127.0.0.1:8080"
    )
    replay.add_argument(
        "--trace",
        required=True,
        help="JSONL incident trace: one {'at': seconds, 'mutations': [...]} "
        "object per line",
    )
    replay.add_argument(
        "--speed",
        type=float,
        default=1.0,
        help="time compression: 10 fires a t=5s event at 0.5s",
    )
    replay.add_argument(
        "--timeout", type=float, default=60.0, help="per-request seconds"
    )
    replay.set_defaults(func=_cmd_replay_updates)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError, ValueError) as exc:
        # Deliberate failure modes (bad inputs, missing files, unknown
        # nodes, malformed clock strings): one clean line, non-zero exit.
        message = str(exc) or type(exc).__name__
        print(f"error: {message}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
