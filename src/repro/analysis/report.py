"""Plain-text table formatting for experiment reports."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Render an aligned text table, paper-report style.

    Floats are shown with 3 significant-ish decimals; everything else via
    ``str``.
    """

    def cell(value: object) -> str:
        if isinstance(value, float):
            if value != value:  # NaN
                return "-"
            if abs(value) >= 1000:
                return f"{value:,.0f}"
            return f"{value:.3g}" if abs(value) < 10 else f"{value:.1f}"
        return str(value)

    text_rows = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in text_rows)) if text_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
