"""Experiment harness shared by the benchmark suite and the examples."""

from .experiments import (
    bench_network,
    bench_scale,
    fig9_experiment,
    fig10_experiment,
    constant_speed_experiment,
    Fig9Row,
    Fig10Row,
    ConstantSpeedRow,
)
from .report import format_table
from .validation import validate_allfp, validate_arrival_allfp, ValidationReport
from .ascii_plot import render_function, render_partition

__all__ = [
    "bench_network",
    "bench_scale",
    "fig9_experiment",
    "fig10_experiment",
    "constant_speed_experiment",
    "Fig9Row",
    "Fig10Row",
    "ConstantSpeedRow",
    "format_table",
    "validate_allfp",
    "validate_arrival_allfp",
    "ValidationReport",
    "render_function",
    "render_partition",
]
