"""Reusable experiment procedures for every paper figure and table.

Each function runs one experiment's full query workload and returns typed
rows; the modules under ``benchmarks/`` wrap these in pytest-benchmark
targets and print the paper-style tables.

Scale control
-------------
The benchmark network is chosen by the ``REPRO_BENCH_SCALE`` environment
variable:

* ``small``  — 24×24 grid  (576 nodes), distance bands up to 4 miles,
* ``medium`` — 48×48 grid  (2,304 nodes), the paper's 1–8 mile bands
  (default),
* ``paper``  — 121×120 grid (14,520 nodes), the paper's network size.

``REPRO_BENCH_QUERIES`` overrides the queries-per-configuration count
(paper: 100; default here: 12, so the full suite runs in minutes on a
laptop).
"""

from __future__ import annotations

import os
import statistics
import time
from dataclasses import dataclass
from functools import lru_cache

from ..core.astar import fixed_departure_query, path_travel_time
from ..core.discrete import DiscreteTimeModel
from ..core.engine import IntAllFastestPaths
from ..estimators.base import LowerBoundEstimator
from ..network.generator import MetroConfig, make_metro_network
from ..network.model import CapeCodNetwork
from ..patterns.schema import constant_speed_schema
from ..timeutil import TimeInterval
from ..workloads.queries import QuerySpec, distance_band_queries, morning_rush_interval

_SCALES = {
    "small": MetroConfig(width=24, height=24, spacing=0.25, seed=42),
    "medium": MetroConfig(width=48, height=48, spacing=0.25, seed=42),
    "paper": MetroConfig.paper_scale(seed=42),
}


def bench_scale() -> str:
    """The active benchmark scale name."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "medium")
    if scale not in _SCALES:
        raise ValueError(
            f"REPRO_BENCH_SCALE={scale!r}; choose one of {sorted(_SCALES)}"
        )
    return scale


def bench_queries(default: int = 12) -> int:
    """Queries per configuration (paper: 100)."""
    return int(os.environ.get("REPRO_BENCH_QUERIES", default))


@lru_cache(maxsize=4)
def bench_network(constant_speed: bool = False) -> CapeCodNetwork:
    """The shared benchmark network at the active scale (memoised).

    With ``constant_speed=True`` the same topology (same seed, hence the
    same jitter/detour/keep decisions) carries the constant speed-limit
    patterns — the commercial-navigation baseline of the Table 1 comparison.
    """
    config = _SCALES[bench_scale()]
    schema = constant_speed_schema() if constant_speed else None
    return make_metro_network(config, schema=schema)


def default_bands() -> list[tuple[float, float]]:
    """Euclidean-distance bands that fit the active scale's map."""
    if bench_scale() == "small":
        return [(1, 2), (2, 3), (3, 4)]
    return [(d, d + 1) for d in range(1, 8)]


# ----------------------------------------------------------------------
# Figure 9 — effect of the lower-bound estimator
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig9Row:
    """Mean expanded paths for one (distance band, estimator, query type)."""

    band: tuple[float, float]
    estimator: str
    query_type: str
    mean_expanded: float
    mean_distinct_nodes: float
    mean_seconds: float
    queries: int
    #: Mean kernel breakpoints allocated per query (0.0 with the kernel off).
    mean_breakpoints: float = 0.0
    #: Edge-function cache hit rate across the row's queries.
    edge_cache_hit_rate: float = 0.0


def fig9_experiment(
    network: CapeCodNetwork,
    estimators: dict[str, LowerBoundEstimator],
    query_type: str,
    bands: list[tuple[float, float]] | None = None,
    per_band: int | None = None,
    interval_hours: float = 3.0,
    seed: int = 0,
) -> list[Fig9Row]:
    """Run the Figure 9 sweep: expanded nodes vs Euclidean distance.

    ``query_type`` is ``"singleFP"`` or ``"allFP"``; each estimator answers
    the *same* queries (the paper poses 100 queries per experiment and runs
    every approach on them).
    """
    if query_type not in ("singleFP", "allFP"):
        raise ValueError(f"unknown query type {query_type!r}")
    bands = bands if bands is not None else default_bands()
    per_band = per_band if per_band is not None else bench_queries()
    interval = morning_rush_interval(interval_hours)
    workload = distance_band_queries(network, bands, per_band, interval, seed)

    rows: list[Fig9Row] = []
    for band in bands:
        for name, estimator in estimators.items():
            engine = IntAllFastestPaths(network, estimator)
            expanded: list[int] = []
            distinct: list[int] = []
            seconds: list[float] = []
            breakpoints: list[int] = []
            cache_hits = cache_lookups = 0
            for query in workload[band]:
                start = time.perf_counter()
                if query_type == "singleFP":
                    result = engine.single_fastest_path(
                        query.source, query.target, query.interval
                    )
                else:
                    result = engine.all_fastest_paths(
                        query.source, query.target, query.interval
                    )
                seconds.append(time.perf_counter() - start)
                expanded.append(result.stats.expanded_paths)
                distinct.append(result.stats.distinct_nodes)
                breakpoints.append(result.stats.breakpoints_allocated)
                cache_hits += result.stats.edge_cache_hits
                cache_lookups += (
                    result.stats.edge_cache_hits + result.stats.edge_cache_misses
                )
            rows.append(
                Fig9Row(
                    band,
                    name,
                    query_type,
                    statistics.fmean(expanded),
                    statistics.fmean(distinct),
                    statistics.fmean(seconds),
                    len(workload[band]),
                    statistics.fmean(breakpoints),
                    cache_hits / cache_lookups if cache_lookups else 0.0,
                )
            )
    return rows


# ----------------------------------------------------------------------
# Figure 10 — CapeCod vs the discrete-time model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig10Row:
    """Mean ratios for one discretization step (discrete / CapeCod)."""

    step_minutes: float
    travel_time_ratio: float
    query_time_ratio: float
    queries: int


def fig10_experiment(
    network: CapeCodNetwork,
    steps_minutes: list[float],
    count: int | None = None,
    interval: TimeInterval | None = None,
    min_distance: float = 7.0,
    max_distance: float = 8.0,
    seed: int = 0,
) -> list[Fig10Row]:
    """Run the Figure 10 sweep.

    For each query the continuous engine answers singleFP once; the
    discrete-time model answers it at every discretization step.  Ratios are
    discrete / CapeCod, exactly as the paper reports them: travel time
    (accuracy, Figure 10a) and query wall-clock time (cost, Figure 10b).

    The default ~2-hour window ends at 9:55, *during* the tail of the
    morning slowdown (it lifts at 10:00): the optimal leaving time then sits
    strictly inside the tail, off every coarse discretization grid, which is
    the inaccuracy Figure 10(a) measures.  A window whose optimum lies on a
    plateau containing grid instants would let the discrete model answer
    exactly — piecewise-constant speeds make such plateaus common.
    """
    count = count if count is not None else bench_queries()
    if interval is None:
        from ..timeutil import parse_clock

        interval = TimeInterval(parse_clock("8:00"), parse_clock("9:55"))
    queries = distance_band_queries(
        network, [(min_distance, max_distance)], count, interval, seed
    )[(min_distance, max_distance)]

    engine = IntAllFastestPaths(network)
    discrete = DiscreteTimeModel(network)

    exact_times: list[float] = []
    exact_seconds: list[float] = []
    per_step: dict[float, list[tuple[float, float]]] = {s: [] for s in steps_minutes}
    for query in queries:
        start = time.perf_counter()
        exact = engine.single_fastest_path(query.source, query.target, query.interval)
        exact_seconds.append(time.perf_counter() - start)
        exact_times.append(exact.optimal_travel_time)
        for step in steps_minutes:
            start = time.perf_counter()
            approx = discrete.single_fastest_path(
                query.source, query.target, query.interval, step
            )
            elapsed = time.perf_counter() - start
            per_step[step].append((approx.travel_time, elapsed))

    rows: list[Fig10Row] = []
    for step in steps_minutes:
        travel_ratios = [
            approx_t / exact_t
            for (approx_t, _s), exact_t in zip(per_step[step], exact_times)
        ]
        time_ratios = [
            approx_s / exact_s
            for (_t, approx_s), exact_s in zip(per_step[step], exact_seconds)
        ]
        rows.append(
            Fig10Row(
                step,
                statistics.fmean(travel_ratios),
                statistics.fmean(time_ratios),
                len(queries),
            )
        )
    return rows


# ----------------------------------------------------------------------
# Table 1 / §6 intro — CapeCod vs constant speed-limit routing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ConstantSpeedRow:
    """Travel-time comparison for one leaving instant offset."""

    leave_clock: str
    mean_constant_minutes: float
    mean_capecod_minutes: float
    improvement_percent: float
    queries: int


def constant_speed_experiment(
    network: CapeCodNetwork,
    constant_network: CapeCodNetwork,
    leave_times: list[float],
    leave_labels: list[str],
    count: int | None = None,
    min_distance: float = 4.0,
    max_distance: float = 8.0,
    seed: int = 0,
) -> list[ConstantSpeedRow]:
    """The §6 comparison against commercial-navigation constant speeds.

    For each query and leaving instant, the constant-speed planner picks its
    route on ``constant_network`` (same topology, speed = speed limit); that
    route is then *driven* on the real CapeCod network.  The CapeCod-aware
    planner routes directly on the real network.  The paper reports ~50%
    travel-time improvement during rush hours.
    """
    count = count if count is not None else bench_queries()
    interval = morning_rush_interval(1.0)  # placeholder; instants come explicitly
    queries = distance_band_queries(
        network, [(min_distance, max_distance)], count, interval, seed
    )[(min_distance, max_distance)]

    rows: list[ConstantSpeedRow] = []
    for leave, label in zip(leave_times, leave_labels):
        const_minutes: list[float] = []
        cape_minutes: list[float] = []
        for query in queries:
            planned = fixed_departure_query(
                constant_network, query.source, query.target, leave
            )
            actual_const = path_travel_time(network, planned.path, leave)
            actual_cape = fixed_departure_query(
                network, query.source, query.target, leave
            ).travel_time
            const_minutes.append(actual_const)
            cape_minutes.append(actual_cape)
        mean_const = statistics.fmean(const_minutes)
        mean_cape = statistics.fmean(cape_minutes)
        rows.append(
            ConstantSpeedRow(
                label,
                mean_const,
                mean_cape,
                100.0 * (mean_const - mean_cape) / mean_const,
                len(queries),
            )
        )
    return rows
