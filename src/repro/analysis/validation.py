"""Independent validation of query answers.

These helpers re-derive query answers from first principles — one
fixed-departure time-dependent A* per sampled instant — and compare them
against an engine's functional answer.  The test suite uses them as its
oracle; they are exported so downstream users can spot-check answers on
their own networks (e.g. after writing a custom generator or loader).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.astar import fixed_departure_query, path_arrival_time, path_travel_time
from ..core.results import AllFPResult
from ..timeutil import EPS


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of validating one allFP answer against brute force."""

    samples: int
    max_travel_time_error: float
    max_path_suboptimality: float

    @property
    def ok(self) -> bool:
        return (
            self.max_travel_time_error <= 1e-6
            and self.max_path_suboptimality <= 1e-6
        )


def validate_allfp(
    network, result: AllFPResult, samples: int = 25
) -> ValidationReport:
    """Check a (leaving-interval) allFP answer at sampled instants.

    For each sampled leaving instant the lower border must equal the travel
    time found by an independent fixed-departure search, and the path the
    partition reports must actually achieve that travel time.
    """
    max_err = 0.0
    max_subopt = 0.0
    for instant in result.interval.sample(samples):
        oracle = fixed_departure_query(
            network, result.source, result.target, instant
        )
        border_value = result.travel_time_at(instant)
        max_err = max(max_err, abs(border_value - oracle.travel_time))
        chosen = result.path_at(instant)
        achieved = path_travel_time(network, chosen, instant)
        max_subopt = max(max_subopt, achieved - oracle.travel_time)
    return ValidationReport(samples, max_err, max_subopt)


def validate_arrival_allfp(
    network, result, samples: int = 25
) -> ValidationReport:
    """Check an arrival-interval allFP answer at sampled instants.

    For each sampled arrival instant ``a``: driving the reported path at
    the reported departure must arrive exactly at ``a``, and no departure
    later than the reported one may still make ``a`` (checked by probing a
    slightly later fixed-departure search).
    """
    max_err = 0.0
    max_subopt = 0.0
    probe = max(result.interval.length / 1000.0, 0.01)
    for a in result.interval.sample(samples):
        path = result.path_at(a)
        leave = result.departure_at(a)
        arrival = path_arrival_time(network, path, leave)
        max_err = max(max_err, abs(arrival - a))
        max_err = max(
            max_err, abs((a - leave) - result.travel_time_at(a))
        )
        later = fixed_departure_query(
            network, result.source, result.target, leave + probe
        )
        # If a strictly later departure still arrives by `a`, the reported
        # departure was not the latest — count the slack as suboptimality.
        if later.arrival < a - EPS:
            max_subopt = max(max_subopt, a - later.arrival)
    return ValidationReport(samples, max_err, max_subopt)
