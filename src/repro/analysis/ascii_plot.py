"""Terminal rendering of piecewise-linear functions.

No plotting library ships with this repository, so examples and debugging
sessions render travel-time / lower-border functions as ASCII line charts.
The x axis is labelled with clock times, the y axis with minutes.
"""

from __future__ import annotations

from ..func.piecewise import PiecewiseLinearFunction
from ..timeutil import format_clock


def render_function(
    fn: PiecewiseLinearFunction,
    width: int = 64,
    height: int = 12,
    title: str | None = None,
    marker: str = "*",
) -> str:
    """Render a function as an ASCII chart.

    Samples the function on a ``width``-column grid (plus its breakpoints'
    columns, so kinks are never missed) and draws one marker per column.
    """
    if width < 8 or height < 3:
        raise ValueError("chart needs width >= 8 and height >= 3")
    lo, hi = fn.domain
    if hi - lo <= 0:
        return f"{title or ''}\n(single instant {format_clock(lo)}: {fn(lo):.2f} min)"

    columns: list[float] = []
    for c in range(width):
        x = lo + (hi - lo) * c / (width - 1)
        columns.append(fn(x))
    y_min = min(columns + [fn.min_value()])
    y_max = max(columns + [fn.max_value()])
    span = max(y_max - y_min, 1e-9)

    grid = [[" "] * width for _ in range(height)]
    for c, value in enumerate(columns):
        row = int(round((value - y_min) / span * (height - 1)))
        grid[height - 1 - row][c] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    label_width = max(len(f"{y_max:.1f}"), len(f"{y_min:.1f}"))
    for r, row_cells in enumerate(grid):
        if r == 0:
            label = f"{y_max:.1f}"
        elif r == height - 1:
            label = f"{y_min:.1f}"
        else:
            label = ""
        lines.append(f"{label:>{label_width}} |{''.join(row_cells)}")
    lines.append(f"{'':>{label_width}} +{'-' * width}")
    left = format_clock(lo, with_seconds=False)
    right = format_clock(hi, with_seconds=False)
    pad = max(width - len(left) - len(right), 1)
    lines.append(f"{'':>{label_width}}  {left}{' ' * pad}{right}")
    return "\n".join(lines)


def render_partition(
    entries,
    width: int = 64,
    labels: dict | None = None,
) -> str:
    """Render an allFP partition as a labelled segment bar.

    ``entries`` is an iterable of objects with ``interval`` and ``path``
    (e.g. :class:`~repro.core.results.AllFPEntry`); identical paths share a
    letter.  ``labels`` optionally maps paths to single characters.
    """
    entries = list(entries)
    if not entries:
        return "(empty partition)"
    lo = entries[0].interval.start
    hi = entries[-1].interval.end
    span = max(hi - lo, 1e-9)
    letters = {}
    if labels:
        letters.update(labels)
    next_letter = iter("ABCDEFGHIJKLMNOPQRSTUVWXYZ")
    bar = []
    for entry in entries:
        if entry.path not in letters:
            letters[entry.path] = next(next_letter)
        # Cumulative positions keep the bar aligned; every piece gets at
        # least one cell so hairline sub-intervals stay visible.
        start_col = int(round((entry.interval.start - lo) / span * width))
        end_col = int(round((entry.interval.end - lo) / span * width))
        cells = max(end_col - start_col, 1)
        bar.append(letters[entry.path] * cells)
    legend = [
        f"  {letter} = {' -> '.join(str(n) for n in path)}"
        for path, letter in letters.items()
    ]
    left = format_clock(lo, with_seconds=False)
    right = format_clock(hi, with_seconds=False)
    bar_text = "".join(bar)
    pad = max(width - len(left) - len(right), 1)
    return "\n".join(
        [f"|{bar_text}|", f" {left}{' ' * pad}{right}", *legend]
    )
