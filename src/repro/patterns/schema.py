"""Road classes and the paper's Table 1 CapeCod pattern schema.

The evaluation (§6.1) distinguishes four road classes and assigns each a
CapeCod pattern over the {workday, non-workday} category set:

=============  ==================  ==================  =====================  ==========================
               Inbound highways    Outbound highways   Local roads in Boston  Local roads outside Boston
=============  ==================  ==================  =====================  ==========================
Non-workday    65 MPH              65 MPH              40 MPH                 40 MPH
Workday        20 MPH 7am–10am,    30 MPH 4pm–7pm,     20 MPH 7–10am & 4–7pm, 40 MPH
               65 MPH otherwise    65 MPH otherwise    40 MPH otherwise
=============  ==================  ==================  =====================  ==========================

:func:`table1_schema` reproduces this verbatim; :func:`constant_speed_schema`
is the commercial-navigation baseline the paper's §6 intro compares against
(speed = speed limit, constant all day).
"""

from __future__ import annotations

import enum

from ..timeutil import hours
from .categories import NON_WORKDAY, WORKDAY
from .speed import CapeCodPattern, DailySpeedPattern


class RoadClass(enum.Enum):
    """The four road classes of the paper's experimental setup (§6.1)."""

    INBOUND_HIGHWAY = "inbound_highway"
    OUTBOUND_HIGHWAY = "outbound_highway"
    LOCAL_CITY = "local_city"
    LOCAL_OUTSIDE = "local_outside"

    @property
    def is_highway(self) -> bool:
        return self in (RoadClass.INBOUND_HIGHWAY, RoadClass.OUTBOUND_HIGHWAY)


#: Speed limits (MPH) by road class — the constant-speed baseline's speeds and
#: the off-peak speeds of Table 1.
SPEED_LIMITS_MPH: dict[RoadClass, float] = {
    RoadClass.INBOUND_HIGHWAY: 65.0,
    RoadClass.OUTBOUND_HIGHWAY: 65.0,
    RoadClass.LOCAL_CITY: 40.0,
    RoadClass.LOCAL_OUTSIDE: 40.0,
}

_AM_RUSH = (hours(7), hours(10))  # 7am-10am
_PM_RUSH = (hours(16), hours(19))  # 4pm-7pm


def _workday_with_slowdowns(
    base_mph: float, slow_mph: float, windows: list[tuple[float, float]]
) -> DailySpeedPattern:
    """Base speed all day except ``slow_mph`` during the given windows."""
    pieces: list[tuple[float, float]] = [(0.0, base_mph)]
    for start, end in sorted(windows):
        pieces.append((start, slow_mph))
        pieces.append((end, base_mph))
    return DailySpeedPattern.from_mph(pieces)


def table1_schema() -> dict[RoadClass, CapeCodPattern]:
    """The paper's Table 1: one CapeCod pattern per road class."""
    non_workday = {
        cls: DailySpeedPattern.from_mph([(0.0, SPEED_LIMITS_MPH[cls])])
        for cls in RoadClass
    }
    workday = {
        RoadClass.INBOUND_HIGHWAY: _workday_with_slowdowns(
            65.0, 20.0, [_AM_RUSH]
        ),
        RoadClass.OUTBOUND_HIGHWAY: _workday_with_slowdowns(
            65.0, 30.0, [_PM_RUSH]
        ),
        RoadClass.LOCAL_CITY: _workday_with_slowdowns(
            40.0, 20.0, [_AM_RUSH, _PM_RUSH]
        ),
        RoadClass.LOCAL_OUTSIDE: DailySpeedPattern.from_mph([(0.0, 40.0)]),
    }
    return {
        cls: CapeCodPattern(
            {WORKDAY: workday[cls], NON_WORKDAY: non_workday[cls]}
        )
        for cls in RoadClass
    }


def constant_speed_schema() -> dict[RoadClass, CapeCodPattern]:
    """The commercial-navigation assumption: speed == speed limit, always.

    Used for the §6 comparison showing CapeCod-aware routing saves ~50%
    travel time during rush hours.
    """
    return {
        cls: CapeCodPattern(
            {
                WORKDAY: DailySpeedPattern.from_mph(
                    [(0.0, SPEED_LIMITS_MPH[cls])]
                ),
                NON_WORKDAY: DailySpeedPattern.from_mph(
                    [(0.0, SPEED_LIMITS_MPH[cls])]
                ),
            }
        )
        for cls in RoadClass
    }


def uniform_schema(speed_mpm: float = 1.0) -> dict[RoadClass, CapeCodPattern]:
    """Every class at one constant speed — handy for tests and examples."""
    return {
        cls: CapeCodPattern(
            {
                WORKDAY: DailySpeedPattern.constant(speed_mpm),
                NON_WORKDAY: DailySpeedPattern.constant(speed_mpm),
            }
        )
        for cls in RoadClass
    }
