"""Day categories and calendars (Definition 1 of the paper).

A *day-category set* lists categories such that every day belongs to exactly
one, and two days of the same category exhibit identical speed patterns on
every road segment.  A :class:`Calendar` is the assignment of concrete days
to categories; the paper's evaluation uses the two-category set
{workday, non-workday} with the obvious weekly calendar, provided here as
:data:`WORKWEEK` / :func:`workweek_calendar`.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..exceptions import PatternError


class DayCategorySet:
    """An ordered set of day-category names.

    >>> DayCategorySet(["workday", "non-workday"]).names
    ('workday', 'non-workday')
    """

    __slots__ = ("_names",)

    def __init__(self, names: Sequence[str]) -> None:
        cleaned = tuple(str(n) for n in names)
        if not cleaned:
            raise PatternError("a category set needs at least one category")
        if len(set(cleaned)) != len(cleaned):
            raise PatternError(f"duplicate categories in {cleaned}")
        self._names = cleaned

    @property
    def names(self) -> tuple[str, ...]:
        return self._names

    def __contains__(self, name: object) -> bool:
        return name in self._names

    def __iter__(self):
        return iter(self._names)

    def __len__(self) -> int:
        return len(self._names)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DayCategorySet) and self._names == other._names

    def __hash__(self) -> int:
        return hash(self._names)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DayCategorySet({list(self._names)!r})"

    def validate(self, name: str) -> str:
        """Return ``name`` if it is a member; raise otherwise."""
        if name not in self._names:
            raise PatternError(
                f"category {name!r} not in category set {self._names}"
            )
        return name


class Calendar:
    """Maps a day index (0-based, day 0 = Monday by convention) to a category.

    Parameters
    ----------
    categories:
        The category set every returned name must belong to.
    assign:
        ``day_index -> category name``.  The result is validated lazily and
        cached per day, since query horizons touch only a few days.
    """

    __slots__ = ("_categories", "_assign", "_cache")

    def __init__(
        self, categories: DayCategorySet, assign: Callable[[int], str]
    ) -> None:
        self._categories = categories
        self._assign = assign
        self._cache: dict[int, str] = {}

    @property
    def categories(self) -> DayCategorySet:
        return self._categories

    def category_for_day(self, day: int) -> str:
        """The category of day ``day`` (0-based)."""
        cached = self._cache.get(day)
        if cached is not None:
            return cached
        name = self._categories.validate(self._assign(day))
        self._cache[day] = name
        return name

    @classmethod
    def single_category(cls, name: str = "default") -> "Calendar":
        """A calendar in which every day has the same category."""
        cats = DayCategorySet([name])
        return cls(cats, lambda _day: name)

    @classmethod
    def periodic(
        cls, categories: DayCategorySet, sequence: Sequence[str]
    ) -> "Calendar":
        """Repeat ``sequence`` (e.g. a 7-day week) forever."""
        if not sequence:
            raise PatternError("periodic calendar needs a nonempty sequence")
        seq = tuple(categories.validate(s) for s in sequence)
        return cls(categories, lambda day: seq[day % len(seq)])


#: The paper's two-category set.
WORKWEEK = DayCategorySet(["workday", "non-workday"])

WORKDAY = "workday"
NON_WORKDAY = "non-workday"


def workweek_calendar() -> Calendar:
    """Mon–Fri = workday, Sat–Sun = non-workday (day 0 is a Monday)."""
    week = [WORKDAY] * 5 + [NON_WORKDAY] * 2
    return Calendar.periodic(WORKWEEK, week)
