"""From speed patterns to travel-time functions (§4.1, Equation 1).

For an edge of length ``d`` whose speed is the piecewise-constant function
``v(t)``, let ``S(t) = ∫ v`` be the cumulative distance driven since some
reference instant.  ``S`` is a strictly increasing piecewise-linear function,
so the *arrival function* of the edge is

    ``A(t) = S⁻¹(S(t) + d)``

which is itself piecewise linear, continuous and strictly increasing (FIFO).
Equation 1 of the paper is the two-piece special case of this construction;
the code below handles any number of speed changes crossed in one traversal
("unlikely to happen in practice", the paper notes, but it costs nothing to
be exact).

Two interfaces are provided:

* :func:`traverse` — scalar: arrival time for one departure instant.  Used by
  the fixed-departure baselines (A*, discrete-time), which must be fast.
* :func:`edge_arrival_function` — functional: the arrival function over a
  departure interval, used by IntAllFastestPaths.
"""

from __future__ import annotations

from typing import Iterator

from ..exceptions import PatternError
from ..func import kernel
from ..func.monotone import MonotonePiecewiseLinear
from ..func.piecewise import XTOL, PiecewiseLinearFunction
from ..timeutil import MINUTES_PER_DAY
from .categories import Calendar
from .speed import CapeCodPattern

#: Safety valve: give up if one edge traversal spans more than a year.
MAX_HORIZON_DAYS = 366


def _speed_segments(
    pattern: CapeCodPattern, calendar: Calendar, t_start: float
) -> Iterator[tuple[float, float, float]]:
    """Yield consecutive ``(start, end, speed)`` segments from ``t_start`` on.

    Segments are expressed in absolute minutes and chain across day
    boundaries according to the calendar; the stream is infinite (bounded by
    the caller), the first segment starts exactly at ``t_start``.
    """
    day = int(t_start // MINUTES_PER_DAY)
    while True:
        if day - int(t_start // MINUTES_PER_DAY) > MAX_HORIZON_DAYS:
            raise PatternError(
                "edge traversal spans more than a year; "
                "check speeds and distances"
            )
        daily = pattern.daily(calendar.category_for_day(day))
        day_base = day * MINUTES_PER_DAY
        for seg_start, seg_end, speed in daily.segments():
            abs_start = day_base + seg_start
            abs_end = day_base + seg_end
            if abs_end <= t_start + XTOL:
                continue
            yield (max(abs_start, t_start), abs_end, speed)
        day += 1


def traverse(
    distance: float,
    pattern: CapeCodPattern,
    calendar: Calendar,
    depart: float,
) -> float:
    """Arrival time when entering an edge of length ``distance`` at ``depart``.

    Exact under the CapeCod model: drives through each constant-speed segment
    in turn until the edge length is consumed.
    """
    if distance < 0:
        raise PatternError(f"negative distance {distance}")
    if distance == 0:
        return depart
    remaining = distance
    for seg_start, seg_end, speed in _speed_segments(pattern, calendar, depart):
        seg_len = (seg_end - seg_start) * speed
        if seg_len >= remaining - 1e-15:
            return seg_start + remaining / speed
        remaining -= seg_len
    raise PatternError("unreachable")  # pragma: no cover


def _cumulative_arrays(
    pattern: CapeCodPattern,
    calendar: Calendar,
    t_lo: float,
    t_hi: float,
    extra_distance: float,
) -> tuple[list[float], list[float]]:
    """Breakpoint arrays of ``S`` (see :func:`cumulative_distance_function`)."""
    xs: list[float] = [t_lo]
    ys: list[float] = [0.0]
    s_at_hi: float | None = None
    for seg_start, seg_end, speed in _speed_segments(pattern, calendar, t_lo):
        prev_t, prev_s = xs[-1], ys[-1]
        # Record S at t_hi the moment we pass it (it need not be a breakpoint).
        if s_at_hi is None and seg_end >= t_hi - XTOL:
            s_at_hi = prev_s + (t_hi - prev_t) * speed
        s_end = prev_s + (seg_end - prev_t) * speed
        xs.append(seg_end)
        ys.append(s_end)
        if s_at_hi is not None and s_end >= s_at_hi + extra_distance - 1e-12:
            break
    return xs, ys


def cumulative_distance_function(
    pattern: CapeCodPattern,
    calendar: Calendar,
    t_lo: float,
    t_hi: float,
    extra_distance: float,
) -> MonotonePiecewiseLinear:
    """The cumulative-distance function ``S`` with ``S(t_lo) = 0``.

    The domain extends past ``t_hi`` far enough that
    ``S(end) >= S(t_hi) + extra_distance`` — i.e. a traversal of
    ``extra_distance`` miles starting anywhere in ``[t_lo, t_hi]`` completes
    within the domain, which is what :func:`edge_arrival_function` needs to
    invert ``S``.
    """
    if t_hi < t_lo - XTOL:
        raise PatternError(f"bad window [{t_lo}, {t_hi}]")
    xs, ys = _cumulative_arrays(pattern, calendar, t_lo, t_hi, extra_distance)
    if kernel.KERNEL_ENABLED:
        return MonotonePiecewiseLinear._trusted_monotone(xs, ys)
    return MonotonePiecewiseLinear(list(zip(xs, ys)))


def edge_arrival_function(
    distance: float,
    pattern: CapeCodPattern,
    calendar: Calendar,
    depart_lo: float,
    depart_hi: float,
) -> MonotonePiecewiseLinear:
    """Arrival function ``A(t) = S⁻¹(S(t) + d)`` on ``[depart_lo, depart_hi]``.

    This is the §4.4 edge ingredient: departing the edge's tail anywhere in
    the given window, when do we reach its head?  The result is strictly
    increasing (FIFO) and exact — its breakpoints are precisely the departure
    times at which the traversal starts or finishes crossing a speed change.
    """
    if distance < 0:
        raise PatternError(f"negative distance {distance}")
    if distance == 0:
        from ..func.monotone import identity

        return identity(depart_lo, depart_hi)
    if kernel.KERNEL_ENABLED:
        # Fused pipeline straight over breakpoint arrays: S → S⁻¹, the
        # shifted window S(t)+d, their composition, simplification — one
        # MonotonePiecewiseLinear allocated at the very end.
        sxs, sys_ = _cumulative_arrays(
            pattern, calendar, depart_lo, depart_hi, distance
        )
        inv_xs, inv_ys = kernel.inverse(sxs, sys_)
        wxs, wys = kernel.restrict(
            sxs, sys_, depart_lo, min(depart_hi, sxs[-1])
        )
        for i in range(len(wys)):
            wys[i] += distance
        cxs, cys = kernel.compose(inv_xs, inv_ys, wxs, wys)
        cxs, cys = kernel.simplify(cxs, cys, 1e-9)
        return MonotonePiecewiseLinear._trusted_monotone(cxs, cys)
    s = cumulative_distance_function(
        pattern, calendar, depart_lo, depart_hi, distance
    )
    s_inv = s.inverse()
    window = s.restrict(depart_lo, min(depart_hi, s.x_max))
    shifted = MonotonePiecewiseLinear(
        [(x, y + distance) for x, y in window.breakpoints]
    )
    return s_inv.compose(shifted).simplify()


def edge_travel_time_function(
    distance: float,
    pattern: CapeCodPattern,
    calendar: Calendar,
    depart_lo: float,
    depart_hi: float,
) -> PiecewiseLinearFunction:
    """Travel-time function ``T(l) = A(l) - l`` — the paper's Equation 1 form."""
    arrival = edge_arrival_function(
        distance, pattern, calendar, depart_lo, depart_hi
    )
    return arrival.minus_identity()


def min_travel_time(distance: float, pattern: CapeCodPattern) -> float:
    """Lower bound on the edge's travel time: length / fastest-ever speed.

    Used by the optimistic-time metric of the boundary-node estimator.
    """
    return distance / pattern.max_speed()
