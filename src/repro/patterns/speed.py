"""Daily speed patterns and CapeCod patterns (Definitions 2–3 of the paper).

A :class:`DailySpeedPattern` is a piecewise-constant speed profile for one
24-hour day, e.g. "[0:00–7:00): 1 mpm, [7:00–9:00): 0.5 mpm, [9:00–24:00):
1 mpm".  A :class:`CapeCodPattern` holds one daily pattern per day category.
Speeds are in miles per minute (mpm), the paper's unit.
"""

from __future__ import annotations

import bisect
from typing import Iterator, Mapping, Sequence

from ..exceptions import PatternError
from ..timeutil import MINUTES_PER_DAY, mph_to_mpm
from .categories import Calendar, DayCategorySet


class DailySpeedPattern:
    """Piecewise-constant speed over one day, ``[0, 1440)`` minutes.

    Parameters
    ----------
    pieces:
        ``(start_minute, speed_mpm)`` pairs.  The first start must be 0,
        starts must be strictly increasing and below 1440, and every speed
        must be strictly positive (a zero speed would make travel time
        unbounded and break the FIFO/flow-speed model).
    """

    __slots__ = ("_starts", "_speeds")

    def __init__(self, pieces: Sequence[tuple[float, float]]) -> None:
        if not pieces:
            raise PatternError("a daily pattern needs at least one piece")
        starts = [float(s) for s, _v in pieces]
        speeds = [float(v) for _s, v in pieces]
        if abs(starts[0]) > 1e-9:
            raise PatternError(f"first piece must start at 0:00, got {starts[0]}")
        for i in range(1, len(starts)):
            if starts[i] <= starts[i - 1]:
                raise PatternError("piece starts must be strictly increasing")
        if starts[-1] >= MINUTES_PER_DAY:
            raise PatternError("piece starts must lie within the day")
        for v in speeds:
            if v <= 0:
                raise PatternError(f"speeds must be positive, got {v}")
        self._starts = tuple(starts)
        self._speeds = tuple(speeds)

    @classmethod
    def constant(cls, speed_mpm: float) -> "DailySpeedPattern":
        """A day with one constant speed."""
        return cls([(0.0, speed_mpm)])

    @classmethod
    def from_mph(cls, pieces: Sequence[tuple[float, float]]) -> "DailySpeedPattern":
        """Like the constructor but with speeds quoted in miles per hour."""
        return cls([(start, mph_to_mpm(v)) for start, v in pieces])

    # ------------------------------------------------------------------
    @property
    def piece_count(self) -> int:
        return len(self._starts)

    @property
    def pieces(self) -> tuple[tuple[float, float], ...]:
        """``(start_minute, speed_mpm)`` pairs."""
        return tuple(zip(self._starts, self._speeds))

    @property
    def breakpoints(self) -> tuple[float, ...]:
        """Times-of-day at which the speed changes (excluding 0:00)."""
        return self._starts[1:]

    def speed_at(self, minute_of_day: float) -> float:
        """Speed (mpm) in effect at the given time of day."""
        if not 0 <= minute_of_day < MINUTES_PER_DAY + 1e-9:
            raise PatternError(f"minute_of_day {minute_of_day} outside [0, 1440)")
        i = bisect.bisect_right(self._starts, minute_of_day) - 1
        return self._speeds[max(i, 0)]

    def min_speed(self) -> float:
        return min(self._speeds)

    def max_speed(self) -> float:
        return max(self._speeds)

    def segments(self) -> Iterator[tuple[float, float, float]]:
        """Yield ``(start, end, speed)`` covering ``[0, 1440)``."""
        for i, (start, speed) in enumerate(self.pieces):
            end = (
                self._starts[i + 1]
                if i + 1 < len(self._starts)
                else MINUTES_PER_DAY
            )
            yield (start, end, speed)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, DailySpeedPattern)
            and self._starts == other._starts
            and self._speeds == other._speeds
        )

    def __hash__(self) -> int:
        return hash((self._starts, self._speeds))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DailySpeedPattern({list(self.pieces)!r})"


class CapeCodPattern:
    """One daily speed pattern per day category (Definition 2).

    Instances are hashable and interned-friendly: networks typically share a
    handful of patterns across thousands of edges, and the storage layer
    serialises patterns by id.
    """

    __slots__ = ("_by_category",)

    def __init__(self, by_category: Mapping[str, DailySpeedPattern]) -> None:
        if not by_category:
            raise PatternError("a CapeCod pattern needs at least one category")
        self._by_category = dict(by_category)

    @classmethod
    def constant(
        cls, speed_mpm: float, categories: Sequence[str] = ("default",)
    ) -> "CapeCodPattern":
        """The same constant speed in every category."""
        daily = DailySpeedPattern.constant(speed_mpm)
        return cls({c: daily for c in categories})

    # ------------------------------------------------------------------
    @property
    def categories(self) -> tuple[str, ...]:
        return tuple(self._by_category)

    def daily(self, category: str) -> DailySpeedPattern:
        """The daily pattern for a category."""
        try:
            return self._by_category[category]
        except KeyError:
            raise PatternError(
                f"pattern has no category {category!r}; has {self.categories}"
            ) from None

    def covers(self, categories: DayCategorySet) -> bool:
        """True when every category in the set has a daily pattern."""
        return all(name in self._by_category for name in categories)

    def speed_at(self, abs_minutes: float, calendar: Calendar) -> float:
        """Speed in effect at an absolute time instant under a calendar."""
        day = int(abs_minutes // MINUTES_PER_DAY)
        minute = abs_minutes - day * MINUTES_PER_DAY
        return self.daily(calendar.category_for_day(day)).speed_at(minute)

    def min_speed(self) -> float:
        """Slowest speed across all categories."""
        return min(p.min_speed() for p in self._by_category.values())

    def max_speed(self) -> float:
        """Fastest speed across all categories."""
        return max(p.max_speed() for p in self._by_category.values())

    def is_constant(self) -> bool:
        """True when all categories share one single-piece speed."""
        speeds = {
            pattern.pieces for pattern in self._by_category.values()
        }
        if len(speeds) != 1:
            return False
        (pieces,) = speeds
        return len(pieces) == 1

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, CapeCodPattern)
            and self._by_category == other._by_category
        )

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._by_category.items())))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CapeCodPattern({self._by_category!r})"
