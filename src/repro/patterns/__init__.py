"""CapeCod speed patterns (systems S2–S3 in DESIGN.md).

Implements Definitions 1–3 of the paper: day-category sets, per-category
daily piecewise-constant speed patterns, the CapeCod pattern container, the
Table 1 schema used in the evaluation, and the exact conversion from speed
patterns to (arrival-time / travel-time) functions of the leaving time
(§4.1, Equation 1).
"""

from .categories import DayCategorySet, Calendar, WORKWEEK, workweek_calendar
from .speed import DailySpeedPattern, CapeCodPattern
from .schema import (
    RoadClass,
    table1_schema,
    constant_speed_schema,
    uniform_schema,
)
from .travel_time import (
    traverse,
    edge_arrival_function,
    edge_travel_time_function,
    cumulative_distance_function,
)

__all__ = [
    "DayCategorySet",
    "Calendar",
    "WORKWEEK",
    "workweek_calendar",
    "DailySpeedPattern",
    "CapeCodPattern",
    "RoadClass",
    "table1_schema",
    "constant_speed_schema",
    "uniform_schema",
    "traverse",
    "edge_arrival_function",
    "edge_travel_time_function",
    "cumulative_distance_function",
]
