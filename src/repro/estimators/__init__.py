"""Lower-bound travel-time estimators (system S8 in DESIGN.md).

The A*-style search of IntAllFastestPaths ranks queue entries by travel time
*plus a lower bound* on the remaining travel time to the destination; the
tighter the bound, the smaller the search space (§1, §5 of the paper).

* :class:`~repro.estimators.naive.NaiveEstimator` — Euclidean distance
  divided by the network's maximum speed (the paper's basic version, §4).
* :class:`~repro.estimators.boundary.BoundaryNodeEstimator` — the paper's §5
  contribution: grid space partitioning plus precomputed boundary-node
  shortest distances.
* :class:`~repro.estimators.naive.ZeroEstimator` — no guidance (degrades the
  search to a Dijkstra-style expansion); useful as an experimental control.
"""

from .base import LowerBoundEstimator
from .naive import NaiveEstimator, ZeroEstimator
from .grid import GridPartition
from .boundary import BoundaryNodeEstimator
from .precompute import EstimatorTables, compute_tables
from .snapshot import load_tables, network_fingerprint, save_tables

__all__ = [
    "LowerBoundEstimator",
    "NaiveEstimator",
    "ZeroEstimator",
    "GridPartition",
    "BoundaryNodeEstimator",
    "EstimatorTables",
    "compute_tables",
    "network_fingerprint",
    "save_tables",
    "load_tables",
]
