"""Estimator interface shared by the query engines.

An estimator provides, for every node ``n``, a number ``bound(n)`` that is
guaranteed not to exceed the true fastest travel time from ``n`` to the
current query target at *any* departure instant.  Admissibility (never
overestimating) is what makes the A*-style search exact — the paper cites
[15] for this requirement.

Estimators are built once per network (possibly with heavy precomputation)
and re-targeted cheaply per query via :meth:`prepare`.
"""

from __future__ import annotations

import abc

from ..exceptions import EstimatorError


class LowerBoundEstimator(abc.ABC):
    """Admissible lower bound on travel time (minutes) to a query target."""

    def __init__(self) -> None:
        self._target: int | None = None

    @property
    def target(self) -> int:
        """The node all bounds currently refer to."""
        if self._target is None:
            raise EstimatorError("estimator not prepared; call prepare(target)")
        return self._target

    def prepare(self, target: int) -> None:
        """Point the estimator at a query target.

        Subclasses may override to do per-target work; they must call
        ``super().prepare(target)``.
        """
        self._target = target

    @abc.abstractmethod
    def bound(self, node: int) -> float:
        """Lower bound (minutes) on the fastest travel time node -> target."""

    @property
    def name(self) -> str:
        """Short name used in experiment reports."""
        return type(self).__name__
