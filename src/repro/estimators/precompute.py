"""Parallel, array-backed precomputation for the §5 boundary estimator.

The boundary-node estimator's startup cost is one forward plus one reverse
multi-source Dijkstra per non-empty grid cell, and the full cell-pair table
``D(C1, C2)``.  This module treats that precomputation the way the
contraction-hierarchies / CRP literature treats preprocessing — as a
first-class artifact that is

* **indexed**: the network is re-labelled with dense node indices so the
  Dijkstras run over ``list``-based adjacency and distance arrays instead of
  dict-of-dict lookups,
* **parallel**: independent per-cell Dijkstras fan out across a
  ``multiprocessing`` pool (chunked by cell; workers share the immutable
  weighted adjacency via the pool initializer), with a graceful serial
  fallback when ``workers <= 1`` or no pool can be created, and
* **flat**: the results land in :class:`EstimatorTables` — contiguous
  ``array``-module stores keyed by dense cell and node indices, so the hot
  ``bound()`` path does no per-lookup hashing (the same trick as the PR 1
  function kernel).

:mod:`repro.estimators.snapshot` persists :class:`EstimatorTables` to a
versioned binary file so later processes can skip the Dijkstras entirely.
"""

from __future__ import annotations

import heapq
import time
from array import array
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .. import reliability
from ..exceptions import EstimatorError
from .grid import GridPartition

INF = float("inf")

#: typecodes of the flat stores (documented here, enforced by the snapshot)
NODE_ID_TYPECODE = "q"  # signed 64-bit node ids
CELL_TYPECODE = "i"  # cell index per node
WEIGHT_TYPECODE = "d"  # IEEE double weights


@dataclass
class EstimatorTables:
    """Flat precomputed stores of the boundary estimator.

    All per-node stores are indexed by the *dense node index* (position of
    the node id in the sorted ``node_ids`` array); ``cell_pair`` is a
    row-major ``cell_count × cell_count`` matrix flattened into one array.
    When node ids are exactly ``0 .. n-1`` (``dense`` is true) the id *is*
    the index and lookups skip the id→index map entirely.
    """

    nx: int
    ny: int
    metric: str
    v_max: float
    node_ids: array  # typecode 'q', sorted ascending
    node_cell: array  # typecode 'i', cell index per dense node index
    to_boundary: array  # typecode 'd', weight to own cell's nearest boundary
    from_boundary: array  # typecode 'd', weight from own cell's boundary
    cell_pair: array  # typecode 'd', flat row-major D(C1, C2)
    precompute_seconds: float = 0.0
    workers_used: int = 1
    loaded_from_snapshot: bool = False
    _index_of: dict[int, int] | None = field(default=None, repr=False)
    #: Keeps the backing buffer (an ``mmap`` or shared-memory segment) alive
    #: when the stores are zero-copy memoryviews instead of private arrays.
    _buffer_owner: object | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        n = len(self.node_ids)
        self.dense = bool(
            n == 0 or (self.node_ids[0] == 0 and self.node_ids[n - 1] == n - 1)
        )
        if not self.dense:
            self._index_of = {nid: i for i, nid in enumerate(self.node_ids)}

    @property
    def node_count(self) -> int:
        return len(self.node_ids)

    @property
    def cell_count(self) -> int:
        return self.nx * self.ny

    @property
    def nbytes(self) -> int:
        """Total payload bytes across the five flat stores."""
        return sum(
            len(arr) * arr.itemsize
            for arr in (
                self.node_ids,
                self.node_cell,
                self.to_boundary,
                self.from_boundary,
                self.cell_pair,
            )
        )

    @property
    def zero_copy(self) -> bool:
        """True when the stores are read-only views over a shared buffer
        (an ``mmap``-ed snapshot or a shared-memory segment) instead of
        per-process ``array`` copies."""
        return isinstance(self.node_ids, memoryview)

    def index(self, node_id: int) -> int:
        """Dense index of a node id (:class:`EstimatorError` when unknown)."""
        if self.dense:
            if 0 <= node_id < len(self.node_ids):
                return node_id
            raise EstimatorError(f"node {node_id} not in precomputed tables")
        try:
            return self._index_of[node_id]  # type: ignore[index]
        except KeyError:
            raise EstimatorError(
                f"node {node_id} not in precomputed tables"
            ) from None


def build_weighted_adjacency(
    network, metric: str
) -> tuple[list[int], list[list[tuple[int, float]]], list[list[tuple[int, float]]]]:
    """Dense-index forward and backward adjacency with estimator weights.

    The weight of an edge is ``distance`` under the ``"distance"`` metric and
    the optimistic per-edge travel time ``distance / max_speed`` under
    ``"time"`` — identical arithmetic to the legacy dict precompute, so the
    resulting tables are bitwise-equal.
    """
    node_ids = sorted(network.node_ids())
    index_of = {nid: i for i, nid in enumerate(node_ids)}
    n = len(node_ids)
    fwd: list[list[tuple[int, float]]] = [[] for _ in range(n)]
    bwd: list[list[tuple[int, float]]] = [[] for _ in range(n)]
    for edge in network.edges():
        w = (
            edge.distance
            if metric == "distance"
            else edge.distance / edge.pattern.max_speed()
        )
        u = index_of[edge.source]
        v = index_of[edge.target]
        fwd[u].append((v, w))
        bwd[v].append((u, w))
    return node_ids, fwd, bwd


def multi_source_dijkstra_indexed(
    adjacency: Sequence[Sequence[tuple[int, float]]],
    sources: Iterable[int],
    n: int,
) -> list[float]:
    """Shortest weight from the source *set* to every dense index.

    Stale heap entries (popped after a cheaper one settled the node) are
    skipped before any neighbor relaxation, so decrease-key-by-reinsert
    never triggers redundant edge scans.
    """
    dist = [INF] * n
    heap: list[tuple[float, int]] = []
    for s in sources:
        dist[s] = 0.0
        heap.append((0.0, s))
    heapq.heapify(heap)
    push, pop = heapq.heappush, heapq.heappop
    while heap:
        d, u = pop(heap)
        if d > dist[u]:
            continue  # stale entry: u was settled by a cheaper path
        for v, w in adjacency[u]:
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                push(heap, (nd, v))
    return dist


# ----------------------------------------------------------------------
# Per-cell task, shared by the serial loop and the worker processes.
# ----------------------------------------------------------------------

#: worker-process state installed by :func:`_init_worker` (inherited on
#: fork, pickled once per worker under spawn — never per task)
_WORKER_STATE: dict | None = None


def _init_worker(state: dict) -> None:  # pragma: no cover - worker process
    global _WORKER_STATE
    _WORKER_STATE = state


def _cell_job(
    state: dict, cell_index: int, boundary: Sequence[int], members: Sequence[int]
) -> tuple[int, list[tuple[int, float, float]], list[float]]:
    """One cell's Dijkstras: member distances plus the cell-pair row."""
    if reliability.is_active():
        reliability.fire("repro.estimators.precompute.cell")
    fwd = state["fwd"]
    bwd = state["bwd"]
    node_cell = state["node_cell"]
    is_boundary = state["is_boundary"]
    n_cells = state["cell_count"]
    n = len(fwd)
    dist_from = multi_source_dijkstra_indexed(fwd, boundary, n)
    dist_to = multi_source_dijkstra_indexed(bwd, boundary, n)
    member_rows = [(m, dist_from[m], dist_to[m]) for m in members]
    row = [INF] * n_cells
    for u in range(n):
        d = dist_from[u]
        if d < INF and is_boundary[u]:
            c = node_cell[u]
            if c != cell_index and d < row[c]:
                row[c] = d
    return cell_index, member_rows, row


def _cell_task(args):  # pragma: no cover - executed in worker processes
    cell_index, boundary, members = args
    assert _WORKER_STATE is not None, "pool initializer did not run"
    return _cell_job(_WORKER_STATE, cell_index, boundary, members)


def _make_pool(workers: int, state: dict):
    """A fork-preferring multiprocessing pool, or ``None`` when unavailable."""
    try:
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else methods[0]
        )
        return ctx.Pool(
            processes=workers, initializer=_init_worker, initargs=(state,)
        )
    except Exception:
        return None


def _run_cell_tasks(
    state: dict,
    tasks: list[tuple[int, list[int], list[int]]],
    workers: int,
) -> tuple[
    Iterable[tuple[int, list[tuple[int, float, float]], list[float]]], int
]:
    """Fan per-cell jobs across the PR 3 process pool (serial fallback)."""
    pool = _make_pool(workers, state) if workers > 1 and len(tasks) > 1 else None
    if pool is not None:
        chunksize = max(1, len(tasks) // (workers * 4))
        try:
            return pool.map(_cell_task, tasks, chunksize=chunksize), workers
        except KeyboardInterrupt:
            raise
        except Exception:
            # A dead worker (or a poisoned task) leaves the parallel run
            # unusable; recompute serially below rather than failing the
            # whole precompute.
            pass
        finally:
            # terminate() (not close()) so workers that died or are stuck
            # mid-task are reaped — a failed parallel precompute must never
            # leave orphaned worker processes behind.
            pool.terminate()
            pool.join()
    return (_cell_job(state, *task) for task in tasks), 1


def compute_tables(
    network,
    grid: GridPartition,
    metric: str,
    workers: int = 1,
) -> EstimatorTables:
    """Run the §5 precomputation and return flat :class:`EstimatorTables`.

    ``workers > 1`` fans the per-cell Dijkstras out across a process pool;
    any failure to create the pool degrades silently to the serial path
    (the results are identical either way).
    """
    started = time.perf_counter()
    node_ids, fwd, bwd = build_weighted_adjacency(network, metric)
    index_of = {nid: i for i, nid in enumerate(node_ids)}
    n = len(node_ids)
    n_cells = grid.cell_count

    node_cell = array(CELL_TYPECODE, (grid.cell_of_node(nid) for nid in node_ids))
    is_boundary = bytearray(n)
    tasks: list[tuple[int, list[int], list[int]]] = []
    for cell in grid.cells():
        if not cell.members or not cell.boundary:
            # A cell with members but no boundary can only occur in a
            # disconnected network; its stores stay at infinity.
            continue
        boundary = sorted(index_of[b] for b in cell.boundary)
        members = sorted(index_of[m] for m in cell.members)
        for b in boundary:
            is_boundary[b] = 1
        tasks.append((cell.index, boundary, members))

    to_boundary = array(WEIGHT_TYPECODE, [INF]) * n
    from_boundary = array(WEIGHT_TYPECODE, [INF]) * n
    cell_pair = array(WEIGHT_TYPECODE, [INF]) * (n_cells * n_cells)

    state = {
        "fwd": fwd,
        "bwd": bwd,
        "node_cell": node_cell,
        "is_boundary": bytes(is_boundary),
        "cell_count": n_cells,
    }

    results, workers_used = _run_cell_tasks(state, tasks, workers)

    for cell_index, member_rows, row in results:
        for m, d_from, d_to in member_rows:
            from_boundary[m] = d_from
            to_boundary[m] = d_to
        base = cell_index * n_cells
        for c2, w in enumerate(row):
            if w < INF:
                cell_pair[base + c2] = w

    nx, ny = grid.shape
    return EstimatorTables(
        nx=nx,
        ny=ny,
        metric=metric,
        v_max=network.max_speed(),
        node_ids=array(NODE_ID_TYPECODE, node_ids),
        node_cell=node_cell,
        to_boundary=to_boundary,
        from_boundary=from_boundary,
        cell_pair=cell_pair,
        precompute_seconds=time.perf_counter() - started,
        workers_used=workers_used,
    )


def refresh_tables_delta(
    tables: EstimatorTables,
    network,
    grid: GridPartition,
    mutations,
    workers: int = 1,
) -> EstimatorTables:
    """Admissibility-preserving delta refresh after edge-pattern mutations.

    ``mutations`` is a sequence of applied-mutation records (``source``,
    ``target``, ``distance``, ``old_pattern``, ``new_pattern`` — see
    :class:`repro.serve.updates.AppliedMutation`).  Instead of re-running
    every cell's Dijkstras, the refresh

    1. computes the **global slack** ``Δ = Σ max(0, old_w − new_w)`` over
       the mutated edges (``w = distance / max_speed``) and subtracts it,
       clamped at zero, from every finite table entry.  The Dijkstra paths
       behind each entry are simple, so a mutation can shorten any of them
       by at most its own weight drop; the corrected entries therefore
       remain lower bounds.  Speed *decreases* need no correction at all —
       true travel times only grew, so the old bounds still hold;
    2. re-runs the per-cell jobs **exactly**, but only for cells that
       contain an endpoint of a mutated edge, restoring local tightness
       through the same process pool as :func:`compute_tables`.

    Admissible bounds keep A* exact, so post-refresh answers are identical
    to a from-scratch rebuild; only estimator tightness (search effort)
    can differ, and only far away from the incident.  The returned tables
    are always private arrays — safe even when ``tables`` is a read-only
    zero-copy view over an ``mmap`` or shared-memory snapshot.
    """
    started = time.perf_counter()
    metric = tables.metric
    if metric != "time":
        # Distance weights ignore speed patterns entirely: only the stored
        # v_max (used by snapshot writers) needs to track the network.
        return EstimatorTables(
            nx=tables.nx,
            ny=tables.ny,
            metric=metric,
            v_max=network.max_speed(),
            node_ids=tables.node_ids,
            node_cell=tables.node_cell,
            to_boundary=tables.to_boundary,
            from_boundary=tables.from_boundary,
            cell_pair=tables.cell_pair,
            precompute_seconds=tables.precompute_seconds,
            workers_used=tables.workers_used,
            loaded_from_snapshot=tables.loaded_from_snapshot,
            _buffer_owner=tables._buffer_owner,
        )

    slack = 0.0
    touched_cells: set[int] = set()
    for m in mutations:
        touched_cells.add(grid.cell_of_node(m.source))
        touched_cells.add(grid.cell_of_node(m.target))
        old_w = m.distance / m.old_pattern.max_speed()
        new_w = m.distance / m.new_pattern.max_speed()
        if new_w < old_w:
            slack += old_w - new_w

    # Private, writable copies (the input stores may be read-only views).
    node_ids = array(NODE_ID_TYPECODE, tables.node_ids)
    node_cell = array(CELL_TYPECODE, tables.node_cell)
    to_boundary = array(WEIGHT_TYPECODE, tables.to_boundary)
    from_boundary = array(WEIGHT_TYPECODE, tables.from_boundary)
    cell_pair = array(WEIGHT_TYPECODE, tables.cell_pair)

    if slack > 0.0:
        for arr in (to_boundary, from_boundary, cell_pair):
            for i, w in enumerate(arr):
                if w < INF:
                    arr[i] = w - slack if w > slack else 0.0

    ids, fwd, bwd = build_weighted_adjacency(network, metric)
    if ids != list(node_ids):
        raise EstimatorError(
            "delta refresh requires an unchanged node set; "
            "topology mutations need a full refresh()"
        )
    index_of = {nid: i for i, nid in enumerate(ids)}
    n = len(ids)
    n_cells = grid.cell_count
    is_boundary = bytearray(n)
    tasks: list[tuple[int, list[int], list[int]]] = []
    for cell in grid.cells():
        if not cell.members or not cell.boundary:
            continue
        boundary = sorted(index_of[b] for b in cell.boundary)
        for b in boundary:
            is_boundary[b] = 1
        if cell.index in touched_cells:
            members = sorted(index_of[m] for m in cell.members)
            tasks.append((cell.index, boundary, members))

    state = {
        "fwd": fwd,
        "bwd": bwd,
        "node_cell": node_cell,
        "is_boundary": bytes(is_boundary),
        "cell_count": n_cells,
    }
    results, workers_used = _run_cell_tasks(state, tasks, workers)

    for cell_index, member_rows, row in results:
        for m_idx, d_from, d_to in member_rows:
            from_boundary[m_idx] = d_from
            to_boundary[m_idx] = d_to
        base = cell_index * n_cells
        for c2, w in enumerate(row):
            cell_pair[base + c2] = w if w < INF else INF

    return EstimatorTables(
        nx=tables.nx,
        ny=tables.ny,
        metric=metric,
        v_max=network.max_speed(),
        node_ids=node_ids,
        node_cell=node_cell,
        to_boundary=to_boundary,
        from_boundary=from_boundary,
        cell_pair=cell_pair,
        precompute_seconds=tables.precompute_seconds
        + (time.perf_counter() - started),
        workers_used=max(tables.workers_used, workers_used),
        # The new stores are private arrays, but straggler engine clones
        # may still hold views over the old zero-copy buffer; keeping its
        # owner referenced here prevents the segment from being torn down
        # under them (and the BufferError its __del__ would raise mid-GC).
        _buffer_owner=tables._buffer_owner,
    )
