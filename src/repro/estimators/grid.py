"""Non-overlapping grid partitioning of space (step 1 of the §5 estimator).

The paper partitions space into non-overlapping cells (citing SETI [2] for
the idea) and defines a *boundary node* of a cell as a node directly linked
to a node of a different cell.  :class:`GridPartition` implements a regular
``nx × ny`` grid over the network's bounding box and computes each cell's
member and boundary node sets.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import EstimatorError
from ..network.model import CapeCodNetwork


@dataclass(frozen=True)
class Cell:
    """One grid cell with its member and boundary node ids."""

    index: int
    members: frozenset[int]
    boundary: frozenset[int]


class GridPartition:
    """A regular grid over the network's bounding box.

    Every node belongs to exactly one cell (ties on cell borders go to the
    cell with the larger index, via half-open binning).  A node is a
    *boundary node* of its cell when it has an incoming or outgoing edge
    whose other endpoint lies in a different cell.
    """

    def __init__(self, network: CapeCodNetwork, nx: int, ny: int) -> None:
        if nx < 1 or ny < 1:
            raise EstimatorError("grid needs nx >= 1 and ny >= 1")
        self._nx = nx
        self._ny = ny
        min_x, min_y, max_x, max_y = network.bounding_box()
        # Grow the box a hair so max-coordinate nodes bin into the last cell.
        pad_x = max((max_x - min_x) * 1e-9, 1e-12)
        pad_y = max((max_y - min_y) * 1e-9, 1e-12)
        self._min_x, self._min_y = min_x, min_y
        self._step_x = (max_x - min_x + pad_x) / nx
        self._step_y = (max_y - min_y + pad_y) / ny

        self._cell_of: dict[int, int] = {}
        members: dict[int, set[int]] = {i: set() for i in range(nx * ny)}
        for node in network.nodes():
            idx = self.cell_index(node.x, node.y)
            self._cell_of[node.id] = idx
            members[idx].add(node.id)

        boundary: dict[int, set[int]] = {i: set() for i in range(nx * ny)}
        for edge in network.edges():
            cu = self._cell_of[edge.source]
            cv = self._cell_of[edge.target]
            if cu != cv:
                boundary[cu].add(edge.source)
                boundary[cv].add(edge.target)

        self._cells = tuple(
            Cell(i, frozenset(members[i]), frozenset(boundary[i]))
            for i in range(nx * ny)
        )

    # ------------------------------------------------------------------
    @property
    def cell_count(self) -> int:
        return self._nx * self._ny

    @property
    def shape(self) -> tuple[int, int]:
        return (self._nx, self._ny)

    def cell_index(self, x: float, y: float) -> int:
        """The cell index containing point ``(x, y)`` (clamped to the grid)."""
        cx = int((x - self._min_x) / self._step_x) if self._step_x > 0 else 0
        cy = int((y - self._min_y) / self._step_y) if self._step_y > 0 else 0
        cx = min(max(cx, 0), self._nx - 1)
        cy = min(max(cy, 0), self._ny - 1)
        return cy * self._nx + cx

    def cell_of_node(self, node_id: int) -> int:
        """The cell index of a node."""
        try:
            return self._cell_of[node_id]
        except KeyError:
            raise EstimatorError(f"node {node_id} not in partition") from None

    def cell(self, index: int) -> Cell:
        return self._cells[index]

    def cells(self) -> tuple[Cell, ...]:
        return self._cells

    def boundary_nodes(self, index: int) -> frozenset[int]:
        """Boundary node ids of a cell."""
        return self._cells[index].boundary

    def non_empty_cells(self) -> list[Cell]:
        """Cells that actually contain nodes."""
        return [c for c in self._cells if c.members]
