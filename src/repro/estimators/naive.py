"""The paper's basic estimators: naive (Euclidean / v_max) and zero.

The naive bound is admissible because no drive can beat a straight line at
the fastest speed found anywhere on the network; the paper uses it for the
basic algorithm (§4) and as the ``naiveLB`` baseline of Figure 9.
"""

from __future__ import annotations

import math

from ..network.model import CapeCodNetwork
from .base import LowerBoundEstimator


class NaiveEstimator(LowerBoundEstimator):
    """``d_euclidean(n, target) / v_max`` — the paper's naiveLB."""

    def __init__(self, network: CapeCodNetwork) -> None:
        super().__init__()
        self._network = network
        self._v_max = network.max_speed()
        self._target_loc: tuple[float, float] | None = None

    @property
    def v_max(self) -> float:
        """The network-wide maximum speed (miles per minute)."""
        return self._v_max

    def prepare(self, target: int) -> None:
        super().prepare(target)
        self._target_loc = self._network.location(target)

    def bound(self, node: int) -> float:
        if self._target_loc is None:
            self.prepare(self.target)  # raises if never prepared
        x, y = self._network.location(node)
        tx, ty = self._target_loc  # type: ignore[misc]
        return math.hypot(x - tx, y - ty) / self._v_max

    @property
    def name(self) -> str:
        return "naiveLB"


class ZeroEstimator(LowerBoundEstimator):
    """Always 0 — turns the search into a Dijkstra-style blind expansion."""

    def bound(self, node: int) -> float:
        return 0.0

    @property
    def name(self) -> str:
        return "zeroLB"
