"""Versioned binary snapshots of the boundary estimator's precompute.

Layout (all integers little-endian, fixed-width, written with ``struct`` —
**no pickle anywhere**, so loading an untrusted file can at worst raise
:class:`~repro.exceptions.EstimatorError`):

.. code-block:: text

    magic        8 bytes   b"RPRESNAP"
    version      u16       SNAPSHOT_VERSION
    byteorder    u8        0 = little, 1 = big (array payloads are native)
    metric       u8        0 = "time", 1 = "distance"
    nx, ny       u16 u16   grid resolution
    node_count   u32
    cell_count   u32
    v_max        f64       network-wide maximum speed (mpm)
    prep_secs    f64       wall-clock seconds the original precompute took
    fingerprint  32 bytes  sha256 of the network's canonical serialization
    5 × array    each:     typecode u8 | itemsize u8 | count u64 | payload

The arrays appear in the fixed order ``node_ids, node_cell, to_boundary,
from_boundary, cell_pair``.  The fingerprint pins a snapshot to one exact
network (nodes, edges, distances, speed patterns, calendar); loading against
anything else refuses with a clear error instead of silently serving bounds
that may no longer be admissible.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import sys
from array import array
from pathlib import Path

from .. import reliability
from ..exceptions import EstimatorError
from .precompute import (
    CELL_TYPECODE,
    NODE_ID_TYPECODE,
    WEIGHT_TYPECODE,
    EstimatorTables,
)

MAGIC = b"RPRESNAP"
SNAPSHOT_VERSION = 1

_HEADER = struct.Struct("<8sHBBHHIIdd32s")
_ARRAY_HEADER = struct.Struct("<BBQ")

_METRIC_CODES = {"time": 0, "distance": 1}
_METRIC_NAMES = {code: name for name, code in _METRIC_CODES.items()}

#: How many calendar days the fingerprint samples (matches network IO).
_CALENDAR_SAMPLE_DAYS = 366


def network_fingerprint(network) -> bytes:
    """sha256 digest of the network's canonical serialization.

    Covers everything the estimator tables depend on — node locations, edge
    distances, per-edge speed patterns — plus the calendar, so a snapshot is
    pinned to one exact network version.
    """
    h = hashlib.sha256()
    calendar = network.calendar
    doc = {
        "categories": list(calendar.categories.names),
        "calendar_days": [
            calendar.category_for_day(d) for d in range(_CALENDAR_SAMPLE_DAYS)
        ],
    }
    h.update(json.dumps(doc, sort_keys=True).encode())
    for node in sorted(network.nodes(), key=lambda n: n.id):
        h.update(struct.pack("<qdd", node.id, node.x, node.y))
    # Networks share a handful of distinct pattern objects across thousands
    # of edges; digest each object once and splice the cached digest in.
    pattern_digests: dict[int, bytes] = {}
    pack_edge = struct.Struct("<qqd").pack
    pack_piece = struct.Struct("<dd").pack
    for edge in sorted(network.edges(), key=lambda e: (e.source, e.target)):
        h.update(pack_edge(edge.source, edge.target, edge.distance))
        pattern = edge.pattern
        digest = pattern_digests.get(id(pattern))
        if digest is None:
            ph = hashlib.sha256()
            for category in pattern.categories:
                ph.update(category.encode())
                for start, speed in pattern.daily(category).pieces:
                    ph.update(pack_piece(start, speed))
            digest = ph.digest()
            pattern_digests[id(pattern)] = digest
        h.update(digest)
    return h.digest()


def _write_array(out, arr: array) -> None:
    out.write(
        _ARRAY_HEADER.pack(ord(arr.typecode), arr.itemsize, len(arr))
    )
    out.write(arr.tobytes())


def save_tables(
    tables: EstimatorTables, path: str | Path, fingerprint: bytes
) -> None:
    """Write ``tables`` to ``path`` in the versioned binary format.

    Crash-safe: the bytes go to a temporary file in the same directory,
    are fsynced, and only then renamed over ``path`` with ``os.replace``.
    A process killed mid-save leaves either the old snapshot or no
    snapshot — never a truncated ``RPRESNAP`` file.
    """
    if len(fingerprint) != 32:
        raise EstimatorError("network fingerprint must be a 32-byte sha256")
    path = Path(path)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as out:
            out.write(
                _HEADER.pack(
                    MAGIC,
                    SNAPSHOT_VERSION,
                    0 if sys.byteorder == "little" else 1,
                    _METRIC_CODES[tables.metric],
                    tables.nx,
                    tables.ny,
                    tables.node_count,
                    tables.cell_count,
                    tables.v_max,
                    tables.precompute_seconds,
                    fingerprint,
                )
            )
            for arr in (
                tables.node_ids,
                tables.node_cell,
                tables.to_boundary,
                tables.from_boundary,
                tables.cell_pair,
            ):
                reliability.fire("repro.estimators.snapshot.save")
                _write_array(out, arr)
            out.flush()
            os.fsync(out.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise


def _read_exact(f, count: int, path: Path, what: str) -> bytes:
    data = f.read(count)
    if len(data) != count:
        raise EstimatorError(
            f"{path}: truncated estimator snapshot (while reading {what})"
        )
    return data


def _read_array(
    f, path: Path, expected_typecode: str, swap: bool, what: str
) -> array:
    typecode_byte, itemsize, count = _ARRAY_HEADER.unpack(
        _read_exact(f, _ARRAY_HEADER.size, path, f"{what} header")
    )
    typecode = chr(typecode_byte)
    if typecode != expected_typecode:
        raise EstimatorError(
            f"{path}: corrupt snapshot: {what} has typecode {typecode!r}, "
            f"expected {expected_typecode!r}"
        )
    arr = array(typecode)
    if itemsize != arr.itemsize:
        raise EstimatorError(
            f"{path}: snapshot written with {itemsize}-byte {typecode!r} "
            f"items; this platform uses {arr.itemsize}"
        )
    arr.frombytes(_read_exact(f, itemsize * count, path, what))
    if swap:
        arr.byteswap()
    return arr


def load_tables(path: str | Path, fingerprint: bytes) -> EstimatorTables:
    """Read a snapshot, verifying format and the network fingerprint.

    Raises :class:`EstimatorError` — never an unpickling error or a raw
    ``struct.error`` — on any of: missing file, wrong magic, unsupported
    version, truncation, corrupt array headers, or a fingerprint that does
    not match ``fingerprint`` (the current network's hash).
    """
    path = Path(path)
    try:
        f = open(path, "rb")
    except OSError as exc:
        raise EstimatorError(f"cannot open estimator snapshot: {exc}") from None
    with f:
        # Payload-free fault point: a "corrupt" spec here raises loudly
        # instead of mutating bytes — a flipped byte inside e.g. v_max
        # would pass every header check and silently break admissibility,
        # which is precisely the outcome injection must never create.
        reliability.fire("repro.estimators.snapshot.load")
        header = _read_exact(f, _HEADER.size, path, "header")
        (
            magic,
            version,
            byteorder,
            metric_code,
            nx,
            ny,
            node_count,
            cell_count,
            v_max,
            prep_secs,
            stored_fingerprint,
        ) = _HEADER.unpack(header)
        if magic != MAGIC:
            raise EstimatorError(f"{path}: not an estimator snapshot")
        if version != SNAPSHOT_VERSION:
            raise EstimatorError(
                f"{path}: unsupported snapshot version {version} "
                f"(this build reads version {SNAPSHOT_VERSION})"
            )
        metric = _METRIC_NAMES.get(metric_code)
        if metric is None:
            raise EstimatorError(
                f"{path}: corrupt snapshot: unknown metric code {metric_code}"
            )
        if stored_fingerprint != fingerprint:
            raise EstimatorError(
                f"{path}: snapshot was built for a different network "
                "(fingerprint mismatch); re-run `repro-allfp precompute`"
            )
        swap = (byteorder == 1) != (sys.byteorder == "big")
        node_ids = _read_array(f, path, NODE_ID_TYPECODE, swap, "node_ids")
        node_cell = _read_array(f, path, CELL_TYPECODE, swap, "node_cell")
        to_boundary = _read_array(f, path, WEIGHT_TYPECODE, swap, "to_boundary")
        from_boundary = _read_array(
            f, path, WEIGHT_TYPECODE, swap, "from_boundary"
        )
        cell_pair = _read_array(f, path, WEIGHT_TYPECODE, swap, "cell_pair")
    if (
        len(node_ids) != node_count
        or len(node_cell) != node_count
        or len(to_boundary) != node_count
        or len(from_boundary) != node_count
        or len(cell_pair) != cell_count * cell_count
        or cell_count != nx * ny
    ):
        raise EstimatorError(f"{path}: corrupt snapshot: array sizes disagree")
    return EstimatorTables(
        nx=nx,
        ny=ny,
        metric=metric,
        v_max=v_max,
        node_ids=node_ids,
        node_cell=node_cell,
        to_boundary=to_boundary,
        from_boundary=from_boundary,
        cell_pair=cell_pair,
        precompute_seconds=prep_secs,
        workers_used=1,
        loaded_from_snapshot=True,
    )
